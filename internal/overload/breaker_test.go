package overload

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sensorsafe/internal/resilience"
)

// clock is a lockable fake time source.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func failErr() error { return resilience.Status(http.StatusInternalServerError, 0, "boom") }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newClock()
	b := NewBreaker("s1", BreakerConfig{FailureThreshold: 3, OpenFor: 5 * time.Second, Now: clk.now})
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker denied attempt %d: %v", i, err)
		}
		b.Report(failErr())
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %s, want open", got)
	}
	err := b.Allow()
	if err == nil {
		t.Fatal("open breaker allowed an attempt")
	}
	if !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("open-breaker error does not wrap ErrCircuitOpen: %v", err)
	}
	if resilience.Retryable(err) {
		t.Fatal("ErrCircuitOpen must classify as terminal for the retry loop")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := newClock()
	b := NewBreaker("s2", BreakerConfig{FailureThreshold: 3, Now: clk.now})
	b.Report(failErr())
	b.Report(failErr())
	b.Report(nil) // success wipes the streak
	b.Report(failErr())
	b.Report(failErr())
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %s", got)
	}
	b.Report(failErr())
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("third consecutive failure should trip: %s", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newClock()
	b := NewBreaker("s3", BreakerConfig{FailureThreshold: 1, OpenFor: 5 * time.Second, Now: clk.now})
	b.Report(failErr())
	if b.State() != BreakerOpen {
		t.Fatal("did not trip")
	}
	if err := b.Allow(); err == nil {
		t.Fatal("open breaker allowed before OpenFor elapsed")
	}
	clk.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open denied the single probe: %v", err)
	}
	// The probe slot is exclusive.
	if err := b.Allow(); err == nil {
		t.Fatal("second caller stole the half-open probe slot")
	}
	// Failed probe → back to open for a full OpenFor.
	b.Report(failErr())
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("failed probe should reopen, got %s", got)
	}
	clk.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
	b.Report(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("successful probe should close, got %s", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker denied traffic: %v", err)
	}
}

func TestBreakerNeutralOutcomes(t *testing.T) {
	clk := newClock()
	b := NewBreaker("s4", BreakerConfig{FailureThreshold: 2, Now: clk.now})
	// A 429 is the target shedding, not failing — must not trip.
	for i := 0; i < 10; i++ {
		b.Report(resilience.Status(http.StatusTooManyRequests, time.Second, "shed"))
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("429s tripped the breaker: %s", got)
	}
	// Caller-side cancellation says nothing about the target.
	for i := 0; i < 10; i++ {
		b.Report(context.Canceled)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("cancellations tripped the breaker: %s", got)
	}
	// 4xx is the caller's bug.
	for i := 0; i < 10; i++ {
		b.Report(resilience.Status(http.StatusForbidden, 0, "denied"))
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("4xx tripped the breaker: %s", got)
	}
}

// TestBreakerStateMachineRace hammers one breaker from many goroutines
// through trip/recover cycles; the race detector plus the invariant that
// at most one probe runs per half-open window are the assertions.
func TestBreakerStateMachineRace(t *testing.T) {
	clk := newClock()
	b := NewBreaker("s5", BreakerConfig{FailureThreshold: 3, OpenFor: time.Millisecond, Now: clk.now})
	var wg sync.WaitGroup
	var admitted, denied atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := b.Allow(); err != nil {
					denied.Add(1)
					continue
				}
				admitted.Add(1)
				// Alternate failure and success so the breaker keeps
				// cycling through all three states.
				if (g+i)%3 == 0 {
					b.Report(nil)
				} else {
					b.Report(failErr())
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		clk.advance(time.Millisecond)
		b.State()
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("no attempts admitted across the whole run")
	}
	// The breaker must end in a coherent state, reachable for traffic
	// after enough quiet time.
	clk.advance(time.Second)
	b.Allow()
	b.Report(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("breaker did not settle closed after a quiet success: %s", got)
	}
}

// TestRetryStormBounded proves the breaker turns an unbounded retry storm
// against a downed store into a bounded trickle: without a breaker, N ops
// × MaxAttempts requests all hit the dead target; with one, attempts stop
// at the trip threshold plus the per-window probes.
func TestRetryStormBounded(t *testing.T) {
	clk := newClock()
	b := NewBreaker("dead-store", BreakerConfig{FailureThreshold: 5, OpenFor: time.Hour, Now: clk.now})
	var attempts atomic.Int64
	p := &resilience.Policy{
		MaxAttempts: 4,
		Breaker:     b,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
	const ops = 50
	var failedFast int
	for i := 0; i < ops; i++ {
		err := p.Do(context.Background(), "storm", func(ctx context.Context) error {
			attempts.Add(1)
			return failErr()
		})
		if err == nil {
			t.Fatal("dead target reported success")
		}
		if errors.Is(err, resilience.ErrCircuitOpen) {
			failedFast++
		}
	}
	// Unbounded would be ops*MaxAttempts = 200. The breaker caps real
	// attempts at the trip threshold (5); everything after short-circuits.
	if got := attempts.Load(); got != 5 {
		t.Fatalf("dead store saw %d attempts, want exactly the trip threshold 5 (unbounded would be %d)", got, ops*4)
	}
	if failedFast != ops-1 {
		// The first op spends 4 attempts and reports exhaustion; the
		// second trips the breaker on its first attempt and returns the
		// short-circuit; ops 3..50 never touch the network at all.
		t.Fatalf("%d ops failed fast, want %d", failedFast, ops-1)
	}
}

// TestRetryStormBoundedConcurrent is the concurrent variant: total
// attempts against the dead store stay bounded by threshold + in-flight
// racers, never by ops × MaxAttempts.
func TestRetryStormBoundedConcurrent(t *testing.T) {
	clk := newClock()
	b := NewBreaker("dead-store-2", BreakerConfig{FailureThreshold: 5, OpenFor: time.Hour, Now: clk.now})
	var attempts atomic.Int64
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &resilience.Policy{
				MaxAttempts: 4,
				Breaker:     b,
				Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
			}
			for i := 0; i < 20; i++ {
				p.Do(context.Background(), "storm", func(ctx context.Context) error {
					attempts.Add(1)
					return failErr()
				})
			}
		}()
	}
	wg.Wait()
	// Races can let each in-flight worker land one extra attempt before
	// observing the trip, so the bound is threshold + workers*MaxAttempts
	// — far below the unbounded 16*20*4 = 1280.
	if got := attempts.Load(); got > 5+workers*4 {
		t.Fatalf("dead store saw %d attempts, want ≤ %d (unbounded would be 1280)", got, 5+workers*4)
	}
}

func TestBreakerSet(t *testing.T) {
	var s *BreakerSet
	if s.For("x") != nil {
		t.Fatal("nil set must return nil breaker")
	}
	set := NewBreakerSet(BreakerConfig{FailureThreshold: 1})
	a := set.For("store-a")
	if a == nil || set.For("store-a") != a {
		t.Fatal("For must memoize per target")
	}
	a.Report(failErr())
	set.For("store-b")
	states := set.States()
	if states["store-a"] != BreakerOpen || states["store-b"] != BreakerClosed {
		t.Fatalf("states = %v", states)
	}
}
