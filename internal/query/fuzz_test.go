package query

import "testing"

// FuzzParse hardens the text mini-language parser (CLI and API input):
// never panic; anything accepted must validate, render with String, and
// re-parse to an equivalent query.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"",
		"contributor(alice)",
		"channels(ECG,Respiration) limit(10)",
		"time(2011-02-01T00:00:00Z,2011-03-01T00:00:00Z)",
		"region(34,-119,35,-118) and context(Drive)",
		"limit(-1)", "bogus((", "time(,)", "channels()",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("accepted query fails validation: %v (input %q)", verr, s)
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendered query does not re-parse: %v (%q -> %q)", err, s, q.String())
		}
		if back.Contributor != q.Contributor || back.Limit != q.Limit ||
			len(back.Channels) != len(q.Channels) || len(back.Contexts) != len(q.Contexts) ||
			!back.From.Equal(q.From) || !back.To.Equal(q.To) || back.Region != q.Region {
			t.Fatalf("round trip changed query: %+v vs %+v", q, back)
		}
	})
}
