// Package timeutil provides the time-condition primitives used by SensorSafe
// privacy rules: absolute time ranges, repeated (recurring) time windows such
// as "Mon-Fri 9:00am-6:00pm", and timestamp abstraction ladders
// (milliseconds → hour → day → month → year → not shared).
//
// All types are immutable value types and safe for concurrent use.
package timeutil

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Range is a half-open absolute time interval [Start, End). A zero Range is
// treated as unbounded (matches every instant); a Range with a zero Start is
// unbounded below and one with a zero End is unbounded above.
type Range struct {
	Start time.Time
	End   time.Time
}

// NewRange builds a bounded range and validates ordering.
func NewRange(start, end time.Time) (Range, error) {
	if !start.IsZero() && !end.IsZero() && end.Before(start) {
		return Range{}, fmt.Errorf("timeutil: range end %v before start %v", end, start)
	}
	return Range{Start: start, End: end}, nil
}

// IsZero reports whether the range is fully unbounded.
func (r Range) IsZero() bool { return r.Start.IsZero() && r.End.IsZero() }

// Contains reports whether t falls inside [Start, End).
func (r Range) Contains(t time.Time) bool {
	if !r.Start.IsZero() && t.Before(r.Start) {
		return false
	}
	if !r.End.IsZero() && !t.Before(r.End) {
		return false
	}
	return true
}

// Overlaps reports whether the two ranges share at least one instant.
func (r Range) Overlaps(o Range) bool {
	startsBeforeOtherEnds := o.End.IsZero() || r.Start.IsZero() || r.Start.Before(o.End)
	otherStartsBeforeEnds := r.End.IsZero() || o.Start.IsZero() || o.Start.Before(r.End)
	return startsBeforeOtherEnds && otherStartsBeforeEnds
}

// Intersect returns the overlap of two ranges and whether it is non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	if !r.Overlaps(o) {
		return Range{}, false
	}
	out := r
	if out.Start.IsZero() || (!o.Start.IsZero() && o.Start.After(out.Start)) {
		out.Start = o.Start
	}
	if out.End.IsZero() || (!o.End.IsZero() && o.End.Before(out.End)) {
		out.End = o.End
	}
	return out, true
}

// Duration returns End-Start for bounded ranges and 0 for unbounded ones.
func (r Range) Duration() time.Duration {
	if r.Start.IsZero() || r.End.IsZero() {
		return 0
	}
	return r.End.Sub(r.Start)
}

func (r Range) String() string {
	fmtSide := func(t time.Time) string {
		if t.IsZero() {
			return "-"
		}
		return t.Format(time.RFC3339)
	}
	return fmt.Sprintf("[%s, %s)", fmtSide(r.Start), fmtSide(r.End))
}

// Weekday abbreviations accepted in rule JSON (Fig. 4 of the paper uses
// 'Mon'..'Fri').
var weekdayNames = map[string]time.Weekday{
	"sun": time.Sunday, "sunday": time.Sunday,
	"mon": time.Monday, "monday": time.Monday,
	"tue": time.Tuesday, "tues": time.Tuesday, "tuesday": time.Tuesday,
	"wed": time.Wednesday, "wednesday": time.Wednesday,
	"thu": time.Thursday, "thur": time.Thursday, "thurs": time.Thursday, "thursday": time.Thursday,
	"fri": time.Friday, "friday": time.Friday,
	"sat": time.Saturday, "saturday": time.Saturday,
}

var weekdayAbbrev = [...]string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}

// ParseWeekday parses a weekday name ("Mon", "monday", ...).
func ParseWeekday(s string) (time.Weekday, error) {
	d, ok := weekdayNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("timeutil: unknown weekday %q", s)
	}
	return d, nil
}

// ClockTime is a time of day expressed as minutes since local midnight.
type ClockTime int

// MinutesPerDay is the number of minutes in one day.
const MinutesPerDay = 24 * 60

// ClockTimeOf extracts the clock time from an instant (in its own location).
func ClockTimeOf(t time.Time) ClockTime {
	return ClockTime(t.Hour()*60 + t.Minute())
}

// ParseClockTime parses "9:00am", "6:00pm", "18:00", "9am" formats used in
// the paper's JSON rule examples.
func ParseClockTime(s string) (ClockTime, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	meridiem := ""
	switch {
	case strings.HasSuffix(s, "am"):
		meridiem, s = "am", strings.TrimSpace(strings.TrimSuffix(s, "am"))
	case strings.HasSuffix(s, "pm"):
		meridiem, s = "pm", strings.TrimSpace(strings.TrimSuffix(s, "pm"))
	}
	hh, mm := 0, 0
	var err error
	if strings.Contains(s, ":") {
		_, err = fmt.Sscanf(s, "%d:%d", &hh, &mm)
	} else {
		_, err = fmt.Sscanf(s, "%d", &hh)
	}
	if err != nil {
		return 0, fmt.Errorf("timeutil: cannot parse clock time %q: %w", orig, err)
	}
	if mm < 0 || mm > 59 {
		return 0, fmt.Errorf("timeutil: minute out of range in %q", orig)
	}
	switch meridiem {
	case "am":
		if hh < 1 || hh > 12 {
			return 0, fmt.Errorf("timeutil: hour out of range in %q", orig)
		}
		if hh == 12 {
			hh = 0
		}
	case "pm":
		if hh < 1 || hh > 12 {
			return 0, fmt.Errorf("timeutil: hour out of range in %q", orig)
		}
		if hh != 12 {
			hh += 12
		}
	default:
		if hh < 0 || hh > 24 {
			return 0, fmt.Errorf("timeutil: hour out of range in %q", orig)
		}
	}
	ct := ClockTime(hh*60 + mm)
	if ct > MinutesPerDay {
		return 0, fmt.Errorf("timeutil: clock time %q past end of day", orig)
	}
	return ct, nil
}

// String renders the clock time in the paper's "9:00am" style.
func (c ClockTime) String() string {
	h, m := int(c)/60, int(c)%60
	suffix := "am"
	switch {
	case h == 0:
		h = 12
	case h == 12:
		suffix = "pm"
	case h > 12:
		h, suffix = h-12, "pm"
	}
	return fmt.Sprintf("%d:%02d%s", h, m, suffix)
}

// Repeated is a recurring weekly time window: a set of weekdays and a
// [From, To) clock-time window. It mirrors the paper's 'RepeatTime'
// condition: {"Day": ["Mon",...], "HourMin": ["9:00am","6:00pm"]}.
// A window with From==To covers the whole day. Windows that wrap past
// midnight (From > To) are supported and interpreted as spanning into the
// next day; the weekday test applies to the instant's own weekday.
type Repeated struct {
	days [7]bool
	from ClockTime
	to   ClockTime
}

// NewRepeated builds a recurring window from weekday and clock bounds. An
// empty days slice means "every day".
func NewRepeated(days []time.Weekday, from, to ClockTime) (Repeated, error) {
	if from < 0 || from > MinutesPerDay || to < 0 || to > MinutesPerDay {
		return Repeated{}, errors.New("timeutil: clock bounds out of range")
	}
	var r Repeated
	if len(days) == 0 {
		for i := range r.days {
			r.days[i] = true
		}
	}
	for _, d := range days {
		if d < time.Sunday || d > time.Saturday {
			return Repeated{}, fmt.Errorf("timeutil: invalid weekday %d", d)
		}
		r.days[d] = true
	}
	r.from, r.to = from, to
	return r, nil
}

// ParseRepeated builds a Repeated from the paper's JSON attribute shapes:
// day names plus a two-element [from, to] clock pair. An empty hourMin
// means the whole day.
func ParseRepeated(dayNames []string, hourMin []string) (Repeated, error) {
	days := make([]time.Weekday, 0, len(dayNames))
	for _, n := range dayNames {
		d, err := ParseWeekday(n)
		if err != nil {
			return Repeated{}, err
		}
		days = append(days, d)
	}
	var from, to ClockTime
	switch len(hourMin) {
	case 0:
		// whole day
	case 2:
		var err error
		if from, err = ParseClockTime(hourMin[0]); err != nil {
			return Repeated{}, err
		}
		if to, err = ParseClockTime(hourMin[1]); err != nil {
			return Repeated{}, err
		}
	default:
		return Repeated{}, fmt.Errorf("timeutil: HourMin must have 0 or 2 entries, got %d", len(hourMin))
	}
	return NewRepeated(days, from, to)
}

// Days returns the active weekdays in ascending order.
func (r Repeated) Days() []time.Weekday {
	out := make([]time.Weekday, 0, 7)
	for d, on := range r.days {
		if on {
			out = append(out, time.Weekday(d))
		}
	}
	return out
}

// Window returns the [from, to) clock bounds.
func (r Repeated) Window() (from, to ClockTime) { return r.from, r.to }

// IsZero reports whether r is the zero value (no days, empty window),
// which matches nothing. Use NewRepeated to obtain a matching window.
func (r Repeated) IsZero() bool {
	for _, on := range r.days {
		if on {
			return false
		}
	}
	return r.from == 0 && r.to == 0
}

// Contains reports whether instant t falls in the recurring window.
func (r Repeated) Contains(t time.Time) bool {
	if r.IsZero() {
		return false
	}
	ct := ClockTimeOf(t)
	day := t.Weekday()
	switch {
	case r.from == r.to: // whole day
		return r.days[day]
	case r.from < r.to: // same-day window
		return r.days[day] && ct >= r.from && ct < r.to
	default: // wraps midnight: evening part today, morning part belongs to previous day's window
		if ct >= r.from {
			return r.days[day]
		}
		if ct < r.to {
			prev := (int(day) + 6) % 7
			return r.days[prev]
		}
		return false
	}
}

// DayNames renders the active weekdays as the abbreviations used in rule JSON.
func (r Repeated) DayNames() []string {
	out := make([]string, 0, 7)
	for d, on := range r.days {
		if on {
			out = append(out, weekdayAbbrev[d])
		}
	}
	return out
}

func (r Repeated) String() string {
	if r.IsZero() {
		return "never"
	}
	return fmt.Sprintf("%s %s-%s", strings.Join(r.DayNames(), ","), r.from, r.to)
}

// Granularity is the timestamp abstraction level of Table 1(b):
// Milliseconds, Hour, Day, Month, Year, Not Share.
type Granularity int

// Granularity levels ordered from most precise to least.
const (
	GranMillisecond Granularity = iota
	GranSecond
	GranMinute
	GranHour
	GranDay
	GranMonth
	GranYear
	GranNotShared
)

var granNames = map[Granularity]string{
	GranMillisecond: "Milliseconds",
	GranSecond:      "Second",
	GranMinute:      "Minute",
	GranHour:        "Hour",
	GranDay:         "Day",
	GranMonth:       "Month",
	GranYear:        "Year",
	GranNotShared:   "NotShared",
}

// ParseGranularity parses a Table 1(b) time-abstraction option name.
func ParseGranularity(s string) (Granularity, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	for g, name := range granNames {
		if strings.ToLower(name) == key {
			return g, nil
		}
	}
	// Accept a couple of aliases that appear in rule corpora.
	switch key {
	case "ms", "millisecond", "raw":
		return GranMillisecond, nil
	case "not share", "not_shared", "notshare", "none":
		return GranNotShared, nil
	}
	return 0, fmt.Errorf("timeutil: unknown time granularity %q", s)
}

func (g Granularity) String() string {
	if n, ok := granNames[g]; ok {
		return n
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// Valid reports whether g is a defined level.
func (g Granularity) Valid() bool { return g >= GranMillisecond && g <= GranNotShared }

// CoarserThan reports whether g reveals strictly less than o.
func (g Granularity) CoarserThan(o Granularity) bool { return g > o }

// Coarsest returns the less precise of g and o.
func Coarsest(g, o Granularity) Granularity {
	if g.CoarserThan(o) {
		return g
	}
	return o
}

// Abstract truncates t to the granularity. GranNotShared returns the zero
// time; callers must treat a zero time as withheld.
func (g Granularity) Abstract(t time.Time) time.Time {
	switch g {
	case GranMillisecond:
		return t.Truncate(time.Millisecond)
	case GranSecond:
		return t.Truncate(time.Second)
	case GranMinute:
		return t.Truncate(time.Minute)
	case GranHour:
		return time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), 0, 0, 0, t.Location())
	case GranDay:
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
	case GranMonth:
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location())
	case GranYear:
		return time.Date(t.Year(), 1, 1, 0, 0, 0, 0, t.Location())
	case GranNotShared:
		return time.Time{}
	default:
		return t
	}
}

// MergeRanges normalizes a set of ranges: sorts by start and coalesces
// overlapping or adjacent bounded ranges. Unbounded ranges collapse the
// result accordingly.
func MergeRanges(ranges []Range) []Range {
	if len(ranges) == 0 {
		return nil
	}
	rs := make([]Range, len(ranges))
	copy(rs, ranges)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Start.Equal(rs[j].Start) {
			return rs[i].End.Before(rs[j].End)
		}
		return rs[i].Start.Before(rs[j].Start)
	})
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		adjacentOrOverlap := last.End.IsZero() || !r.Start.After(last.End)
		if adjacentOrOverlap {
			if !last.End.IsZero() && (r.End.IsZero() || r.End.After(last.End)) {
				last.End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
