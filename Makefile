# SensorSafe build/test entry points.

GO ?= go

.PHONY: all build vet fmtcheck sslint sslint-sarif lint test test-short race cover bench bench-tracing bench-storage bench-overload bench-rules harness chaos fuzz fuzz-seeds examples clean

all: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmtcheck fails when any file needs formatting.
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# sslint runs the repo-local static-analysis suite (internal/lint): the
# interprocedural privacyflow and lockorder analyzers plus atomicwrite,
# ctxpropagate, mutexguard, obsnames, ruleindexuse, and servertimeouts
# over every package. Exit 1 on findings.
sslint:
	$(GO) run ./cmd/sslint ./...

# sslint-sarif writes the suite's findings as SARIF 2.1.0 (sslint.sarif)
# for code-scanning upload; the target itself always succeeds.
sslint-sarif:
	$(GO) run ./cmd/sslint -sarif ./... > sslint.sarif || true

# lint = vet + gofmt check + domain analyzers.
lint: vet fmtcheck sslint

test:
	$(GO) test ./...

# Race-detector pass over the whole module (obs + httpapi are the
# concurrency hot spots).
race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment table (EXPERIMENTS.md).
harness:
	$(GO) run ./cmd/benchharness

harness-quick:
	$(GO) run ./cmd/benchharness -quick

# BENCH_6.json: tracing overhead on the rule-evaluation release path
# (target: < 5% vs tracing off).
bench-tracing:
	$(GO) run ./cmd/benchharness -only BENCH6 -bench6-out BENCH_6.json

# BENCH_7.json: persistent segment store vs the in-memory engine —
# cold-restart time, full-range scan throughput (budget: 2x in-memory),
# and kill-during-compaction chaos. -quick keeps it CI-sized; run
# without -quick locally for the paper-scale 100k-record numbers.
bench-storage:
	$(GO) run ./cmd/benchharness -only E12 -quick -e12-out BENCH_7.json

# BENCH_8.json: overload protection — goodput and p99 at 1x/2x/5x
# capacity with admission control on vs off (bar: >= 80% of peak goodput
# at 5x), plus the circuit breaker's retry-storm bound against a downed
# store. -quick keeps it CI-sized.
bench-overload:
	$(GO) run ./cmd/benchharness -only E13 -quick -e13-out BENCH_8.json

# BENCH_9.json: compiled rule index vs the linear engine — decision
# latency at 1..10k rules (cold and warm decision cache; target: >= 10x
# over linear at 10k, near-flat indexed latency) plus the enforcement
# and federated fan-out kernel deltas. -quick keeps it CI-sized; run
# without -quick locally for the 10k-rule sweep.
bench-rules:
	$(GO) run ./cmd/benchharness -only E14 -e14-out BENCH_9.json

# Chaos suite: every network hop through the seeded fault-injecting
# transport (internal/resilience/faultnet). The seed is fixed in the test
# source, so a red run reproduces bit for bit.
chaos:
	$(GO) test -run TestChaos -count=1 -v ./internal/httpapi/

# Short fuzz campaigns on the three untrusted-input parsers.
fuzz:
	$(GO) test -fuzz=FuzzRuleJSON -fuzztime=30s ./internal/rules/
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/wavesegment/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/

# fuzz-seeds replays the checked-in fuzz corpora once (no new inputs) so
# CI catches regressions on known-tricky parser inputs cheaply.
fuzz-seeds:
	$(GO) test -run 'Fuzz' -count=1 ./internal/rules/ ./internal/wavesegment/ ./internal/query/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/behavioralstudy
	$(GO) run ./examples/healthcoach
	$(GO) run ./examples/ruleaware
	$(GO) run ./examples/audittrail

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
