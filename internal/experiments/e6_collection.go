package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

// E6Config parameterizes the rule-aware collection experiment.
type E6Config struct {
	// PhaseMinutes is the duration of each scenario phase.
	PhaseMinutes float64
}

// DefaultE6 runs 2-minute phases.
func DefaultE6() E6Config { return E6Config{PhaseMinutes: 2} }

// e6Policies are the privacy postures swept by the experiment, from
// share-everything to share-nothing.
var e6Policies = []struct {
	name  string
	rules string
}{
	{"share everything", `[{"Action":"Allow"}]`},
	{"deny while driving", `[
	  {"Action":"Allow"},
	  {"Context":["Drive"],"Action":"Deny"}
	]`},
	{"deny driving + home", `[
	  {"Action":"Allow"},
	  {"Context":["Drive"],"Action":"Deny"},
	  {"LocationLabel":["home"],"Action":"Deny"}
	]`},
	{"office hours only", `[
	  {"RepeatTime":{"Day":["Mon","Tue","Wed","Thu","Fri"],"HourMin":["9:00am","6:00pm"]},"Action":"Allow"}
	]`},
	{"share nothing", `[{"Action":"Deny"}]`},
}

// RunE6 measures phone-side collection savings per privacy posture, and
// verifies that consumers receive identical raw samples either way (the
// §5.3 safety property).
func RunE6(cfg E6Config) (*Table, error) {
	home := geo.Point{Lat: 34.0250, Lon: -118.4950}
	homeRect, _ := geo.NewRect(
		geo.Point{Lat: home.Lat - 0.0002, Lon: home.Lon - 0.0002},
		geo.Point{Lat: home.Lat + 0.0002, Lon: home.Lon + 0.0002})
	phase := time.Duration(cfg.PhaseMinutes * float64(time.Minute))
	// Wednesday 8:55: home (still), drive, office (stressed), drive back —
	// the office phase straddles 9:00 so the office-hours policy shows a
	// partial, not total, saving.
	day := &sensors.Scenario{
		Start: time.Date(2011, 2, 16, 8, 55, 0, 0, time.UTC), Origin: home, Seed: 21,
		Phases: []sensors.Phase{
			{Duration: phase, Activity: rules.CtxStill},
			{Duration: phase, Activity: rules.CtxDrive, Heading: 80},
			{Duration: 2 * phase, Activity: rules.CtxStill, Stressed: true},
			{Duration: phase, Activity: rules.CtxDrive, Heading: 260},
		},
	}

	t := &Table{
		ID:      "E6",
		Caption: fmt.Sprintf("privacy-rule-aware collection (%.0f min scripted day)", day.Duration().Minutes()),
		Headers: []string{"policy", "uploaded", "skipped", "discarded", "bytes saved", "energy saved", "released same?"},
		Notes: []string{
			"paper §5.3: data no rule would share is never collected (skipped) or discarded after context inference",
			"\"released same?\" verifies consumers see identical raw samples with and without rule-aware collection",
		},
	}

	run := func(ruleJSON string, ruleAware bool) (rep *phone.Report, releasedSamples int, err error) {
		net := core.NewNetwork()
		defer net.Close()
		if _, err = net.AddStore("s", ""); err != nil {
			return
		}
		alice, err2 := net.NewContributor("s", "alice")
		if err2 != nil {
			err = err2
			return
		}
		if err = alice.DefinePlace("home", geo.Region{Rect: homeRect}); err != nil {
			return
		}
		if err = alice.SetRules(ruleJSON); err != nil {
			return
		}
		rep, err = alice.RecordDay(day, ruleAware)
		if err != nil {
			return
		}
		bob, err2 := net.NewConsumer("bob")
		if err2 != nil {
			err = err2
			return
		}
		rels, err2 := bob.Query("alice", &query.Query{})
		if err2 != nil {
			err = err2
			return
		}
		for _, rel := range rels {
			if rel.Segment != nil {
				releasedSamples += rel.Segment.NumSamples()
			}
		}
		return rep, releasedSamples, nil
	}

	model := phone.DefaultEnergyModel()
	for _, p := range e6Policies {
		naive, naiveReleased, err := run(p.rules, false)
		if err != nil {
			return nil, err
		}
		aware, awareReleased, err := run(p.rules, true)
		if err != nil {
			return nil, err
		}
		saved := "0%"
		if naive.BytesUploaded > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(aware.BytesUploaded)/float64(naive.BytesUploaded)))
		}
		energySaved := "0%"
		if en := model.Estimate(naive).TotalMJ; en > 0 {
			energySaved = fmt.Sprintf("%.0f%%", 100*(1-model.Estimate(aware).TotalMJ/en))
		}
		same := "YES"
		if naiveReleased != awareReleased {
			same = fmt.Sprintf("NO (%d vs %d)", naiveReleased, awareReleased)
		}
		t.AddRow(p.name,
			fmt.Sprintf("%d/%d", aware.PacketsUploaded, naive.PacketsUploaded),
			fmt.Sprintf("%d", aware.PacketsSkipped),
			fmt.Sprintf("%d", aware.PacketsDiscarded),
			saved, energySaved, same)
	}
	return t, nil
}
