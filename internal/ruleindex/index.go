// Package ruleindex compiles a contributor's privacy-rule set into an
// indexed, immutable evaluation plan so rule decisions stay near-constant
// as rule sets grow: hash partitions over the fold-canonicalized consumer,
// group, and context conditions; an interval tree over absolute TimeRanges
// plus an hour-of-week wheel for RepeatTimes; and a geo-grid over rule
// regions and gazetteer labels resolved at compile time. A decision
// intersects one bitset per dimension and feeds the surviving rules — in
// rule-set order — through rules.Combine, the same combiner the linear
// engine uses, so indexed decisions are byte-identical by construction.
//
// On top sits a bounded, sharded memoized decision cache keyed by the
// request's canonical signature (consumer, sorted groups, sorted contexts,
// time buckets, location signature); equal signatures provably produce
// equal match sets, so a hit returns a clone of the memoized decision.
// Indexes are immutable: every rule or place mutation compiles a fresh
// index (stamped with the new rule version) and swaps it in, which is what
// makes cache invalidation immediate.
package ruleindex

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
)

// Cache sizing defaults: 8 shards × 512 entries ≈ one contributor's worth
// of hot enforcement spans without unbounded growth.
const (
	DefaultCacheEntries = 4096
	DefaultCacheShards  = 8
)

// Options configures index compilation.
type Options struct {
	// Version stamps the index with the contributor's rule-set version;
	// surfaced in stats and traces so a decision is attributable to the
	// exact rule set that produced it.
	Version uint64
	// CacheEntries bounds the decision cache (DefaultCacheEntries when 0;
	// negative disables memoization entirely).
	CacheEntries int
	// CacheShards splits the cache to keep lock contention off the
	// delivery paths (DefaultCacheShards when 0).
	CacheShards int
}

// Index is one contributor's compiled evaluation plan. It is immutable
// and safe for concurrent use; it implements rules.Decider.
type Index struct {
	eng     *rules.Engine
	rs      []*rules.Rule // the engine's compiled rules, rule-set order
	version uint64
	compile time.Duration

	anyConsumer bitset            // rules with no consumer/group condition
	consumers   map[string]bitset // folded consumer → rules naming them
	groups      map[string]bitset // folded group → rules naming them
	anyContext  bitset            // rules with no context condition
	contexts    map[string]bitset // folded context label → rules naming it

	timeIdx *timeIndex
	geoIdx  *geoIndex
	cache   *decisionCache
}

// New validates and compiles a rule set. gaz may be nil when no rule uses
// location labels; labels are resolved against it at compile time, so
// callers must recompile whenever rules or places change (the datastore
// and broker already do — every mutation bumps the rule version).
func New(rs []*rules.Rule, gaz *geo.Gazetteer, opts Options) (*Index, error) {
	eng, err := rules.NewEngine(rs, gaz)
	if err != nil {
		return nil, fmt.Errorf("ruleindex: %w", err)
	}
	return FromEngine(eng, opts), nil
}

// FromEngine compiles an index over an already-built engine, sharing its
// compiled rules so both evaluate the exact same rule objects.
func FromEngine(eng *rules.Engine, opts Options) *Index {
	start := time.Now()
	crs := eng.CompiledRules()
	n := len(crs)
	ix := &Index{
		eng:         eng,
		rs:          crs,
		version:     opts.Version,
		anyConsumer: newBitset(n),
		consumers:   make(map[string]bitset),
		groups:      make(map[string]bitset),
		anyContext:  newBitset(n),
		contexts:    make(map[string]bitset),
	}
	post := func(m map[string]bitset, key string, id int32) {
		b, ok := m[key]
		if !ok {
			b = newBitset(n)
			m[key] = b
		}
		b.set(id)
	}
	for i, r := range crs {
		id := int32(i)
		if len(r.Consumers) == 0 && len(r.Groups) == 0 {
			ix.anyConsumer.set(id)
		}
		for _, c := range r.Consumers {
			post(ix.consumers, rules.Fold(c), id)
		}
		for _, g := range r.Groups {
			post(ix.groups, rules.Fold(g), id)
		}
		if len(r.Contexts) == 0 {
			ix.anyContext.set(id)
		}
		for _, c := range r.Contexts {
			post(ix.contexts, rules.Fold(c), id)
		}
	}
	ix.timeIdx = newTimeIndex(crs)
	ix.geoIdx = newGeoIndex(crs, eng.Gazetteer())

	entries, shards := opts.CacheEntries, opts.CacheShards
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	if shards == 0 {
		shards = DefaultCacheShards
	}
	ix.cache = newDecisionCache(entries, shards)

	ix.compile = time.Since(start)
	metricCompile.Observe(ix.compile.Seconds())
	return ix
}

// Engine returns the linear engine the index was compiled from (also the
// BoundariesWithin implementation).
func (ix *Index) Engine() *rules.Engine { return ix.eng }

// Version returns the rule-set version the index was compiled at.
func (ix *Index) Version() uint64 { return ix.version }

// Decide evaluates the rule set for one request through the index,
// consulting the memoized decision cache first. It implements
// rules.Decider and returns decisions byte-identical to the linear
// engine's (cache hits are clones, flagged Cached).
func (ix *Index) Decide(req *rules.Request) *rules.Decision {
	n := len(ix.rs)
	consumer := rules.Fold(req.Consumer)
	groups := foldSortedUnique(req.ConsumerGroups)
	contexts := foldSortedUnique(req.ActiveContexts)
	absIdx, weekIdx := ix.timeIdx.buckets(req.At)

	// The location signature doubles as the location match bitset input,
	// so the precise geo work is done once whether or not the cache hits.
	locBits := newBitset(n)
	sig := ix.geoIdx.query(req.Location, locBits, nil)

	var key string
	if ix.cache != nil {
		key = cacheKey(consumer, groups, contexts, absIdx, weekIdx, sig)
		if d, ok := ix.cache.get(key); ok {
			metricCache.With("hit").Inc()
			metricDecisions.With("index").Inc()
			return d
		}
		metricCache.With("miss").Inc()
	}

	bits := newBitset(n)
	bits.copyFrom(ix.anyConsumer)
	if b, ok := ix.consumers[consumer]; ok {
		bits.or(b)
	}
	for _, g := range groups {
		if b, ok := ix.groups[g]; ok {
			bits.or(b)
		}
	}
	tmp := newBitset(n)
	tmp.copyFrom(ix.anyContext)
	for _, c := range contexts {
		if b, ok := ix.contexts[c]; ok {
			tmp.or(b)
		}
	}
	bits.and(tmp)
	ix.timeIdx.bits(req.At, tmp)
	bits.and(tmp)
	bits.and(locBits)

	var matched []*rules.Rule
	bits.forEach(func(i int32) { matched = append(matched, ix.rs[i]) })
	d := rules.Combine(matched)

	if ix.cache != nil {
		if ix.cache.put(key, d.Clone()) {
			metricCache.With("evict").Inc()
		}
	}
	metricDecisions.With("index").Inc()
	return d
}

// BoundariesWithin implements rules.Decider by delegating to the linear
// engine (boundary extraction is an enforcement-setup cost, not a
// per-span one).
func (ix *Index) BoundariesWithin(from, to time.Time) []time.Time {
	return ix.eng.BoundariesWithin(from, to)
}

// foldSortedUnique canonicalizes a request's string list: folded, sorted,
// deduplicated. Matching is order- and duplicate-insensitive, so this is
// the canonical cache-key form.
func foldSortedUnique(vals []string) []string {
	if len(vals) == 0 {
		return nil
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = rules.Fold(v)
	}
	sort.Strings(out)
	uniq := out[:1]
	for _, v := range out[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// cacheKey encodes the request's canonical signature. Every component is
// length-prefixed or numeric, so distinct signatures cannot collide.
func cacheKey(consumer string, groups, contexts []string, absIdx, weekIdx int, sig []int32) string {
	buf := make([]byte, 0, 96)
	app := func(s string) {
		buf = strconv.AppendInt(buf, int64(len(s)), 10)
		buf = append(buf, ':')
		buf = append(buf, s...)
	}
	app(consumer)
	for _, g := range groups {
		app(g)
	}
	buf = append(buf, '|')
	for _, c := range contexts {
		app(c)
	}
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(absIdx), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(weekIdx), 10)
	buf = append(buf, '|')
	for _, ri := range sig {
		buf = strconv.AppendInt(buf, int64(ri), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// Fallback wraps a linear engine as a rules.Decider whose decisions are
// counted under the "fallback" path — release paths use it when an index
// is unavailable, keeping index coverage observable.
func Fallback(eng *rules.Engine) rules.Decider { return fallback{eng} }

type fallback struct{ eng *rules.Engine }

func (f fallback) Decide(req *rules.Request) *rules.Decision {
	metricDecisions.With("fallback").Inc()
	return f.eng.Decide(req)
}

func (f fallback) BoundariesWithin(from, to time.Time) []time.Time {
	return f.eng.BoundariesWithin(from, to)
}
