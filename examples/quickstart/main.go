// Quickstart: the smallest end-to-end SensorSafe flow, fully in-process.
//
// Alice uploads one minute of chest-band data to her remote data store,
// installs the paper's Fig. 4 privacy rules, and Bob queries — once during
// business-hour conversation (stress withheld, ECG/respiration blocked by
// the sensor/context dependency closure) and once outside it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

func main() {
	// One broker, one remote data store, wired in-process.
	net := core.NewNetwork()
	defer net.Close()
	if _, err := net.AddStore("alice-store", ""); err != nil {
		log.Fatal(err)
	}

	alice, err := net.NewContributor("alice-store", "alice")
	if err != nil {
		log.Fatal(err)
	}

	// Alice defines the "UCLA" label the rules below reference.
	campus, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := alice.DefinePlace("UCLA", geo.Region{Rect: campus}); err != nil {
		log.Fatal(err)
	}

	// The paper's Fig. 4 rule set, verbatim semantics: share everything
	// collected at UCLA with Bob, but not stress while in conversation on
	// weekdays 9am-6pm.
	err = alice.SetRules(`[
	  { "Consumer": ["Bob"],
	    "LocationLabel": ["UCLA"],
	    "Action": "Allow" },
	  { "Consumer": ["Bob"],
	    "LocationLabel": ["UCLA"],
	    "RepeatTime": { "Day": ["Mon","Tue","Wed","Thu","Fri"],
	                    "HourMin": ["9:00am","6:00pm"] },
	    "Context": ["Conversation"],
	    "Action": { "Abstraction": { "Stress": "NotShared" } } }
	]`)
	if err != nil {
		log.Fatal(err)
	}

	// One minute of 10 Hz chest-band + microphone data at UCLA on a
	// Wednesday morning, with a conversation in the middle.
	start := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	seg := &wavesegment.Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    geo.Point{Lat: 34.0689, Lon: -118.4452},
		Channels: []string{
			wavesegment.ChannelECG, wavesegment.ChannelRespiration,
			wavesegment.ChannelMicrophone,
		},
	}
	for i := 0; i < 600; i++ {
		seg.Values = append(seg.Values, []float64{float64(i), float64(i) / 2, 0.02})
	}
	_ = seg.Annotate(rules.CtxConversation, start.Add(20*time.Second), start.Add(40*time.Second))
	_ = seg.Annotate(rules.CtxStressed, start.Add(10*time.Second), start.Add(50*time.Second))

	if _, err := alice.Store.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice uploaded %d samples; store holds %d wave segment(s) after optimization\n",
		seg.NumSamples(), alice.Store.SegmentCount())

	// Bob discovers Alice through the broker and queries her store.
	bob, err := net.NewConsumer("Bob")
	if err != nil {
		log.Fatal(err)
	}
	rels, err := bob.Query("alice", &query.Query{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nBob receives %d release span(s):\n", len(rels))
	for _, rel := range rels {
		var ctxs []string
		for _, c := range rel.Contexts {
			ctxs = append(ctxs, c.Context)
		}
		fmt.Printf("  %s..%s channels=%v contexts=%v\n",
			rel.Start.Format("15:04:05"), rel.End.Format("15:04:05"),
			rel.Segment.Channels, ctxs)
	}
	fmt.Println("\nDuring the conversation span, stress labels and the ECG/respiration")
	fmt.Println("channels they could be re-inferred from are withheld; before and after,")
	fmt.Println("Bob sees everything — exactly the paper's Fig. 4 behaviour.")

	// Eve gets nothing.
	eve, err := net.NewConsumer("Eve")
	if err != nil {
		log.Fatal(err)
	}
	eveRels, err := eve.Query("alice", &query.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEve (no rule mentions her) receives %d releases.\n", len(eveRels))
}
