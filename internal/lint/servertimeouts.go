package lint

import (
	"go/ast"
	"go/types"
)

// ServerTimeouts flags http.Server composite literals that do not set
// ReadHeaderTimeout, and bare http.ListenAndServe / http.ListenAndServeTLS
// calls (which construct an unconfigurable Server internally). A server
// without ReadHeaderTimeout holds a connection open for as long as a
// client cares to dribble header bytes — the classic slowloris resource
// exhaustion — so every SensorSafe listener must bound it. WriteTimeout is
// deliberately NOT required: a global write deadline would cap SSE stream
// lifetimes; the overload middleware sets per-request write deadlines
// instead.
var ServerTimeouts = &Analyzer{
	Name: "servertimeouts",
	Doc:  "http.Server literals must set ReadHeaderTimeout (slowloris hardening); bare http.ListenAndServe cannot",
	Run:  runServerTimeouts,
}

func runServerTimeouts(pass *Pass) {
	inspectFuncs(pass.Pkg, func(n ast.Node, enclosing *ast.FuncDecl) {
		switch node := n.(type) {
		case *ast.CompositeLit:
			checkServerLit(pass, node)
		case *ast.CallExpr:
			checkBareListen(pass, node)
		}
	})
}

// checkServerLit flags net/http.Server composite literals missing the
// ReadHeaderTimeout key.
func checkServerLit(pass *Pass, cl *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[ast.Expr(cl)]
	if !ok || !isNetHTTPServer(tv.Type) {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional Server literals don't occur in practice; a keyless
			// literal that somehow sets every field is out of scope.
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "ReadHeaderTimeout" {
			return
		}
	}
	pass.Reportf(cl.Pos(),
		"http.Server literal without ReadHeaderTimeout is open to slowloris header dribble; set ReadHeaderTimeout (and ReadTimeout/IdleTimeout)")
}

// checkBareListen flags package-level http.ListenAndServe(TLS) calls: they
// build an http.Server with no timeouts at all and offer no way to add
// them.
func checkBareListen(pass *Pass, call *ast.CallExpr) {
	fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return
	}
	if fn.Name() != "ListenAndServe" && fn.Name() != "ListenAndServeTLS" {
		return
	}
	// Method forms (srv.ListenAndServe) carry the Server's own timeouts and
	// are fine; only the package-level helpers are condemned.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	pass.Reportf(call.Pos(),
		"http.%s builds a Server with no timeouts; construct an http.Server with ReadHeaderTimeout and call its ListenAndServe", fn.Name())
}

// isNetHTTPServer reports whether t is net/http.Server (possibly through
// a pointer).
func isNetHTTPServer(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "net/http" && obj.Name() == "Server"
}
