// Package clean shows the sanctioned persistence shapes the atomicwrite
// analyzer must accept.
package clean

import (
	"os"

	"sensorsafe/internal/resilience"
)

func saveState(path string, data []byte) error {
	return resilience.WriteFileAtomic(path, data, 0o600)
}

// WriteFileAtomic is the one function name allowed to touch the raw API:
// an atomic-write helper is by definition implemented in terms of it.
func WriteFileAtomic(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

// appendLog opens for append; only WriteFile and Create are audited.
func appendLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o600)
}
