// Package audit implements the access-trace audit a remote data store
// keeps for its contributors. The paper's §2 positions SensorSafe as an
// extension of the Personal Data Vault (Mun et al., 2010), whose trace
// audit lets a data owner see exactly who accessed what; this package
// supplies that capability: every consumer query is recorded with the
// consumer identity, query, matched spans, and the decision outcome per
// span (released in full, abstracted, or withheld), and contributors can
// review and aggregate their trail.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome classifies what one enforcement span released.
type Outcome int

// Outcomes, from most to least revealing.
const (
	// OutcomeRaw: raw channels released at full precision.
	OutcomeRaw Outcome = iota
	// OutcomeAbstracted: something released below full precision (channel
	// projection, coarsened location/time, abstracted context labels).
	OutcomeAbstracted
	// OutcomeWithheld: nothing released for the span.
	OutcomeWithheld
)

func (o Outcome) String() string {
	switch o {
	case OutcomeRaw:
		return "raw"
	case OutcomeAbstracted:
		return "abstracted"
	case OutcomeWithheld:
		return "withheld"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Event is one audited access.
type Event struct {
	// At is when the access happened.
	At time.Time `json:"at"`
	// Contributor whose data was requested.
	Contributor string `json:"contributor"`
	// Consumer who asked.
	Consumer string `json:"consumer"`
	// Query is the textual form of the consumer's query.
	Query string `json:"query,omitempty"`
	// SpanStart/SpanEnd delimit the data span the event covers.
	SpanStart time.Time `json:"spanStart,omitempty"`
	SpanEnd   time.Time `json:"spanEnd,omitempty"`
	// Outcome classifies the release.
	Outcome Outcome `json:"outcome"`
	// Channels released raw (empty when none).
	Channels []string `json:"channels,omitempty"`
	// Contexts released (possibly abstracted labels).
	Contexts []string `json:"contexts,omitempty"`
	// TraceID cross-references the distributed trace of the query that
	// caused this access (32 hex chars, empty when the query carried no
	// trace): the trail answers *what* was released, /debug/traces?id=
	// answers *why* — which rules matched and at what granularity.
	TraceID string `json:"traceId,omitempty"`
}

// Trail is an append-only, bounded audit log. Safe for concurrent use.
type Trail struct {
	mu     sync.RWMutex
	events []Event
	limit  int
	now    func() time.Time
}

// DefaultLimit bounds the in-memory trail.
const DefaultLimit = 100000

// NewTrail creates an empty trail keeping at most limit events
// (DefaultLimit when <= 0); the oldest events are evicted first.
func NewTrail(limit int) *Trail {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Trail{limit: limit, now: time.Now}
}

// Record appends one event, stamping At if zero.
func (t *Trail) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e.At.IsZero() {
		e.At = t.now()
	}
	t.events = append(t.events, e)
	if over := len(t.events) - t.limit; over > 0 {
		t.events = append(t.events[:0:0], t.events[over:]...)
	}
}

// Len returns the number of retained events.
func (t *Trail) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.events)
}

// Filter selects audit events.
type Filter struct {
	// Contributor restricts to one data owner ("" = all).
	Contributor string
	// Consumer restricts to one accessor ("" = all).
	Consumer string
	// Since drops events before this instant.
	Since time.Time
	// Outcome restricts to one outcome (nil = all).
	Outcome *Outcome
	// Limit caps returned events (0 = all), newest first.
	Limit int
}

func (f *Filter) matches(e *Event) bool {
	if f.Contributor != "" && !strings.EqualFold(f.Contributor, e.Contributor) {
		return false
	}
	if f.Consumer != "" && !strings.EqualFold(f.Consumer, e.Consumer) {
		return false
	}
	if !f.Since.IsZero() && e.At.Before(f.Since) {
		return false
	}
	if f.Outcome != nil && e.Outcome != *f.Outcome {
		return false
	}
	return true
}

// Events returns matching events, newest first.
func (t *Trail) Events(f Filter) []Event {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Event
	for i := len(t.events) - 1; i >= 0; i-- {
		if !f.matches(&t.events[i]) {
			continue
		}
		out = append(out, t.events[i])
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// ConsumerSummary aggregates one consumer's accesses to one contributor.
type ConsumerSummary struct {
	Consumer   string        `json:"consumer"`
	Accesses   int           `json:"accesses"`
	Raw        int           `json:"raw"`
	Abstracted int           `json:"abstracted"`
	Withheld   int           `json:"withheld"`
	First      time.Time     `json:"first"`
	Last       time.Time     `json:"last"`
	DataSpan   time.Duration `json:"dataSpan"` // total span duration released (raw+abstracted)
}

// Summarize aggregates a contributor's trail per consumer, sorted by
// consumer name — the view a data owner reviews ("who has been reading my
// data, and how much did they actually see?").
func (t *Trail) Summarize(contributor string) []ConsumerSummary {
	t.mu.RLock()
	defer t.mu.RUnlock()
	byConsumer := make(map[string]*ConsumerSummary)
	for i := range t.events {
		e := &t.events[i]
		if !strings.EqualFold(e.Contributor, contributor) {
			continue
		}
		key := strings.ToLower(e.Consumer)
		s, ok := byConsumer[key]
		if !ok {
			s = &ConsumerSummary{Consumer: e.Consumer, First: e.At}
			byConsumer[key] = s
		}
		s.Accesses++
		switch e.Outcome {
		case OutcomeRaw:
			s.Raw++
		case OutcomeAbstracted:
			s.Abstracted++
		case OutcomeWithheld:
			s.Withheld++
		}
		if e.At.Before(s.First) {
			s.First = e.At
		}
		if e.At.After(s.Last) {
			s.Last = e.At
		}
		if e.Outcome != OutcomeWithheld && !e.SpanStart.IsZero() && e.SpanEnd.After(e.SpanStart) {
			s.DataSpan += e.SpanEnd.Sub(e.SpanStart)
		}
	}
	out := make([]ConsumerSummary, 0, len(byConsumer))
	for _, s := range byConsumer {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Consumer < out[j].Consumer })
	return out
}
