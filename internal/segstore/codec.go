package segstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Low-level byte codec shared by the WAL, segment-file blocks, and the
// file footer: little-endian fixed ints, uvarint/zigzag varint framing,
// and a cursor reader that latches the first error so decode paths stay
// straight-line.

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putUint32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

func putUint64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

func putFloat64(dst []byte, v float64) []byte {
	return putUint64(dst, math.Float64bits(v))
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// byteReader is a cursor over encoded bytes; the first failure latches
// and every later read returns zero values, so callers check err once.
type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("segstore: %s at offset %d", msg, r.off)
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail("short uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("short uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) float64() float64 {
	return math.Float64frombits(r.uint64())
}

func (r *byteReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("short string")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
