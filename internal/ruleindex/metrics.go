package ruleindex

import "sensorsafe/internal/obs"

// Index observability: cache effectiveness, compile cost, and how many
// decisions ran through the index vs the linear-engine fallback.
var (
	metricCache = obs.NewCounterVec("sensorsafe_ruleindex_cache_total",
		"Decision-cache activity on the compiled rule index, by result (hit/miss/evict).",
		"result")
	metricDecisions = obs.NewCounterVec("sensorsafe_ruleindex_decisions_total",
		"Rule decisions evaluated on release paths, by evaluation path (index/fallback).",
		"path")
	metricCompile = obs.NewHistogram("sensorsafe_ruleindex_compile_seconds",
		"Time to compile one contributor's rule set into the indexed evaluation plan.",
		nil)
)
