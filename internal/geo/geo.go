// Package geo provides the geographic primitives SensorSafe privacy rules
// depend on: points, rectangular and polygonal regions, labeled places, a
// deterministic synthetic reverse-geocoder standing in for the paper's use
// of Google Maps, and the Table 1(b) location-abstraction ladder
// (coordinates → street address → zipcode → city → state → country →
// not shared).
package geo

import (
	"fmt"
	"math"
	"strings"
)

// Point is a WGS84 coordinate pair in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the point is on the globe.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon) }

// EarthRadiusMeters is the mean earth radius used by Distance.
const EarthRadiusMeters = 6371000.0

// Distance returns the haversine great-circle distance in meters.
func Distance(a, b Point) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(b.Lat - a.Lat)
	dLon := toRad(b.Lon - a.Lon)
	la1, la2 := toRad(a.Lat), toRad(b.Lat)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Rect is an axis-aligned bounding box. Min/Max are inclusive.
type Rect struct {
	MinLat float64 `json:"minLat"`
	MinLon float64 `json:"minLon"`
	MaxLat float64 `json:"maxLat"`
	MaxLon float64 `json:"maxLon"`
}

// NewRect normalizes corner ordering and validates bounds.
func NewRect(a, b Point) (Rect, error) {
	if !a.Valid() || !b.Valid() {
		return Rect{}, fmt.Errorf("geo: invalid corner %v or %v", a, b)
	}
	r := Rect{
		MinLat: math.Min(a.Lat, b.Lat), MaxLat: math.Max(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon), MaxLon: math.Max(a.Lon, b.Lon),
	}
	return r, nil
}

// Valid reports whether the rect is ordered and on the globe.
func (r Rect) Valid() bool {
	return r.MinLat <= r.MaxLat && r.MinLon <= r.MaxLon &&
		Point{Lat: r.MinLat, Lon: r.MinLon}.Valid() && Point{Lat: r.MaxLat, Lon: r.MaxLon}.Valid()
}

// IsZero reports whether the rect is the zero value.
func (r Rect) IsZero() bool { return r == Rect{} }

// Contains reports whether p lies inside the rect (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat && p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Intersects reports whether the two rects share any area or edge.
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat &&
		r.MinLon <= o.MaxLon && o.MinLon <= r.MaxLon
}

// Center returns the rect's midpoint.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Expand grows the rect by deg degrees on all sides, clamped to the globe.
func (r Rect) Expand(deg float64) Rect {
	return Rect{
		MinLat: math.Max(-90, r.MinLat-deg), MaxLat: math.Min(90, r.MaxLat+deg),
		MinLon: math.Max(-180, r.MinLon-deg), MaxLon: math.Min(180, r.MaxLon+deg),
	}
}

// Polygon is a simple (non-self-intersecting) polygon; the ring is implicitly
// closed. Rules drawn on the paper's map UI arrive as polygons or rects.
type Polygon []Point

// Valid reports whether the polygon has at least three valid vertices.
func (pg Polygon) Valid() bool {
	if len(pg) < 3 {
		return false
	}
	for _, p := range pg {
		if !p.Valid() {
			return false
		}
	}
	return true
}

// Contains runs the even-odd ray-casting test. Points exactly on an edge may
// report either side; privacy rules should not rely on edge instants.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	inside := false
	j := len(pg) - 1
	for i := 0; i < len(pg); i++ {
		pi, pj := pg[i], pg[j]
		intersects := (pi.Lat > p.Lat) != (pj.Lat > p.Lat) &&
			p.Lon < (pj.Lon-pi.Lon)*(p.Lat-pi.Lat)/(pj.Lat-pi.Lat)+pi.Lon
		if intersects {
			inside = !inside
		}
		j = i
	}
	return inside
}

// Bounds returns the polygon's bounding box.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{MinLat: pg[0].Lat, MaxLat: pg[0].Lat, MinLon: pg[0].Lon, MaxLon: pg[0].Lon}
	for _, p := range pg[1:] {
		r.MinLat = math.Min(r.MinLat, p.Lat)
		r.MaxLat = math.Max(r.MaxLat, p.Lat)
		r.MinLon = math.Min(r.MinLon, p.Lon)
		r.MaxLon = math.Max(r.MaxLon, p.Lon)
	}
	return r
}

// Region is a named area a rule can reference, either by a pre-defined label
// ("home", "UCLA", "work") or by raw coordinates drawn on a map. Exactly one
// of Rect or Polygon should be set; Rect wins if both are.
type Region struct {
	Label   string  `json:"label,omitempty"`
	Rect    Rect    `json:"rect,omitempty"`
	Polygon Polygon `json:"polygon,omitempty"`
}

// Contains reports whether p lies inside the region's geometry. A region
// with no geometry contains nothing.
func (rg Region) Contains(p Point) bool {
	if !rg.Rect.IsZero() {
		return rg.Rect.Contains(p)
	}
	if len(rg.Polygon) >= 3 {
		return rg.Polygon.Contains(p)
	}
	return false
}

// HasGeometry reports whether the region carries usable geometry.
func (rg Region) HasGeometry() bool {
	return (!rg.Rect.IsZero() && rg.Rect.Valid()) || rg.Polygon.Valid()
}

// Bounds returns the region's bounding box.
func (rg Region) Bounds() Rect {
	if !rg.Rect.IsZero() {
		return rg.Rect
	}
	return rg.Polygon.Bounds()
}

// Gazetteer is a contributor's dictionary of labeled places, letting rules
// say "at home" or "at UCLA" instead of drawing coordinates each time.
type Gazetteer struct {
	regions map[string]Region
}

// NewGazetteer returns an empty place dictionary.
func NewGazetteer() *Gazetteer { return &Gazetteer{regions: make(map[string]Region)} }

// Define registers (or replaces) a labeled region. Labels are
// case-insensitive, matching the paper's informal use ("UCLA", "work").
func (g *Gazetteer) Define(label string, region Region) error {
	key := normalizeLabel(label)
	if key == "" {
		return fmt.Errorf("geo: empty region label")
	}
	if !region.HasGeometry() {
		return fmt.Errorf("geo: region %q has no geometry", label)
	}
	region.Label = label
	g.regions[key] = region
	return nil
}

// Lookup returns the region for a label.
func (g *Gazetteer) Lookup(label string) (Region, bool) {
	r, ok := g.regions[normalizeLabel(label)]
	return r, ok
}

// Remove deletes a labeled region; it reports whether the label existed.
func (g *Gazetteer) Remove(label string) bool {
	key := normalizeLabel(label)
	_, ok := g.regions[key]
	delete(g.regions, key)
	return ok
}

// LabelsAt returns every defined label whose region contains p.
func (g *Gazetteer) LabelsAt(p Point) []string {
	var out []string
	for _, rg := range g.regions {
		if rg.Contains(p) {
			out = append(out, rg.Label)
		}
	}
	return out
}

// Labels returns all defined labels (order unspecified).
func (g *Gazetteer) Labels() []string {
	out := make([]string, 0, len(g.regions))
	for _, rg := range g.regions {
		out = append(out, rg.Label)
	}
	return out
}

// Len returns the number of defined regions.
func (g *Gazetteer) Len() int { return len(g.regions) }

func normalizeLabel(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
