// Package stream is SensorSafe's live-sharing subsystem: consumers
// subscribe to a contributor's channels and every newly-ingested
// (post-merge) wave segment is pushed through the full privacy-rule
// pipeline — rule match, dependency-closure check, abstraction — before
// delivery. The paper serves continuous sensory data (ECG, respiration,
// GPS) yet its API is pull-only; this package adds the push half: a
// subscription registry keyed by (consumer, contributor, channels),
// durable per-subscriber cursors so a reconnecting consumer resumes
// without loss or duplication, and bounded per-subscriber buffers whose
// overflow policy never blocks ingest (the subscriber is marked lagging,
// the oldest segments are dropped, and a gap marker is surfaced in-band).
//
// Enforcement runs at delivery time, not enqueue time: a rule edit or
// revocation therefore takes effect on the next delivered segment, and
// segments still buffered when the rules change are re-filtered under the
// new rules. Every data event is stamped with the rule version that
// filtered it.
package stream

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Live-sharing pipeline metrics.
var (
	metricSubscribers = obs.NewGauge("sensorsafe_stream_subscribers",
		"Active live-sharing subscriptions.")
	metricLagging = obs.NewGauge("sensorsafe_stream_lagging_subscribers",
		"Subscriptions that overflowed their buffer and have an undelivered gap.")
	metricSegments = obs.NewCounterVec("sensorsafe_stream_segments_total",
		"Per-subscriber segment outcomes in the live-sharing pipeline.",
		"outcome") // delivered | abstracted | suppressed | dropped
	metricDelivery = obs.NewHistogram("sensorsafe_stream_delivery_seconds",
		"Latency from segment ingest (publish) to consumer delivery.", nil)
)

// Errors returned by the hub.
var (
	ErrUnknownSubscription = errors.New("stream: unknown subscription")
	ErrNotOwner            = errors.New("stream: subscription belongs to another consumer")
	ErrBadCursor           = errors.New("stream: malformed cursor")
)

// Event kinds.
const (
	// KindData carries the rule-filtered releases of one wave segment.
	KindData = "data"
	// KindGap marks segments dropped while the subscriber lagged; Dropped
	// counts them. Acknowledging the gap's cursor resumes past it.
	KindGap = "gap"
	// KindBye is the terminal event: the hub is shutting down or the
	// subscription was revoked. No further events will follow.
	KindBye = "bye"
)

// Event is one delivery to a subscriber.
type Event struct {
	Kind string `json:"kind"`
	// Seq is the per-subscription sequence number this event settles.
	Seq uint64 `json:"seq"`
	// Cursor acknowledges everything up to and including this event when
	// passed to the next poll.
	Cursor      string `json:"cursor"`
	Contributor string `json:"contributor,omitempty"`
	// RuleVersion is the contributor's rule-set version that filtered
	// this event's payload (data events only).
	RuleVersion uint64 `json:"ruleVersion,omitempty"`
	// Releases is the post-enforcement payload of one wave segment.
	Releases []*abstraction.Release `json:"releases,omitempty"`
	// Dropped counts segments lost to buffer overflow (gap events only).
	Dropped uint64 `json:"dropped,omitempty"`
}

// Batch is one poll's worth of events. Cursor is the resume token for the
// next poll; it can run ahead of the last event when trailing segments
// were suppressed by the rules (the consumer must still ack it).
type Batch struct {
	Events []Event `json:"events"`
	Cursor string  `json:"cursor"`
}

// SubInfo describes a subscription to its consumer.
type SubInfo struct {
	ID          string   `json:"id"`
	Contributor string   `json:"contributor"`
	Channels    []string `json:"channels,omitempty"`
	// Cursor is the durable resume token: everything at or before it has
	// been acknowledged.
	Cursor string `json:"cursor"`
	// Resumed reports that Subscribe matched an existing registration for
	// the same (consumer, contributor, channels) key.
	Resumed bool `json:"resumed,omitempty"`
	// Lagging reports an undelivered buffer-overflow gap.
	Lagging bool `json:"lagging,omitempty"`
}

// RuleSource resolves the privacy-rule state used to filter deliveries;
// *datastore.Service implements it. StreamEngine may return a nil decider
// (contributor has no rules yet), which denies everything; the datastore
// returns the contributor's compiled rule index.
type RuleSource interface {
	StreamEngine(contributor string) (rules.Decider, uint64, error)
	StreamGroups(contributor, consumer string) []string
}

// DefaultBufferSegments bounds each subscription's undelivered backlog.
const DefaultBufferSegments = 256

// maxBatchEvents caps one poll's response size.
const maxBatchEvents = 64

// Options configures a Hub.
type Options struct {
	// Rules filters every delivery (required).
	Rules RuleSource
	// Geocoder used for location abstraction (GridGeocoder if nil).
	Geocoder geo.Geocoder
	// BufferSegments caps each subscription's ring buffer
	// (DefaultBufferSegments if zero).
	BufferSegments int
	// OnChange, when set, is called after every durable mutation
	// (subscribe, unsubscribe, cursor advance) with no hub locks held;
	// the datastore hooks its state persistence here.
	OnChange func()
}

// entry is one buffered, not-yet-acknowledged segment.
type entry struct {
	seq      uint64
	seg      *wavesegment.Segment
	enqueued time.Time
}

// sub is one live subscription.
type sub struct {
	id          string
	consumer    string // normalized
	contributor string // normalized
	channels    []string

	mu      sync.Mutex
	entries []entry // pending segments, ascending seq; guarded by mu
	acked   uint64  // highest acknowledged seq; guarded by mu
	next    uint64  // next seq to assign (next-1 = newest published); guarded by mu
	lagging bool    // overflow happened since the last delivered gap; guarded by mu
	closed  bool    // terminal: shutdown or revoked; guarded by mu
	notify  chan struct{}
	done    chan struct{}
}

// Hub fans newly-ingested segments out to subscriptions and serves polls.
type Hub struct {
	opts Options

	mu        sync.RWMutex
	subs      map[string]*sub   // by id; guarded by mu
	byKey     map[string]*sub   // by (consumer, contributor, channels) key; guarded by mu
	byContrib map[string][]*sub // by normalized contributor; guarded by mu
	closed    bool              // guarded by mu
}

// New builds a hub.
func New(opts Options) *Hub {
	if opts.Geocoder == nil {
		opts.Geocoder = geo.GridGeocoder{}
	}
	if opts.BufferSegments <= 0 {
		opts.BufferSegments = DefaultBufferSegments
	}
	return &Hub{
		opts:      opts,
		subs:      make(map[string]*sub),
		byKey:     make(map[string]*sub),
		byContrib: make(map[string][]*sub),
	}
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// subKey is the registry key: one subscription per (consumer, contributor,
// channel set); channel order does not matter.
func subKey(consumer, contributor string, channels []string) string {
	cs := make([]string, 0, len(channels))
	for _, c := range channels {
		cs = append(cs, norm(c))
	}
	sort.Strings(cs)
	return consumer + "\xff" + contributor + "\xff" + strings.Join(cs, "\xff")
}

func newSubID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("stream: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Subscribe registers (or resumes) a subscription. Re-subscribing with the
// same (consumer, contributor, channels) tuple returns the existing
// registration and its durable cursor, so a reconnecting consumer replays
// nothing it acknowledged and misses nothing still buffered.
func (h *Hub) Subscribe(consumer, contributor string, channels []string) (SubInfo, error) {
	key := subKey(norm(consumer), norm(contributor), channels)
	h.mu.Lock()
	if s, ok := h.byKey[key]; ok {
		h.mu.Unlock()
		s.mu.Lock()
		info := s.info(true)
		s.mu.Unlock()
		return info, nil
	}
	s := &sub{
		id:          newSubID(),
		consumer:    norm(consumer),
		contributor: norm(contributor),
		channels:    append([]string(nil), channels...),
		notify:      make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	h.subs[s.id] = s
	h.byKey[key] = s
	h.byContrib[s.contributor] = append(h.byContrib[s.contributor], s)
	closed := h.closed
	h.mu.Unlock()
	if closed {
		// Subscribing against a draining hub still registers (the cursor
		// is durable) but the first poll sees the terminal event.
		s.mu.Lock()
		s.terminateLocked()
		s.mu.Unlock()
	}
	metricSubscribers.Inc()
	h.changed()
	s.mu.Lock()
	info := s.info(false)
	s.mu.Unlock()
	return info, nil
}

// info builds a SubInfo; callers hold s.mu.
func (s *sub) info(resumed bool) SubInfo {
	return SubInfo{
		ID:          s.id,
		Contributor: s.contributor,
		Channels:    append([]string(nil), s.channels...),
		Cursor:      formatCursor(s.acked),
		Resumed:     resumed,
		Lagging:     s.lagging,
	}
}

// Unsubscribe revokes a consumer's subscription; blocked polls receive the
// terminal event.
func (h *Hub) Unsubscribe(consumer, id string) error {
	h.mu.Lock()
	s, ok := h.subs[id]
	if !ok {
		h.mu.Unlock()
		return ErrUnknownSubscription
	}
	if s.consumer != norm(consumer) {
		h.mu.Unlock()
		return ErrNotOwner
	}
	delete(h.subs, id)
	delete(h.byKey, subKey(s.consumer, s.contributor, s.channels))
	list := h.byContrib[s.contributor]
	for i, other := range list {
		if other == s {
			h.byContrib[s.contributor] = append(list[:i], list[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	s.mu.Lock()
	wasLagging := s.lagging
	s.lagging = false
	s.terminateLocked()
	s.mu.Unlock()
	if wasLagging {
		metricLagging.Dec()
	}
	metricSubscribers.Dec()
	h.changed()
	return nil
}

// terminateLocked marks the subscription closed and wakes every waiter;
// callers hold s.mu.
func (s *sub) terminateLocked() {
	if !s.closed {
		s.closed = true
		close(s.done)
	}
}

// Shutdown drains the hub for graceful server stop: every subscription is
// marked terminal (blocked polls wake with a bye event) but registrations
// and cursors are kept, so they persist across a restart.
func (h *Hub) Shutdown() {
	h.mu.Lock()
	h.closed = true
	all := make([]*sub, 0, len(h.subs))
	for _, s := range h.subs {
		all = append(all, s)
	}
	h.mu.Unlock()
	for _, s := range all {
		s.mu.Lock()
		s.terminateLocked()
		s.mu.Unlock()
	}
}

// Publish fans one newly-ingested (post-merge) wave segment out to every
// matching subscription. It never blocks on slow consumers: a full buffer
// drops its oldest segment, marks the subscriber lagging, and the loss
// surfaces as an in-band gap event. The segment is cloned once so later
// mutation by the caller (e.g. store-side coalescing) cannot leak into
// deliveries.
func (h *Hub) Publish(contributor string, seg *wavesegment.Segment) {
	h.mu.RLock()
	targets := h.byContrib[norm(contributor)]
	if len(targets) == 0 {
		h.mu.RUnlock()
		return
	}
	matched := make([]*sub, 0, len(targets))
	for _, s := range targets {
		if subWantsSegment(s.channels, seg) {
			matched = append(matched, s)
		}
	}
	h.mu.RUnlock()
	if len(matched) == 0 {
		return
	}
	c := seg.Clone()
	now := time.Now()
	for _, s := range matched {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		if len(s.entries) >= h.opts.BufferSegments {
			s.entries = s.entries[1:]
			if !s.lagging {
				s.lagging = true
				metricLagging.Inc()
			}
			metricSegments.With("dropped").Inc()
		}
		s.next++
		s.entries = append(s.entries, entry{seq: s.next, seg: c, enqueued: now})
		s.mu.Unlock()
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}

// subWantsSegment reports whether a segment carries any channel the
// subscription asked for (empty channel list = everything).
func subWantsSegment(channels []string, seg *wavesegment.Segment) bool {
	if len(channels) == 0 {
		return true
	}
	for _, c := range rules.ExpandSensorNames(channels) {
		if seg.HasChannel(c) {
			return true
		}
	}
	return false
}

func formatCursor(seq uint64) string { return strconv.FormatUint(seq, 10) }

// parseCursor resolves a client cursor; "" means "resume from the durable
// acked position".
func parseCursor(cursor string, acked uint64) (uint64, error) {
	if cursor == "" {
		return acked, nil
	}
	v, err := strconv.ParseUint(cursor, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrBadCursor, cursor)
	}
	return v, nil
}

// Ack advances the durable cursor without waiting for events (SSE
// transports and clean client shutdowns use it).
func (h *Hub) Ack(consumer, id, cursor string) error {
	s, err := h.lookup(consumer, id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	cur, err := parseCursor(cursor, s.acked)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	changed := s.advanceLocked(cur)
	s.mu.Unlock()
	if changed {
		h.changed()
	}
	return nil
}

func (h *Hub) lookup(consumer, id string) (*sub, error) {
	h.mu.RLock()
	s, ok := h.subs[id]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSubscription, id)
	}
	if s.consumer != norm(consumer) {
		return nil, ErrNotOwner
	}
	return s, nil
}

// advanceLocked moves the acked cursor forward (never past the newest
// published seq, never backward) and trims settled entries. Callers hold
// s.mu; returns whether the durable cursor moved.
func (s *sub) advanceLocked(cur uint64) bool {
	if cur > s.next {
		cur = s.next
	}
	if cur <= s.acked {
		return false
	}
	s.acked = cur
	i := 0
	for i < len(s.entries) && s.entries[i].seq <= cur {
		i++
	}
	s.entries = s.entries[i:]
	// Contiguity restored (no pending gap in front of the buffer) clears
	// the lagging mark.
	if s.lagging && (len(s.entries) == 0 || s.entries[0].seq == cur+1) {
		s.lagging = false
		metricLagging.Dec()
	}
	return true
}

// Next is the long-poll delivery path. The caller's cursor acknowledges
// every event at or before it; Next then returns the events after it —
// each published segment re-filtered through the contributor's *current*
// privacy rules — blocking up to wait when nothing is pending. The
// returned Batch.Cursor is the resume token; it advances past segments the
// rules suppressed even when Events is empty.
func (h *Hub) Next(consumer, id, cursor string, wait time.Duration) (Batch, error) {
	s, err := h.lookup(consumer, id)
	if err != nil {
		return Batch{}, err
	}
	s.mu.Lock()
	cur, err := parseCursor(cursor, s.acked)
	if err != nil {
		s.mu.Unlock()
		return Batch{}, err
	}
	if cur > s.next {
		cur = s.next // a cursor from a lost future (pre-restart) clamps
	}
	ackChanged := s.advanceLocked(cur)
	s.mu.Unlock()
	if ackChanged {
		h.changed()
	}

	deadline := time.Now().Add(wait)
	for {
		evs, newCur := h.collect(s, cur)
		cur = newCur
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed && len(evs) == 0 {
			evs = append(evs, Event{
				Kind: KindBye, Seq: cur, Cursor: formatCursor(cur),
				Contributor: s.contributor,
			})
		}
		if len(evs) > 0 {
			return Batch{Events: evs, Cursor: formatCursor(cur)}, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Batch{Cursor: formatCursor(cur)}, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-s.notify:
		case <-s.done:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// collect drains deliverable events after cur, running enforcement outside
// the subscription lock so ingest never waits on rule evaluation. Returns
// the events and the advanced local cursor (past suppressed segments).
func (h *Hub) collect(s *sub, cur uint64) ([]Event, uint64) {
	s.mu.Lock()
	newest := s.next
	var pending []entry
	for _, e := range s.entries {
		if e.seq > cur {
			pending = append(pending, e)
			if len(pending) == maxBatchEvents {
				break
			}
		}
	}
	s.mu.Unlock()

	var evs []Event
	// Segments published but no longer buffered (overflow, or a restart
	// that emptied the buffer) surface as one gap event.
	gapTo := newest
	if len(pending) > 0 {
		gapTo = pending[0].seq - 1
	}
	if gapTo > cur {
		evs = append(evs, Event{
			Kind: KindGap, Seq: gapTo, Cursor: formatCursor(gapTo),
			Contributor: s.contributor, Dropped: gapTo - cur,
		})
		cur = gapTo
	}
	if len(pending) == 0 {
		return evs, cur
	}

	engine, version, err := h.opts.Rules.StreamEngine(s.contributor)
	var groups []string
	if err == nil && engine != nil {
		groups = h.opts.Rules.StreamGroups(s.contributor, s.consumer)
	}
	for _, e := range pending {
		rels := h.enforce(engine, err, s, e.seg, groups)
		cur = e.seq
		if len(rels) == 0 {
			metricSegments.With("suppressed").Inc()
			continue
		}
		if fullFidelity(rels, e.seg) {
			metricSegments.With("delivered").Inc()
		} else {
			metricSegments.With("abstracted").Inc()
		}
		metricDelivery.Observe(time.Since(e.enqueued).Seconds())
		evs = append(evs, Event{
			Kind: KindData, Seq: e.seq, Cursor: formatCursor(e.seq),
			Contributor: s.contributor, RuleVersion: version, Releases: rels,
		})
	}
	return evs, cur
}

// enforce runs the full rule pipeline over one buffered segment for one
// subscriber and applies the subscription's channel projection. A missing
// or failing engine denies (privacy-safe default).
func (h *Hub) enforce(engine rules.Decider, engineErr error, s *sub, seg *wavesegment.Segment, groups []string) []*abstraction.Release {
	if engineErr != nil || engine == nil {
		return nil
	}
	rels, err := abstraction.Enforce(engine, s.consumer, groups, seg, h.opts.Geocoder)
	if err != nil {
		return nil // enforcement errors must fail closed, never leak raw data
	}
	if len(s.channels) == 0 {
		return rels
	}
	want := rules.ExpandSensorNames(s.channels)
	out := rels[:0]
	for _, rel := range rels {
		if rel.Segment != nil {
			rel.Segment = rel.Segment.Project(want)
		}
		if !rel.Empty() {
			out = append(out, rel)
		}
	}
	return out
}

// fullFidelity reports whether every release flowed raw: all stored
// channels, exact coordinates, exact timestamps (mirrors the audit
// trail's raw/abstracted split).
func fullFidelity(rels []*abstraction.Release, seg *wavesegment.Segment) bool {
	for _, rel := range rels {
		if rel.Segment == nil ||
			len(rel.Segment.Channels) != len(seg.Channels) ||
			rel.Location.Granularity != geo.LocCoordinates ||
			rel.TimeGranularity != timeutil.GranMillisecond {
			return false
		}
	}
	return true
}

// changed fires the persistence hook with no locks held.
func (h *Hub) changed() {
	if h.opts.OnChange != nil {
		h.opts.OnChange()
	}
}

// SubscriptionState is the durable slice of one subscription: identity and
// cursor, but not the volatile buffer (segments in flight across a restart
// surface as a gap on the next poll).
type SubscriptionState struct {
	ID          string   `json:"id"`
	Consumer    string   `json:"consumer"`
	Contributor string   `json:"contributor"`
	Channels    []string `json:"channels,omitempty"`
	Acked       uint64   `json:"acked"`
	Next        uint64   `json:"next"`
}

// Snapshot captures every subscription's durable state, sorted by ID.
func (h *Hub) Snapshot() []SubscriptionState {
	h.mu.RLock()
	all := make([]*sub, 0, len(h.subs))
	for _, s := range h.subs {
		all = append(all, s)
	}
	h.mu.RUnlock()
	out := make([]SubscriptionState, 0, len(all))
	for _, s := range all {
		s.mu.Lock()
		out = append(out, SubscriptionState{
			ID: s.id, Consumer: s.consumer, Contributor: s.contributor,
			Channels: append([]string(nil), s.channels...),
			Acked:    s.acked, Next: s.next,
		})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore re-registers persisted subscriptions at startup. Buffers start
// empty; anything published-but-unacked before the restart is reported as
// a gap on the subscriber's next poll (Next > Acked).
func (h *Hub) Restore(states []SubscriptionState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range states {
		if st.ID == "" || st.Consumer == "" || st.Contributor == "" {
			continue
		}
		if _, dup := h.subs[st.ID]; dup {
			continue
		}
		key := subKey(st.Consumer, st.Contributor, st.Channels)
		if _, dup := h.byKey[key]; dup {
			continue
		}
		next := st.Next
		if next < st.Acked {
			next = st.Acked
		}
		s := &sub{
			id:          st.ID,
			consumer:    norm(st.Consumer),
			contributor: norm(st.Contributor),
			channels:    append([]string(nil), st.Channels...),
			acked:       st.Acked,
			next:        next,
			notify:      make(chan struct{}, 1),
			done:        make(chan struct{}),
		}
		h.subs[s.id] = s
		h.byKey[key] = s
		h.byContrib[s.contributor] = append(h.byContrib[s.contributor], s)
		metricSubscribers.Inc()
	}
}

// Subscribers reports the number of active subscriptions (health surface).
func (h *Hub) Subscribers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}
