package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// ObsNames audits every metric registration against the internal/obs
// registry: the name argument must be a compile-time string constant (so
// the metric namespace is greppable and stable), must be snake_case, and
// must be unique across the whole module — two call sites registering the
// same family is either a copy-paste bug or hidden coupling, and the obs
// registry panics at runtime if their schemas ever drift.
//
// The obs package itself is exempt: its package-level constructors
// forward a name parameter to the registry by design.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "obs metric names must be literal, snake_case, and unique module-wide",
	AppliesTo: func(modulePath, pkgPath string) bool {
		return pkgPath != modulePath+"/internal/obs"
	},
	Run: runObsNames,
}

// obsRegistrars are the obs functions and Registry methods whose first
// argument is a metric family name.
var obsRegistrars = map[string]bool{
	"NewCounter": true, "NewCounterVec": true,
	"NewGauge": true, "NewGaugeVec": true,
	"NewHistogram": true, "NewHistogramVec": true,
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

var snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runObsNames(pass *Pass) {
	seen, ok := pass.State["names"].(map[string]token.Position)
	if !ok {
		seen = make(map[string]token.Position)
		pass.State["names"] = seen
	}
	obsPath := pass.Module.Path + "/internal/obs"
	inspectFuncs(pass.Pkg, func(n ast.Node, _ *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !obsRegistrars[fn.Name()] {
			return
		}
		arg := call.Args[0]
		tv := pass.Pkg.Info.Types[arg]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(),
				"metric name passed to obs.%s must be a compile-time string constant", fn.Name())
			return
		}
		name := constant.StringVal(tv.Value)
		if !snakeCaseRe.MatchString(name) {
			pass.Reportf(arg.Pos(), "metric name %q is not snake_case", name)
			return
		}
		if first, dup := seen[name]; dup {
			pass.Reportf(arg.Pos(),
				"metric name %q already registered at %s; families must have exactly one registration site",
				name, first)
			return
		}
		seen[name] = pass.Module.Fset.Position(arg.Pos())
	})
}
