// Package faultnet is a fault-injecting http.RoundTripper for chaos
// testing SensorSafe's network hops: per-route rules drop requests before
// they reach the server (partition), delay them, synthesize 5xx/429
// responses, or tear the response body mid-read after the server has
// already applied the request — the exact failure the idempotency layer
// must absorb. All randomness flows from one seed, so a chaos run is
// reproducible bit for bit.
package faultnet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sensorsafe/internal/obs"
)

var metricInjected = obs.NewCounterVec("sensorsafe_faultnet_injected_total",
	"Faults injected by the chaos transport, by kind.", "kind")

// Rule is one injection profile; the first rule whose Path prefix matches
// the request applies. Probabilities are independent and checked in order
// drop → status → torn, so their sum may exceed 1 only if you want earlier
// modes to shadow later ones.
type Rule struct {
	// Path is a URL-path prefix ("" matches everything).
	Path string
	// Drop is P(request never reaches the server): a connection error.
	Drop float64
	// Status is P(a synthesized error response without touching the
	// server).
	Status float64
	// StatusCode is the synthesized code (503 when zero).
	StatusCode int
	// RetryAfter, when set, is attached to synthesized responses as a
	// Retry-After header.
	RetryAfter time.Duration
	// Torn is P(the request reaches the server but the response body is
	// severed halfway): the server applied the mutation, the client cannot
	// know.
	Torn float64
	// Delay is added latency before the request proceeds (applied to every
	// matching request that is not dropped).
	Delay time.Duration
}

// DroppedError is the connection failure surfaced for dropped requests.
// http.Client wraps it in *url.Error, which the resilience classifier
// treats as retryable.
type DroppedError struct{ Path string }

func (e *DroppedError) Error() string { return "faultnet: connection dropped on " + e.Path }

// Timeout/Temporary make DroppedError satisfy net.Error so callers that
// sniff interfaces classify it like a real network failure.
func (e *DroppedError) Timeout() bool   { return false }
func (e *DroppedError) Temporary() bool { return true }

// Transport injects faults in front of an inner RoundTripper.
type Transport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	counts map[string]uint64
}

// New builds a Transport with deterministic randomness from seed. inner
// nil uses http.DefaultTransport.
func New(seed int64, inner http.RoundTripper, rules ...Rule) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		rules:  rules,
		counts: make(map[string]uint64),
	}
}

// Configure atomically replaces the rule set — tests use this to start a
// partition (Drop: 1) and later heal it (no rules).
func (t *Transport) Configure(rules ...Rule) {
	t.mu.Lock()
	t.rules = rules
	t.mu.Unlock()
}

// Injected reports how many faults of one kind ("drop", "status", "torn",
// "delay") were injected.
func (t *Transport) Injected(kind string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// TotalInjected sums all injected faults.
func (t *Transport) TotalInjected() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, c := range t.counts {
		n += c
	}
	return n
}

func (t *Transport) record(kind string) {
	t.counts[kind]++ // caller holds t.mu
	metricInjected.With(kind).Inc()
}

// decide rolls the dice for one request under the lock and returns the
// chosen fault kind plus the matched rule.
func (t *Transport) decide(path string) (string, Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if r.Path != "" && !strings.HasPrefix(path, r.Path) {
			continue
		}
		switch {
		case r.Drop > 0 && t.rng.Float64() < r.Drop:
			t.record("drop")
			return "drop", r
		case r.Status > 0 && t.rng.Float64() < r.Status:
			t.record("status")
			return "status", r
		case r.Torn > 0 && t.rng.Float64() < r.Torn:
			t.record("torn")
			return "torn", r
		}
		if r.Delay > 0 {
			t.record("delay")
			return "delay", r
		}
		return "", r
	}
	return "", Rule{}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, rule := t.decide(req.URL.Path)
	if rule.Delay > 0 && kind != "drop" && kind != "status" {
		timer := time.NewTimer(rule.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	switch kind {
	case "drop":
		// Consume the body like a real transport would have started to.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &DroppedError{Path: req.URL.Path}
	case "status":
		code := rule.StatusCode
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"faultnet: injected HTTP %d"}`, code)
		h := http.Header{"Content-Type": []string{"application/json"}}
		if rule.RetryAfter > 0 {
			secs := int(rule.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			h.Set("Retry-After", strconv.Itoa(secs))
		}
		return &http.Response{
			Status:        http.StatusText(code),
			StatusCode:    code,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case "torn":
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = &tornBody{r: bytes.NewReader(data[:len(data)/2])}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return t.inner.RoundTrip(req)
	}
}

// tornBody yields half the real body and then fails like a severed
// connection.
type tornBody struct{ r *bytes.Reader }

func (b *tornBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return nil }
