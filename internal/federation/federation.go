// Package federation is the cohort query engine: the layer between the
// broker and the fleet of per-owner remote data stores that the paper's
// consumer workflow implies (§4: search the broker for matching
// contributors, then fetch data *directly* from each contributor's store).
// It resolves a cohort (broker search, explicit contributor list, saved
// list, or study roster) to store addresses, amortizes the Connect
// credential handshake through a concurrency-safe cache, scatter-gathers
// Query calls across every store with bounded worker concurrency,
// per-store deadlines, and hedged requests for stragglers, and merges the
// answers into one globally time-ordered, cursor-paginated release stream.
// Per-store failures are first-class data: every response carries a
// StoreReport per cohort member so "no data" and "store down" are never
// confused.
//
// The package is transport-agnostic: httpapi's BrokerClient/StoreClient
// satisfy Broker and Store for networked deployments, and thin adapters
// over broker.Service/datastore.Service do for in-process ones.
package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/overload"
	"sensorsafe/internal/query"
)

// Federation metrics (README catalog: Federated queries).
var (
	metricCohortQueries = obs.NewCounter("sensorsafe_federation_cohort_queries_total",
		"Federated cohort queries executed.")
	metricFanout = obs.NewHistogram("sensorsafe_federation_fanout_width",
		"Stores fanned out to per cohort query.",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500})
	metricStoreLatency = obs.NewHistogram("sensorsafe_federation_store_latency_seconds",
		"Per-store fetch latency inside cohort queries.", obs.DefBuckets)
	metricOutcomes = obs.NewCounterVec("sensorsafe_federation_store_outcomes_total",
		"Per-store cohort query outcomes.", "outcome")
	metricHedges = obs.NewCounter("sensorsafe_federation_hedges_total",
		"Hedged (duplicate) store requests fired for stragglers.")
	metricHedgeWins = obs.NewCounter("sensorsafe_federation_hedge_wins_total",
		"Hedged requests that answered before the original.")
	metricPartial = obs.NewCounter("sensorsafe_federation_partial_results_total",
		"Cohort queries that returned with at least one store missing.")
	metricCreds = obs.NewCounterVec("sensorsafe_federation_credentials_total",
		"Store credential lookups, by source.", "source")
)

// Broker is the slice of broker surface the engine needs: cohort
// resolution and credential provisioning. *httpapi.BrokerClient satisfies
// it.
type Broker interface {
	SearchInfoCtx(ctx context.Context, key auth.APIKey, q *broker.SearchQuery) ([]broker.SearchHit, error)
	DirectoryCtx(ctx context.Context, key auth.APIKey) ([]broker.ContributorInfo, error)
	ListCtx(ctx context.Context, key auth.APIKey, name string) ([]string, error)
	StudyContributorsCtx(ctx context.Context, study string) ([]string, error)
	ConnectCtx(ctx context.Context, key auth.APIKey, contributor string) (broker.Credential, error)
}

// Store is one remote data store's consumer query surface.
// *httpapi.StoreClient satisfies it.
type Store interface {
	QueryCtx(ctx context.Context, key auth.APIKey, q *query.Query) ([]*abstraction.Release, error)
}

// Options tune the scatter-gather; the zero value gets production
// defaults.
type Options struct {
	// Concurrency bounds in-flight store fetches (default 16).
	Concurrency int
	// PerStoreTimeout deadlines each store's fetch, hedge included
	// (default 10s).
	PerStoreTimeout time.Duration
	// HedgeAfter fires a duplicate request when a store has not answered
	// within this delay; whichever attempt returns first wins. 0 disables
	// hedging. Queries are read-only, so a duplicate is always safe.
	HedgeAfter time.Duration
}

const (
	defaultConcurrency     = 16
	defaultPerStoreTimeout = 10 * time.Second
)

// Cohort selects which contributors a query fans out to. Exactly one
// selector must be set.
type Cohort struct {
	// Search resolves the cohort dynamically via the broker's replicated
	// rules — contributors whose rules would release the demanded data.
	Search *broker.SearchQuery
	// Contributors is an explicit list; store addresses come from one
	// Directory call.
	Contributors []string
	// List names a saved contributor list on the broker.
	List string
	// Study names a study whose enrolled contributor roster is the cohort.
	Study string
}

func (c *Cohort) validate() error {
	n := 0
	if c.Search != nil {
		n++
	}
	if len(c.Contributors) > 0 {
		n++
	}
	if c.List != "" {
		n++
	}
	if c.Study != "" {
		n++
	}
	if n != 1 {
		return fmt.Errorf("federation: exactly one cohort selector required (search, contributors, list, or study), got %d", n)
	}
	return nil
}

// Request is one federated cohort query.
type Request struct {
	// Cohort picks the contributors.
	Cohort Cohort
	// Query is the per-store data query; its Contributor field is
	// overwritten per cohort member. Nil means everything the rules
	// release.
	Query *query.Query
	// Limit caps the releases per page (0 = everything in one page).
	Limit int
	// Cursor resumes a paginated query (opaque token from a previous
	// Result).
	Cursor string
	// Overrides (0 = engine option / default).
	Concurrency     int
	PerStoreTimeout time.Duration
	HedgeAfter      time.Duration
	// NoHedge forces hedging off for this request even when the engine
	// default enables it.
	NoHedge bool
}

// Result is one page of a federated cohort query.
type Result struct {
	// Releases are the page's spans in global (start, end, contributor)
	// order.
	Releases []*abstraction.Release `json:"releases"`
	// Reports carries one entry per cohort member, sorted by contributor —
	// including members that failed, so absence is always explicit.
	Reports []StoreReport `json:"reports"`
	// Cursor resumes the next page ("" when every reachable store is
	// drained).
	Cursor string `json:"cursor,omitempty"`
	// Partial flags that at least one store's data is missing (check
	// Reports for which and why). A paginating consumer must treat the
	// whole result as potentially incomplete when set.
	Partial bool `json:"partial,omitempty"`
}

// Engine runs federated cohort queries for one consumer. Safe for
// concurrent use; the credential and store-client caches are shared
// across queries, so repeated cohorts skip the Connect handshake.
type Engine struct {
	// Broker resolves cohorts and provisions credentials.
	Broker Broker
	// Key is the consumer's broker API key.
	Key auth.APIKey
	// Dial returns a query client for a store address.
	Dial func(addr string) Store
	// Options are the engine-wide defaults.
	Options Options
	// Breakers, when set, holds one circuit breaker per store address:
	// fetches (hedges included) against a tripped store are skipped
	// entirely and reported as OutcomeShed, so scatter-gather stops
	// hammering a member that is down or shedding. Nil disables breaking.
	Breakers *overload.BreakerSet

	mu       sync.Mutex
	creds    map[string]broker.Credential // contributor → store credential; guarded by mu
	inflight map[string]chan struct{}     // contributor → pending Connect; guarded by mu
	stores   map[string]Store             // addr → dialed client; guarded by mu
}

// member is one resolved cohort entry.
type member struct {
	contributor string
	storeAddr   string
}

// fetchResult is one store's scatter outcome.
type fetchResult struct {
	member
	rels     []*abstraction.Release
	err      error
	latency  time.Duration
	hedged   bool
	hedgeWon bool
}

// CohortQuery resolves the cohort, scatter-gathers the per-store queries,
// and returns one merged, paginated, failure-annotated page. The error
// return is reserved for request-level failures (bad cohort, broker
// unreachable, bad cursor); per-store failures land in Result.Reports.
func (e *Engine) CohortQuery(ctx context.Context, req *Request) (result *Result, err error) {
	ctx, qspan, stopQuery := obs.Span(ctx, "federation.cohort_query")
	defer func() {
		if result != nil {
			qspan.SetAttr(trace.Int("releases", len(result.Releases)),
				trace.Bool("partial", result.Partial))
		}
		stopQuery(err)
	}()
	if err := req.Cohort.validate(); err != nil {
		return nil, err
	}
	cur, err := decodeCursor(req.Cursor)
	if err != nil {
		return nil, err
	}
	members, err := e.resolve(ctx, &req.Cohort)
	if err != nil {
		return nil, err
	}
	qspan.SetAttr(trace.Int("stores", len(members)))
	metricCohortQueries.Inc()
	metricFanout.Observe(float64(len(members)))

	results := e.scatter(ctx, members, req)

	// Gather: merge the successful streams, report everything.
	streams := make([]*mergeStream, 0, len(results))
	for _, r := range results {
		if r.err == nil {
			streams = append(streams, &mergeStream{contributor: r.contributor, rels: r.rels})
		}
	}
	out, delivered, _ := mergePage(streams, cur, req.Limit)

	res := &Result{Releases: out}
	next := &cursorState{Consumed: make(map[string]int)}
	for c, n := range cur.Consumed {
		next.Consumed[c] = n
	}
	remaining := 0
	for _, r := range results {
		rep := StoreReport{
			Contributor: r.contributor,
			StoreAddr:   r.storeAddr,
			Outcome:     classify(r.err),
			Releases:    delivered[r.contributor],
			Latency:     r.latency,
			Hedged:      r.hedged,
			HedgeWon:    r.hedgeWon,
		}
		if r.err != nil {
			rep.Error = r.err.Error()
			rep.Missing = true
			res.Partial = true
		} else {
			consumed := cur.Consumed[r.contributor] + delivered[r.contributor]
			if consumed > len(r.rels) {
				consumed = len(r.rels)
			}
			next.Consumed[r.contributor] = consumed
			rep.Remaining = len(r.rels) - consumed
			remaining += rep.Remaining
		}
		metricOutcomes.With(string(rep.Outcome)).Inc()
		res.Reports = append(res.Reports, rep)
	}
	sort.Slice(res.Reports, func(i, j int) bool {
		return res.Reports[i].Contributor < res.Reports[j].Contributor
	})
	// A cursor is returned while any reachable store has more, and also on
	// partial results — re-running with it after the failed stores recover
	// resumes exactly where the delivered data ends, instead of
	// re-downloading this page.
	if remaining > 0 || res.Partial {
		res.Cursor = encodeCursor(next)
	}
	if res.Partial {
		metricPartial.Inc()
	}
	return res, nil
}

// resolve turns the cohort selector into {contributor, storeAddr} pairs.
// Search carries addresses already (SearchInfo); name-based selectors
// resolve through one Directory call. Members the directory does not know
// keep an empty address and surface later as explicit unreachable reports
// rather than being silently dropped.
func (e *Engine) resolve(ctx context.Context, c *Cohort) (members []member, err error) {
	ctx, rspan, stopResolve := obs.Span(ctx, "federation.resolve")
	defer func() {
		rspan.SetAttr(trace.Int("members", len(members)))
		stopResolve(err)
	}()
	if c.Search != nil {
		hits, err := e.Broker.SearchInfoCtx(ctx, e.Key, c.Search)
		if err != nil {
			return nil, fmt.Errorf("federation: search: %w", err)
		}
		out := make([]member, len(hits))
		for i, h := range hits {
			out[i] = member{contributor: h.Contributor, storeAddr: h.StoreAddr}
		}
		return out, nil
	}
	var names []string
	switch {
	case len(c.Contributors) > 0:
		names = c.Contributors
	case c.List != "":
		if names, err = e.Broker.ListCtx(ctx, e.Key, c.List); err != nil {
			return nil, fmt.Errorf("federation: list %q: %w", c.List, err)
		}
	case c.Study != "":
		if names, err = e.Broker.StudyContributorsCtx(ctx, c.Study); err != nil {
			return nil, fmt.Errorf("federation: study %q: %w", c.Study, err)
		}
	}
	dir, err := e.Broker.DirectoryCtx(ctx, e.Key)
	if err != nil {
		return nil, fmt.Errorf("federation: directory: %w", err)
	}
	addrs := make(map[string]string, len(dir))
	for _, d := range dir {
		addrs[strings.ToLower(strings.TrimSpace(d.Name))] = d.StoreAddr
	}
	seen := make(map[string]bool, len(names))
	var out []member
	for _, n := range names {
		key := strings.ToLower(strings.TrimSpace(n))
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, member{contributor: n, storeAddr: addrs[key]})
	}
	return out, nil
}

// scatter fans the per-store fetches out under the concurrency bound and
// waits for all of them (each is individually deadlined, so the gather
// converges even with stores hanging).
func (e *Engine) scatter(ctx context.Context, members []member, req *Request) []fetchResult {
	conc := req.Concurrency
	if conc <= 0 {
		conc = e.Options.Concurrency
	}
	if conc <= 0 {
		conc = defaultConcurrency
	}
	sem := make(chan struct{}, conc)
	results := make([]fetchResult, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m member) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = e.fetchMember(ctx, m, req)
		}(i, m)
	}
	wg.Wait()
	return results
}

// fetchMember runs one store's leg: credential (cached), then the
// deadlined, optionally hedged query.
func (e *Engine) fetchMember(ctx context.Context, m member, req *Request) fetchResult {
	ctx, mspan, stopFetch := obs.Span(ctx, "federation.store_query")
	mspan.SetAttr(trace.String("contributor", m.contributor))
	res := fetchResult{member: m}
	defer func() {
		mspan.SetAttr(trace.String("store", res.storeAddr),
			trace.Bool("hedged", res.hedged), trace.Bool("hedge_won", res.hedgeWon))
		stopFetch(res.err)
	}()
	if m.storeAddr == "" {
		res.err = fmt.Errorf("federation: %s is not in the broker directory", m.contributor)
		return res
	}
	cred, err := e.credential(ctx, m.contributor)
	if err != nil {
		res.err = fmt.Errorf("federation: connect %s: %w", m.contributor, err)
		return res
	}
	// The vaulted address wins over the directory's: Connect is what
	// actually provisioned the key.
	if cred.StoreAddr != "" {
		res.storeAddr = cred.StoreAddr
	}
	if br := e.Breakers.For(res.storeAddr); br != nil {
		if err := br.Allow(); err != nil {
			// Known-bad member: skip the fetch (and any hedge) entirely and
			// let the report say "shed", not "unreachable".
			mspan.SetAttr(trace.Bool("breaker_open", true))
			res.err = fmt.Errorf("federation: %s: %w", m.contributor, err)
			return res
		}
		defer func() { br.Report(res.err) }()
	}
	st := e.store(res.storeAddr)

	q := &query.Query{}
	if req.Query != nil {
		qq := *req.Query
		q = &qq
	}
	q.Contributor = m.contributor

	timeout := req.PerStoreTimeout
	if timeout <= 0 {
		timeout = e.Options.PerStoreTimeout
	}
	if timeout <= 0 {
		timeout = defaultPerStoreTimeout
	}
	hedge := req.HedgeAfter
	if hedge <= 0 {
		hedge = e.Options.HedgeAfter
	}
	if req.NoHedge {
		hedge = 0
	}

	start := time.Now()
	res.rels, res.hedged, res.hedgeWon, res.err = fetch(ctx, st, cred.Key, q, timeout, hedge)
	res.latency = time.Since(start)
	metricStoreLatency.Observe(res.latency.Seconds())
	return res
}

// fetch runs one store query under its deadline, firing a hedged duplicate
// if the first attempt is still unanswered after hedgeAfter. Whichever
// attempt succeeds first wins; the loser's result is discarded (queries
// are read-only, so duplicates are harmless).
func fetch(ctx context.Context, st Store, key auth.APIKey, q *query.Query, timeout, hedgeAfter time.Duration) (rels []*abstraction.Release, hedged, hedgeWon bool, err error) {
	fctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	type attempt struct {
		rels  []*abstraction.Release
		err   error
		hedge bool
	}
	ch := make(chan attempt, 2)
	launch := func(isHedge bool) {
		go func() {
			actx := fctx
			stop := func(error) {}
			if isHedge {
				// A hedge is its own child span so duplicate requests fired
				// for stragglers stay visible in the trace tree.
				actx, _, stop = obs.Span(fctx, "federation.hedge")
			}
			r, err := st.QueryCtx(actx, key, q)
			stop(err)
			ch <- attempt{rels: r, err: err, hedge: isHedge}
		}()
	}
	launch(false)
	outstanding := 1

	var hedgeC <-chan time.Time
	if hedgeAfter > 0 {
		t := time.NewTimer(hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for {
		select {
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if a.hedge {
					metricHedgeWins.Inc()
				}
				return a.rels, hedged, a.hedge, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if outstanding == 0 {
				if hedgeC != nil && fctx.Err() == nil {
					// The only attempt failed before the hedge timer; fire
					// the hedge now as a fast retry instead of giving up.
					hedgeC = nil
					hedged = true
					metricHedges.Inc()
					launch(true)
					outstanding = 1
					continue
				}
				return nil, hedged, false, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			metricHedges.Inc()
			launch(true)
			outstanding++
		case <-fctx.Done():
			// Attempts honor fctx, so they will drain; report the deadline
			// without waiting for them.
			return nil, hedged, false, fctx.Err()
		}
	}
}

// credential returns the consumer's store credential for a contributor,
// connecting through the broker at most once per contributor: concurrent
// requests for the same contributor coalesce behind one in-flight Connect,
// and successes are cached for the engine's lifetime.
func (e *Engine) credential(ctx context.Context, contributor string) (broker.Credential, error) {
	key := strings.ToLower(strings.TrimSpace(contributor))
	for {
		e.mu.Lock()
		if e.creds == nil {
			e.creds = make(map[string]broker.Credential)
			e.inflight = make(map[string]chan struct{})
		}
		if cred, ok := e.creds[key]; ok {
			e.mu.Unlock()
			metricCreds.With("cache").Inc()
			return cred, nil
		}
		if wait, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			select {
			case <-wait:
				continue // leader finished: re-check the cache (or retry)
			case <-ctx.Done():
				return broker.Credential{}, ctx.Err()
			}
		}
		done := make(chan struct{})
		e.inflight[key] = done
		e.mu.Unlock()

		cred, err := e.Broker.ConnectCtx(ctx, e.Key, contributor)
		e.mu.Lock()
		delete(e.inflight, key)
		if err == nil {
			e.creds[key] = cred
		}
		e.mu.Unlock()
		close(done)
		if err == nil {
			metricCreds.With("connect").Inc()
		}
		return cred, err
	}
}

// store returns the dialed client for an address, caching per engine.
// The dial itself runs outside the lock: a slow peer connect must not
// block concurrent queries to other stores (or credential lookups)
// behind mu.
func (e *Engine) store(addr string) Store {
	e.mu.Lock()
	if st, ok := e.stores[addr]; ok {
		e.mu.Unlock()
		return st
	}
	e.mu.Unlock()
	st := e.Dial(addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.stores[addr]; ok {
		return cached // lost the race; keep the first connection
	}
	if e.stores == nil {
		e.stores = make(map[string]Store)
	}
	e.stores[addr] = st
	return st
}

// InvalidateCredential drops a cached store credential (e.g. after a
// denied outcome from a rotated key) so the next query re-connects.
func (e *Engine) InvalidateCredential(contributor string) {
	e.mu.Lock()
	delete(e.creds, strings.ToLower(strings.TrimSpace(contributor)))
	e.mu.Unlock()
}
