package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/federation"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/resilience/faultnet"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/stream"
	"sensorsafe/internal/wavesegment"
)

// Chaos suite: every network hop runs through a seeded fault-injecting
// transport while the resilience fabric (retries, idempotency keys,
// durable outboxes, anti-entropy) must preserve the system's invariants —
// zero sample loss once connectivity returns, exactly-once mutations, and
// replica convergence. `make chaos` runs exactly these tests; the seed is
// fixed so failures reproduce.
const chaosSeed = 0xC4A05

// chaosPolicy retries aggressively with test-sized delays.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: 8,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	}
}

// chaosDeployment is a broker + one store over real HTTP, with separate
// fault-injecting transports on the client→store and store→broker hops.
type chaosDeployment struct {
	brokerSvc    *broker.Service
	brokerClient *BrokerClient
	storeSvc     *datastore.Service
	storeClient  *StoreClient
	storeNet     *faultnet.Transport // faults on client→store traffic
	brokerNet    *faultnet.Transport // faults on store→broker traffic
}

func deployChaos(t *testing.T, storeRules, brokerRules []faultnet.Rule) *chaosDeployment {
	t.Helper()
	bsvc := broker.New()
	brokerServer := httptest.NewServer(NewBrokerHandler(bsvc))
	t.Cleanup(brokerServer.Close)
	bnet := faultnet.New(chaosSeed, nil, brokerRules...)
	bc := &BrokerClient{
		BaseURL: brokerServer.URL,
		HTTP:    &http.Client{Transport: bnet, Timeout: 10 * time.Second},
		Retry:   chaosPolicy(),
	}

	var storeURL string
	svc, err := datastore.New(datastore.Options{
		Name:      "store-chaos",
		Sync:      bc,
		Directory: &lazyDirectory{bc: bc, addr: &storeURL},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	storeServer := httptest.NewServer(NewStoreHandler(svc))
	t.Cleanup(storeServer.Close)
	storeURL = storeServer.URL

	snet := faultnet.New(chaosSeed+1, nil, storeRules...)
	sc := &StoreClient{
		BaseURL: storeServer.URL,
		HTTP:    &http.Client{Transport: snet, Timeout: 10 * time.Second},
		Retry:   chaosPolicy(),
	}
	// The broker provisions consumers over a clean connection — the hops
	// under test are client→store and store→broker.
	bsvc.RegisterStore(&StoreClient{BaseURL: storeServer.URL})
	return &chaosDeployment{
		brokerSvc: bsvc, brokerClient: bc,
		storeSvc: svc, storeClient: sc,
		storeNet: snet, brokerNet: bnet,
	}
}

func sumSamples(segs []*wavesegment.Segment) int {
	total := 0
	for _, s := range segs {
		total += s.NumSamples()
	}
	return total
}

// TestChaosUploadZeroLoss runs a phone session with ~30% of store requests
// failing (dropped connections + injected 503s). Batches that exhaust
// their retries spill to the durable outbox; once the network heals, a
// drain must deliver every sample exactly once.
func TestChaosUploadZeroLoss(t *testing.T) {
	d := deployChaos(t, []faultnet.Rule{
		{Path: "/api/", Drop: 0.2, Status: 0.1, StatusCode: 503, RetryAfter: time.Millisecond},
	}, nil)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}

	p := &phone.Phone{
		Contributor:  "alice",
		Key:          alice.Key,
		Store:        d.storeClient,
		BatchPackets: 2,
		Outbox:       &phone.Outbox{Dir: filepath.Join(t.TempDir(), "outbox")},
	}
	rep, err := p.Run(&sensors.Scenario{
		Start: t0, Origin: home, Seed: 3,
		Phases: []sensors.Phase{{Duration: 4 * time.Minute, Activity: rules.CtxStill}},
	})
	if err != nil {
		t.Fatalf("session must survive 30%% faults: %v", err)
	}
	if d.storeNet.TotalInjected() == 0 {
		t.Fatal("no faults injected — the chaos run exercised nothing")
	}

	// Total blackout for the next session: every batch must spill.
	d.storeNet.Configure(faultnet.Rule{Path: "/api/", Drop: 1})
	rep2, err := p.Run(&sensors.Scenario{
		Start: t0.Add(time.Hour), Origin: home, Seed: 4,
		Phases: []sensors.Phase{{Duration: 2 * time.Minute, Activity: rules.CtxStill}},
	})
	if err != nil {
		t.Fatalf("blackout session must not abort: %v", err)
	}
	if rep2.BatchesSpilled == 0 {
		t.Fatal("blackout produced no spills")
	}

	// Heal, then drain everything that spilled.
	d.storeNet.Configure()
	if _, _, err := p.DrainOutbox(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	if p.Outbox.Pending() != 0 {
		t.Fatalf("outbox still holds %d batches after heal", p.Outbox.Pending())
	}

	segs, err := d.storeSvc.QueryOwn(alice.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want := rep.SamplesUploaded + rep2.SamplesUploaded
	if got := sumSamples(segs); got != want {
		t.Fatalf("store holds %d samples, phone sent %d (spilled %d+%d batches): loss or duplication",
			got, want, rep.BatchesSpilled, rep2.BatchesSpilled)
	}
}

// TestChaosMutationExactlyOnce tears response bodies on mutating calls:
// the server executes the mutation, the client never sees the reply and
// retries with the same idempotency key, and the server must replay the
// recorded outcome instead of executing twice. Registration is the
// sharpest probe — a second execution would return 409 duplicate-user —
// and upload counts prove no batch was ingested twice.
func TestChaosMutationExactlyOnce(t *testing.T) {
	d := deployChaos(t, []faultnet.Rule{
		{Path: "/api/", Torn: 0.4},
	}, nil)

	// Every registration must succeed: whenever an attempt's response was
	// torn after the server executed, only an idempotent replay can save
	// the retry from a duplicate-user conflict.
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	var key auth.APIKey
	for _, name := range users {
		role := "consumer"
		if name == "alice" {
			role = "contributor"
		}
		u, err := d.storeClient.Register(name, role)
		if err != nil {
			t.Fatalf("register %s through torn bodies: %v", name, err)
		}
		if name == "alice" {
			key = u.Key
		}
	}
	if d.storeNet.Injected("torn") == 0 {
		t.Fatal("no torn bodies injected — nothing was proven")
	}

	// Uploads through torn bodies must land exactly once each.
	const batches, perBatch = 5, 10
	for i := 0; i < batches; i++ {
		seg := streamPacket(t0.Add(time.Duration(i)*time.Hour), perBatch)
		if _, err := d.storeClient.Upload(key, []*wavesegment.Segment{seg}); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	segs, err := d.storeSvc.QueryOwn(key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sumSamples(segs); got != batches*perBatch {
		t.Fatalf("store holds %d samples, uploaded %d: retried mutations were not exactly-once",
			got, batches*perBatch)
	}

	// A retried key rotation must rotate once: the key the client received
	// is the live one.
	fresh, err := d.storeClient.RotateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.storeSvc.QueryOwn(fresh, &query.Query{}); err != nil {
		t.Fatalf("rotated key dead — rotation applied more than once: %v", err)
	}
}

// TestChaosBrokerOutageConvergence revokes a contributor's rules while the
// broker is unreachable. The store's durable outbox holds the push; after
// the partition heals, one anti-entropy round must converge the broker's
// replica so the revoked rules are no longer served by search, and the
// staleness gauge returns to zero.
func TestChaosBrokerOutageConvergence(t *testing.T) {
	d := deployChaos(t, nil, nil)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	// Bob talks to the broker over a clean connection: the partition under
	// test severs the store→broker hop, not the consumer's.
	consumer := &BrokerClient{BaseURL: d.brokerClient.BaseURL}
	bob, err := consumer.RegisterConsumer("bob")
	if err != nil {
		t.Fatal(err)
	}
	found, err := consumer.Search(bob.Key, &broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0})
	if err != nil || len(found) != 1 {
		t.Fatalf("pre-outage search = %v, %v", found, err)
	}

	// Partition the broker, then revoke everything. The store accepts the
	// change (the push waits in the outbox) instead of failing the user.
	d.brokerNet.Configure(faultnet.Rule{Path: "/", Drop: 1})
	if err := d.storeClient.SetRules(alice.Key, []byte(`[]`)); err != nil {
		t.Fatalf("revocation during outage must succeed locally: %v", err)
	}
	if d.storeSvc.SyncBacklog() == 0 {
		t.Fatal("revocation should be queued for the broker")
	}
	// The broker still serves the stale replica during the partition —
	// that is the window anti-entropy exists to close.
	found, err = consumer.Search(bob.Key, &broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0})
	if err != nil || len(found) != 1 {
		t.Fatalf("search during partition = %v, %v", found, err)
	}

	// Heal and reconcile.
	d.brokerNet.Configure()
	if err := d.storeSvc.AntiEntropy(); err != nil {
		t.Fatalf("anti-entropy after heal: %v", err)
	}
	if d.storeSvc.SyncBacklog() != 0 {
		t.Fatalf("outbox should drain, %d pending", d.storeSvc.SyncBacklog())
	}
	found, err = consumer.Search(bob.Key, &broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("revoked rules still served by search after reconnect: %v", found)
	}
	for _, r := range d.brokerSvc.Replicas() {
		if r.Stale {
			t.Fatalf("replica %s still stale after convergence: %+v", r.Name, r)
		}
	}
}

// TestChaosFederationPartialFailure fans a cohort query out over twelve
// stores while every consumer→store hop suffers ~30% injected faults and
// three stores are fully partitioned. The retry policy must absorb the
// transient faults — every reachable store's data arrives complete and in
// global time order — while the partitioned stores surface as explicit
// unreachable reports, never as silent truncation.
func TestChaosFederationPartialFailure(t *testing.T) {
	const (
		nStores   = 12
		nDown     = 3
		segsPerUp = 2
	)
	bsvc := broker.New()
	brokerServer := httptest.NewServer(NewBrokerHandler(bsvc))
	t.Cleanup(brokerServer.Close)
	bc := &BrokerClient{BaseURL: brokerServer.URL}

	// Per-store fault transports, keyed by store address so the engine's
	// dialer picks the right one. The first nDown contributors' stores are
	// fully partitioned; the rest run at ~30% faults.
	nets := make(map[string]*faultnet.Transport)
	var names []string
	var down []string
	for i := 0; i < nStores; i++ {
		name := string(rune('a'+i)) + "-owner"
		names = append(names, name)
		var storeURL string
		svc, err := datastore.New(datastore.Options{Sync: bc, Directory: &lazyDirectory{bc: bc, addr: &storeURL}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		storeServer := httptest.NewServer(NewStoreHandler(svc))
		t.Cleanup(storeServer.Close)
		storeURL = storeServer.URL

		// Setup runs over a clean client; faults start at query time.
		clean := &StoreClient{BaseURL: storeURL}
		owner, err := clean.Register(name, "contributor")
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.SetRules(owner.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
			t.Fatal(err)
		}
		segs := make([]*wavesegment.Segment, segsPerUp)
		for j := range segs {
			segs[j] = streamPacket(t0.Add(time.Duration(i)*10*time.Minute+time.Duration(j)*6*time.Hour), 4)
			segs[j].Contributor = name
		}
		if _, err := clean.Upload(owner.Key, segs); err != nil {
			t.Fatal(err)
		}

		if i < nDown {
			nets[storeURL] = faultnet.New(chaosSeed+int64(i), nil, faultnet.Rule{Path: "/", Drop: 1})
			down = append(down, name)
		} else {
			nets[storeURL] = faultnet.New(chaosSeed+int64(i), nil,
				faultnet.Rule{Path: "/api/", Drop: 0.2, Status: 0.1, StatusCode: 503, RetryAfter: time.Millisecond})
		}
	}

	bob, err := bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederationDialer(bc, bob.Key, federation.Options{PerStoreTimeout: 5 * time.Second},
		func(addr string) federation.Store {
			return &StoreClient{
				BaseURL: addr,
				HTTP:    &http.Client{Transport: nets[addr], Timeout: 5 * time.Second},
				Retry:   chaosPolicy(),
			}
		})

	res, err := eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Contributors: names},
	})
	if err != nil {
		t.Fatal(err)
	}
	var injected uint64
	for _, n := range nets {
		injected += n.TotalInjected()
	}
	if injected == 0 {
		t.Fatal("no faults injected — the chaos run exercised nothing")
	}

	// Every reachable store's data, complete and globally ordered.
	wantReleases := (nStores - nDown) * segsPerUp
	if len(res.Releases) != wantReleases {
		t.Fatalf("got %d releases, want all %d from reachable stores", len(res.Releases), wantReleases)
	}
	for i := 1; i < len(res.Releases); i++ {
		if res.Releases[i].Start.Before(res.Releases[i-1].Start) {
			t.Fatalf("release %d breaks global time order", i)
		}
	}

	// The partitioned stores are explicit failures, not silent gaps.
	if !res.Partial {
		t.Fatal("partitioned stores must flag the result partial")
	}
	downSet := map[string]bool{}
	for _, n := range down {
		downSet[n] = true
	}
	if len(res.Reports) != nStores {
		t.Fatalf("%d reports, want one per cohort member (%d)", len(res.Reports), nStores)
	}
	for _, rep := range res.Reports {
		if downSet[rep.Contributor] {
			if rep.Outcome == federation.OutcomeOK || !rep.Missing || rep.Error == "" {
				t.Errorf("down store %s report = %+v, want explicit failure", rep.Contributor, rep)
			}
		} else {
			if rep.Outcome != federation.OutcomeOK {
				t.Errorf("reachable store %s outcome = %s (%s) — retries did not absorb 30%% faults",
					rep.Contributor, rep.Outcome, rep.Error)
			}
			if rep.Releases != segsPerUp {
				t.Errorf("reachable store %s delivered %d releases, want %d", rep.Contributor, rep.Releases, segsPerUp)
			}
		}
	}
	// A resume cursor survives the partial page so the consumer can pick up
	// after the partition heals.
	if res.Cursor == "" {
		t.Error("partial result must carry a resume cursor")
	}
}

// TestChaosStreamReconnect drops and tears ~40% of a subscriber's
// long-poll traffic. Cursor-based redelivery makes retried polls
// all-or-nothing, so the subscriber must see every event exactly once in
// order despite the faults.
func TestChaosStreamReconnect(t *testing.T) {
	d := deployChaos(t, []faultnet.Rule{
		{Path: "/api/stream/", Drop: 0.25, Torn: 0.15},
	}, nil)
	clean := &StoreClient{BaseURL: d.storeClient.BaseURL} // producer side, no faults
	alice, err := clean.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := clean.Register("bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}
	info, err := d.storeClient.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}

	const wantEvents = 8
	for i := 0; i < wantEvents; i++ {
		if _, err := clean.Upload(alice.Key, []*wavesegment.Segment{streamPacket(t0.Add(time.Duration(i)*time.Hour), 4)}); err != nil {
			t.Fatal(err)
		}
	}

	seen := map[uint64]int{}
	cursor := info.Cursor
	deadline := time.Now().Add(30 * time.Second)
	for len(seen) < wantEvents && time.Now().Before(deadline) {
		b, err := d.storeClient.Next(bob.Key, info.ID, cursor, 2*time.Second)
		if err != nil {
			// Every attempt of this poll failed; the cursor is untouched,
			// so the next poll resumes without loss.
			continue
		}
		for _, ev := range b.Events {
			if ev.Kind == stream.KindData {
				seen[ev.Seq]++
			}
		}
		cursor = b.Cursor
	}
	if d.storeNet.TotalInjected() == 0 {
		t.Fatal("no faults injected on the stream path")
	}
	if len(seen) != wantEvents {
		t.Fatalf("subscriber saw %d/%d events before deadline: %v", len(seen), wantEvents, seen)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("event %d delivered %d times — cursor redelivery duplicated data", seq, n)
		}
	}
}
