// Package segstore is the persistent columnar segment store: an
// LSM-style engine that replaces the flat in-memory index + monolithic
// WAL with a bounded hot tail and immutable on-disk segment files.
//
// Write path: every Put/Delete appends to a write-ahead log, then lands
// in the active memtable (sorted hot tail). When the memtable exceeds
// its byte budget a background flusher seals it, writes one immutable,
// sorted, columnar L0 segment file (see segfile.go), and commits it by
// writing a new manifest generation; sealed WAL files whose sequences
// the manifest covers are then garbage-collected, so restart replays
// only the WAL tail.
//
// Read path: scans k-way-merge the memtables with the per-contributor
// block runs of every overlapping segment file (the same merge
// discipline internal/federation uses across stores), skipping
// tombstoned IDs.
//
// A background compactor (see compact.go) merges L0 files into larger
// L1 files, running the paper's wave-segment merge (§5.1, E2)
// continuously and physically reclaiming tombstoned records.
//
// Memory holds only the hot tail plus per-file footers (sparse block
// indexes); restart is manifest load + footer reads + WAL-tail replay.
package segstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// Options tune the engine; zero values get defaults.
type Options struct {
	// Dir is the segstore directory (WAL, segment files, manifests).
	Dir string
	// MemtableBytes bounds the hot tail; crossing it triggers a flush.
	// Default 4 MiB.
	MemtableBytes int64
	// CompactInterval is the background compaction period; 0 disables
	// the background compactor (Compact still works when called).
	CompactInterval time.Duration
	// MaxSegmentSamples bounds wave-merged records during compaction
	// (default wavesegment.DefaultMaxSamples).
	MaxSegmentSamples int
	// L0CompactThreshold is how many L0 files accumulate before the
	// compactor merges them into L1. Default 4.
	L0CompactThreshold int
	// TargetFileBytes rolls compaction output files. Default 4 MiB.
	TargetFileBytes int64
	// SyncEveryWrite fsyncs the WAL on every append. Off by default:
	// like the legacy engine, a crash loses at most the unsynced tail.
	SyncEveryWrite bool
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxSegmentSamples <= 0 {
		o.MaxSegmentSamples = wavesegment.DefaultMaxSamples
	}
	if o.L0CompactThreshold <= 0 {
		o.L0CompactThreshold = 4
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 4 << 20
	}
	return o
}

var (
	metricFlushes     = obs.NewCounter("sensorsafe_segstore_flushes_total", "Memtable flushes to L0 segment files.")
	metricCompactions = obs.NewCounter("sensorsafe_segstore_compactions_total", "Background compaction runs completed.")
	metricMerged      = obs.NewCounter("sensorsafe_segstore_merged_records_total", "Records merged away by the wave-segment optimizer during compaction.")
	metricReclaimed   = obs.NewCounter("sensorsafe_segstore_reclaimed_records_total", "Tombstoned records physically dropped by compaction.")
	metricWALReplayed = obs.NewCounter("sensorsafe_segstore_wal_replayed_total", "WAL-tail records replayed at open.")
	metricFiles       = obs.NewGaugeVec("sensorsafe_segstore_files", "Live segment files by LSM level.", "level")
	metricMemBytes    = obs.NewGauge("sensorsafe_segstore_memtable_bytes", "Bytes held in the active memtable.")
	metricTombstones  = obs.NewGauge("sensorsafe_segstore_tombstones", "Deleted IDs awaiting physical reclamation.")
	metricMaintErr    = obs.NewCounter("sensorsafe_segstore_maintenance_errors_total", "Background flush/compaction failures.")
)

// Store is the engine. All exported methods are safe for concurrent
// use. It satisfies storage.Engine.
type Store struct {
	opts Options
	dir  string

	mu         sync.RWMutex
	active     *memtable             // guarded by mu
	sealed     []*memtable           // guarded by mu; awaiting flush, oldest first
	man        *manifest             // guarded by mu
	readers    map[string]*segReader // guarded by mu; by file name
	tombstones map[storage.ID]bool   // guarded by mu; deleted IDs in sealed memtables or files
	nextID     storage.ID            // guarded by mu
	nextSeq    uint64                // guarded by mu
	wal        *wal                  // guarded by mu
	liveCount  int                   // guarded by mu
	closed     bool                  // guarded by mu

	// maintenanceMu serializes flush and compaction; each holds it for
	// the whole file-writing protocol so manifest generations advance
	// one at a time.
	maintenanceMu sync.Mutex

	flushCh chan struct{}
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// crashHook, when set (tests only, before concurrent use), is
	// called at named points of the flush/compaction protocols; a
	// non-nil return aborts the operation there, simulating a crash.
	crashHook func(stage string) error

	statsMu        sync.Mutex
	walReplayed    int           // guarded by statsMu
	flushes        uint64        // guarded by statsMu
	compactions    uint64        // guarded by statsMu
	mergedRecords  uint64        // guarded by statsMu
	reclaimed      uint64        // guarded by statsMu
	lastCompaction time.Time     // guarded by statsMu
	lastCompactDur time.Duration // guarded by statsMu
	lastError      string        // guarded by statsMu
}

var _ storage.Engine = (*Store)(nil)

// Open loads (or creates) a store in opts.Dir: newest valid manifest,
// segment-file footers, then the WAL tail (records with sequence beyond
// the manifest's flushed point) into the memtable.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("segstore: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("segstore: create dir: %w", err)
	}
	man, err := loadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	removeOrphans(opts.Dir, man)
	s := &Store{
		opts:       opts,
		dir:        opts.Dir,
		active:     newMemtable(),
		readers:    make(map[string]*segReader),
		tombstones: make(map[storage.ID]bool),
		nextID:     1,
		flushCh:    make(chan struct{}, 1),
		stopCh:     make(chan struct{}),
	}
	// The store is not shared yet; the lock is held across recovery so
	// the guarded fields are mutated under their advertised discipline.
	s.mu.Lock()
	defer s.mu.Unlock()
	if man == nil {
		man = &manifest{}
	}
	s.man = man
	for _, fm := range man.Files {
		r, err := openSegReader(s.dir, fm)
		if err != nil {
			s.closeReadersLocked()
			return nil, err
		}
		s.readers[fm.Name] = r
		s.liveCount += fm.Records
	}
	for _, id := range man.Tombstones {
		s.tombstones[storage.ID(id)] = true
	}
	s.liveCount -= len(man.Tombstones)
	if man.NextID > 0 {
		s.nextID = storage.ID(man.NextID)
	}

	// Replay the WAL tail: only records beyond the manifest's flushed
	// sequence mutate state; earlier ones are already in segment files.
	walFiles, err := listWALFiles(s.dir)
	if err != nil {
		s.closeReadersLocked()
		return nil, err
	}
	maxSeq := man.FlushedSeq
	replayed := 0
	for i := range walFiles {
		wf := &walFiles[i]
		last := i == len(walFiles)-1
		err := replayWALFile(s.dir, wf, last, func(r walRecord) error {
			if r.seq > maxSeq {
				maxSeq = r.seq
			}
			if r.id >= s.nextID {
				s.nextID = r.id + 1
			}
			if r.seq <= man.FlushedSeq {
				return nil // already flushed into a segment file
			}
			replayed++
			switch r.typ {
			case walRecPut:
				blob, _ := wavesegment.MarshalBinary(r.seg)
				s.active.put(r.id, r.seg, r.seq, len(blob))
				s.liveCount++
			case walRecDelete:
				if s.active.delete(r.id, r.seq) {
					s.liveCount--
				} else if !s.tombstones[r.id] {
					// A delete of a disk-resident record; verify it still
					// exists (compaction may have already reclaimed it
					// before the crash) so liveCount stays exact.
					if _, _, ok := s.findOnDiskLocked(r.id); ok {
						s.tombstones[r.id] = true
						s.liveCount--
					}
				}
			}
			return nil
		})
		if err != nil {
			s.closeReadersLocked()
			return nil, err
		}
	}
	s.statsMu.Lock()
	s.walReplayed = replayed
	s.statsMu.Unlock()
	metricWALReplayed.Add(float64(replayed))
	s.nextSeq = maxSeq + 1

	// Drop replayed files that hold no committed records (a crash
	// artifact); keeping them could collide with the new active file.
	kept := walFiles[:0]
	for _, wf := range walFiles {
		if wf.maxSeq == 0 {
			_ = os.Remove(s.walPath(wf.name))
			continue
		}
		kept = append(kept, wf)
	}
	w, err := newWAL(s.dir, s.nextSeq, opts.SyncEveryWrite, kept)
	if err != nil {
		s.closeReadersLocked()
		return nil, err
	}
	s.wal = w
	s.publishGauges()

	s.wg.Add(1)
	go s.flushLoop()
	if opts.CompactInterval > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

func (s *Store) walPath(name string) string { return s.dir + string(os.PathSeparator) + name }

// closeReadersLocked force-closes every reader during failed Open.
// Callers hold no locks; the store is not yet shared.
func (s *Store) closeReadersLocked() {
	for _, r := range s.readers {
		r.markObsolete()
	}
}

// publishGauges refreshes the observable gauges. Callers hold mu or
// have exclusive access.
func (s *Store) publishGauges() {
	metricMemBytes.Set(float64(s.active.bytes))
	metricTombstones.Set(float64(len(s.tombstones)))
	counts := map[int]int{}
	for _, fm := range s.man.Files {
		counts[fm.Level]++
	}
	for _, lvl := range []int{0, 1} {
		metricFiles.With(fmt.Sprintf("L%d", lvl)).Set(float64(counts[lvl]))
	}
}

// Put validates and stores a segment, returning its new ID. The segment
// is cloned; callers may keep mutating their copy.
func (s *Store) Put(seg *wavesegment.Segment) (storage.ID, error) {
	if seg == nil {
		return 0, fmt.Errorf("segstore: nil segment")
	}
	if err := seg.Validate(); err != nil {
		return 0, err
	}
	blob, err := wavesegment.MarshalBinary(seg)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, storage.ErrClosed
	}
	id := s.nextID
	s.nextID++
	seq := s.nextSeq
	s.nextSeq++
	if err := s.wal.append(walRecPut, seq, id, blob); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.active.put(id, seg.Clone(), seq, len(blob))
	s.liveCount++
	needFlush := s.active.bytes >= s.opts.MemtableBytes
	metricMemBytes.Set(float64(s.active.bytes))
	s.mu.Unlock()
	if needFlush {
		s.kickFlush()
	}
	return id, nil
}

// kickFlush nudges the background flusher without blocking.
func (s *Store) kickFlush() {
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

// Get returns a copy of the stored segment.
func (s *Store) Get(id storage.ID) (*wavesegment.Segment, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, storage.ErrClosed
	}
	if s.tombstones[id] {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: id %d", storage.ErrNotFound, id)
	}
	if seg, ok := s.active.byID[id]; ok {
		s.mu.RUnlock()
		return seg.Clone(), nil
	}
	for _, m := range s.sealed {
		if seg, ok := m.byID[id]; ok {
			s.mu.RUnlock()
			return seg.Clone(), nil
		}
	}
	// Disk search: retain candidate readers, then read outside the lock.
	readers := s.retainReadersForIDLocked(id)
	s.mu.RUnlock()
	defer releaseAll(readers)
	for _, r := range readers {
		if seg, ok := findInReader(r, id); ok {
			return seg, nil
		}
	}
	return nil, fmt.Errorf("%w: id %d", storage.ErrNotFound, id)
}

// retainReadersForIDLocked retains every reader whose ID range covers
// id. Callers hold mu.
func (s *Store) retainReadersForIDLocked(id storage.ID) []*segReader {
	var out []*segReader
	for _, r := range s.readers {
		if uint64(id) >= r.meta.MinID && uint64(id) <= r.meta.MaxID {
			r.retain()
			out = append(out, r)
		}
	}
	return out
}

func releaseAll(readers []*segReader) {
	for _, r := range readers {
		r.release()
	}
}

// findInReader block-searches one file for id.
func findInReader(r *segReader, id storage.ID) (*wavesegment.Segment, bool) {
	for i, b := range r.blocks {
		if uint64(id) < b.minID || uint64(id) > b.maxID {
			continue
		}
		recs, err := r.readBlock(i)
		if err != nil {
			continue
		}
		for _, rc := range recs {
			if rc.id == id {
				return rc.seg, true
			}
		}
	}
	return nil, false
}

// findOnDiskLocked reports whether id exists in a segment file. Callers
// hold mu (or, during Open, have exclusive access).
func (s *Store) findOnDiskLocked(id storage.ID) (*wavesegment.Segment, *segReader, bool) {
	for _, r := range s.readers {
		if uint64(id) < r.meta.MinID || uint64(id) > r.meta.MaxID {
			continue
		}
		if seg, ok := findInReader(r, id); ok {
			return seg, r, true
		}
	}
	return nil, nil, false
}

// Delete removes a segment. Memtable-resident records are removed in
// place; sealed or disk-resident ones get a tombstone that compaction
// later reclaims physically.
func (s *Store) Delete(id storage.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.ErrClosed
	}
	if s.tombstones[id] {
		return fmt.Errorf("%w: id %d", storage.ErrNotFound, id)
	}
	inSealed := false
	for _, m := range s.sealed {
		if _, ok := m.byID[id]; ok {
			inSealed = true
			break
		}
	}
	_, inActive := s.active.byID[id]
	if !inActive && !inSealed {
		// Disk check holds the write lock; deletes are rare
		// (rule-revocation reclamation), reads dominate.
		if _, _, ok := s.findOnDiskLocked(id); !ok {
			return fmt.Errorf("%w: id %d", storage.ErrNotFound, id)
		}
	}
	seq := s.nextSeq
	s.nextSeq++
	if err := s.wal.append(walRecDelete, seq, id, nil); err != nil {
		return err
	}
	if inActive {
		s.active.delete(id, seq)
	} else {
		s.tombstones[id] = true
		metricTombstones.Set(float64(len(s.tombstones)))
	}
	s.liveCount--
	return nil
}

// Count returns the number of live segments.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveCount
}

// Sync flushes the active WAL file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.ErrClosed
	}
	return s.wal.fsync()
}

// Compact forces a full maintenance cycle: flush the hot tail, then run
// one compaction round regardless of thresholds.
func (s *Store) Compact() error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.compactOnce(true)
}

// Flush synchronously seals the memtable and writes it to an L0 file.
func (s *Store) Flush() error {
	return s.flushOnce()
}

// Close stops background work, flushes the hot tail to a final segment
// file (making the next open near-instant), and releases every file.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	close(s.stopCh)
	s.wg.Wait()

	flushErr := s.flushOnce()

	s.mu.Lock()
	s.closed = true
	err := s.wal.close()
	if flushErr != nil && err == nil {
		err = flushErr
	}
	readers := make([]*segReader, 0, len(s.readers))
	for _, r := range s.readers {
		readers = append(readers, r)
	}
	s.readers = make(map[string]*segReader)
	s.mu.Unlock()
	for _, r := range readers {
		r.markObsolete()
	}
	return err
}

// flushLoop is the background flusher; it wakes on memtable pressure.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.flushCh:
			s.noteMaintenanceErr("flush", s.flushOnce())
		}
	}
}

// compactLoop runs compaction on a timer.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.noteMaintenanceErr("compact", s.compactOnce(false))
		}
	}
}

// noteMaintenanceErr surfaces background flush/compaction failures via
// the error counter and Stats; background loops have nobody to return
// errors to.
func (s *Store) noteMaintenanceErr(op string, err error) {
	if err == nil || errors.Is(err, storage.ErrClosed) {
		return
	}
	metricMaintErr.Inc()
	s.statsMu.Lock()
	s.lastError = op + ": " + err.Error()
	s.statsMu.Unlock()
}

func (s *Store) hook(stage string) error {
	if s.crashHook == nil {
		return nil
	}
	return s.crashHook(stage)
}

// SetCrashHook installs a failpoint for crash-safety tests and the E12
// chaos harness: fn is invoked at named points of the flush and
// compaction protocols ("flush.begin", "flush.file", "flush.manifest",
// "flush.done", "compact.begin", "compact.files", "compact.manifest",
// "compact.done"), and a non-nil return aborts the operation there,
// leaving the on-disk state a real crash would. The store must be
// reopened afterwards; the aborted instance's in-memory view is stale
// by design. Never set on a production store.
func (s *Store) SetCrashHook(fn func(stage string) error) {
	// The hook is only read with maintenanceMu held, so taking it here
	// makes the swap safe against a concurrent flush or compaction.
	s.maintenanceMu.Lock()
	s.crashHook = fn
	s.maintenanceMu.Unlock()
}

// flushOnce seals the active memtable and writes every sealed memtable
// into one L0 segment file. The manifest write is the commit point;
// after it, covered WAL files are garbage-collected.
func (s *Store) flushOnce() error {
	s.maintenanceMu.Lock()
	defer s.maintenanceMu.Unlock()
	//sslint:ignore ctxpropagate background maintenance is a call-tree root with no request context
	_, _, stop := obs.Span(context.Background(), "segstore.flush")
	err := s.flushLocked()
	stop(err)
	return err
}

// flushLocked is flushOnce minus locking; callers hold maintenanceMu.
func (s *Store) flushLocked() error {
	if err := s.hook("flush.begin"); err != nil {
		return err
	}
	// Seal: rotate the WAL and move the active memtable aside.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return storage.ErrClosed
	}
	if s.active.len() > 0 {
		if err := s.wal.rotate(s.nextSeq); err != nil {
			s.mu.Unlock()
			return err
		}
		s.sealed = append(s.sealed, s.active)
		s.active = newMemtable()
		metricMemBytes.Set(0)
	}
	if len(s.sealed) == 0 {
		s.mu.Unlock()
		return nil
	}
	mems := make([]*memtable, len(s.sealed))
	copy(mems, s.sealed)
	skip := make(map[storage.ID]bool, len(s.tombstones))
	for id := range s.tombstones {
		skip[id] = true
	}
	fileSeq := s.man.NextFile + 1
	s.mu.Unlock()

	// Gather the sealed records in (start, id) order, skipping ones
	// already tombstoned — those never reach disk.
	var sources [][]rec
	flushedSeq := uint64(0)
	total := 0
	for _, m := range mems {
		sources = append(sources, m.sorted())
		if m.lastSeq > flushedSeq {
			flushedSeq = m.lastSeq
		}
		total += m.len()
	}
	merged := mergeSorted(sources)
	consumed := make(map[storage.ID]bool)
	var meta fileMeta
	wrote := false
	if total > 0 {
		w, err := newSegWriter(s.dir, fmt.Sprintf("seg-%08d.seg", fileSeq), 0)
		if err != nil {
			return err
		}
		for _, rc := range merged {
			if skip[rc.id] {
				consumed[rc.id] = true
				continue
			}
			if err := w.add(rc); err != nil {
				w.abort()
				return err
			}
			wrote = true
		}
		if wrote {
			meta, err = w.finish()
			if err != nil {
				return err
			}
		} else {
			w.abort()
		}
	}
	if err := s.hook("flush.file"); err != nil {
		return err
	}

	// Commit: next manifest generation references the new file and
	// advances the flushed sequence.
	s.mu.Lock()
	next := *s.man
	next.Files = append([]fileMeta(nil), s.man.Files...)
	if wrote {
		next.Files = append(next.Files, meta)
		next.NextFile = fileSeq
	}
	if flushedSeq > next.FlushedSeq {
		next.FlushedSeq = flushedSeq
	}
	next.NextID = uint64(s.nextID)
	next.Tombstones = nil
	for id := range s.tombstones {
		if !consumed[id] {
			next.Tombstones = append(next.Tombstones, uint64(id))
		}
	}
	s.mu.Unlock()
	if err := saveManifest(s.dir, &next); err != nil {
		return err
	}
	if err := s.hook("flush.manifest"); err != nil {
		return err
	}

	// Swap in the committed state.
	var reader *segReader
	if wrote {
		var err error
		reader, err = openSegReader(s.dir, meta)
		if err != nil {
			return fmt.Errorf("segstore: reopen flushed file: %w", err)
		}
	}
	s.mu.Lock()
	s.man = &next
	if reader != nil {
		s.readers[meta.Name] = reader
	}
	// Drop exactly the memtables we flushed; new ones may have been
	// sealed meanwhile.
	remaining := s.sealed[:0]
	flushedSet := make(map[*memtable]bool, len(mems))
	for _, m := range mems {
		flushedSet[m] = true
	}
	for _, m := range s.sealed {
		if !flushedSet[m] {
			remaining = append(remaining, m)
		}
	}
	s.sealed = remaining
	for id := range consumed {
		delete(s.tombstones, id)
	}
	s.wal.gc(next.FlushedSeq)
	s.publishGauges()
	s.mu.Unlock()

	metricFlushes.Inc()
	s.statsMu.Lock()
	s.flushes++
	s.statsMu.Unlock()
	return s.hook("flush.done")
}
