package rules

import (
	"testing"

	"sensorsafe/internal/wavesegment"
)

func TestLabelCategory(t *testing.T) {
	cases := map[string]Category{
		CtxStill: CategoryActivity, CtxWalk: CategoryActivity, CtxRun: CategoryActivity,
		CtxBike: CategoryActivity, CtxDrive: CategoryActivity, CtxMoving: CategoryActivity,
		CtxNotMoving: CategoryActivity,
		CtxStressed:  CategoryStress, CtxNotStressed: CategoryStress,
		CtxSmoking: CategorySmoking, CtxNotSmoking: CategorySmoking,
		CtxConversation: CategoryConversation, CtxNoConversation: CategoryConversation,
	}
	for label, want := range cases {
		got, ok := LabelCategory(label)
		if !ok || got != want {
			t.Errorf("LabelCategory(%q) = %v, %v; want %v", label, got, ok, want)
		}
	}
	if _, ok := LabelCategory("Flying"); ok {
		t.Error("unknown label should miss")
	}
}

func TestParseContextLabelAliases(t *testing.T) {
	for in, want := range map[string]string{
		"driving": CtxDrive, "Drive": CtxDrive, "walking": CtxWalk,
		"stress": CtxStressed, "in conversation": CtxConversation,
		"smoke": CtxSmoking, "not moving": CtxNotMoving,
	} {
		got, err := ParseContextLabel(in)
		if err != nil || got != want {
			t.Errorf("ParseContextLabel(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseContextLabel("levitating"); err == nil {
		t.Error("unknown context should error")
	}
}

func TestKnownContextLabelsSortedComplete(t *testing.T) {
	labels := KnownContextLabels()
	if len(labels) != 13 {
		t.Errorf("expected 13 labels, got %d: %v", len(labels), labels)
	}
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Errorf("labels not sorted at %d: %v", i, labels)
		}
	}
}

func TestParseLevelTable1Spellings(t *testing.T) {
	// Table 1(b) descriptive option names must parse.
	cases := []struct {
		cat  Category
		in   string
		want Level
	}{
		{CategoryActivity, "Accelerometer Data", LevelRaw},
		{CategoryActivity, "Still/Walk/Run/Bike/Drive", LevelModes},
		{CategoryActivity, "Move/Not Move", LevelBinary},
		{CategoryActivity, "NotShared", LevelNotShared},
		{CategoryStress, "ECG/Respiration Data", LevelRaw},
		{CategoryStress, "Stressed/Not Stressed", LevelBinary},
		{CategoryStress, "Not Share", LevelNotShared},
		{CategorySmoking, "Respiration Data", LevelRaw},
		{CategorySmoking, "Smoking/Not Smoking", LevelBinary},
		{CategoryConversation, "Microphone/Respiration Data", LevelRaw},
		{CategoryConversation, "Conversation/Not Conversation", LevelBinary},
		{CategoryConversation, "Raw", LevelRaw},
		{CategoryStress, "Binary", LevelBinary},
	}
	for _, tc := range cases {
		got, err := ParseLevel(tc.cat, tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%s, %q) = %v, %v; want %v", tc.cat, tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLevel(CategoryStress, "Modes"); err == nil {
		t.Error("Modes should be invalid for Stress")
	}
	if _, err := ParseLevel(CategoryActivity, "Modes"); err != nil {
		t.Error("Modes should be valid for Activity")
	}
	if _, err := ParseLevel(CategorySmoking, "banana"); err == nil {
		t.Error("unknown level should error")
	}
}

func TestDependencyGraph(t *testing.T) {
	// Paper §5.1: respiration feeds stress, conversation, and smoking.
	cats := SensorCategories(wavesegment.ChannelRespiration)
	if len(cats) != 3 {
		t.Fatalf("Respiration categories = %v", cats)
	}
	has := func(cs []Category, want Category) bool {
		for _, c := range cs {
			if c == want {
				return true
			}
		}
		return false
	}
	for _, want := range []Category{CategoryStress, CategorySmoking, CategoryConversation} {
		if !has(cats, want) {
			t.Errorf("Respiration should feed %s", want)
		}
	}
	if got := SensorCategories(wavesegment.ChannelECG); len(got) != 1 || got[0] != CategoryStress {
		t.Errorf("ECG categories = %v", got)
	}
	if got := SensorCategories(wavesegment.ChannelMicrophone); len(got) != 1 || got[0] != CategoryConversation {
		t.Errorf("Microphone categories = %v", got)
	}
	if got := SensorCategories(wavesegment.ChannelAccelX); len(got) != 1 || got[0] != CategoryActivity {
		t.Errorf("AccelX categories = %v", got)
	}
	if got := SensorCategories(wavesegment.ChannelSkinTemp); got != nil {
		t.Errorf("SkinTemperature should feed nothing, got %v", got)
	}
	if got := CategorySensors(CategorySmoking); len(got) != 1 || got[0] != wavesegment.ChannelRespiration {
		t.Errorf("Smoking sensors = %v", got)
	}
}

func TestLevelHelpers(t *testing.T) {
	if !LevelNotShared.CoarserThan(LevelBinary) || LevelRaw.CoarserThan(LevelRaw) {
		t.Error("CoarserThan wrong")
	}
	if MostRestrictive(LevelBinary, LevelModes) != LevelBinary {
		t.Error("MostRestrictive wrong")
	}
	if !ValidLevel(CategoryActivity, LevelModes) || ValidLevel(CategoryStress, LevelModes) {
		t.Error("ValidLevel Modes handling wrong")
	}
	if ValidLevel(CategoryStress, Level(99)) {
		t.Error("out-of-range level should be invalid")
	}
	if LevelRaw.String() != "Raw" || LevelNotShared.String() != "NotShared" {
		t.Error("Level.String wrong")
	}
}

func TestAbstractLabel(t *testing.T) {
	cases := []struct {
		label string
		level Level
		want  string
		ok    bool
	}{
		{CtxDrive, LevelRaw, CtxDrive, true},
		{CtxDrive, LevelModes, CtxDrive, true},
		{CtxDrive, LevelBinary, CtxMoving, true},
		{CtxWalk, LevelBinary, CtxMoving, true},
		{CtxStill, LevelBinary, CtxNotMoving, true},
		{CtxNotMoving, LevelBinary, CtxNotMoving, true},
		{CtxDrive, LevelNotShared, "", false},
		{CtxStressed, LevelBinary, CtxStressed, true},
		{CtxSmoking, LevelNotShared, "", false},
		{"Flying", LevelRaw, "", false},
	}
	for _, tc := range cases {
		got, ok := AbstractLabel(tc.label, tc.level)
		if got != tc.want || ok != tc.ok {
			t.Errorf("AbstractLabel(%q, %v) = %q, %v; want %q, %v", tc.label, tc.level, got, ok, tc.want, tc.ok)
		}
	}
}
