// Command phonesim simulates a data contributor's smartphone against a
// running remote data store: it registers the contributor (or reuses a
// key), installs privacy rules from a file, then records and uploads a
// scripted "day in the life" — optionally with privacy-rule-aware
// collection (§5.3) so unshareable data is never collected.
//
// Usage:
//
//	phonesim -store http://localhost:8081 -contributor alice \
//	    -rules rules.json -scale 0.1 -rule-aware
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/sensors"
)

func main() {
	storeURL := flag.String("store", "http://localhost:8081", "remote data store base URL")
	contributor := flag.String("contributor", "alice", "contributor name to register")
	key := flag.String("key", "", "existing API key (skips registration)")
	rulesPath := flag.String("rules", "", "privacy rules JSON file to install (Fig. 4 shape)")
	scale := flag.Float64("scale", 0.1, "day-in-the-life duration scale (1.0 ≈ 66 min)")
	ruleAware := flag.Bool("rule-aware", false, "enable privacy-rule-aware collection")
	outboxDir := flag.String("outbox", "", "durable outbox directory: failed upload batches spill here and drain on the next run")
	live := flag.Bool("live", false, "pace uploads at scripted wall-clock (scaled by -speedup) instead of one burst")
	speedup := flag.Float64("speedup", 60, "wall-clock compression factor for -live (60 = one scripted minute per second)")
	lat := flag.Float64("lat", 34.0250, "origin latitude")
	lon := flag.Float64("lon", -118.4950, "origin longitude")
	flag.Parse()

	client := &httpapi.StoreClient{BaseURL: *storeURL}

	apiKey := *key
	if apiKey == "" {
		u, err := client.Register(*contributor, "contributor")
		if err != nil {
			log.Fatalf("phonesim: register: %v", err)
		}
		apiKey = string(u.Key)
		fmt.Printf("registered %s\nAPI key: %s\n", u.Name, apiKey)
	}

	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatalf("phonesim: %v", err)
		}
		if err := client.SetRules(auth.APIKey(apiKey), data); err != nil {
			log.Fatalf("phonesim: set rules: %v", err)
		}
		fmt.Println("privacy rules installed")
	}

	origin := geo.Point{Lat: *lat, Lon: *lon}
	sc := sensors.DayInTheLife(time.Now().UTC().Truncate(time.Minute), origin, *scale)
	p := &phone.Phone{
		Contributor: *contributor,
		Key:         auth.APIKey(apiKey),
		Store:       client,
		RuleAware:   *ruleAware,
	}
	if *outboxDir != "" {
		p.Outbox = &phone.Outbox{Dir: *outboxDir}
	}
	if *live {
		if *speedup <= 0 {
			log.Fatalf("phonesim: -speedup must be positive")
		}
		// Each packet uploads on its own, spaced by its scripted duration
		// compressed by -speedup, so a subscribed consumer sees a stream
		// of deliveries instead of one burst.
		p.BatchPackets = 1
		p.Pace = func(d time.Duration) {
			time.Sleep(time.Duration(float64(d) / *speedup))
		}
		fmt.Printf("live replay at %gx\n", *speedup)
	}
	// Root span for the whole session: every upload's traceparent descends
	// from it, so the store's /debug/traces shows the session as one tree.
	ctx, span := trace.Start(context.Background(), "phone.session",
		trace.String("contributor", *contributor))
	rep, err := p.RunCtx(ctx, sc)
	span.SetError(err)
	span.End()
	if err != nil {
		log.Fatalf("phonesim: %v", err)
	}
	fmt.Printf("day simulated: %v of data (trace %s)\n", sc.Duration(), span.TraceIDString())
	fmt.Printf("packets: %d total, %d uploaded, %d skipped (sensors off), %d discarded (context)\n",
		rep.PacketsTotal, rep.PacketsUploaded, rep.PacketsSkipped, rep.PacketsDiscarded)
	fmt.Printf("samples uploaded: %d/%d (%.0f%%), %d bytes, %d store records\n",
		rep.SamplesUploaded, rep.SamplesTotal, rep.UploadFraction()*100, rep.BytesUploaded, rep.RecordsWritten)
	if rep.BatchesSpilled > 0 || rep.BatchesRecovered > 0 {
		fmt.Printf("outbox: %d batches spilled (%d samples), %d recovered from earlier runs\n",
			rep.BatchesSpilled, rep.SamplesSpilled, rep.BatchesRecovered)
	}
}
