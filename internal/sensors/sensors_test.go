package sensors

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

var (
	t0     = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

func simpleScenario(phases ...Phase) *Scenario {
	return &Scenario{Start: t0, Origin: origin, Seed: 1, Phases: phases}
}

func TestScenarioValidate(t *testing.T) {
	ok := simpleScenario(Phase{Duration: time.Minute, Activity: rules.CtxStill})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Scenario{
		{Origin: origin, Phases: []Phase{{Duration: time.Minute, Activity: rules.CtxStill}}},
		simpleScenario(),
		simpleScenario(Phase{Duration: 0, Activity: rules.CtxStill}),
		simpleScenario(Phase{Duration: time.Minute, Activity: "Flying"}),
	}
	for i, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestScenarioDuration(t *testing.T) {
	sc := simpleScenario(
		Phase{Duration: time.Minute, Activity: rules.CtxStill},
		Phase{Duration: 2 * time.Minute, Activity: rules.CtxWalk},
	)
	if sc.Duration() != 3*time.Minute {
		t.Errorf("Duration = %v", sc.Duration())
	}
}

func TestGenerateBasicShape(t *testing.T) {
	sc := simpleScenario(
		Phase{Duration: time.Minute, Activity: rules.CtxStill},
		Phase{Duration: time.Minute, Activity: rules.CtxWalk, Heading: 90},
	)
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	// 120 s at 10 Hz = 1200 samples per device; 64-sample packets -> 19 packets
	// with a final partial one.
	wantPackets := 1200/64 + 1
	if len(rec.ChestBand) != wantPackets {
		t.Errorf("chest packets = %d, want %d", len(rec.ChestBand), wantPackets)
	}
	if len(rec.Phone) != wantPackets {
		t.Errorf("phone packets = %d, want %d", len(rec.Phone), wantPackets)
	}
	total := 0
	for _, s := range rec.ChestBand {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid chest segment: %v", err)
		}
		if len(s.Channels) != 2 {
			t.Errorf("chest channels = %v", s.Channels)
		}
		total += s.NumSamples()
	}
	if total != 1200 {
		t.Errorf("chest samples = %d", total)
	}
	for _, s := range rec.Phone {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid phone segment: %v", err)
		}
		if len(s.Channels) != 6 {
			t.Errorf("phone channels = %v", s.Channels)
		}
		if s.Contributor != "alice" {
			t.Errorf("contributor = %q", s.Contributor)
		}
	}
	// Path has one point per phase boundary plus origin.
	if len(rec.Path) != 3 {
		t.Errorf("path points = %d", len(rec.Path))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := simpleScenario(Phase{Duration: 30 * time.Second, Activity: rules.CtxRun, Heading: 45})
	a, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phone) != len(b.Phone) {
		t.Fatal("packet counts differ")
	}
	for i := range a.Phone {
		for r := range a.Phone[i].Values {
			for c := range a.Phone[i].Values[r] {
				if a.Phone[i].Values[r][c] != b.Phone[i].Values[r][c] {
					t.Fatalf("values differ at packet %d row %d col %d", i, r, c)
				}
			}
		}
	}
}

func TestGenerateMovementCoversDistance(t *testing.T) {
	sc := simpleScenario(Phase{Duration: time.Minute, Activity: rules.CtxDrive, Heading: 0})
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	dist := geo.Distance(rec.Path[0], rec.Path[1])
	// 15 m/s for 60 s ≈ 900 m.
	if dist < 800 || dist > 1000 {
		t.Errorf("drive distance = %.0f m, want ~900", dist)
	}

	still := simpleScenario(Phase{Duration: time.Minute, Activity: rules.CtxStill})
	rec2, err := Generate("alice", still)
	if err != nil {
		t.Fatal(err)
	}
	if d := geo.Distance(rec2.Path[0], rec2.Path[1]); d != 0 {
		t.Errorf("still phase moved %.1f m", d)
	}
}

func TestGenerateGroundTruth(t *testing.T) {
	sc := simpleScenario(
		Phase{Duration: time.Minute, Activity: rules.CtxStill, Stressed: true},
		Phase{Duration: time.Minute, Activity: rules.CtxWalk, Conversation: true},
		Phase{Duration: time.Minute, Activity: rules.CtxStill, Smoking: true},
	)
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	find := func(ctx string) *wavesegment.Annotation {
		for i := range rec.Truth {
			if rec.Truth[i].Context == ctx {
				return &rec.Truth[i]
			}
		}
		return nil
	}
	stress := find(rules.CtxStressed)
	if stress == nil || !stress.Start.Equal(t0) || !stress.End.Equal(t0.Add(time.Minute)) {
		t.Errorf("stress truth = %+v", stress)
	}
	if find(rules.CtxConversation) == nil || find(rules.CtxSmoking) == nil {
		t.Error("missing conversation/smoking truth")
	}
	if find(rules.CtxWalk) == nil {
		t.Error("missing walk truth")
	}
	// Unstressed phases are labeled NotStressed.
	notStressed := 0
	for _, a := range rec.Truth {
		if a.Context == rules.CtxNotStressed {
			notStressed++
		}
	}
	if notStressed != 2 {
		t.Errorf("NotStressed spans = %d, want 2", notStressed)
	}
}

func TestGenerateCustomRates(t *testing.T) {
	sc := simpleScenario(Phase{Duration: 10 * time.Second, Activity: rules.CtxStill})
	sc.SampleHz = 20
	sc.PacketSamples = 50
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ChestBand) != 4 { // 200 samples / 50
		t.Errorf("packets = %d, want 4", len(rec.ChestBand))
	}
	if rec.ChestBand[0].Interval != 50*time.Millisecond {
		t.Errorf("interval = %v", rec.ChestBand[0].Interval)
	}
}

func TestAllSegmentsInterleaved(t *testing.T) {
	sc := simpleScenario(Phase{Duration: 30 * time.Second, Activity: rules.CtxStill})
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	all := rec.AllSegments()
	if len(all) != len(rec.ChestBand)+len(rec.Phone) {
		t.Fatalf("AllSegments lost segments")
	}
	for i := 1; i < len(all); i++ {
		if all[i].StartTime().Before(all[i-1].StartTime()) {
			t.Fatal("AllSegments not time ordered")
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate("alice", simpleScenario()); err == nil {
		t.Error("empty scenario should error")
	}
}

func TestDayInTheLife(t *testing.T) {
	sc := DayInTheLife(t0, origin, 0.1)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 6 {
		t.Errorf("phases = %d", len(sc.Phases))
	}
	rec, err := Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	// The storyline covers driving, walking, stress, smoking, conversation.
	seen := map[string]bool{}
	for _, a := range rec.Truth {
		seen[a.Context] = true
	}
	for _, want := range []string{rules.CtxDrive, rules.CtxWalk, rules.CtxStill,
		rules.CtxStressed, rules.CtxSmoking, rules.CtxConversation} {
		if !seen[want] {
			t.Errorf("day-in-the-life missing %s", want)
		}
	}
}

func TestModeSpeed(t *testing.T) {
	if v, ok := ModeSpeed(rules.CtxDrive); !ok || v != 15 {
		t.Errorf("ModeSpeed(Drive) = %v, %v", v, ok)
	}
	if _, ok := ModeSpeed("Flying"); ok {
		t.Error("unknown mode should miss")
	}
}
