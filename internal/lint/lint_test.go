package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

// testModule loads the real module exactly once for the whole test binary;
// fixtures type-check against it and the smoke test sweeps it.
func testModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			moduleErr = err
			return
		}
		moduleVal, moduleErr = LoadModule(root)
	})
	if moduleErr != nil {
		t.Fatalf("loading module: %v", moduleErr)
	}
	return moduleVal
}

// runFixture type-checks one fixture package and runs a single analyzer
// over it directly (bypassing AppliesTo, which keys off real module import
// paths), with ignore directives applied as in production.
func runFixture(t *testing.T, a *Analyzer, fixture string) []Diagnostic {
	t.Helper()
	m := testModule(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(fixture))
	pkg, err := m.LoadPackage(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	var diags []Diagnostic
	pass := &Pass{Module: m, Pkg: pkg, Universe: []*Package{pkg}, State: make(map[string]any), analyzer: a, diags: &diags}
	a.Run(pass)
	diags = FilterIgnored(m, []*Package{pkg}, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Column < diags[j].Pos.Column
	})
	return diags
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type wantDiag struct {
	file   string
	line   int
	substr string
}

// parseWants extracts `// want "substring"` expectations from a fixture.
func parseWants(t *testing.T, fixture string) []wantDiag {
	t.Helper()
	m := testModule(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(fixture))
	pkg, err := m.LoadPackage(dir, "fixture/"+fixture+"/wants")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	var wants []wantDiag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := m.Fset.Position(c.Pos())
				for _, match := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					wants = append(wants, wantDiag{file: pos.Filename, line: pos.Line, substr: match[1]})
				}
			}
		}
	}
	return wants
}

// matchWants asserts a one-to-one correspondence between want
// annotations and diagnostics: every want is matched by a diagnostic on
// its line containing the substring, and no diagnostic goes unmatched.
func matchWants(t *testing.T, wants []wantDiag, diags []Diagnostic) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzerFixtures is the golden-diagnostic suite: every analyzer must
// flag exactly the `// want`-annotated lines of its bad fixture and stay
// silent on its clean fixture.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name+"/bad", func(t *testing.T) {
			fixture := a.Name + "/bad"
			wants := parseWants(t, fixture)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want comments", fixture)
			}
			diags := runFixture(t, a, fixture)
			matchWants(t, wants, diags)
		})
		t.Run(a.Name+"/clean", func(t *testing.T) {
			diags := runFixture(t, a, a.Name+"/clean")
			for _, d := range diags {
				t.Errorf("clean fixture flagged: %s", d)
			}
		})
	}
}

// TestPrivacyFlowSubsumesReleasePath is the differential check for the
// releasepath → privacyflow migration: the retired intraprocedural
// analyzer's fixtures stay on disk, and the interprocedural engine must
// still flag every violation it caught (same lines, compatible
// messages) while accepting its clean fixture.
func TestPrivacyFlowSubsumesReleasePath(t *testing.T) {
	wants := parseWants(t, "releasepath/bad")
	if len(wants) == 0 {
		t.Fatal("releasepath bad fixture has no // want comments")
	}
	matchWants(t, wants, runFixture(t, PrivacyFlow, "releasepath/bad"))
	for _, d := range runFixture(t, PrivacyFlow, "releasepath/clean") {
		t.Errorf("releasepath clean fixture flagged: %s", d)
	}
}

// TestModuleClean is the smoke test: the full suite over the whole module
// must be silent at HEAD. A failure here means a real violation landed.
func TestModuleClean(t *testing.T) {
	m := testModule(t)
	diags := RunAnalyzers(m, m.Pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("module not clean: %s", d)
	}
}

func names(as []*Analyzer) string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return strings.Join(out, ",")
}

func TestSelect(t *testing.T) {
	all := Analyzers()
	tests := []struct {
		only, skip string
		want       string
		wantErr    bool
	}{
		{"", "", "atomicwrite,ctxpropagate,lockorder,mutexguard,obsnames,privacyflow,ruleindexuse,servertimeouts", false},
		{"mutexguard", "", "mutexguard", false},
		{"obsnames, atomicwrite", "", "atomicwrite,obsnames", false},
		{"privacyflow,lockorder", "", "lockorder,privacyflow", false},
		{"", "privacyflow,ctxpropagate", "atomicwrite,lockorder,mutexguard,obsnames,ruleindexuse,servertimeouts", false},
		{"mutexguard,obsnames", "obsnames", "mutexguard", false},
		{"nosuch", "", "", true},
		{"", "nosuch", "", true},
	}
	for _, tt := range tests {
		got, err := Select(all, tt.only, tt.skip)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Select(only=%q, skip=%q): expected error, got %s", tt.only, tt.skip, names(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(only=%q, skip=%q): %v", tt.only, tt.skip, err)
			continue
		}
		if names(got) != tt.want {
			t.Errorf("Select(only=%q, skip=%q) = %s, want %s", tt.only, tt.skip, names(got), tt.want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "obsnames", Message: "metric name \"X\" is not snake_case"},
		{Analyzer: "atomicwrite", Message: "os.WriteFile is not crash-safe"},
	}
	diags[0].Pos.Filename = "internal/obs/metrics.go"
	diags[0].Pos.Line = 12
	diags[0].Pos.Column = 7
	diags[1].Pos.Filename = "internal/datastore/datastore.go"
	diags[1].Pos.Line = 99
	diags[1].Pos.Column = 2

	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	first := got[0]
	if first["file"] != "internal/obs/metrics.go" || first["line"] != float64(12) ||
		first["column"] != float64(7) || first["analyzer"] != "obsnames" {
		t.Errorf("unexpected first entry: %v", first)
	}
	if !strings.Contains(first["message"].(string), "snake_case") {
		t.Errorf("message lost: %v", first["message"])
	}

	// The empty case must still be a JSON array, not null.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings serialized as %q, want []", buf.String())
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "mutexguard", Message: "field touched without lock"}
	d.Pos.Filename = "internal/stream/stream.go"
	d.Pos.Line = 42
	want := "internal/stream/stream.go:42: [mutexguard] field touched without lock"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestFilterIgnoredWildcard(t *testing.T) {
	// The ctxpropagate clean fixture exercises a real directive; here we
	// check the wildcard and multi-name forms against the regexp directly.
	for _, text := range []string{
		"//sslint:ignore ctxpropagate harness root",
		"// sslint:ignore atomicwrite,obsnames two at once",
		"//sslint:ignore * everything",
	} {
		if m := ignoreRe.FindStringSubmatch(text); m == nil {
			t.Errorf("directive not recognized: %q", text)
		}
	}
	if m := ignoreRe.FindStringSubmatch("// a stray sslint:ignore mention mid-comment"); m != nil {
		t.Errorf("non-directive comment matched: %q", m[0])
	}
}
