package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Compile-time wiring assertions: the HTTP clients must satisfy the
// interfaces the in-process services do.
var (
	_ phone.Store          = (*StoreClient)(nil)
	_ broker.StoreConn     = (*StoreClient)(nil)
	_ datastore.SyncTarget = (*BrokerClient)(nil)
	_ datastore.Directory  = (*BrokerClient)(nil)
)

var (
	t0   = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)
	home = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

// testDeployment spins up a broker server and one store server wired to it
// over real HTTP.
type testDeployment struct {
	brokerSvc    *broker.Service
	brokerClient *BrokerClient
	storeSvc     *datastore.Service
	storeClient  *StoreClient
}

func deploy(t *testing.T) *testDeployment {
	t.Helper()
	bsvc := broker.New()
	brokerServer := httptest.NewServer(NewBrokerHandler(bsvc))
	t.Cleanup(brokerServer.Close)
	bc := &BrokerClient{BaseURL: brokerServer.URL}

	// The store reaches the broker through the HTTP client (sync +
	// directory), like a real multi-host deployment.
	var storeURL string
	svc, err := datastore.New(datastore.Options{Sync: bc, Directory: &lazyDirectory{bc: bc, addr: &storeURL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	storeServer := httptest.NewServer(NewStoreHandler(svc))
	t.Cleanup(storeServer.Close)
	storeURL = storeServer.URL

	sc := &StoreClient{BaseURL: storeServer.URL}
	bsvc.RegisterStore(sc)
	return &testDeployment{brokerSvc: bsvc, brokerClient: bc, storeSvc: svc, storeClient: sc}
}

// lazyDirectory defers the store address until the test server is up.
type lazyDirectory struct {
	bc   *BrokerClient
	addr *string
}

func (d *lazyDirectory) RegisterContributor(name, _ string) error {
	return d.bc.RegisterContributor(name, *d.addr)
}

func TestEndToEndOverHTTP(t *testing.T) {
	d := deploy(t)

	// Alice registers on her store; the store registers her on the broker.
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if alice.Key == "" {
		t.Fatal("no key")
	}

	// Alice labels her campus and sets Fig. 4-style rules.
	rect, _ := geo.NewRect(geo.Point{Lat: 34.02, Lon: -118.50}, geo.Point{Lat: 34.03, Lon: -118.49})
	if err := d.storeClient.DefinePlace(alice.Key, "home", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	ruleJSON := `[
	  {"Consumer": ["Bob"], "Action": "Allow"},
	  {"Consumer": ["Bob"], "Context": ["Drive"],
	   "Action": {"Abstraction": {"Stress": "NotShared"}}}
	]`
	if err := d.storeClient.SetRules(alice.Key, []byte(ruleJSON)); err != nil {
		t.Fatal(err)
	}

	// Her phone runs a scripted morning over the HTTP client.
	p := &phone.Phone{Contributor: "alice", Key: alice.Key, Store: d.storeClient}
	rep, err := p.Run(&sensors.Scenario{
		Start: t0, Origin: home, Seed: 5,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill, Stressed: true},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Stressed: true, Heading: 80},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsUploaded == 0 || rep.RecordsWritten == 0 {
		t.Fatalf("phone report = %+v", rep)
	}

	// Bob registers on the broker, finds Alice, connects, and queries her
	// store directly.
	bob, err := d.brokerClient.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := d.brokerClient.Directory(bob.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 1 || dir[0].Name != "alice" || dir[0].RuleCount != 2 {
		t.Fatalf("directory = %+v", dir)
	}
	cred, err := d.brokerClient.Connect(bob.Key, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if cred.StoreAddr != d.storeClient.BaseURL {
		t.Errorf("credential addr = %q", cred.StoreAddr)
	}

	rels, err := d.storeClient.Query(cred.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("Bob should receive releases")
	}
	// While driving, stress must be withheld and ECG/Respiration blocked.
	var sawDrive, sawStill bool
	for _, rel := range rels {
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxDrive {
				sawDrive = true
				if rel.Segment != nil && (rel.Segment.HasChannel(wavesegment.ChannelECG) ||
					rel.Segment.HasChannel(wavesegment.ChannelRespiration)) {
					t.Error("stress-bearing channels leaked while driving")
				}
			}
			if c.Context == rules.CtxStressed {
				sawStill = true
			}
		}
	}
	if !sawDrive {
		t.Error("no driving releases seen")
	}
	if !sawStill {
		t.Error("stress label should flow outside driving")
	}

	// Credentials are vaulted.
	creds, err := d.brokerClient.Credentials(bob.Key)
	if err != nil || len(creds) != 1 || creds[0].Key != cred.Key {
		t.Errorf("credentials = %v, %v", creds, err)
	}
}

func TestBrokerSearchOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := d.storeClient.DefinePlace(alice.Key, "work", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}

	bob, err := d.brokerClient.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := timeutil.ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	got, err := d.brokerClient.Search(bob.Key, &broker.SearchQuery{
		Sensors:       []string{"ECG", "Respiration"},
		LocationLabel: "work",
		RepeatTime:    rep,
		Reference:     t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("search = %v", got)
	}

	// Lists and studies over the wire.
	if err := d.brokerClient.SaveList(bob.Key, "myStudy", got); err != nil {
		t.Fatal(err)
	}
	members, err := d.brokerClient.List(bob.Key, "myStudy")
	if err != nil || len(members) != 1 {
		t.Fatalf("list = %v, %v", members, err)
	}
	if err := d.brokerClient.CreateStudy("S"); err != nil {
		t.Fatal(err)
	}
	if err := d.brokerClient.JoinStudy(bob.Key, "S"); err != nil {
		t.Fatal(err)
	}
	ms, err := d.brokerClient.StudyMembers("S")
	if err != nil || len(ms) != 1 || ms[0] != "bob" {
		t.Fatalf("study members = %v, %v", ms, err)
	}
}

func TestQueryTextOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, _ := d.storeClient.Register("alice", "contributor")
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: 100 * time.Millisecond,
		Location: home, Channels: []string{wavesegment.ChannelECG},
		Values: [][]float64{{1}, {2}, {3}},
	}
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	bob, _ := d.storeClient.Register("bob", "consumer")
	rels, err := d.storeClient.QueryText(bob.Key, "channels(ECG) limit(10)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].Segment.NumSamples() != 3 {
		t.Fatalf("releases = %+v", rels)
	}
	if _, err := d.storeClient.QueryText(bob.Key, "bogus(("); err == nil {
		t.Error("bad query text should error")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	d := deploy(t)
	// Unauthorized.
	if _, err := d.storeClient.Query("bogus", &query.Query{}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("bad key error = %v", err)
	}
	// Conflict on duplicate registration.
	if _, err := d.storeClient.Register("dup", "consumer"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.storeClient.Register("dup", "consumer"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate error = %v", err)
	}
	// Unknown role.
	if _, err := d.storeClient.Register("x", "wizard"); err == nil {
		t.Error("unknown role should error")
	}
	// Not found.
	bob, _ := d.brokerClient.RegisterConsumer("bob")
	if _, err := d.brokerClient.Connect(bob.Key, "nobody"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown contributor error = %v", err)
	}
	// Forbidden: consumer uploading.
	bobStore, _ := d.storeClient.Register("bobstore", "consumer")
	seg := &wavesegment.Segment{
		Contributor: "bobstore", Start: t0, Interval: time.Second,
		Channels: []string{"ECG"}, Values: [][]float64{{1}},
	}
	if _, err := d.storeClient.Upload(bobStore.Key, []*wavesegment.Segment{seg}); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("forbidden error = %v", err)
	}
}

func TestMethodNotAllowedAndPages(t *testing.T) {
	d := deploy(t)
	resp, err := http.Get(d.storeClient.BaseURL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: HTTP %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow header = %q, want POST", allow)
	}
	for _, url := range []string{d.storeClient.BaseURL, d.brokerClient.BaseURL} {
		resp, err := http.Get(url + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("admin page %s: HTTP %d", url, resp.StatusCode)
		}
		resp, err = http.Get(url + "/nonexistent")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("bogus path %s: HTTP %d", url, resp.StatusCode)
		}
	}
}

func TestHealthEndpoints(t *testing.T) {
	d := deploy(t)
	if _, err := d.storeClient.Register("alice", "contributor"); err != nil {
		t.Fatal(err)
	}

	sh, err := d.storeClient.Health()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Status != "ok" {
		t.Errorf("store health status = %q", sh.Status)
	}
	if sh.UptimeS < 0 {
		t.Errorf("store uptime = %v", sh.UptimeS)
	}
	if sh.Users != 1 {
		t.Errorf("store health users = %d, want 1", sh.Users)
	}

	bh, err := d.brokerClient.Health()
	if err != nil {
		t.Fatal(err)
	}
	if bh.Status != "ok" {
		t.Errorf("broker health status = %q", bh.Status)
	}
	// Alice's store registration propagated to the broker directory.
	if bh.Contributors != 1 {
		t.Errorf("broker health contributors = %d, want 1", bh.Contributors)
	}
}

func TestRuleAwarePhoneOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, _ := d.storeClient.Register("alice", "contributor")
	if err := d.storeClient.SetRules(alice.Key, []byte(`[
	  {"Action":"Allow"},
	  {"Context":["Drive"],"Action":"Deny"}
	]`)); err != nil {
		t.Fatal(err)
	}
	p := &phone.Phone{Contributor: "alice", Key: alice.Key, Store: d.storeClient, RuleAware: true}
	rep, err := p.Run(&sensors.Scenario{
		Start: t0, Origin: home, Seed: 5,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 90},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsDiscarded == 0 || rep.PacketsUploaded == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
