package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// ObsNames audits every metric registration against the internal/obs
// registry: the name argument must be a compile-time string constant (so
// the metric namespace is greppable and stable), must be snake_case, and
// must be unique across the whole module — two call sites registering the
// same family is either a copy-paste bug or hidden coupling, and the obs
// registry panics at runtime if their schemas ever drift.
//
// It enforces the same hygiene on trace span names (obs.Span/Time/TimeErr
// and trace.Start): literal, dot-separated lowercase ("component.op" like
// "datastore.rule_eval"), and unique module-wide — a span name identifies
// exactly one instrumented operation, both in /debug/traces trees and in
// the sensorsafe_span_seconds histogram's "span" label.
//
// The obs package and its trace subpackage are exempt: their wrappers
// forward name parameters by design.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "obs metric and span names must be literal, well-cased, and unique module-wide",
	AppliesTo: func(modulePath, pkgPath string) bool {
		return pkgPath != modulePath+"/internal/obs" &&
			pkgPath != modulePath+"/internal/obs/trace"
	},
	Run: runObsNames,
}

// obsRegistrars are the obs functions and Registry methods whose first
// argument is a metric family name.
var obsRegistrars = map[string]bool{
	"NewCounter": true, "NewCounterVec": true,
	"NewGauge": true, "NewGaugeVec": true,
	"NewHistogram": true, "NewHistogramVec": true,
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

// spanRegistrars are the functions whose second argument (after the
// context) names a trace span.
var spanRegistrars = map[string]bool{
	"Span": true, "Time": true, "TimeErr": true, // package obs
	"Start": true, // package obs/trace
}

var snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// spanNameRe: dot-separated lowercase segments, "component.op" at minimum
// (a bare word has no component and collides across subsystems).
var spanNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

func runObsNames(pass *Pass) {
	seen, ok := pass.State["names"].(map[string]token.Position)
	if !ok {
		seen = make(map[string]token.Position)
		pass.State["names"] = seen
	}
	spansSeen, ok := pass.State["spans"].(map[string]token.Position)
	if !ok {
		spansSeen = make(map[string]token.Position)
		pass.State["spans"] = spansSeen
	}
	obsPath := pass.Module.Path + "/internal/obs"
	tracePath := obsPath + "/trace"
	inspectFuncs(pass.Pkg, func(n ast.Node, _ *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch pkg := fn.Pkg().Path(); {
		case pkg == obsPath && obsRegistrars[fn.Name()]:
			checkMetricName(pass, seen, fn.Name(), call.Args[0])
		case (pkg == obsPath || pkg == tracePath) && spanRegistrars[fn.Name()] && len(call.Args) >= 2:
			checkSpanName(pass, spansSeen, fn.Name(), call.Args[1])
		}
	})
}

func checkMetricName(pass *Pass, seen map[string]token.Position, fn string, arg ast.Expr) {
	tv := pass.Pkg.Info.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"metric name passed to obs.%s must be a compile-time string constant", fn)
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCaseRe.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q is not snake_case", name)
		return
	}
	if first, dup := seen[name]; dup {
		pass.Reportf(arg.Pos(),
			"metric name %q already registered at %s; families must have exactly one registration site",
			name, first)
		return
	}
	seen[name] = pass.Module.Fset.Position(arg.Pos())
}

func checkSpanName(pass *Pass, seen map[string]token.Position, fn string, arg ast.Expr) {
	tv := pass.Pkg.Info.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"span name passed to %s must be a compile-time string constant", fn)
		return
	}
	name := constant.StringVal(tv.Value)
	if !spanNameRe.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"span name %q is not dot-separated lowercase (want \"component.op\", e.g. \"datastore.rule_eval\")", name)
		return
	}
	if first, dup := seen[name]; dup {
		pass.Reportf(arg.Pos(),
			"span name %q already instrumented at %s; each span name identifies exactly one call site",
			name, first)
		return
	}
	seen[name] = pass.Module.Fset.Position(arg.Pos())
}
