// Package sensors synthesizes the sensor hardware of the paper's testbed —
// a Zephyr BioHarness chest band (ECG, respiration) and a smartphone
// (3-axis accelerometer, GPS, microphone) — as deterministic signal
// generators driven by a scripted scenario with ground-truth behavioural
// phases. The signals are shaped so the inference package can recover the
// ground truth from features (spike rate, band energy, GPS speed), which
// exercises exactly the code paths the paper's access-control layer needs:
// context labels derived from raw sensor channels.
package sensors

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// Vital-sign ground truth per behavioural state. These drive the generators
// and are what the inference thresholds in package inference are calibrated
// against.
const (
	CalmHeartRateBPM      = 65
	StressHeartRateBPM    = 95
	CalmRespirationRPM    = 14
	StressRespirationRPM  = 20
	SmokingRespirationRPM = 8 // deep, slow puffs
)

// Speeds (m/s) per transportation mode, used for GPS trajectory synthesis.
var modeSpeed = map[string]float64{
	rules.CtxStill: 0,
	rules.CtxWalk:  1.4,
	rules.CtxRun:   3.5,
	rules.CtxBike:  6.0,
	rules.CtxDrive: 15.0,
}

// Accelerometer oscillation parameters per mode: peak amplitude in g and
// dominant frequency in Hz.
var modeAccel = map[string]struct{ amp, freq float64 }{
	rules.CtxStill: {0.005, 0},
	rules.CtxWalk:  {0.35, 1.8},
	rules.CtxRun:   {0.90, 2.6},
	rules.CtxBike:  {0.18, 1.0},
	rules.CtxDrive: {0.05, 12.0},
}

// ModeSpeed returns the nominal speed (m/s) of a transportation mode.
func ModeSpeed(mode string) (float64, bool) {
	v, ok := modeSpeed[mode]
	return v, ok
}

// Phase is one scripted stretch of a contributor's day.
type Phase struct {
	// Duration of the phase.
	Duration time.Duration
	// Activity is the transportation mode (rules.CtxStill..CtxDrive).
	Activity string
	// Stressed, Smoking, Conversation flag the physiological /
	// behavioural states active throughout the phase.
	Stressed     bool
	Smoking      bool
	Conversation bool
	// Heading is the movement direction in degrees (0 = north); only
	// meaningful for moving activities.
	Heading float64
}

// Scenario scripts a recording session.
type Scenario struct {
	// Start is the session start instant.
	Start time.Time
	// Origin is the starting coordinate.
	Origin geo.Point
	// Phases play back-to-back.
	Phases []Phase
	// Seed makes the synthesized noise reproducible.
	Seed int64
	// SampleHz is the sampling rate for every channel (default 10).
	SampleHz float64
	// PacketSamples is the number of samples per upload packet, matching
	// the paper's note that the Zephyr band sends 64-sample packets
	// (default 64).
	PacketSamples int
}

// Duration returns the total scripted length.
func (sc *Scenario) Duration() time.Duration {
	var d time.Duration
	for _, p := range sc.Phases {
		d += p.Duration
	}
	return d
}

// Validate checks the scenario is runnable.
func (sc *Scenario) Validate() error {
	if sc.Start.IsZero() {
		return fmt.Errorf("sensors: scenario needs a start time")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("sensors: scenario has no phases")
	}
	for i, p := range sc.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("sensors: phase %d has non-positive duration", i)
		}
		if _, ok := modeSpeed[p.Activity]; !ok {
			return fmt.Errorf("sensors: phase %d has unknown activity %q", i, p.Activity)
		}
	}
	return nil
}

// Recording is the synthesized output: packetized wave segments per device
// plus the ground-truth annotations a perfect inference would produce.
type Recording struct {
	// ChestBand segments carry ECG + Respiration.
	ChestBand []*wavesegment.Segment
	// Phone segments carry AccelX/Y/Z, Latitude, Longitude, Microphone.
	Phone []*wavesegment.Segment
	// Truth is the scripted ground truth as annotation spans.
	Truth []wavesegment.Annotation
	// Path is the coordinate at each phase boundary (len(Phases)+1).
	Path []geo.Point
}

// AllSegments returns chest-band and phone segments interleaved by time.
func (r *Recording) AllSegments() []*wavesegment.Segment {
	out := make([]*wavesegment.Segment, 0, len(r.ChestBand)+len(r.Phone))
	i, j := 0, 0
	for i < len(r.ChestBand) && j < len(r.Phone) {
		if r.ChestBand[i].StartTime().Before(r.Phone[j].StartTime()) {
			out = append(out, r.ChestBand[i])
			i++
		} else {
			out = append(out, r.Phone[j])
			j++
		}
	}
	out = append(out, r.ChestBand[i:]...)
	return append(out, r.Phone[j:]...)
}

// Generate synthesizes a full recording for the scenario.
func Generate(contributor string, sc *Scenario) (*Recording, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	hz := sc.SampleHz
	if hz <= 0 {
		hz = 10
	}
	packet := sc.PacketSamples
	if packet <= 0 {
		packet = 64
	}
	interval := time.Duration(float64(time.Second) / hz)
	rng := rand.New(rand.NewSource(sc.Seed))

	rec := &Recording{Path: []geo.Point{sc.Origin}}
	pos := sc.Origin
	at := sc.Start

	chest := newPacketizer(contributor, interval, packet,
		[]string{wavesegment.ChannelECG, wavesegment.ChannelRespiration})
	phone := newPacketizer(contributor, interval, packet,
		[]string{
			wavesegment.ChannelAccelX, wavesegment.ChannelAccelY, wavesegment.ChannelAccelZ,
			wavesegment.ChannelLatitude, wavesegment.ChannelLongitude,
			wavesegment.ChannelMicrophone,
		})

	for _, p := range sc.Phases {
		n := int(float64(p.Duration) / float64(interval))
		if n == 0 {
			n = 1
		}
		phaseStart := at
		speed, _ := modeSpeed[p.Activity]
		acc := modeAccel[p.Activity]
		hr, rr := float64(CalmHeartRateBPM), float64(CalmRespirationRPM)
		if p.Stressed {
			hr, rr = StressHeartRateBPM, StressRespirationRPM
		}
		respDepth := 1.0
		if p.Smoking {
			rr = SmokingRespirationRPM
			respDepth = 2.5
		}

		headingRad := p.Heading * math.Pi / 180
		for i := 0; i < n; i++ {
			ts := float64(at.Sub(sc.Start)) / float64(time.Second)

			ecg := ecgSample(ts, hr, rng)
			resp := respDepth*math.Sin(2*math.Pi*rr/60*ts) + 0.05*rng.NormFloat64()

			ax := acc.amp*math.Sin(2*math.Pi*acc.freq*ts) + 0.01*rng.NormFloat64()
			ay := 0.6*acc.amp*math.Sin(2*math.Pi*acc.freq*ts+1.0) + 0.01*rng.NormFloat64()
			az := 1.0 + 0.4*acc.amp*math.Sin(2*math.Pi*acc.freq*ts+2.1) + 0.01*rng.NormFloat64()

			mic := 0.02 + 0.01*rng.NormFloat64()
			if p.Conversation {
				// Speech: syllabic energy bursts at ~4 Hz.
				mic = 0.25 + 0.2*math.Abs(math.Sin(2*math.Pi*4*ts)) + 0.05*rng.NormFloat64()
			}

			// Advance position.
			if speed > 0 {
				step := speed * float64(interval) / float64(time.Second)
				dLat := step * math.Cos(headingRad) / 111320.0
				dLon := step * math.Sin(headingRad) / (111320.0 * math.Cos(pos.Lat*math.Pi/180))
				pos.Lat += dLat
				pos.Lon += dLon
			}

			chest.add(at, pos, []float64{ecg, resp})
			phone.add(at, pos, []float64{ax, ay, az, pos.Lat, pos.Lon, mic})
			at = at.Add(interval)
		}
		phaseEnd := at
		rec.Path = append(rec.Path, pos)

		// Ground truth.
		addTruth := func(ctx string) {
			rec.Truth = append(rec.Truth, wavesegment.Annotation{Context: ctx, Start: phaseStart, End: phaseEnd})
		}
		addTruth(p.Activity)
		if p.Stressed {
			addTruth(rules.CtxStressed)
		} else {
			addTruth(rules.CtxNotStressed)
		}
		if p.Smoking {
			addTruth(rules.CtxSmoking)
		}
		if p.Conversation {
			addTruth(rules.CtxConversation)
		}
	}
	rec.ChestBand = chest.finish()
	rec.Phone = phone.finish()
	return rec, nil
}

// ecgSample synthesizes an ECG-like trace: a baseline with R-peaks at the
// heart rate. The R window is a fixed 150 ms so that even at the default
// 10 Hz sampling every beat lands at least one (and at most two) samples in
// the peak, making the peak-rate feature track the true heart rate.
func ecgSample(ts, bpm float64, rng *rand.Rand) float64 {
	beatPeriod := 60.0 / bpm
	tIn := math.Mod(ts, beatPeriod)
	phase := tIn / beatPeriod
	v := 0.05 * rng.NormFloat64()
	switch {
	case tIn < 0.15: // R complex (fixed width)
		v += 1.2
	case tIn < 0.25: // S dip
		v -= 0.3
	case phase > 0.55 && phase < 0.70: // T wave
		v += 0.25
	}
	return v
}

// packetizer accumulates samples and emits fixed-size wave segments the way
// the real hardware streams packets.
type packetizer struct {
	contributor string
	interval    time.Duration
	packet      int
	channels    []string

	start  time.Time
	loc    geo.Point
	values [][]float64
	out    []*wavesegment.Segment
}

func newPacketizer(contributor string, interval time.Duration, packet int, channels []string) *packetizer {
	return &packetizer{contributor: contributor, interval: interval, packet: packet, channels: channels}
}

func (p *packetizer) add(at time.Time, loc geo.Point, row []float64) {
	if len(p.values) == 0 {
		p.start = at
		p.loc = loc
	}
	p.values = append(p.values, row)
	if len(p.values) >= p.packet {
		p.flush()
	}
}

func (p *packetizer) flush() {
	if len(p.values) == 0 {
		return
	}
	p.out = append(p.out, &wavesegment.Segment{
		Contributor: p.contributor,
		Start:       p.start,
		Interval:    p.interval,
		Location:    p.loc,
		Channels:    append([]string(nil), p.channels...),
		Values:      p.values,
	})
	p.values = nil
}

func (p *packetizer) finish() []*wavesegment.Segment {
	p.flush()
	return p.out
}

// DayInTheLife returns the paper's §6 storyline as a compact scenario:
// a morning at home, a stressful drive to campus, a walk across campus
// with a conversation, desk work (stressed, then a smoke break), and the
// drive home. Durations are scaled by the given factor so tests can run a
// miniature day (scale 1 ≈ 66 minutes).
func DayInTheLife(start time.Time, origin geo.Point, scale float64) *Scenario {
	d := func(mins float64) time.Duration {
		return time.Duration(mins * scale * float64(time.Minute))
	}
	return &Scenario{
		Start:  start,
		Origin: origin,
		Seed:   42,
		Phases: []Phase{
			{Duration: d(10), Activity: rules.CtxStill},                                // home, calm
			{Duration: d(12), Activity: rules.CtxDrive, Stressed: true, Heading: 80},   // stressful commute
			{Duration: d(8), Activity: rules.CtxWalk, Conversation: true, Heading: 10}, // campus walk, chatting
			{Duration: d(20), Activity: rules.CtxStill, Stressed: true},                // desk, deadline
			{Duration: d(4), Activity: rules.CtxStill, Smoking: true},                  // smoke break
			{Duration: d(12), Activity: rules.CtxDrive, Heading: 260},                  // drive home, calm
		},
	}
}
