// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §4. The paper (an architecture description)
// reports no measured numbers, so each experiment operationalizes one of
// its claims — wave-segment optimization cuts record counts and query
// latency (E2), the broker is not a data-path bottleneck (E3), rule
// evaluation stays cheap as rule sets grow (E4), contributor search over
// replicated rules scales (E5), and privacy-rule-aware collection shrinks
// uploads without changing what consumers can see (E6). Each function
// returns a Table that cmd/benchharness prints and EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a caption, column headers, and rows.
type Table struct {
	ID      string
	Caption string
	Headers []string
	Rows    [][]string
	// Notes follow the table (assumptions, expected shape).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
