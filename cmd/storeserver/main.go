// Command storeserver runs one SensorSafe remote data store: the
// per-contributor (or institutional) server that ingests sensor uploads,
// enforces privacy rules on every consumer query, and synchronizes rule
// replicas to the broker.
//
// Usage:
//
//	storeserver -listen :8081 -name http://localhost:8081 \
//	    -dir ./data/store1 -broker http://localhost:8080
//
// With -broker set, contributor registrations and rule changes propagate to
// the broker over its HTTP API, exactly as in a multi-host deployment; add
// -sync-interval 30s to run periodic anti-entropy so rule replicas converge
// even after a broker outage outlasts the push retries.
//
// With -dir set, segments live in the persistent columnar engine
// (internal/segstore) under <dir>/segstore; tune it with -segstore-dir,
// -memtable-bytes, and -compact-interval, and inspect it at
// /debug/segstore (or `consumercli storestats`).
//
// The store exposes Prometheus metrics at /metrics and a JSON health report
// at /healthz; pass -pprof to additionally mount net/http/pprof profiling
// handlers under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/overload"
)

// shutdownGrace bounds how long in-flight requests may run after SIGINT/
// SIGTERM before the listener is torn down.
const shutdownGrace = 5 * time.Second

func main() {
	listen := flag.String("listen", ":8081", "address to listen on")
	name := flag.String("name", "", "public address of this store (defaults to http://localhost<listen>)")
	dir := flag.String("dir", "", "storage directory (empty = in-memory)")
	brokerURL := flag.String("broker", "", "broker base URL for rule sync and contributor registration")
	syncInterval := flag.Duration("sync-interval", 0, "anti-entropy period for broker rule replicas (0 = disabled; only meaningful with -broker)")
	maxSamples := flag.Int("max-segment-samples", 0, "wave-segment size cap (0 = default)")
	segstoreDir := flag.String("segstore-dir", "", "segment-engine directory (default <dir>/segstore; only meaningful with -dir)")
	memtableBytes := flag.Int64("memtable-bytes", 0, "segment-engine hot-tail budget before flushing to disk (0 = default 4MiB)")
	compactInterval := flag.Duration("compact-interval", 30*time.Second, "segment-engine background compaction period (0 = disabled)")
	useTLS := flag.Bool("tls", false, "serve HTTPS with a self-signed certificate")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	if *name == "" {
		*name = "http://localhost" + *listen
	}

	opts := datastore.Options{
		Name:              *name,
		Dir:               *dir,
		MaxSegmentSamples: *maxSamples,
		SegstoreDir:       *segstoreDir,
		MemtableBytes:     *memtableBytes,
		CompactInterval:   *compactInterval,
	}
	if *brokerURL != "" {
		bc := &httpapi.BrokerClient{BaseURL: *brokerURL}
		opts.Sync = bc
		opts.Directory = bc
		opts.SyncInterval = *syncInterval
	}
	svc, err := datastore.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "storeserver: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()

	logger := obs.NewLogger("storeserver", os.Stderr)
	logger.Info("starting", "version", obs.Version)
	logger.Info("listening", "name", *name, "listen", *listen,
		"dir", *dir, "broker", *brokerURL, "sync_interval", syncInterval.String(),
		"compact_interval", compactInterval.String(),
		"tls", *useTLS, "pprof", *withPprof)
	ctrl := overload.NewController(overload.StoreDefaults())
	handler := mountPprof(httpapi.NewStoreHandlerOverload(svc, ctrl), *withPprof)
	// Slowloris hardening: bound header/body reads and idle keep-alives.
	// Deliberately no WriteTimeout — it would cap every SSE stream's
	// lifetime; the overload middleware sets per-request write deadlines
	// and serveSSE rolls its own per frame.
	server := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if *useTLS {
		tlsCfg, err := httpapi.SelfSignedTLS([]string{"localhost", "127.0.0.1"}, 0)
		if err != nil {
			log.Fatalf("storeserver: %v", err)
		}
		server.TLSConfig = tlsCfg
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if *useTLS {
			errCh <- server.ListenAndServeTLS("", "")
			return
		}
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("storeserver: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: send the terminal bye to live-sharing subscribers
	// first so blocked long-polls and SSE streams return inside the grace
	// window, then drain the remaining requests.
	logger.Info("shutting down", "grace", shutdownGrace.String())
	svc.Stream().Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "err", err)
	}
}

// mountPprof optionally layers the net/http/pprof handlers over the API.
// Profiling stays opt-in: the endpoints expose heap contents and must not be
// reachable on a store that holds real sensor data unless deliberately
// enabled.
func mountPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	root := http.NewServeMux()
	root.Handle("/", h)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}
