// Package clean shows the disciplined counterparts the lockorder
// analyzer must accept: a consistent acquisition order, unlock before a
// blocking send, and the non-blocking select-with-default idiom under a
// lock.
package clean

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// Both call paths take the locks in the same order: edges exist but no
// cycle forms.
func first() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

type queue struct {
	mu  sync.Mutex
	buf []int
	ch  chan int
}

// push releases the lock before the potentially-blocking send.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.mu.Unlock()
	q.ch <- v
}

// tryPush sends under the lock but can never block: select with a
// default case is the sanctioned non-blocking notify idiom.
func (q *queue) tryPush(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// spawned sends from a goroutine: the spawner's lock is not held there.
func (q *queue) spawned(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- v
	}()
	q.buf = append(q.buf, v)
}
