// Package clean shows every access shape the mutexguard analyzer must
// accept: lock held in the body, the Locked-suffix convention, and the
// documented caller-holds contract.
package clean

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// addLocked follows the Locked-suffix convention for helpers running
// under a caller's lock.
func (c *counter) addLocked(d int) { c.n += d }

// sum reports the raw value; callers hold c.mu.
func (c *counter) sum() int { return c.n }

// store is the segstore reader-set shape done right: snapshot under the
// lock, iterate outside it.
type store struct {
	mu      sync.Mutex
	readers []int // guarded by mu
}

func (s *store) snapshot() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.readers))
	copy(out, s.readers)
	return out
}

// swapLocked replaces the reader set; callers hold s.mu (the compaction
// commit path).
func (s *store) swapLocked(next []int) { s.readers = next }
