package segstore

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sensorsafe/internal/storage"
)

// flatten reduces scan results to per-contributor timestamp→row maps.
// Wave-segment merging during compaction changes record boundaries, so
// equivalence is defined over the flattened samples, not records. A
// timestamp appearing twice for one contributor fails the test — that
// is a duplicated record.
func flatten(t *testing.T, res []storage.Result) map[string]map[int64][]float64 {
	t.Helper()
	out := make(map[string]map[int64][]float64)
	for _, r := range res {
		m := out[r.Segment.Contributor]
		if m == nil {
			m = make(map[int64][]float64)
			out[r.Segment.Contributor] = m
		}
		for i, row := range r.Segment.Values {
			var ts int64
			if r.Segment.Interval > 0 {
				ts = r.Segment.Start.Add(time.Duration(i) * r.Segment.Interval).UnixNano()
			} else {
				ts = r.Segment.Timestamps[i].UnixNano()
			}
			if _, dup := m[ts]; dup {
				t.Fatalf("contributor %s: sample at %d appears twice (duplicated record)",
					r.Segment.Contributor, ts)
			}
			m[ts] = row
		}
	}
	return out
}

func mustScan(t *testing.T, s *Store) []storage.Result {
	t.Helper()
	res, err := s.Scan(storage.Query{})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return res
}

// fillContiguous writes `files` L0 files of `perFile` contiguous
// 5-sample records per contributor — adjacent records merge during
// compaction.
func fillContiguous(t *testing.T, s *Store, contributors []string, files, perFile int) []storage.ID {
	t.Helper()
	var ids []storage.ID
	n := 0
	for f := 0; f < files; f++ {
		for j := 0; j < perFile; j++ {
			for _, c := range contributors {
				off := time.Duration(n*5) * time.Second
				id, err := s.Put(mkSeg(c, off, 5))
				if err != nil {
					t.Fatalf("put: %v", err)
				}
				ids = append(ids, id)
			}
			n++
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return ids
}

// TestCompactionScanEquivalence is the core invariant: compaction may
// re-shard and wave-merge records, but the flattened sample streams
// before and after must be identical.
func TestCompactionScanEquivalence(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{MaxSegmentSamples: 40})
	defer s.Close()
	fillContiguous(t, s, []string{"alice", "bob"}, 4, 12)

	before := flatten(t, mustScan(t, s))
	countBefore := s.Count()
	if err := s.compactOnce(true); err != nil {
		t.Fatalf("compact: %v", err)
	}
	after := flatten(t, mustScan(t, s))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("flattened samples diverge across compaction")
	}

	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if st.MergedRecords == 0 {
		t.Fatal("contiguous records were not wave-merged")
	}
	if got := s.Count(); got != countBefore-int(st.MergedRecords) {
		t.Fatalf("count %d after merging %d of %d records", got, st.MergedRecords, countBefore)
	}
	// The merge cap must hold: no output record exceeds MaxSegmentSamples.
	for _, r := range mustScan(t, s) {
		if r.Segment.NumSamples() > 40 {
			t.Fatalf("compacted record has %d samples, cap is 40", r.Segment.NumSamples())
		}
	}
	// All L0 files were replaced by L1 output.
	for _, lv := range st.Levels {
		if lv.Level == 0 && lv.Files != 0 {
			t.Fatalf("%d L0 files survived forced compaction", lv.Files)
		}
	}
}

// TestCompactionPurgesTombstones verifies deletes are physically
// reclaimed: after compaction the tombstone set is empty, the reclaim
// counter advanced, and the data is gone from a fresh reopen.
func TestCompactionPurgesTombstones(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	ids := fillContiguous(t, s, []string{"alice"}, 2, 10)
	dead := []storage.ID{ids[1], ids[7], ids[13]}
	for _, id := range dead {
		if err := s.Delete(id); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if got := s.Stats().Tombstones; got != len(dead) {
		t.Fatalf("tombstones before compaction: %d want %d", got, len(dead))
	}
	want := flatten(t, mustScan(t, s))

	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st := s.Stats()
	if st.Tombstones != 0 {
		t.Fatalf("tombstones after compaction: %d want 0", st.Tombstones)
	}
	if st.ReclaimedTombs != uint64(len(dead)) {
		t.Fatalf("reclaimed %d records, want %d", st.ReclaimedTombs, len(dead))
	}
	if got := flatten(t, mustScan(t, s)); !reflect.DeepEqual(want, got) {
		t.Fatal("live samples changed across tombstone reclamation")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The reclaim survives a reopen — nothing resurrects from any file.
	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if got := flatten(t, mustScan(t, s2)); !reflect.DeepEqual(want, got) {
		t.Fatal("live samples changed across reopen after reclamation")
	}
	for _, id := range dead {
		if _, err := s2.Get(id); err == nil {
			t.Fatalf("reclaimed record %d resurrected", id)
		}
	}
	if s2.Stats().Tombstones != 0 {
		t.Fatal("tombstones reappeared after reopen")
	}
}

// TestKillDuringCompaction injects a crash at every compaction stage,
// reopens the store, and demands the flattened sample streams match the
// pre-compaction state exactly: zero data loss, zero duplicates,
// whichever side of the manifest commit point the kill landed on.
func TestKillDuringCompaction(t *testing.T) {
	stages := []string{"compact.begin", "compact.files", "compact.manifest", "compact.done"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openTestStore(t, dir, Options{MaxSegmentSamples: 40})
			ids := fillContiguous(t, s, []string{"alice", "bob"}, 3, 8)
			// Some tombstones so the kill also exercises reclamation.
			for _, id := range []storage.ID{ids[2], ids[11]} {
				if err := s.Delete(id); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
			want := flatten(t, mustScan(t, s))

			boom := errors.New("simulated kill")
			s.crashHook = func(st string) error {
				if st == stage {
					return boom
				}
				return nil
			}
			if err := s.compactOnce(true); !errors.Is(err, boom) {
				t.Fatalf("compact: got %v, want injected kill", err)
			}
			crash(t, s)

			s2 := openTestStore(t, dir, Options{})
			defer s2.Close()
			got := flatten(t, mustScan(t, s2))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("samples diverge after kill at %s", stage)
			}
			// Deleted records stay deleted regardless of where the kill hit.
			for _, id := range []storage.ID{ids[2], ids[11]} {
				if _, err := s2.Get(id); err == nil {
					t.Fatalf("deleted record %d resurrected by kill at %s", id, stage)
				}
			}
			// And the store remains fully operational: ingest, flush,
			// and a clean compaction all work on the recovered state.
			if _, err := s2.Put(mkSeg("carol", 0, 5)); err != nil {
				t.Fatalf("put after recovery: %v", err)
			}
			if err := s2.Compact(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			want["carol"] = flatten(t, mustScan(t, s2))["carol"]
			if got := flatten(t, mustScan(t, s2)); !reflect.DeepEqual(want, got) {
				t.Fatal("samples diverge after post-recovery compaction")
			}
		})
	}
}

// TestCompactionUnderConcurrentIngest runs ingest, deletes, and scans
// concurrently with repeated flush+compact cycles, then verifies every
// surviving record is present exactly once with intact payloads.
func TestCompactionUnderConcurrentIngest(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{MemtableBytes: 16 << 10, L0CompactThreshold: 2})
	defer s.Close()

	var (
		mu      sync.Mutex
		alive   = make(map[storage.ID]string)
		deleted = make(map[storage.ID]bool)
	)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	compactorDone := make(chan struct{})

	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := fmt.Sprintf("writer%d", w)
			for i := 0; i < 150; i++ {
				seg := mkSeg(c, time.Duration(i*10)*time.Second, 6)
				id, err := s.Put(seg)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				mu.Lock()
				alive[id] = blob(t, seg)
				if i%17 == 0 {
					if err := s.Delete(id); err != nil {
						t.Errorf("delete: %v", err)
					} else {
						delete(alive, id)
						deleted[id] = true
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	go func() {
		defer close(compactorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			if _, err := s.Scan(storage.Query{Contributor: "writer0"}); err != nil {
				t.Errorf("scan during compaction: %v", err)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	<-compactorDone
	if t.Failed() {
		t.FailNow()
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("final compact: %v", err)
	}

	got := scanIDs(t, s)
	// Wave-merging absorbed some records into neighbors (keeping the
	// earlier ID), so every returned ID must be a live one and every
	// live sample must appear exactly once; flatten() fails on dupes.
	fl := flatten(t, mustScan(t, s))
	samples := 0
	for _, m := range fl {
		samples += len(m)
	}
	if want := len(alive) * 6; samples != want {
		t.Fatalf("%d live samples, want %d", samples, want)
	}
	for id := range got {
		if alive[id] != got[id] {
			t.Fatalf("scan returned id %d with wrong or deleted payload", id)
		}
	}
	for id, b := range alive {
		if got[id] != b {
			t.Fatalf("live record %d lost or corrupted", id)
		}
	}
	for id := range deleted {
		if _, err := s.Get(id); err == nil {
			t.Fatalf("deleted record %d still readable", id)
		}
	}
	if s.Count() != len(got) {
		t.Fatalf("Count()=%d but scan returned %d records", s.Count(), len(got))
	}
}
