package segstore

import (
	"sort"

	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// memtable is the bounded hot tail: recent writes absorbed from the WAL,
// held sorted so flushes and scans stream it in (start, id) order.
// Not safe for concurrent use; the Store guards it with its mutex.
type memtable struct {
	byID    map[storage.ID]*wavesegment.Segment
	byStart []rec // sorted by (StartTime, id)
	bytes   int64 // approximate encoded size of held segments

	firstSeq uint64 // WAL seq of the first record absorbed (0 when empty)
	lastSeq  uint64 // WAL seq of the latest record absorbed
}

func newMemtable() *memtable {
	return &memtable{byID: make(map[storage.ID]*wavesegment.Segment)}
}

func (m *memtable) len() int { return len(m.byID) }

// search returns the insertion index for (start, id) in byStart.
func (m *memtable) search(start int64, id storage.ID) int {
	return sort.Search(len(m.byStart), func(i int) bool {
		si := m.byStart[i].seg.StartTime().UnixNano()
		if si != start {
			return si > start
		}
		return m.byStart[i].id >= id
	})
}

// put inserts or replaces a record and tracks the WAL sequence that
// produced it.
func (m *memtable) put(id storage.ID, seg *wavesegment.Segment, seq uint64, encodedLen int) {
	if old, ok := m.byID[id]; ok {
		m.removeFromIndex(id, old)
	}
	m.byID[id] = seg
	i := m.search(seg.StartTime().UnixNano(), id)
	m.byStart = append(m.byStart, rec{})
	copy(m.byStart[i+1:], m.byStart[i:])
	m.byStart[i] = rec{id: id, seg: seg}
	m.bytes += int64(encodedLen)
	if m.firstSeq == 0 {
		m.firstSeq = seq
	}
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
}

// delete removes a record if present; returns whether it was held here.
func (m *memtable) delete(id storage.ID, seq uint64) bool {
	seg, ok := m.byID[id]
	if !ok {
		return false
	}
	delete(m.byID, id)
	m.removeFromIndex(id, seg)
	if m.firstSeq == 0 {
		m.firstSeq = seq
	}
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
	return true
}

func (m *memtable) removeFromIndex(id storage.ID, seg *wavesegment.Segment) {
	i := m.search(seg.StartTime().UnixNano(), id)
	if i < len(m.byStart) && m.byStart[i].id == id {
		m.byStart = append(m.byStart[:i], m.byStart[i+1:]...)
	}
}

// sorted returns the underlying (start, id)-ordered records. Callers
// must not mutate the slice; copy before releasing the Store lock.
func (m *memtable) sorted() []rec { return m.byStart }
