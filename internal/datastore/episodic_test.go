package datastore

import (
	"testing"
	"time"

	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// The paper motivates per-sample timestamps in wave segments with
// adaptive, compressive, and episodic sampling (§5.1). This test drives an
// episodic (irregularly-timestamped) segment through the full pipeline:
// upload, storage round trip, enforced query with a time window, and an
// annotation-driven abstraction — shapes the uniform-interval tests never
// exercise.
func TestEpisodicSamplingPipeline(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)

	// Episodic GPS fixes: bursts when moving, long gaps when still.
	gaps := []time.Duration{
		0, time.Second, time.Second, 2 * time.Second, // burst
		5 * time.Minute,          // long gap
		time.Second, time.Second, // burst
		10 * time.Minute, // longer gap
		time.Second,
	}
	seg := &wavesegment.Segment{
		Contributor: "alice",
		Location:    ucla,
		Channels:    []string{wavesegment.ChannelLatitude, wavesegment.ChannelLongitude},
	}
	at := t0
	for i, g := range gaps {
		at = at.Add(g)
		seg.Timestamps = append(seg.Timestamps, at)
		seg.Values = append(seg.Values, []float64{34.0 + float64(i)*0.001, -118.4})
	}
	seg.Start = seg.Timestamps[0]
	_ = seg.Annotate(rules.CtxDrive, t0, t0.Add(4*time.Second))

	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Consumer":["Bob"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}

	// Storage round trip preserves irregular timestamps.
	own, err := s.QueryOwn(alice.Key, &query.Query{})
	if err != nil || len(own) != 1 {
		t.Fatalf("own = %v, %v", own, err)
	}
	if own[0].Interval != 0 || len(own[0].Timestamps) != len(gaps) {
		t.Fatalf("timestamped shape lost: interval=%v timestamps=%d", own[0].Interval, len(own[0].Timestamps))
	}

	// Enforced query with a window covering only the first burst.
	rels, err := s.Query(bob.Key, &query.Query{From: t0, To: t0.Add(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, rel := range rels {
		if rel.Segment == nil {
			continue
		}
		samples += rel.Segment.NumSamples()
		for _, ts := range rel.Segment.Timestamps {
			if ts.Before(t0) || !ts.Before(t0.Add(10*time.Second)) {
				t.Errorf("released sample at %v outside requested window", ts)
			}
		}
	}
	if samples != 4 {
		t.Errorf("released %d samples from the first burst, want 4", samples)
	}

	// Hiding activity blocks the GPS-derived channels... but here location
	// granularity gates them: clamp location to City and the raw fixes
	// disappear while the Drive label still flows.
	if err := s.SetRules(alice.Key, []byte(`[
	  {"Consumer":["Bob"],"Action":"Allow"},
	  {"Consumer":["Bob"],"Action":{"Abstraction":{"Location":"City"}}}
	]`)); err != nil {
		t.Fatal(err)
	}
	rels, err = s.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sawDrive := false
	for _, rel := range rels {
		if rel.Segment != nil &&
			(rel.Segment.HasChannel(wavesegment.ChannelLatitude) || rel.Segment.HasChannel(wavesegment.ChannelLongitude)) {
			t.Error("raw GPS fixes leaked below Coordinates granularity")
		}
		if rel.Location.Point != nil {
			t.Error("exact location leaked")
		}
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxDrive {
				sawDrive = true
			}
		}
	}
	if !sawDrive {
		t.Error("drive label should still flow at city-level location")
	}
}
