// Command brokerserver runs the SensorSafe broker: the directory of data
// contributors and their remote data stores, the replicated privacy-rule
// search index, and the consumer credential vault. Sensor data never flows
// through it.
//
// Usage:
//
//	brokerserver -listen :8080
package main

import (
	"flag"
	"log"
	"net/http"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/httpapi"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	dir := flag.String("dir", "", "state directory (empty = in-memory)")
	useTLS := flag.Bool("tls", false, "serve HTTPS with a self-signed certificate")
	flag.Parse()

	svc, err := broker.NewPersistent(*dir)
	if err != nil {
		log.Fatalf("brokerserver: %v", err)
	}
	log.Printf("broker listening on %s (tls=%v)", *listen, *useTLS)
	handler := httpapi.NewBrokerHandler(svc)
	if *useTLS {
		tlsCfg, err := httpapi.SelfSignedTLS([]string{"localhost", "127.0.0.1"}, 0)
		if err != nil {
			log.Fatalf("brokerserver: %v", err)
		}
		server := &http.Server{Addr: *listen, Handler: handler, TLSConfig: tlsCfg}
		if err := server.ListenAndServeTLS("", ""); err != nil {
			log.Fatalf("brokerserver: %v", err)
		}
		return
	}
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatalf("brokerserver: %v", err)
	}
}
