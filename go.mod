module sensorsafe

go 1.22
