package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/overload"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/wavesegment"
)

// Wire types shared by the store server and client.

type registerReq struct {
	Name string `json:"name"`
	Role string `json:"role"` // "contributor" or "consumer"
}

type registerResp struct {
	Name string      `json:"name"`
	Role string      `json:"role"`
	Key  auth.APIKey `json:"key"`
}

type uploadReq struct {
	Key      auth.APIKey            `json:"key"`
	Segments []*wavesegment.Segment `json:"segments"`
}

type uploadResp struct {
	Records int `json:"records"`
}

type queryReq struct {
	Key auth.APIKey `json:"key"`
	// Query is the structured form; Text is the mini-language alternative
	// (used by CLIs). Text wins when both are present.
	Query *query.Query `json:"query,omitempty"`
	Text  string       `json:"text,omitempty"`
}

type queryResp struct {
	Releases []*abstraction.Release `json:"releases"`
}

type queryOwnResp struct {
	Segments []*wavesegment.Segment `json:"segments"`
}

type rulesSetReq struct {
	Key   auth.APIKey     `json:"key"`
	Rules json.RawMessage `json:"rules"`
}

type rulesGetReq struct {
	Key auth.APIKey `json:"key"`
}

type rulesGetResp struct {
	Rules json.RawMessage `json:"rules"`
}

type placeDefineReq struct {
	Key    auth.APIKey `json:"key"`
	Label  string      `json:"label"`
	Region geo.Region  `json:"region"`
}

type placesListResp struct {
	Places []geo.Region `json:"places"`
}

type groupsAssignReq struct {
	Key      auth.APIKey `json:"key"`
	Consumer string      `json:"consumer"`
	Groups   []string    `json:"groups"`
}

type auditEventsReq struct {
	Key      auth.APIKey `json:"key"`
	Consumer string      `json:"consumer,omitempty"`
	Since    string      `json:"since,omitempty"` // RFC3339
	Limit    int         `json:"limit,omitempty"`
}

type auditEventsResp struct {
	Events []audit.Event `json:"events"`
}

type auditSummaryResp struct {
	Consumers []audit.ConsumerSummary `json:"consumers"`
}

type recommendReq struct {
	Key         auth.APIKey `json:"key"`
	MinOverlap  float64     `json:"minOverlap,omitempty"`
	MinDuration string      `json:"minDuration,omitempty"` // Go duration, e.g. "2m"
}

type recommendResp struct {
	Suggestions []recommend.Suggestion `json:"suggestions"`
}

type passwordReq struct {
	Key      auth.APIKey `json:"key"`
	Password string      `json:"password"`
}

type loginReq struct {
	Name     string `json:"name"`
	Password string `json:"password"`
}

type loginResp struct {
	Token string `json:"token"`
}

func (q *queryReq) resolve() (*query.Query, error) {
	if q.Text != "" {
		return query.Parse(q.Text)
	}
	if q.Query != nil {
		return q.Query, nil
	}
	return &query.Query{}, nil
}

// NewStoreHandler builds the HTTP API for one remote data store with a
// default admission controller (see NewStoreHandlerOverload).
func NewStoreHandler(svc *datastore.Service) http.Handler {
	return NewStoreHandlerOverload(svc, overload.NewController(overload.StoreDefaults()))
}

// NewStoreHandlerOverload builds the store API around an explicit
// admission controller, wrapped in the observability and overload
// middleware (metrics, request logging, X-Request-ID propagation,
// class-ordered load shedding). The controller is fed the segment
// engine's live backlog as pressure signals, so a struggling storage
// layer browns out stream delivery and queries before ingest suffers.
func NewStoreHandlerOverload(svc *datastore.Service, ctrl *overload.Controller) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	registerStorePressure(ctrl, svc)

	mux.HandleFunc("/api/register", post(func(ctx context.Context, r *registerReq) (registerResp, error) {
		var u auth.User
		var err error
		switch r.Role {
		case "contributor":
			u, err = svc.RegisterContributor(r.Name)
		case "consumer", "":
			u, err = svc.RegisterConsumer(r.Name)
		default:
			return registerResp{}, fmt.Errorf("httpapi: unknown role %q", r.Role)
		}
		if err != nil {
			return registerResp{}, err
		}
		return registerResp{Name: u.Name, Role: u.Role.String(), Key: u.Key}, nil
	}))

	mux.HandleFunc("/api/upload", post(func(ctx context.Context, r *uploadReq) (uploadResp, error) {
		n, err := svc.UploadCtx(ctx, r.Key, r.Segments)
		if err != nil {
			return uploadResp{}, err
		}
		return uploadResp{Records: n}, nil
	}))

	mux.HandleFunc("/api/query", post(func(ctx context.Context, r *queryReq) (queryResp, error) {
		q, err := r.resolve()
		if err != nil {
			return queryResp{}, err
		}
		rels, err := svc.QueryCtx(ctx, r.Key, q)
		if err != nil {
			return queryResp{}, err
		}
		return queryResp{Releases: rels}, nil
	}))

	mux.HandleFunc("/api/queryown", post(func(ctx context.Context, r *queryReq) (queryOwnResp, error) {
		q, err := r.resolve()
		if err != nil {
			return queryOwnResp{}, err
		}
		segs, err := svc.QueryOwn(r.Key, q)
		if err != nil {
			return queryOwnResp{}, err
		}
		// The owner-review endpoint is the one sanctioned raw egress:
		// QueryOwn authenticates the contributor role and scopes the scan to
		// the key owner's records, so no third party's data can flow here.
		//sslint:ignore privacyflow owner-only endpoint; QueryOwn is scoped to the authenticated contributor
		return queryOwnResp{Segments: segs}, nil
	}))

	mux.HandleFunc("/api/rules/set", post(func(ctx context.Context, r *rulesSetReq) (okResp, error) {
		if err := svc.SetRules(r.Key, r.Rules); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/rules/get", post(func(ctx context.Context, r *rulesGetReq) (rulesGetResp, error) {
		data, err := svc.Rules(r.Key)
		if err != nil {
			return rulesGetResp{}, err
		}
		return rulesGetResp{Rules: data}, nil
	}))

	mux.HandleFunc("/api/places/define", post(func(ctx context.Context, r *placeDefineReq) (okResp, error) {
		if err := svc.DefinePlace(r.Key, r.Label, r.Region); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/places/list", post(func(ctx context.Context, r *rulesGetReq) (placesListResp, error) {
		ps, err := svc.Places(r.Key)
		if err != nil {
			return placesListResp{}, err
		}
		return placesListResp{Places: ps}, nil
	}))

	mux.HandleFunc("/api/groups/assign", post(func(ctx context.Context, r *groupsAssignReq) (okResp, error) {
		if err := svc.AssignConsumerGroups(r.Key, r.Consumer, r.Groups); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/audit/events", post(func(ctx context.Context, r *auditEventsReq) (auditEventsResp, error) {
		f := audit.Filter{Consumer: r.Consumer, Limit: r.Limit}
		if r.Since != "" {
			since, err := time.Parse(time.RFC3339, r.Since)
			if err != nil {
				return auditEventsResp{}, fmt.Errorf("httpapi: bad since: %w", err)
			}
			f.Since = since
		}
		events, err := svc.Audit(r.Key, f)
		if err != nil {
			return auditEventsResp{}, err
		}
		return auditEventsResp{Events: events}, nil
	}))

	mux.HandleFunc("/api/audit/summary", post(func(ctx context.Context, r *rulesGetReq) (auditSummaryResp, error) {
		sums, err := svc.AuditSummary(r.Key)
		if err != nil {
			return auditSummaryResp{}, err
		}
		return auditSummaryResp{Consumers: sums}, nil
	}))

	mux.HandleFunc("/api/rotate", post(func(ctx context.Context, r *rulesGetReq) (registerResp, error) {
		newKey, err := svc.RotateKey(r.Key)
		if err != nil {
			return registerResp{}, err
		}
		return registerResp{Key: newKey}, nil
	}))

	mux.HandleFunc("/api/recommend", post(func(ctx context.Context, r *recommendReq) (recommendResp, error) {
		opts := recommend.Options{MinOverlap: r.MinOverlap}
		if r.MinDuration != "" {
			d, err := time.ParseDuration(r.MinDuration)
			if err != nil {
				return recommendResp{}, fmt.Errorf("httpapi: bad minDuration: %w", err)
			}
			opts.MinDuration = d
		}
		sugs, err := svc.Recommend(r.Key, opts)
		if err != nil {
			return recommendResp{}, err
		}
		return recommendResp{Suggestions: sugs}, nil
	}))

	// Web-UI login (paper §5.4: "Accesses to web user interfaces are
	// authenticated by a login system using a username and a password").
	// A user proves API-key possession to set their password, then logs in
	// for a session token.
	mux.HandleFunc("/api/password", post(func(ctx context.Context, r *passwordReq) (okResp, error) {
		u, err := svc.Users().Authenticate(r.Key)
		if err != nil {
			return okResp{}, err
		}
		if err := svc.Web().SetPassword(u.Name, r.Password); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/login", post(func(ctx context.Context, r *loginReq) (loginResp, error) {
		token, err := svc.Web().Login(r.Name, r.Password)
		if err != nil {
			return loginResp{}, err
		}
		return loginResp{Token: token}, nil
	}))

	registerStreamAPI(mux, svc)

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Health{
			Status:      "ok",
			UptimeS:     time.Since(start).Seconds(),
			Name:        svc.Name(),
			Segments:    svc.SegmentCount(),
			Users:       svc.Users().Len(),
			Degradation: ctrl.State().String(),
			Pressure:    ctrl.Pressure(),
		})
	})

	mux.Handle("/metrics", obs.Handler())

	// Completed traces (sampled: errored or slow spans, bounded ring). The
	// payload carries span metadata only — names, IDs, rule provenance —
	// never sensor data.
	mux.Handle("/debug/traces", trace.Handler())

	// Segment-engine internals: file counts per level, live/dead
	// records, WAL size, last compaction. Metadata only, no sensor
	// data. 404 when the service runs the in-memory legacy engine.
	mux.HandleFunc("/debug/segstore", func(w http.ResponseWriter, r *http.Request) {
		stats, ok := svc.SegmentStoreStats()
		if !ok {
			http.Error(w, "segment engine stats unavailable (in-memory store)", http.StatusNotFound)
			return
		}
		writeJSON(w, stats)
	})

	// Compiled rule-index internals per contributor: rule count, compile
	// time, decision-cache hit ratio and evictions, index shape. Metadata
	// only — rule conditions and sensor data never appear.
	mux.HandleFunc("/debug/ruleindex", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.RuleIndexStats())
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, storeAdminHTML, svc.Name(), svc.SegmentCount(), svc.Users().Len())
	})

	inner := withOverload(ctrl, storeRouteClass, mux,
		withIdempotency("store", resilience.NewIdemCache(0), mux))
	return withObs("store", mux, inner)
}

// registerStorePressure feeds the segment engine's live backlog into the
// admission controller: memtable fill, WAL growth, sealed-memtable queue,
// and L0 compaction debt each normalize to 1.0 at "the flush/compaction
// machinery is saturated". Services on the legacy in-memory engine report
// no storage pressure (Stats returns ok=false).
func registerStorePressure(ctrl *overload.Controller, svc *datastore.Service) {
	ctrl.AddSource("segstore_memtable", func() float64 {
		st, ok := svc.SegmentStoreStats()
		if !ok || st.MemtableBudget <= 0 {
			return 0
		}
		return float64(st.MemtableBytes) / float64(st.MemtableBudget)
	})
	ctrl.AddSource("segstore_wal", func() float64 {
		st, ok := svc.SegmentStoreStats()
		if !ok || st.MemtableBudget <= 0 {
			return 0
		}
		// The WAL holds the active memtable plus any sealed ones awaiting
		// flush; 4 budgets of WAL means flushing has fallen well behind.
		return float64(st.WALBytes) / float64(4*st.MemtableBudget)
	})
	ctrl.AddSource("segstore_sealed", func() float64 {
		st, ok := svc.SegmentStoreStats()
		if !ok {
			return 0
		}
		return float64(st.SealedMemtables) / 4
	})
	ctrl.AddSource("segstore_l0_debt", func() float64 {
		st, ok := svc.SegmentStoreStats()
		if !ok || st.L0Threshold <= 0 {
			return 0
		}
		l0 := 0
		for _, lv := range st.Levels {
			if lv.Level == 0 {
				l0 = lv.Files
			}
		}
		// Saturate at twice the compaction trigger: L0 at the threshold is
		// normal duty cycle, twice it is real debt.
		return float64(l0) / float64(2*st.L0Threshold)
	})
}

// storeAdminHTML is the minimal web UI of the store (the paper's Fig. 3 UI
// produces exactly the rule JSON the /api/rules endpoints accept).
const storeAdminHTML = `<!DOCTYPE html>
<html><head><title>SensorSafe Remote Data Store</title></head>
<body>
<h1>SensorSafe Remote Data Store: %s</h1>
<p>Stored wave segments: %d &middot; Registered users: %d</p>
<h2>API</h2>
<ul>
<li>POST /api/register {name, role}</li>
<li>POST /api/upload {key, segments}</li>
<li>POST /api/query {key, query|text}</li>
<li>POST /api/queryown {key, query|text}</li>
<li>POST /api/rules/set {key, rules} &mdash; Fig. 4 JSON</li>
<li>POST /api/rules/get {key}</li>
<li>POST /api/places/define {key, label, region}</li>
<li>POST /api/places/list {key}</li>
<li>POST /api/groups/assign {key, consumer, groups}</li>
</ul>
</body></html>
`
