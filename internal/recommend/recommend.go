// Package recommend proposes privacy rules from a contributor's own data.
// The paper's §6 storyline has Alice review her day, notice she is
// "frequently stressed while driving", feel uncomfortable, and only then
// write the restriction rule; the Personal Data Vault the paper extends
// (§2) shipped a privacy-rule recommender for exactly this step. This
// package automates the observation: it mines the contributor's context
// annotations for sensitive states (stress, smoking, conversation) that
// co-occur with identifiable situations (driving, a labeled place, a
// recurring time of day) and emits ready-to-install Fig. 4 rule JSON the
// owner can accept or ignore.
package recommend

import (
	"fmt"
	"sort"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// Suggestion is one proposed privacy rule.
type Suggestion struct {
	// Rule is the proposed rule, ready to append to the owner's rule set.
	Rule *rules.Rule `json:"-"`
	// RuleJSON is the Fig. 4 JSON form of Rule.
	RuleJSON string `json:"rule"`
	// Reason explains the observation behind the proposal.
	Reason string `json:"reason"`
	// Sensitive is the context category the rule would protect.
	Sensitive rules.Category `json:"sensitive"`
	// Overlap is the fraction of the sensitive state spent in the
	// co-occurring situation (0..1).
	Overlap float64 `json:"overlap"`
	// Duration is the total co-occurring time observed.
	Duration time.Duration `json:"duration"`
}

// Options tunes the miner.
type Options struct {
	// MinOverlap is the minimum co-occurrence fraction to report (default
	// 0.3): at least this share of the sensitive state happened in the
	// situation.
	MinOverlap float64
	// MinDuration is the minimum absolute co-occurring time (default 1
	// minute) so one-off blips don't trigger suggestions.
	MinDuration time.Duration
	// Gazetteer resolves labeled places for location-based suggestions.
	Gazetteer *geo.Gazetteer
}

func (o Options) withDefaults() Options {
	if o.MinOverlap <= 0 {
		o.MinOverlap = 0.3
	}
	if o.MinDuration <= 0 {
		o.MinDuration = time.Minute
	}
	return o
}

// sensitiveStates are the context labels worth protecting, per the user
// study the paper cites (§1: conversation, commuting, and stress raise the
// most concern) plus smoking.
var sensitiveStates = []struct {
	label string
	cat   rules.Category
}{
	{rules.CtxStressed, rules.CategoryStress},
	{rules.CtxSmoking, rules.CategorySmoking},
	{rules.CtxConversation, rules.CategoryConversation},
}

// situations are the co-occurring activity contexts a rule can condition
// on.
var situations = []string{rules.CtxDrive, rules.CtxWalk, rules.CtxBike, rules.CtxRun}

// Analyze mines the segments' annotations and locations for rule
// suggestions, sorted by overlap (strongest first).
func Analyze(segs []*wavesegment.Segment, opts Options) []Suggestion {
	opts = opts.withDefaults()
	var out []Suggestion
	out = append(out, contextSuggestions(segs, opts)...)
	out = append(out, placeSuggestions(segs, opts)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap == out[j].Overlap {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Overlap > out[j].Overlap
	})
	return out
}

// contextSuggestions finds sensitive states co-occurring with activities:
// "stressed while driving" → hide stress while driving.
func contextSuggestions(segs []*wavesegment.Segment, opts Options) []Suggestion {
	var out []Suggestion
	for _, sens := range sensitiveStates {
		sensTotal := totalDuration(segs, sens.label)
		if sensTotal == 0 {
			continue
		}
		for _, situation := range situations {
			co := overlapDuration(segs, sens.label, situation)
			frac := float64(co) / float64(sensTotal)
			if co < opts.MinDuration || frac < opts.MinOverlap {
				continue
			}
			rule := &rules.Rule{
				ID:          fmt.Sprintf("suggest-hide-%s-while-%s", sens.cat, situation),
				Description: fmt.Sprintf("hide %s while %s (suggested)", sens.cat, situation),
				Contexts:    []string{situation},
				Action: rules.Abstract(rules.AbstractionSpec{
					Contexts: map[rules.Category]rules.Level{sens.cat: rules.LevelNotShared},
				}),
			}
			data, err := rules.MarshalRule(rule)
			if err != nil {
				continue
			}
			out = append(out, Suggestion{
				Rule:     rule,
				RuleJSON: string(data),
				Reason: fmt.Sprintf("%.0f%% of your %s time (%s) occurred while %s",
					frac*100, sens.cat, co.Round(time.Second), situationPhrase(situation)),
				Sensitive: sens.cat,
				Overlap:   frac,
				Duration:  co,
			})
		}
	}
	return out
}

// placeSuggestions finds sensitive states concentrated at labeled places:
// "you smoke mostly at home" → hide smoking at home.
func placeSuggestions(segs []*wavesegment.Segment, opts Options) []Suggestion {
	if opts.Gazetteer == nil || opts.Gazetteer.Len() == 0 {
		return nil
	}
	var out []Suggestion
	for _, sens := range sensitiveStates {
		sensTotal := totalDuration(segs, sens.label)
		if sensTotal == 0 {
			continue
		}
		for _, label := range opts.Gazetteer.Labels() {
			rg, ok := opts.Gazetteer.Lookup(label)
			if !ok {
				continue
			}
			var co time.Duration
			for _, seg := range segs {
				if !rg.Contains(seg.Location) {
					continue
				}
				for _, a := range seg.Annotations {
					if a.Context == sens.label {
						co += clipToSegment(a, seg)
					}
				}
			}
			frac := float64(co) / float64(sensTotal)
			if co < opts.MinDuration || frac < opts.MinOverlap {
				continue
			}
			rule := &rules.Rule{
				ID:             fmt.Sprintf("suggest-hide-%s-at-%s", sens.cat, label),
				Description:    fmt.Sprintf("hide %s at %s (suggested)", sens.cat, label),
				LocationLabels: []string{rg.Label},
				Action: rules.Abstract(rules.AbstractionSpec{
					Contexts: map[rules.Category]rules.Level{sens.cat: rules.LevelNotShared},
				}),
			}
			data, err := rules.MarshalRule(rule)
			if err != nil {
				continue
			}
			out = append(out, Suggestion{
				Rule:     rule,
				RuleJSON: string(data),
				Reason: fmt.Sprintf("%.0f%% of your %s time (%s) occurred at %q",
					frac*100, sens.cat, co.Round(time.Second), rg.Label),
				Sensitive: sens.cat,
				Overlap:   frac,
				Duration:  co,
			})
		}
	}
	return out
}

func situationPhrase(ctx string) string {
	switch ctx {
	case rules.CtxDrive:
		return "driving"
	case rules.CtxWalk:
		return "walking"
	case rules.CtxBike:
		return "biking"
	case rules.CtxRun:
		return "running"
	default:
		return ctx
	}
}

// totalDuration sums the label's annotated time across segments.
func totalDuration(segs []*wavesegment.Segment, label string) time.Duration {
	var total time.Duration
	for _, seg := range segs {
		for _, a := range seg.Annotations {
			if a.Context == label {
				total += clipToSegment(a, seg)
			}
		}
	}
	return total
}

// overlapDuration sums the time where both labels are annotated
// simultaneously within each segment.
func overlapDuration(segs []*wavesegment.Segment, a, b string) time.Duration {
	var total time.Duration
	for _, seg := range segs {
		for _, sa := range seg.Annotations {
			if sa.Context != a {
				continue
			}
			for _, sb := range seg.Annotations {
				if sb.Context != b {
					continue
				}
				lo, hi := sa.Start, sa.End
				if sb.Start.After(lo) {
					lo = sb.Start
				}
				if sb.End.Before(hi) {
					hi = sb.End
				}
				if hi.After(lo) {
					total += hi.Sub(lo)
				}
			}
		}
	}
	return total
}

func clipToSegment(a wavesegment.Annotation, seg *wavesegment.Segment) time.Duration {
	lo, hi := a.Start, a.End
	if ss := seg.StartTime(); ss.After(lo) {
		lo = ss
	}
	if se := seg.EndTime(); se.Before(hi) {
		hi = se
	}
	if hi.After(lo) {
		return hi.Sub(lo)
	}
	return 0
}
