package wavesegment

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"sensorsafe/internal/geo"
)

// wireSegment is the Fig. 5 JSON representation of a wave segment: metadata
// (start time, sampling interval, location, tuple format) plus the value
// blob. Timestamped (non-periodic) segments carry per-sample instants as an
// additional field, mirroring the paper's "stored in the value blob as
// additional sensor channels".
type wireSegment struct {
	Contributor string       `json:"contributor,omitempty"`
	StartTime   string       `json:"start_time"`
	IntervalMS  float64      `json:"interval_ms"`
	Location    geo.Point    `json:"location"`
	Format      []string     `json:"format"`
	Data        [][]float64  `json:"data"`
	Timestamps  []string     `json:"timestamps,omitempty"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// timeWire is the timestamp layout used in segment JSON.
const timeWire = time.RFC3339Nano

// MarshalJSON renders the segment in the Fig. 5 wire shape, so segments
// embedded in API responses always serialize consistently.
func (s *Segment) MarshalJSON() ([]byte, error) { return MarshalJSONSegment(s) }

// UnmarshalJSON parses the Fig. 5 wire shape.
func (s *Segment) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		return nil
	}
	parsed, err := UnmarshalJSONSegment(data)
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}

// MarshalJSONSegment encodes a segment in the paper's Fig. 5 JSON shape.
func MarshalJSONSegment(s *Segment) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := wireSegment{
		Contributor: s.Contributor,
		StartTime:   s.StartTime().Format(timeWire),
		IntervalMS:  float64(s.Interval) / float64(time.Millisecond),
		Location:    s.Location,
		Format:      s.Channels,
		Data:        s.Values,
		Annotations: s.Annotations,
	}
	if s.Interval <= 0 {
		w.Timestamps = make([]string, len(s.Timestamps))
		for i, t := range s.Timestamps {
			w.Timestamps[i] = t.Format(timeWire)
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSONSegment decodes a Fig. 5-shaped JSON document.
func UnmarshalJSONSegment(data []byte) (*Segment, error) {
	var w wireSegment
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("wavesegment: bad segment JSON: %w", err)
	}
	s := &Segment{
		Contributor: w.Contributor,
		Interval:    time.Duration(w.IntervalMS * float64(time.Millisecond)),
		Location:    w.Location,
		Channels:    w.Format,
		Values:      w.Data,
		Annotations: w.Annotations,
	}
	start, err := time.Parse(timeWire, w.StartTime)
	if err != nil {
		return nil, fmt.Errorf("wavesegment: bad start_time: %w", err)
	}
	s.Start = start
	if len(w.Timestamps) > 0 {
		s.Interval = 0
		s.Timestamps = make([]time.Time, len(w.Timestamps))
		for i, ts := range w.Timestamps {
			t, err := time.Parse(timeWire, ts)
			if err != nil {
				return nil, fmt.Errorf("wavesegment: bad timestamp %d: %w", i, err)
			}
			s.Timestamps[i] = t
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Binary blob codec. Databases store sequences of multi-channel samples as
// blobs (paper §5.1); this is the blob layout the storage engine persists:
//
//	magic "WSG1"
//	flags byte (bit0: per-sample timestamps)
//	contributor string
//	start int64 unix-nanos
//	interval int64 ns
//	location 2×float64
//	channel count uvarint, then channel name strings
//	sample count uvarint, then row-major float64 values
//	[timestamps: int64 unix-nanos per sample]
//	annotation count uvarint, then {context string, start, end int64}
//
// All integers little-endian; strings are uvarint length + UTF-8 bytes.
var blobMagic = [4]byte{'W', 'S', 'G', '1'}

const flagTimestamped = 1

// MarshalBinary encodes the segment into the storage blob layout.
func MarshalBinary(s *Segment) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(blobMagic[:])
	var flags byte
	if s.Interval <= 0 {
		flags |= flagTimestamped
	}
	buf.WriteByte(flags)
	writeString(&buf, s.Contributor)
	writeInt64(&buf, s.StartTime().UnixNano())
	writeInt64(&buf, int64(s.Interval))
	writeFloat64(&buf, s.Location.Lat)
	writeFloat64(&buf, s.Location.Lon)
	writeUvarint(&buf, uint64(len(s.Channels)))
	for _, c := range s.Channels {
		writeString(&buf, c)
	}
	writeUvarint(&buf, uint64(len(s.Values)))
	for _, row := range s.Values {
		for _, v := range row {
			writeFloat64(&buf, v)
		}
	}
	if flags&flagTimestamped != 0 {
		for _, t := range s.Timestamps {
			writeInt64(&buf, t.UnixNano())
		}
	}
	writeUvarint(&buf, uint64(len(s.Annotations)))
	for _, a := range s.Annotations {
		writeString(&buf, a.Context)
		writeInt64(&buf, a.Start.UnixNano())
		writeInt64(&buf, a.End.UnixNano())
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a storage blob produced by MarshalBinary.
func UnmarshalBinary(data []byte) (*Segment, error) {
	r := &blobReader{data: data}
	var magic [4]byte
	r.read(magic[:])
	if magic != blobMagic {
		return nil, fmt.Errorf("wavesegment: bad blob magic %q", magic[:])
	}
	flags := r.readByte()
	s := &Segment{}
	s.Contributor = r.readString()
	startNanos := r.readInt64()
	s.Interval = time.Duration(r.readInt64())
	s.Location.Lat = r.readFloat64()
	s.Location.Lon = r.readFloat64()
	nch := r.readUvarint()
	if nch > 1<<16 {
		return nil, fmt.Errorf("wavesegment: implausible channel count %d", nch)
	}
	s.Channels = make([]string, nch)
	for i := range s.Channels {
		s.Channels[i] = r.readString()
	}
	n := r.readUvarint()
	if r.err == nil && n*nch*8 > uint64(len(data)) {
		return nil, fmt.Errorf("wavesegment: truncated blob (%d samples claimed)", n)
	}
	s.Values = make([][]float64, n)
	for i := range s.Values {
		row := make([]float64, nch)
		for j := range row {
			row[j] = r.readFloat64()
		}
		s.Values[i] = row
	}
	if flags&flagTimestamped != 0 {
		s.Interval = 0
		s.Timestamps = make([]time.Time, n)
		for i := range s.Timestamps {
			s.Timestamps[i] = time.Unix(0, r.readInt64()).UTC()
		}
		if n > 0 && r.err == nil {
			s.Start = s.Timestamps[0]
		}
	} else {
		s.Start = time.Unix(0, startNanos).UTC()
	}
	na := r.readUvarint()
	if na > 1<<20 {
		return nil, fmt.Errorf("wavesegment: implausible annotation count %d", na)
	}
	if na > 0 {
		s.Annotations = make([]Annotation, na)
		for i := range s.Annotations {
			s.Annotations[i].Context = r.readString()
			s.Annotations[i].Start = time.Unix(0, r.readInt64()).UTC()
			s.Annotations[i].End = time.Unix(0, r.readInt64()).UTC()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("wavesegment: corrupt blob: %w", r.err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("wavesegment: decoded blob invalid: %w", err)
	}
	return s, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func writeInt64(buf *bytes.Buffer, v int64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	buf.Write(tmp[:])
}

func writeFloat64(buf *bytes.Buffer, v float64) {
	writeInt64(buf, int64(math.Float64bits(v)))
}

// blobReader is a cursor over blob bytes that latches the first error.
type blobReader struct {
	data []byte
	off  int
	err  error
}

func (r *blobReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s at offset %d", msg, r.off)
	}
}

func (r *blobReader) read(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.data) {
		r.fail("short read")
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

func (r *blobReader) readByte() byte {
	var b [1]byte
	r.read(b[:])
	return b[0]
}

func (r *blobReader) readInt64() int64 {
	var b [8]byte
	r.read(b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func (r *blobReader) readFloat64() float64 {
	return math.Float64frombits(uint64(r.readInt64()))
}

func (r *blobReader) readUvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *blobReader) readString() string {
	n := r.readUvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.off)+n > uint64(len(r.data)) {
		r.fail("short string")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
