package broker

import (
	"errors"
	"testing"

	"sensorsafe/internal/timeutil"
)

// Federated consumers need search results carrying store addresses and
// study contributor rosters; these cover both broker extensions.

func TestSearchInfoCarriesStoreAddresses(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Action":"Allow"}]`,
		"carol": `[{"Sensor":["Accelerometer"],"Action":"Allow"}]`,
	})
	rep, _ := timeutil.ParseRepeated([]string{"Wed"}, []string{"9:00am", "6:00pm"})
	hits, err := b.SearchInfo(bob.Key, &SearchQuery{
		Sensors:       []string{"ECG"},
		LocationLabel: "work",
		RepeatTime:    rep,
		Reference:     ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Contributor != "alice" || hits[0].StoreAddr != "store-alice" {
		t.Fatalf("hits = %+v, want alice@store-alice", hits)
	}
	if _, err := b.SearchInfo("bogus", &SearchQuery{}); err == nil {
		t.Error("bad key should fail")
	}
	// Search stays a thin view over SearchInfo.
	names, err := b.Search(bob.Key, &SearchQuery{
		Sensors:       []string{"ECG"},
		LocationLabel: "work",
		RepeatTime:    rep,
		Reference:     ref,
	})
	if err != nil || len(names) != 1 || names[0] != "alice" {
		t.Fatalf("Search = %v, %v", names, err)
	}
}

func TestStudyRoster(t *testing.T) {
	b, _ := newBrokerWith(t, map[string]string{"alice": `[{"Action":"Allow"}]`})
	if err := b.EnrollContributor("asthma", "alice"); !errors.Is(err, ErrUnknownStudy) {
		t.Fatalf("enroll before create = %v, want ErrUnknownStudy", err)
	}
	if err := b.CreateStudy("asthma"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Alice", "bob", "alice"} { // dup alice, case-insensitive
		if err := b.EnrollContributor("asthma", name); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.EnrollContributor("asthma", ""); err == nil {
		t.Error("empty contributor should fail")
	}
	got, err := b.StudyContributors("asthma")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("roster = %v, want 2 distinct contributors", got)
	}
	if _, err := b.StudyContributors("nope"); !errors.Is(err, ErrUnknownStudy) {
		t.Errorf("unknown study = %v", err)
	}
}

func TestStudyRosterPersists(t *testing.T) {
	dir := t.TempDir()
	b, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateStudy("sleep"); err != nil {
		t.Fatal(err)
	}
	if err := b.EnrollContributor("sleep", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := b.EnrollContributor("sleep", "bob"); err != nil {
		t.Fatal(err)
	}

	b2, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.StudyContributors("sleep")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("roster after reload = %v", got)
	}
	// Case-insensitive dedup must survive the reload too.
	if err := b2.EnrollContributor("sleep", "ALICE"); err != nil {
		t.Fatal(err)
	}
	if got, _ = b2.StudyContributors("sleep"); len(got) != 2 {
		t.Fatalf("re-enroll after reload duplicated: %v", got)
	}
}
