// Package clean shows the sanctioned consumer egress the releasepath
// analyzer must accept: every segment reaching a response derives from
// abstraction.Release, the output of the enforcement pipeline.
package clean

import (
	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/wavesegment"
)

type queryResp struct {
	Releases []*abstraction.Release
	Segments []*wavesegment.Segment
}

// released ships the enforcement pipeline's own output.
func released(rels []*abstraction.Release) queryResp {
	var segs []*wavesegment.Segment
	for _, rel := range rels {
		segs = append(segs, rel.Segment)
	}
	return queryResp{Releases: rels, Segments: segs}
}

// direct indexes straight into a release.
func direct(rels []*abstraction.Release) queryResp {
	return queryResp{Segments: []*wavesegment.Segment{rels[0].Segment}}
}
