package segstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sensorsafe/internal/resilience"
)

// Manifest: the atomically-swapped root of the on-disk state. Each save
// writes a new generation file manifest-%08d.json via WriteFileAtomic
// (temp + fsync + rename); loads pick the highest generation whose
// self-checksum verifies, falling back to the previous one when the
// newest is torn. Two generations are retained so a torn write of
// generation N still leaves a valid N-1.
//
// The manifest is the commit point for flush and compaction: a segment
// file exists logically once a manifest generation references it, and
// WAL records are replayed on restart only when their sequence exceeds
// FlushedSeq.

type manifest struct {
	Generation uint64     `json:"generation"`
	NextID     uint64     `json:"nextID"`     // next storage.ID to allocate
	NextFile   uint64     `json:"nextFile"`   // highest segment-file number issued
	FlushedSeq uint64     `json:"flushedSeq"` // WAL records ≤ this are in segment files
	Files      []fileMeta `json:"files"`
	Tombstones []uint64   `json:"tombstones,omitempty"` // deleted IDs not yet compacted away
	CRC        uint32     `json:"crc"`                  // crc32 of this JSON with CRC set to 0
}

func manifestName(gen uint64) string {
	return fmt.Sprintf("manifest-%08d.json", gen)
}

func parseManifestName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "manifest-"), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// checksum computes the manifest's self-CRC (over the JSON encoding with
// the CRC field zeroed).
func (m *manifest) checksum() (uint32, error) {
	saved := m.CRC
	m.CRC = 0
	data, err := json.Marshal(m)
	m.CRC = saved
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(data), nil
}

// save writes the next generation and prunes generations older than the
// previous one.
func saveManifest(dir string, m *manifest) error {
	m.Generation++
	sum, err := m.checksum()
	if err != nil {
		return err
	}
	m.CRC = sum
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := resilience.WriteFileAtomic(filepath.Join(dir, manifestName(m.Generation)), data, 0o600); err != nil {
		return fmt.Errorf("segstore: save manifest: %w", err)
	}
	// Prune all but the newest two generations; best effort.
	if gens, err := listManifestGens(dir); err == nil {
		for _, g := range gens {
			if g+1 < m.Generation {
				_ = os.Remove(filepath.Join(dir, manifestName(g)))
			}
		}
	}
	return nil
}

func listManifestGens(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if g, ok := parseManifestName(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// loadManifest returns the newest manifest generation that passes its
// checksum, or nil when the directory holds none (fresh store). A torn
// or corrupt newest generation falls back to the one before it.
func loadManifest(dir string) (*manifest, error) {
	gens, err := listManifestGens(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, manifestName(gens[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			lastErr = fmt.Errorf("segstore: manifest %s: %w", manifestName(gens[i]), err)
			continue
		}
		sum, err := m.checksum()
		if err != nil {
			lastErr = err
			continue
		}
		if sum != m.CRC {
			lastErr = fmt.Errorf("segstore: manifest %s: checksum mismatch (torn write?)", manifestName(gens[i]))
			continue
		}
		return &m, nil
	}
	if len(gens) == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("segstore: no valid manifest among %d generations: %w", len(gens), lastErr)
}

// removeOrphans deletes segment files and leftover temporaries that the
// chosen manifest does not reference — debris from a crash between
// writing a file and committing the manifest.
func removeOrphans(dir string, m *manifest) {
	referenced := make(map[string]bool)
	if m != nil {
		for _, f := range m.Files {
			referenced[f.Name] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !referenced[name]:
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}
