// Audit trail: "who has been reading my data, and what did they see?"
//
// SensorSafe extends the Personal Data Vault (paper §2), whose trace audit
// lets a data owner inspect accesses after the fact. Here Alice shares a
// recorded afternoon under Fig. 4-style rules; her study coordinator, her
// health coach, and a stranger all query her store; then Alice reviews her
// audit trail: every access is recorded with its outcome — released raw,
// released abstracted, or withheld — and aggregated per consumer.
//
// Run with: go run ./examples/audittrail
package main

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/audit"
	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

func main() {
	net := core.NewNetwork()
	defer net.Close()
	if _, err := net.AddStore("alice-store", ""); err != nil {
		log.Fatal(err)
	}
	alice, err := net.NewContributor("alice-store", "alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.SetRules(`[
	  {"Consumer": ["Bob"], "Action": "Allow"},
	  {"Consumer": ["Bob"], "Context": ["Drive"],
	   "Action": {"Abstraction": {"Stress": "NotShared"}}},
	  {"Consumer": ["Coach"], "Sensor": ["Accelerometer"], "Action": "Allow"}
	]`); err != nil {
		log.Fatal(err)
	}

	day := &sensors.Scenario{
		Start:  time.Date(2011, 2, 16, 14, 0, 0, 0, time.UTC),
		Origin: geo.Point{Lat: 34.025, Lon: -118.495}, Seed: 13,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill, Stressed: true},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Stressed: true, Heading: 70},
		},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		log.Fatal(err)
	}

	// Three consumers with very different access levels query her store.
	for _, name := range []string{"Bob", "Coach", "Eve"} {
		consumer, err := net.NewConsumer(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := consumer.Query("alice", &query.Query{}); err != nil {
			log.Fatal(err)
		}
	}

	// Alice reviews the aggregate view first.
	sums, err := alice.AuditSummary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice's per-consumer audit summary:")
	fmt.Printf("  %-8s %9s %5s %11s %9s %10s\n", "consumer", "accesses", "raw", "abstracted", "withheld", "data span")
	for _, s := range sums {
		fmt.Printf("  %-8s %9d %5d %11d %9d %10s\n",
			s.Consumer, s.Accesses, s.Raw, s.Abstracted, s.Withheld, s.DataSpan.Round(time.Second))
	}

	// Then drills into what exactly was withheld from Eve...
	withheld := audit.OutcomeWithheld
	eveEvents, err := alice.Audit(audit.Filter{Consumer: "Eve", Outcome: &withheld})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEve's accesses: %d, all withheld (no rule mentions her)\n", len(eveEvents))

	// ...and which spans Bob saw only in abstracted form (the drive, where
	// stress and its source channels were held back).
	abstracted := audit.OutcomeAbstracted
	bobAbs, err := alice.Audit(audit.Filter{Consumer: "Bob", Outcome: &abstracted})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBob's abstracted spans (%d):\n", len(bobAbs))
	for i, e := range bobAbs {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(bobAbs)-i)
			break
		}
		fmt.Printf("  %s..%s channels=%v contexts=%v\n",
			e.SpanStart.Format("15:04:05"), e.SpanEnd.Format("15:04:05"), e.Channels, e.Contexts)
	}
	fmt.Println("\nEvery span above was released without ECG/Respiration and without")
	fmt.Println("stress labels — matching Alice's \"no stress while driving\" rule.")
}
