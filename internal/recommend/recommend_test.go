package recommend

import (
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/inference"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/wavesegment"
)

var (
	t0   = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)
	home = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

// annotatedSegment builds a segment spanning minutes of data with the
// given annotations (label, fromMin, toMin).
func annotatedSegment(loc geo.Point, minutes int, anns ...[3]any) *wavesegment.Segment {
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: time.Second,
		Location: loc, Channels: []string{wavesegment.ChannelECG},
	}
	for i := 0; i < minutes*60; i++ {
		seg.Values = append(seg.Values, []float64{0})
	}
	for _, a := range anns {
		label := a[0].(string)
		from := t0.Add(time.Duration(a[1].(int)) * time.Minute)
		to := t0.Add(time.Duration(a[2].(int)) * time.Minute)
		_ = seg.Annotate(label, from, to)
	}
	return seg
}

func TestSuggestsHidingStressWhileDriving(t *testing.T) {
	// 10 minutes stressed, 8 of them while driving.
	seg := annotatedSegment(home, 30,
		[3]any{rules.CtxStressed, 0, 10},
		[3]any{rules.CtxDrive, 2, 10},
		[3]any{rules.CtxStill, 10, 30},
	)
	got := Analyze([]*wavesegment.Segment{seg}, Options{})
	if len(got) == 0 {
		t.Fatal("expected a suggestion")
	}
	s := got[0]
	if s.Sensitive != rules.CategoryStress {
		t.Errorf("sensitive = %s", s.Sensitive)
	}
	if s.Overlap < 0.75 || s.Overlap > 0.85 {
		t.Errorf("overlap = %.2f, want ~0.8", s.Overlap)
	}
	if s.Duration != 8*time.Minute {
		t.Errorf("duration = %v", s.Duration)
	}
	if !strings.Contains(s.Reason, "driving") {
		t.Errorf("reason = %q", s.Reason)
	}
	// The suggested rule must parse and do the right thing.
	rs, err := rules.UnmarshalRuleSet([]byte("[" + s.RuleJSON + "]"))
	if err != nil {
		t.Fatalf("suggested rule does not parse: %v\n%s", err, s.RuleJSON)
	}
	e, err := rules.NewEngine(append(rs, &rules.Rule{Action: rules.Allow()}), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Decide(&rules.Request{Consumer: "bob", At: t0, Location: home, ActiveContexts: []string{rules.CtxDrive}})
	if d.ContextLevel(rules.CategoryStress) != rules.LevelNotShared {
		t.Error("installed suggestion should hide stress while driving")
	}
	if d.ChannelShared(wavesegment.ChannelECG) {
		t.Error("closure should block ECG while driving")
	}
}

func TestNoSuggestionBelowThresholds(t *testing.T) {
	// Only 20 s of stressed driving out of 10 min stressed: below both
	// default thresholds.
	seg := annotatedSegment(home, 30,
		[3]any{rules.CtxStressed, 0, 10},
		[3]any{rules.CtxDrive, 0, 0}, // replaced below
	)
	seg.Annotations = seg.Annotations[:1]
	_ = seg.Annotate(rules.CtxDrive, t0, t0.Add(20*time.Second))
	got := Analyze([]*wavesegment.Segment{seg}, Options{})
	if len(got) != 0 {
		t.Errorf("expected no suggestions, got %+v", got)
	}
}

func TestThresholdOptions(t *testing.T) {
	seg := annotatedSegment(home, 30,
		[3]any{rules.CtxStressed, 0, 10},
		[3]any{rules.CtxDrive, 8, 10}, // 2 min, 20% overlap
	)
	if got := Analyze([]*wavesegment.Segment{seg}, Options{}); len(got) != 0 {
		t.Errorf("default thresholds should reject 20%% overlap: %+v", got)
	}
	got := Analyze([]*wavesegment.Segment{seg}, Options{MinOverlap: 0.1, MinDuration: time.Minute})
	if len(got) != 1 {
		t.Errorf("lowered thresholds should accept: %+v", got)
	}
}

func TestPlaceSuggestion(t *testing.T) {
	gaz := geo.NewGazetteer()
	rect, _ := geo.NewRect(
		geo.Point{Lat: home.Lat - 0.001, Lon: home.Lon - 0.001},
		geo.Point{Lat: home.Lat + 0.001, Lon: home.Lon + 0.001})
	if err := gaz.Define("home", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	// All smoking happens at home.
	seg := annotatedSegment(home, 30, [3]any{rules.CtxSmoking, 0, 5})
	away := annotatedSegment(geo.Point{Lat: 35, Lon: -117}, 30) // no smoking away
	got := Analyze([]*wavesegment.Segment{seg, away}, Options{Gazetteer: gaz})
	if len(got) != 1 {
		t.Fatalf("suggestions = %+v", got)
	}
	s := got[0]
	if s.Sensitive != rules.CategorySmoking || s.Overlap != 1.0 {
		t.Errorf("suggestion = %+v", s)
	}
	if len(s.Rule.LocationLabels) != 1 || s.Rule.LocationLabels[0] != "home" {
		t.Errorf("rule labels = %v", s.Rule.LocationLabels)
	}
	if !strings.Contains(s.Reason, `"home"`) {
		t.Errorf("reason = %q", s.Reason)
	}
}

func TestSuggestionsSortedByOverlap(t *testing.T) {
	seg := annotatedSegment(home, 60,
		[3]any{rules.CtxStressed, 0, 10},
		[3]any{rules.CtxDrive, 0, 9},          // 90% of stress while driving
		[3]any{rules.CtxConversation, 20, 30}, // conversation...
		[3]any{rules.CtxWalk, 24, 30},         // ...60% while walking
	)
	got := Analyze([]*wavesegment.Segment{seg}, Options{})
	if len(got) != 2 {
		t.Fatalf("suggestions = %+v", got)
	}
	if got[0].Overlap < got[1].Overlap {
		t.Error("suggestions not sorted by overlap")
	}
	if got[0].Sensitive != rules.CategoryStress || got[1].Sensitive != rules.CategoryConversation {
		t.Errorf("order = %s, %s", got[0].Sensitive, got[1].Sensitive)
	}
}

func TestEndToEndWithInference(t *testing.T) {
	// Full §6 loop: generate Alice's day, infer contexts, and check the
	// recommender reproduces her own conclusion — hide stress while
	// driving.
	rec, err := sensors.Generate("alice", &sensors.Scenario{
		Start: t0, Origin: home, Seed: 11,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
			{Duration: 4 * time.Minute, Activity: rules.CtxDrive, Stressed: true, Heading: 80},
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := rec.AllSegments()
	ann := &inference.Annotator{}
	inference.ApplyAnnotations(all, ann.Annotate(all))

	got := Analyze(all, Options{})
	found := false
	for _, s := range got {
		if s.Sensitive == rules.CategoryStress && len(s.Rule.Contexts) == 1 && s.Rule.Contexts[0] == rules.CtxDrive {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a hide-stress-while-driving suggestion, got %+v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Analyze(nil, Options{}); got != nil {
		t.Errorf("nil input should yield nothing: %v", got)
	}
}
