package phone

import (
	"testing"
	"time"

	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

func TestEnergyModelArithmetic(t *testing.T) {
	m := EnergyModel{SenseMJPerSample: 2, CPUMJPerSample: 1, RadioMJPerByte: 0.5}
	r := &Report{SamplesTotal: 100, SamplesSkipped: 40, BytesUploaded: 10}
	e := m.Estimate(r)
	if e.SenseMJ != 120 || e.CPUMJ != 60 || e.RadioMJ != 5 || e.TotalMJ != 185 {
		t.Errorf("energy = %+v", e)
	}
	if got := DefaultEnergyModel(); got.SenseMJPerSample <= 0 || got.RadioMJPerByte <= 0 {
		t.Errorf("defaults = %+v", got)
	}
}

func TestEnergySavingsFromRuleAwareCollection(t *testing.T) {
	// Sensors stay off while home-bound data is unshareable, so the
	// rule-aware session spends strictly less energy on every component.
	svc, p := setup(t)
	setRules(t, svc, p, `[
	  {"TimeRange":{"Start":"2011-02-16T08:02:00Z"},"Action":"Allow"}
	]`)
	sc := scenario(sensors.Phase{Duration: 4 * time.Minute, Activity: rules.CtxStill})

	p.RuleAware = false
	naive, err := p.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	svc2, p2 := setup(t)
	setRules(t, svc2, p2, `[
	  {"TimeRange":{"Start":"2011-02-16T08:02:00Z"},"Action":"Allow"}
	]`)
	p2.RuleAware = true
	aware, err := p2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	m := DefaultEnergyModel()
	en, ea := m.Estimate(naive), m.Estimate(aware)
	if ea.TotalMJ >= en.TotalMJ {
		t.Errorf("rule-aware energy %.1f mJ should beat naive %.1f mJ", ea.TotalMJ, en.TotalMJ)
	}
	if ea.SenseMJ >= en.SenseMJ {
		t.Errorf("sensing energy should drop: %.1f vs %.1f", ea.SenseMJ, en.SenseMJ)
	}
	if ea.RadioMJ >= en.RadioMJ {
		t.Errorf("radio energy should drop: %.1f vs %.1f", ea.RadioMJ, en.RadioMJ)
	}
	// Roughly half the session is before the shareable window.
	if frac := ea.TotalMJ / en.TotalMJ; frac < 0.3 || frac > 0.8 {
		t.Errorf("energy fraction = %.2f, want ~0.5", frac)
	}
}
