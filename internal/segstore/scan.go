package segstore

import (
	"container/heap"
	"sort"
	"time"

	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// Read path: a scan snapshots its sources under the lock — the
// memtables' sorted runs plus a retained reader per overlapping segment
// file — and then k-way-merges them outside the lock, in (start, id)
// order, skipping tombstoned IDs. Retaining readers lets compaction
// unlink files mid-scan without pulling data out from under us.

// mergeSorted flattens several (start, id)-sorted runs into one.
func mergeSorted(sources [][]rec) []rec {
	total := 0
	for _, s := range sources {
		total += len(s)
	}
	out := make([]rec, 0, total)
	for _, s := range sources {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].seg.StartTime().UnixNano(), out[j].seg.StartTime().UnixNano()
		if si != sj {
			return si < sj
		}
		return out[i].id < out[j].id
	})
	return out
}

// recIterator yields records in (start, id) order.
type recIterator interface {
	// next returns the following record; ok is false when exhausted.
	next() (r rec, ok bool, err error)
}

// sliceIter iterates an already-sorted in-memory run.
type sliceIter struct {
	recs []rec
	pos  int
}

func (it *sliceIter) next() (rec, bool, error) {
	if it.pos >= len(it.recs) {
		return rec{}, false, nil
	}
	r := it.recs[it.pos]
	it.pos++
	return r, true, nil
}

// diskIter streams one contributor's block run from one segment file,
// pruning blocks outside [from, to) via the sparse footer index. While
// the merge loop drains one block, the next block decompresses on a
// prefetch goroutine — a k-way merge runs tens of these iterators, so
// decode work spreads across cores instead of serializing into the
// consumer.
type diskIter struct {
	r        *segReader
	blockIdx []int // footer indexes of this contributor's blocks, file order
	pos      int   // next block to arm
	cur      []rec
	curPos   int
	fromNano int64 // 0 = unbounded
	toNano   int64 // 0 = unbounded

	started bool
	pre     chan prefetched // nil when no block is in flight
}

type prefetched struct {
	recs []rec
	err  error
}

func newDiskIter(r *segReader, contributor string, from, to time.Time) *diskIter {
	it := &diskIter{r: r, blockIdx: r.byContrib[contributor]}
	if !from.IsZero() {
		it.fromNano = from.UnixNano()
	}
	if !to.IsZero() {
		it.toNano = to.UnixNano()
	}
	return it
}

// nextBlock advances pos past pruned blocks and returns the next footer
// index to decode, or -1 when the run is exhausted (or provably out of
// the window).
func (it *diskIter) nextBlock() int {
	for it.pos < len(it.blockIdx) {
		bi := it.blockIdx[it.pos]
		it.pos++
		b := it.r.blocks[bi]
		if it.fromNano != 0 && b.maxEnd <= it.fromNano {
			continue // every record ends before the window
		}
		if it.toNano != 0 && b.minStart >= it.toNano {
			// Blocks are start-ordered per contributor; nothing later
			// can re-enter the window.
			it.pos = len(it.blockIdx)
			return -1
		}
		return bi
	}
	return -1
}

// arm starts decoding the next live block in the background. The send
// never blocks (cap-1 channel), so an abandoned scan leaks nothing.
func (it *diskIter) arm() {
	bi := it.nextBlock()
	if bi < 0 {
		it.pre = nil
		return
	}
	ch := make(chan prefetched, 1)
	it.pre = ch
	go func() {
		recs, err := it.r.readBlock(bi)
		ch <- prefetched{recs: recs, err: err}
	}()
}

func (it *diskIter) next() (rec, bool, error) {
	for {
		if it.curPos < len(it.cur) {
			r := it.cur[it.curPos]
			it.curPos++
			return r, true, nil
		}
		if !it.started {
			it.started = true
			it.arm() // lazy first block
		}
		if it.pre == nil {
			return rec{}, false, nil
		}
		p := <-it.pre
		if p.err != nil {
			it.pre = nil
			return rec{}, false, p.err
		}
		it.arm() // pipeline the following block
		it.cur, it.curPos = p.recs, 0
	}
}

// mergeHeap orders iterator heads by (start, id).
type mergeHead struct {
	it recIterator
	r  rec
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	si, sj := h[i].r.seg.StartTime().UnixNano(), h[j].r.seg.StartTime().UnixNano()
	if si != sj {
		return si < sj
	}
	return h[i].r.id < h[j].r.id
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scanSnapshot is everything a scan needs, captured under the lock.
type scanSnapshot struct {
	mems    [][]rec
	readers []*segReader
	tomb    map[storage.ID]bool
}

func (sn *scanSnapshot) release() { releaseAll(sn.readers) }

// snapshot captures the scan sources for q. The returned readers are
// retained; callers must release them.
func (s *Store) snapshot(q *storage.Query) (*scanSnapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, storage.ErrClosed
	}
	sn := &scanSnapshot{tomb: make(map[storage.ID]bool, len(s.tombstones))}
	// The active memtable mutates under us after the lock drops; copy
	// its run. Sealed memtables are immutable until dropped by flush,
	// and the flushed file joins the manifest under the same lock, so
	// each record is visible from exactly one source.
	sn.mems = append(sn.mems, append([]rec(nil), s.active.sorted()...))
	for _, m := range s.sealed {
		sn.mems = append(sn.mems, m.sorted())
	}
	for _, r := range s.readers {
		if !r.meta.overlaps(q.From, q.To) {
			continue
		}
		if q.Contributor != "" {
			if _, ok := r.byContrib[q.Contributor]; !ok {
				continue
			}
		}
		r.retain()
		sn.readers = append(sn.readers, r)
	}
	for id := range s.tombstones {
		sn.tomb[id] = true
	}
	return sn, nil
}

// iterators builds the merge sources for q from a snapshot.
func (sn *scanSnapshot) iterators(q *storage.Query) []recIterator {
	var its []recIterator
	for _, run := range sn.mems {
		if len(run) > 0 {
			its = append(its, &sliceIter{recs: run})
		}
	}
	for _, r := range sn.readers {
		if q.Contributor != "" {
			its = append(its, newDiskIter(r, q.Contributor, q.From, q.To))
			continue
		}
		for c := range r.byContrib {
			its = append(its, newDiskIter(r, c, q.From, q.To))
		}
	}
	return its
}

// scan is the shared Scan/ScanRefs implementation.
func (s *Store) scan(q storage.Query, clone bool) ([]storage.Result, error) {
	sn, err := s.snapshot(&q)
	if err != nil {
		return nil, err
	}
	defer sn.release()

	h := make(mergeHeap, 0, 8)
	for _, it := range sn.iterators(&q) {
		r, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if ok {
			h = append(h, mergeHead{it: it, r: r})
		}
	}
	heap.Init(&h)
	toNano := int64(0)
	if !q.To.IsZero() {
		toNano = q.To.UnixNano()
	}
	var out []storage.Result
	for h.Len() > 0 {
		head := h[0]
		r := head.r
		// Globally start-ordered: once past q.To nothing else matches.
		if toNano != 0 && r.seg.StartTime().UnixNano() >= toNano {
			break
		}
		nr, ok, err := head.it.next()
		if err != nil {
			return nil, err
		}
		if ok {
			h[0] = mergeHead{it: head.it, r: nr}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if sn.tomb[r.id] || !q.Matches(r.seg) {
			continue
		}
		seg := r.seg
		// Disk records are fresh per-scan decodes — already private, so
		// cloning them would only double the read path's allocations.
		// Memtable records are shared with the store and must be copied.
		if _, disk := head.it.(*diskIter); clone && !disk {
			seg = seg.Clone()
		}
		out = append(out, storage.Result{ID: r.id, Segment: seg})
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out, nil
}

// Scan returns matching segments ordered by start time. Returned
// memtable-resident segments are copies; disk-resident ones are fresh
// decodes.
func (s *Store) Scan(q storage.Query) ([]storage.Result, error) {
	return s.scan(q, true)
}

// ScanRefs is Scan without cloning memtable records: the returned
// segments must not be mutated.
func (s *Store) ScanRefs(q storage.Query) ([]storage.Result, error) {
	return s.scan(q, false)
}

// LatestBefore returns the contributor's record with the greatest start
// time strictly before t. The segment must not be mutated.
func (s *Store) LatestBefore(contributor string, t time.Time) (storage.Result, bool) {
	return s.LatestBeforeFunc(contributor, t, nil)
}

// LatestBeforeFunc is LatestBefore restricted to records satisfying
// pred (nil accepts everything) — the upload tail-coalescing probe.
// The hot path resolves entirely in the memtables; disk is consulted
// only when no in-memory candidate exists.
func (s *Store) LatestBeforeFunc(contributor string, t time.Time, pred func(*wavesegment.Segment) bool) (storage.Result, bool) {
	type candidate struct {
		r  rec
		ok bool
	}
	accept := func(r rec, tomb map[storage.ID]bool) bool {
		if tomb != nil && tomb[r.id] {
			return false
		}
		if contributor != "" && r.seg.Contributor != contributor {
			return false
		}
		return pred == nil || pred(r.seg)
	}
	better := func(a rec, b candidate) bool {
		if !b.ok {
			return true
		}
		sa, sb := a.seg.StartTime().UnixNano(), b.r.seg.StartTime().UnixNano()
		return sa > sb || (sa == sb && a.id > b.r.id)
	}

	var best candidate
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return storage.Result{}, false
	}
	runs := make([][]rec, 0, 1+len(s.sealed))
	runs = append(runs, s.active.sorted())
	for _, m := range s.sealed {
		runs = append(runs, m.sorted())
	}
	for _, run := range runs {
		hi := sort.Search(len(run), func(i int) bool {
			return !run[i].seg.StartTime().Before(t)
		})
		for i := hi - 1; i >= 0; i-- {
			if accept(run[i], s.tombstones) {
				if better(run[i], best) {
					best = candidate{r: run[i], ok: true}
				}
				break
			}
		}
	}
	// Disk is always consulted (out-of-order uploads can leave
	// later-start records in files than in the memtable), but blocks
	// that provably cannot beat the in-memory candidate are pruned via
	// the sparse index: every record in a block starts at or before the
	// block's maxEnd.
	var readers []*segReader
	for _, r := range s.readers {
		if r.meta.MinTime >= t.UnixNano() {
			continue
		}
		if contributor != "" {
			if _, ok := r.byContrib[contributor]; !ok {
				continue
			}
		}
		r.retain()
		readers = append(readers, r)
	}
	tomb := make(map[storage.ID]bool, len(s.tombstones))
	for id := range s.tombstones {
		tomb[id] = true
	}
	s.mu.RUnlock()
	if len(readers) > 0 {
		defer releaseAll(readers)
		for _, r := range readers {
			contribs := []string{contributor}
			if contributor == "" {
				contribs = contribs[:0]
				for c := range r.byContrib {
					contribs = append(contribs, c)
				}
			}
			for _, c := range contribs {
				idxs := r.byContrib[c]
				for bi := len(idxs) - 1; bi >= 0; bi-- {
					b := r.blocks[idxs[bi]]
					if b.minStart >= t.UnixNano() {
						continue
					}
					if best.ok && b.maxEnd < best.r.seg.StartTime().UnixNano() {
						break // nothing in this or earlier blocks can beat it
					}
					recs, err := r.readBlock(idxs[bi])
					if err != nil {
						break
					}
					found := false
					for i := len(recs) - 1; i >= 0; i-- {
						if !recs[i].seg.StartTime().Before(t) {
							continue
						}
						if accept(recs[i], tomb) {
							if better(recs[i], best) {
								best = candidate{r: recs[i], ok: true}
							}
							found = true
							break
						}
					}
					if found {
						break
					}
				}
			}
		}
	}
	if !best.ok {
		return storage.Result{}, false
	}
	return storage.Result{ID: best.r.id, Segment: best.r.seg}, true
}

// TimeBounds returns the earliest start and latest end across stored
// segments; ok is false for an empty store. Disk bounds come from file
// metadata, so uncompacted tombstones may widen them slightly.
func (s *Store) TimeBounds() (min, max time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var minN, maxN int64
	have := false
	note := func(lo, hi int64) {
		if !have {
			minN, maxN, have = lo, hi, true
			return
		}
		if lo < minN {
			minN = lo
		}
		if hi > maxN {
			maxN = hi
		}
	}
	mems := append([]*memtable{s.active}, s.sealed...)
	for _, m := range mems {
		for _, r := range m.sorted() {
			if s.tombstones[r.id] {
				continue
			}
			note(r.seg.StartTime().UnixNano(), r.seg.EndTime().UnixNano())
		}
	}
	for _, fm := range s.man.Files {
		note(fm.MinTime, fm.MaxTime)
	}
	if !have {
		return time.Time{}, time.Time{}, false
	}
	return time.Unix(0, minN).UTC(), time.Unix(0, maxN).UTC(), true
}

// Contributors returns the distinct contributor names present, sorted.
// A contributor whose every record is tombstoned but not yet compacted
// away may still be listed.
func (s *Store) Contributors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	mems := append([]*memtable{s.active}, s.sealed...)
	for _, m := range mems {
		for _, r := range m.sorted() {
			seen[r.seg.Contributor] = true
		}
	}
	for _, r := range s.readers {
		for c := range r.byContrib {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
