package httpapi

import (
	"context"
	"testing"
	"time"

	"sensorsafe/internal/stream"
	"sensorsafe/internal/wavesegment"
)

func streamPacket(start time.Time, n int) *wavesegment.Segment {
	s := &wavesegment.Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    home,
		Channels:    []string{wavesegment.ChannelECG},
	}
	for i := 0; i < n; i++ {
		s.Values = append(s.Values, []float64{float64(i)})
	}
	return s
}

// TestStreamOverHTTP covers the acceptance path: a consumer subscribed over
// HTTP receives a post-subscription upload within one long-poll round trip
// with the contributor's abstraction applied, and a disconnect +
// resubscribe with the returned cursor replays nothing acknowledged.
func TestStreamOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	// City-level location: the delivered release must carry no exact point.
	if err := d.storeClient.SetRules(alice.Key, []byte(`[
	  {"Action":"Allow"},
	  {"Action":{"Abstraction":{"Location":"City"}}}
	]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := d.storeClient.Register("Bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}

	info, err := d.storeClient.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Resumed || info.Cursor != "0" {
		t.Fatalf("fresh subscription = %+v", info)
	}

	// Upload lands after the subscription; one long-poll must return it.
	go func() {
		time.Sleep(50 * time.Millisecond)
		d.storeClient.Upload(alice.Key, []*wavesegment.Segment{streamPacket(t0, 8)})
	}()
	b, err := d.storeClient.Next(bob.Key, info.ID, info.Cursor, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != stream.KindData {
		t.Fatalf("long-poll batch = %+v", b)
	}
	for _, rel := range b.Events[0].Releases {
		if rel.Location.Point != nil {
			t.Fatal("exact location leaked through live delivery")
		}
	}

	// Ack the batch, "disconnect", upload again, resubscribe: the consumer
	// gets only the new segment — nothing acked replays, nothing is lost.
	if err := d.storeClient.AckStream(bob.Key, info.ID, b.Cursor); err != nil {
		t.Fatal(err)
	}
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{streamPacket(t0.Add(time.Hour), 8)}); err != nil {
		t.Fatal(err)
	}
	again, err := d.storeClient.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ID != info.ID || again.Cursor != b.Cursor {
		t.Fatalf("resubscribe = %+v (want resumed at %s)", again, b.Cursor)
	}
	b2, err := d.storeClient.Next(bob.Key, again.ID, again.Cursor, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Events) != 1 || b2.Events[0].Seq != 2 {
		t.Fatalf("post-resubscribe batch = %+v", b2.Events)
	}

	// Error mapping: foreign and unknown subscriptions.
	eve, _ := d.storeClient.Register("Eve", "consumer")
	if _, err := d.storeClient.Next(eve.Key, info.ID, "", 0); err == nil {
		t.Error("foreign poll must fail")
	}
	if _, err := d.storeClient.Next(bob.Key, "nope", "", 0); err == nil {
		t.Error("unknown subscription must 404")
	}
}

// TestStreamSSEOverHTTP exercises /api/stream/live end to end: events
// arrive as they are ingested, and the callback sees the terminal bye when
// the hub shuts down.
func TestStreamSSEOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := d.storeClient.Register("Bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}
	info, err := d.storeClient.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	events := make(chan stream.Event, 16)
	liveDone := make(chan error, 1)
	go func() {
		_, err := d.storeClient.Live(ctx, bob.Key, info.ID, info.Cursor, func(ev stream.Event) error {
			events <- ev
			return nil
		})
		liveDone <- err
	}()

	time.Sleep(100 * time.Millisecond) // let the stream attach
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{streamPacket(t0, 8)}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != stream.KindData || ev.Seq != 1 || len(ev.Releases) == 0 {
			t.Fatalf("SSE event = %+v", ev)
		}
	case <-ctx.Done():
		t.Fatal("no SSE event before deadline")
	}

	// Graceful hub shutdown terminates the stream with a bye frame.
	d.storeSvc.Stream().Shutdown()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Kind == stream.KindBye {
				if err := <-liveDone; err != nil {
					t.Fatalf("Live returned error after bye: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("no bye frame after shutdown")
		}
	}
}
