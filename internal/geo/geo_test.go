package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	ucla     = Point{Lat: 34.0689, Lon: -118.4452}
	downtown = Point{Lat: 34.0407, Lon: -118.2468}
	paris    = Point{Lat: 48.8566, Lon: 2.3522}
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{ucla, true},
		{Point{Lat: 91, Lon: 0}, false},
		{Point{Lat: -91, Lon: 0}, false},
		{Point{Lat: 0, Lon: 181}, false},
		{Point{Lat: 0, Lon: -181}, false},
		{Point{Lat: 90, Lon: 180}, true},
		{Point{}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("%v.Valid() = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestDistance(t *testing.T) {
	if d := Distance(ucla, ucla); d != 0 {
		t.Errorf("distance to self = %f", d)
	}
	// UCLA to downtown LA is roughly 18-19 km.
	d := Distance(ucla, downtown)
	if d < 17000 || d > 20000 {
		t.Errorf("UCLA->downtown = %.0f m, expected ~18.5 km", d)
	}
	// Symmetry.
	if d2 := Distance(downtown, ucla); math.Abs(d-d2) > 1e-6 {
		t.Errorf("asymmetric distance: %f vs %f", d, d2)
	}
	// LA to Paris is roughly 9085 km.
	d = Distance(ucla, paris)
	if d < 8.9e6 || d > 9.3e6 {
		t.Errorf("LA->Paris = %.0f m, expected ~9085 km", d)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		clampLat := func(v float64) float64 { return math.Mod(math.Abs(v), 180) - 90 }
		clampLon := func(v float64) float64 { return math.Mod(math.Abs(v), 360) - 180 }
		a := Point{Lat: clampLat(a1), Lon: clampLon(o1)}
		b := Point{Lat: clampLat(a2), Lon: clampLon(o2)}
		c := Point{Lat: clampLat(a3), Lon: clampLon(o3)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	r, err := NewRect(Point{Lat: 34, Lon: -119}, Point{Lat: 35, Lon: -118})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(ucla) {
		t.Error("rect should contain UCLA")
	}
	if r.Contains(paris) {
		t.Error("rect should not contain Paris")
	}
	// Corner order should not matter.
	r2, err := NewRect(Point{Lat: 35, Lon: -118}, Point{Lat: 34, Lon: -119})
	if err != nil {
		t.Fatal(err)
	}
	if r != r2 {
		t.Errorf("NewRect not order independent: %v vs %v", r, r2)
	}
	if _, err := NewRect(Point{Lat: 95, Lon: 0}, Point{}); err == nil {
		t.Error("expected error for invalid corner")
	}
}

func TestRectIntersectsAndExpand(t *testing.T) {
	a, _ := NewRect(Point{Lat: 0, Lon: 0}, Point{Lat: 10, Lon: 10})
	b, _ := NewRect(Point{Lat: 5, Lon: 5}, Point{Lat: 15, Lon: 15})
	c, _ := NewRect(Point{Lat: 20, Lon: 20}, Point{Lat: 30, Lon: 30})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !a.Expand(15).Intersects(c) {
		t.Error("expanded a should reach c")
	}
	e := a.Expand(200)
	if e.MinLat != -90 || e.MaxLat != 90 || e.MinLon != -180 || e.MaxLon != 180 {
		t.Errorf("expand should clamp to globe: %v", e)
	}
	if got := a.Center(); got != (Point{Lat: 5, Lon: 5}) {
		t.Errorf("Center = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	// A triangle around UCLA.
	tri := Polygon{
		{Lat: 34.0, Lon: -118.5},
		{Lat: 34.1, Lon: -118.4},
		{Lat: 34.0, Lon: -118.3},
	}
	if !tri.Valid() {
		t.Fatal("triangle should be valid")
	}
	inside := Point{Lat: 34.03, Lon: -118.4}
	if !tri.Contains(inside) {
		t.Error("point should be inside triangle")
	}
	if tri.Contains(paris) {
		t.Error("Paris should be outside triangle")
	}
	if (Polygon{{Lat: 1, Lon: 1}}).Contains(inside) {
		t.Error("degenerate polygon contains nothing")
	}
	if (Polygon{{Lat: 1, Lon: 1}, {Lat: 2, Lon: 2}}).Valid() {
		t.Error("two-point polygon should be invalid")
	}
	b := tri.Bounds()
	if b.MinLat != 34.0 || b.MaxLat != 34.1 || b.MinLon != -118.5 || b.MaxLon != -118.3 {
		t.Errorf("Bounds = %v", b)
	}
	if !(Polygon{}).Bounds().IsZero() {
		t.Error("empty polygon bounds should be zero")
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// A "U" shape; the notch must be outside.
	u := Polygon{
		{Lat: 0, Lon: 0}, {Lat: 10, Lon: 0}, {Lat: 10, Lon: 2},
		{Lat: 2, Lon: 2}, {Lat: 2, Lon: 8}, {Lat: 10, Lon: 8},
		{Lat: 10, Lon: 10}, {Lat: 0, Lon: 10},
	}
	if !u.Contains(Point{Lat: 1, Lon: 5}) {
		t.Error("base of the U should be inside")
	}
	if u.Contains(Point{Lat: 8, Lon: 5}) {
		t.Error("notch of the U should be outside")
	}
	if !u.Contains(Point{Lat: 8, Lon: 1}) {
		t.Error("left arm should be inside")
	}
}

func TestRegionContains(t *testing.T) {
	rect, _ := NewRect(Point{Lat: 34, Lon: -119}, Point{Lat: 35, Lon: -118})
	rg := Region{Label: "UCLA", Rect: rect}
	if !rg.Contains(ucla) || rg.Contains(paris) {
		t.Error("rect region misbehaves")
	}
	if !rg.HasGeometry() {
		t.Error("rect region has geometry")
	}
	empty := Region{Label: "nowhere"}
	if empty.Contains(ucla) || empty.HasGeometry() {
		t.Error("empty region should contain nothing")
	}
	poly := Region{Polygon: Polygon{{Lat: 34, Lon: -119}, {Lat: 35, Lon: -118.5}, {Lat: 34, Lon: -118}}}
	if !poly.Contains(Point{Lat: 34.3, Lon: -118.5}) {
		t.Error("polygon region should contain interior point")
	}
	if poly.Bounds().IsZero() {
		t.Error("polygon region bounds should be non-zero")
	}
}

func TestGazetteer(t *testing.T) {
	g := NewGazetteer()
	rect, _ := NewRect(Point{Lat: 34.05, Lon: -118.46}, Point{Lat: 34.08, Lon: -118.43})
	if err := g.Define("UCLA", Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	home, _ := NewRect(Point{Lat: 34.02, Lon: -118.50}, Point{Lat: 34.03, Lon: -118.49})
	if err := g.Define("Home", Region{Rect: home}); err != nil {
		t.Fatal(err)
	}

	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if _, ok := g.Lookup("ucla"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := g.Lookup("work"); ok {
		t.Error("undefined label should miss")
	}
	labels := g.LabelsAt(ucla)
	if len(labels) != 1 || labels[0] != "UCLA" {
		t.Errorf("LabelsAt(ucla) = %v", labels)
	}
	if got := g.LabelsAt(paris); len(got) != 0 {
		t.Errorf("LabelsAt(paris) = %v", got)
	}
	if len(g.Labels()) != 2 {
		t.Errorf("Labels = %v", g.Labels())
	}

	if err := g.Define("", Region{Rect: rect}); err == nil {
		t.Error("empty label should be rejected")
	}
	if err := g.Define("x", Region{}); err == nil {
		t.Error("region without geometry should be rejected")
	}
	if !g.Remove("UCLA") {
		t.Error("Remove should report existing label")
	}
	if g.Remove("UCLA") {
		t.Error("second Remove should report missing label")
	}
}

func TestGridGeocoderDeterministic(t *testing.T) {
	gc := GridGeocoder{}
	a1, err := gc.ReverseGeocode(ucla)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := gc.ReverseGeocode(ucla)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("geocoder not deterministic: %v vs %v", a1, a2)
	}
	for _, s := range []string{a1.Street, a1.Zipcode, a1.City, a1.State, a1.Country} {
		if s == "" {
			t.Errorf("empty address component in %+v", a1)
		}
	}
	if _, err := gc.ReverseGeocode(Point{Lat: 99}); err == nil {
		t.Error("invalid point should error")
	}
}

func TestGridGeocoderNesting(t *testing.T) {
	// Two points in the same street cell share every coarser component; two
	// points in different countries share none of the coarse ones.
	gc := GridGeocoder{}
	near := Point{Lat: ucla.Lat + 0.001, Lon: ucla.Lon + 0.001}
	a, _ := gc.ReverseGeocode(ucla)
	b, _ := gc.ReverseGeocode(near)
	if a.City != b.City || a.State != b.State || a.Country != b.Country {
		t.Errorf("nearby points should share coarse components: %+v vs %+v", a, b)
	}
	c, _ := gc.ReverseGeocode(paris)
	if a.Country == c.Country {
		t.Errorf("LA and Paris should differ in country: %v", a.Country)
	}
}

func TestGridGeocoderNestingProperty(t *testing.T) {
	// Same zip ⇒ same city ⇒ same state ⇒ same country (strict hierarchy).
	gc := GridGeocoder{}
	f := func(lat1, lon1, dLat, dLon float64) bool {
		clamp := func(v, lim float64) float64 { return math.Mod(math.Abs(v), 2*lim) - lim }
		p := Point{Lat: clamp(lat1, 89), Lon: clamp(lon1, 179)}
		q := Point{
			Lat: p.Lat + math.Mod(math.Abs(dLat), 0.01),
			Lon: p.Lon + math.Mod(math.Abs(dLon), 0.01),
		}
		if !q.Valid() {
			return true
		}
		a, err1 := gc.ReverseGeocode(p)
		b, err2 := gc.ReverseGeocode(q)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Zipcode == b.Zipcode && a.Street == b.Street {
			// Street names are derived from finer cells than zips; same
			// street cell implies same zip cell only when cells align, so
			// just assert the documented chain from zip upward.
			_ = a
		}
		zipSame := sameCell(p, q, zipCellDeg)
		citySame := sameCell(p, q, cityCellDeg)
		stateSame := sameCell(p, q, stateCellDeg)
		countrySame := sameCell(p, q, countryCellDeg)
		if zipSame && !citySame {
			return false
		}
		if citySame && !stateSame {
			return false
		}
		if stateSame && !countrySame {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sameCell(p, q Point, deg float64) bool {
	pi, pj := cellIndex(p, deg)
	qi, qj := cellIndex(q, deg)
	return pi == qi && pj == qj
}

func TestParseLocationGranularity(t *testing.T) {
	for in, want := range map[string]LocationGranularity{
		"Coordinates": LocCoordinates, "StreetAddress": LocStreetAddress,
		"street address": LocStreetAddress, "Zipcode": LocZipcode, "zip": LocZipcode,
		"City": LocCity, "State": LocState, "Country": LocCountry,
		"NotShared": LocNotShared, "not share": LocNotShared,
	} {
		got, err := ParseLocationGranularity(in)
		if err != nil || got != want {
			t.Errorf("ParseLocationGranularity(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLocationGranularity("galaxy"); err == nil {
		t.Error("expected error for unknown level")
	}
	if !LocCountry.CoarserThan(LocCity) {
		t.Error("Country should be coarser than City")
	}
	if CoarsestLocation(LocZipcode, LocState) != LocState {
		t.Error("CoarsestLocation should pick State")
	}
}

func TestAbstract(t *testing.T) {
	gc := GridGeocoder{}
	coords, err := Abstract(gc, ucla, LocCoordinates)
	if err != nil {
		t.Fatal(err)
	}
	if coords.Point == nil || *coords.Point != ucla || !coords.Shared() {
		t.Errorf("coordinate abstraction = %+v", coords)
	}

	addr, _ := gc.ReverseGeocode(ucla)
	for _, tc := range []struct {
		g    LocationGranularity
		want string
	}{
		{LocZipcode, addr.Zipcode},
		{LocCity, addr.City},
		{LocState, addr.State},
		{LocCountry, addr.Country},
	} {
		got, err := Abstract(gc, ucla, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != tc.want || got.Point != nil {
			t.Errorf("Abstract(%v) = %+v, want text %q", tc.g, got, tc.want)
		}
	}

	street, err := Abstract(gc, ucla, LocStreetAddress)
	if err != nil {
		t.Fatal(err)
	}
	if street.Text == "" {
		t.Error("street abstraction should include text")
	}

	hidden, err := Abstract(gc, ucla, LocNotShared)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.Shared() || hidden.Point != nil || hidden.Text != "" {
		t.Errorf("NotShared abstraction should reveal nothing: %+v", hidden)
	}

	if _, err := Abstract(gc, ucla, LocationGranularity(42)); err == nil {
		t.Error("invalid granularity should error")
	}
	if _, err := Abstract(gc, Point{Lat: 99}, LocCity); err == nil {
		t.Error("invalid point should error")
	}
}
