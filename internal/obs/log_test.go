package obs

import (
	"context"
	"strings"
	"testing"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context request id = %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("request id = %q", got)
	}
}

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerTagsComponentAndRequestID(t *testing.T) {
	var b strings.Builder
	logger := NewLogger("store", &b)
	ctx := WithRequestID(context.Background(), "rid-1")
	Log(ctx, logger).Info("hello", "k", "v")
	out := b.String()
	for _, want := range []string{"component=store", "request_id=rid-1", "msg=hello", "k=v"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line %q missing %q", out, want)
		}
	}
}

func TestTimeFeedsSpanHistogram(t *testing.T) {
	before := spanSeconds.With("obs.test_span", "ok").Count()
	done := Time(context.Background(), "obs.test_span")
	done()
	if got := spanSeconds.With("obs.test_span", "ok").Count(); got != before+1 {
		t.Errorf("span count = %d, want %d", got, before+1)
	}
}
