package rules_test

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
)

// ExampleUnmarshalRuleSet parses the paper's Fig. 4 rule document and shows
// the dependency closure at work: hiding stress while in conversation also
// blocks the raw channels stress could be re-inferred from.
func ExampleUnmarshalRuleSet() {
	rs, err := rules.UnmarshalRuleSet([]byte(`[
	  { "Consumer": ["Bob"], "Action": "Allow" },
	  { "Consumer": ["Bob"], "Context": ["Conversation"],
	    "Action": { "Abstraction": { "Stress": "NotShared" } } }
	]`))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := rules.NewEngine(rs, nil)
	if err != nil {
		log.Fatal(err)
	}

	at := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	loc := geo.Point{Lat: 34.07, Lon: -118.44}

	quiet := engine.Decide(&rules.Request{Consumer: "Bob", At: at, Location: loc})
	talking := engine.Decide(&rules.Request{
		Consumer: "Bob", At: at, Location: loc,
		ActiveContexts: []string{rules.CtxConversation},
	})

	fmt.Printf("quiet:   ECG=%v stress=%v\n", quiet.ChannelShared("ECG"), quiet.ContextLevel(rules.CategoryStress))
	fmt.Printf("talking: ECG=%v stress=%v\n", talking.ChannelShared("ECG"), talking.ContextLevel(rules.CategoryStress))
	// Output:
	// quiet:   ECG=true stress=Raw
	// talking: ECG=false stress=NotShared
}

// ExampleEngine_CollectionDecision shows the phone-side §5.3 hints: with a
// context-conditioned rule the phone must collect first and decide after
// inference; with no possible sharing it keeps the sensors off.
func ExampleEngine_CollectionDecision() {
	mk := func(doc string) *rules.Engine {
		rs, err := rules.UnmarshalRuleSet([]byte(doc))
		if err != nil {
			log.Fatal(err)
		}
		e, err := rules.NewEngine(rs, nil)
		if err != nil {
			log.Fatal(err)
		}
		return e
	}
	at := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	loc := geo.Point{Lat: 34, Lon: -118}

	fmt.Println(mk(`[{"Action":"Allow"}]`).CollectionDecision(at, loc))
	fmt.Println(mk(`[{"Context":["Drive"],"Action":"Allow"}]`).CollectionDecision(at, loc))
	fmt.Println(mk(`[{"TimeRange":{"Start":"2030-01-01T00:00:00Z"},"Action":"Allow"}]`).CollectionDecision(at, loc))
	// Output:
	// Share
	// NeedsContext
	// Skip
}
