// Package storage implements the embedded database under a SensorSafe
// remote data store. The paper only requires that sensor-value blobs live
// in "a database system" where the record count drives query cost; this
// engine makes that measurable and durable with stdlib only:
//
//   - a write-ahead log of CRC-checked, length-prefixed binary segment
//     blobs (see wavesegment.MarshalBinary) for durability,
//   - an in-memory index ordered by segment start time for range scans,
//     with per-contributor partitions,
//   - tombstone records for deletes and a Compact step that rewrites the
//     log without dead records.
//
// A Store with an empty directory path runs purely in memory, which the
// tests and benchmarks use.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/wavesegment"
)

// ID identifies a stored segment record.
type ID uint64

// Errors returned by the store.
var (
	ErrNotFound = errors.New("storage: segment not found")
	ErrClosed   = errors.New("storage: store is closed")
)

// Engine is the contract a segment storage backend provides to the
// datastore layer. Two implementations exist: this package's in-memory
// index + flat WAL (the legacy engine, still the in-memory default for
// tests and benchmarks) and internal/segstore's persistent columnar
// LSM engine. The differential tests in segstore hold the two to
// identical observable behavior.
type Engine interface {
	Put(seg *wavesegment.Segment) (ID, error)
	Get(id ID) (*wavesegment.Segment, error)
	Delete(id ID) error
	Count() int
	Scan(q Query) ([]Result, error)
	ScanRefs(q Query) ([]Result, error)
	LatestBefore(contributor string, t time.Time) (Result, bool)
	LatestBeforeFunc(contributor string, t time.Time, pred func(*wavesegment.Segment) bool) (Result, bool)
	TimeBounds() (min, max time.Time, ok bool)
	Contributors() []string
	Compact() error
	Sync() error
	Close() error
}

// record is one live entry in the index.
type record struct {
	id  ID
	seg *wavesegment.Segment
}

// Store is an embedded segment store. All methods are safe for concurrent
// use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	wal    *os.File
	nextID ID
	byID   map[ID]*record
	// byStart is sorted by (StartTime, id) for range scans.
	byStart []*record
	closed  bool
}

// walName is the log file name inside the store directory.
const walName = "segments.wal"

// Open opens (or creates) a store. With dir == "" the store is purely in
// memory and Close discards everything.
func Open(dir string) (*Store, error) {
	s := &Store{
		byID:   make(map[ID]*record),
		dir:    dir,
		nextID: 1,
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	path := filepath.Join(dir, walName)
	if err := s.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	s.wal = f
	return s, nil
}

// WAL record types.
const (
	recPut    = byte(1)
	recDelete = byte(2)
)

// replay loads the log, tolerating a truncated tail (the usual crash
// artifact): replay stops cleanly at the first short or corrupt record.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()

	r := &walReader{f: f}
	for {
		typ, id, payload, err := r.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Truncated/corrupt tail: keep what we have.
			return nil
		}
		switch typ {
		case recPut:
			seg, err := wavesegment.UnmarshalBinary(payload)
			if err != nil {
				return nil // corrupt tail
			}
			s.insert(id, seg)
		case recDelete:
			s.remove(id)
		}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
}

type walReader struct {
	f   *os.File
	buf []byte
}

// next reads one record: u32 payload length, u32 CRC, type byte, u64 id,
// payload. CRC covers type+id+payload.
func (r *walReader) next() (typ byte, id ID, payload []byte, err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(r.f, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.EOF
		}
		return
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		err = fmt.Errorf("storage: implausible record size %d", n)
		return
	}
	body := make([]byte, 9+int(n))
	if _, err = io.ReadFull(r.f, body); err != nil {
		return
	}
	if crc32.ChecksumIEEE(body) != crc {
		err = fmt.Errorf("storage: wal CRC mismatch")
		return
	}
	typ = body[0]
	id = ID(binary.LittleEndian.Uint64(body[1:9]))
	payload = body[9:]
	return
}

// appendWAL writes one record and syncs metadata lazily (no fsync per write;
// a crash loses at most the unsynced tail, which replay tolerates).
func (s *Store) appendWAL(typ byte, id ID, payload []byte) error {
	if s.wal == nil {
		return nil
	}
	body := make([]byte, 9+len(payload))
	body[0] = typ
	binary.LittleEndian.PutUint64(body[1:9], uint64(id))
	copy(body[9:], payload)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := s.wal.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: wal write: %w", err)
	}
	if _, err := s.wal.Write(body); err != nil {
		return fmt.Errorf("storage: wal write: %w", err)
	}
	return nil
}

// insert adds a record to the in-memory index.
func (s *Store) insert(id ID, seg *wavesegment.Segment) {
	rec := &record{id: id, seg: seg}
	s.byID[id] = rec
	i := sort.Search(len(s.byStart), func(i int) bool {
		ri := s.byStart[i]
		if ri.seg.StartTime().Equal(seg.StartTime()) {
			return ri.id >= id
		}
		return ri.seg.StartTime().After(seg.StartTime())
	})
	s.byStart = append(s.byStart, nil)
	copy(s.byStart[i+1:], s.byStart[i:])
	s.byStart[i] = rec
}

func (s *Store) remove(id ID) {
	rec, ok := s.byID[id]
	if !ok {
		return
	}
	delete(s.byID, id)
	for i, r := range s.byStart {
		if r == rec {
			s.byStart = append(s.byStart[:i], s.byStart[i+1:]...)
			break
		}
	}
}

// Put validates and stores a segment, returning its new ID. The segment is
// cloned; callers may keep mutating their copy.
func (s *Store) Put(seg *wavesegment.Segment) (ID, error) {
	if seg == nil {
		return 0, fmt.Errorf("storage: nil segment")
	}
	if err := seg.Validate(); err != nil {
		return 0, err
	}
	blob, err := wavesegment.MarshalBinary(seg)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	id := s.nextID
	s.nextID++
	if err := s.appendWAL(recPut, id, blob); err != nil {
		return 0, err
	}
	s.insert(id, seg.Clone())
	return id, nil
}

// Get returns a copy of the stored segment.
func (s *Store) Get(id ID) (*wavesegment.Segment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	rec, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return rec.seg.Clone(), nil
}

// Delete removes a segment.
func (s *Store) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.byID[id]; !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if err := s.appendWAL(recDelete, id, nil); err != nil {
		return err
	}
	s.remove(id)
	return nil
}

// Count returns the number of live segments.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Query selects stored segments. Zero fields match everything.
type Query struct {
	// Contributor filters by owner.
	Contributor string
	// From/To select segments overlapping [From, To).
	From, To time.Time
	// Channels requires at least one of the named channels.
	Channels []string
	// Region requires the segment location inside the rect.
	Region geo.Rect
	// Limit caps the number of returned segments (0 = unlimited).
	Limit int
}

// Matches reports whether the segment satisfies every filter in q.
// Alternative engines (internal/segstore) apply the same predicate so
// all backends agree on query semantics.
func (q *Query) Matches(seg *wavesegment.Segment) bool { return q.matches(seg) }

func (q *Query) matches(seg *wavesegment.Segment) bool {
	if q.Contributor != "" && seg.Contributor != q.Contributor {
		return false
	}
	if !q.From.IsZero() && !seg.EndTime().After(q.From) {
		return false
	}
	if !q.To.IsZero() && !seg.StartTime().Before(q.To) {
		return false
	}
	if len(q.Channels) > 0 {
		any := false
		for _, c := range q.Channels {
			if seg.HasChannel(c) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if !q.Region.IsZero() && !q.Region.Contains(seg.Location) {
		return false
	}
	return true
}

// Result pairs a stored segment copy with its ID.
type Result struct {
	ID      ID
	Segment *wavesegment.Segment
}

// Scan returns matching segments ordered by start time. The returned
// segments are copies.
func (s *Store) Scan(q Query) ([]Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	// Seek to the first record that can overlap q.From. Records are sorted
	// by start; a record overlaps if its end > From, and ends are bounded
	// by start + duration, so a linear guard from the first start >= From
	// minus a backward sweep handles long segments. For simplicity and
	// correctness we binary-search on start < To and filter; the scan
	// walks only records with StartTime < q.To.
	hi := len(s.byStart)
	if !q.To.IsZero() {
		hi = sort.Search(len(s.byStart), func(i int) bool {
			return !s.byStart[i].seg.StartTime().Before(q.To)
		})
	}
	var out []Result
	for _, rec := range s.byStart[:hi] {
		if !q.matches(rec.seg) {
			continue
		}
		out = append(out, Result{ID: rec.id, Segment: rec.seg.Clone()})
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out, nil
}

// ScanRefs is Scan without cloning: the returned segments are the store's
// own records and must not be mutated. Query pipelines that immediately
// transform (project/slice) segments use this to avoid copying blobs.
func (s *Store) ScanRefs(q Query) ([]Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	hi := len(s.byStart)
	if !q.To.IsZero() {
		hi = sort.Search(len(s.byStart), func(i int) bool {
			return !s.byStart[i].seg.StartTime().Before(q.To)
		})
	}
	var out []Result
	for _, rec := range s.byStart[:hi] {
		if !q.matches(rec.seg) {
			continue
		}
		out = append(out, Result{ID: rec.id, Segment: rec.seg})
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out, nil
}

// Compact rewrites the log with only live records, reclaiming space from
// deletes. No-op for in-memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dir == "" {
		return nil
	}
	tmp := filepath.Join(s.dir, walName+".compact")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	old := s.wal
	s.wal = f
	for _, rec := range s.byStart {
		blob, err := wavesegment.MarshalBinary(rec.seg)
		if err == nil {
			err = s.appendWAL(recPut, rec.id, blob)
		}
		if err != nil {
			s.wal = old
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		s.wal = old
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		s.wal = old
		f.Close()
		os.Remove(tmp)
		return err
	}
	old.Close()
	return nil
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close releases the store. Further calls fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			s.wal.Close()
			return err
		}
		return s.wal.Close()
	}
	return nil
}

// LatestBefore returns the contributor's record with the greatest start
// time strictly before t (the upload tail-coalescing probe). The segment is
// not cloned; callers must not mutate it.
func (s *Store) LatestBefore(contributor string, t time.Time) (Result, bool) {
	return s.LatestBeforeFunc(contributor, t, nil)
}

// LatestBeforeFunc is LatestBefore restricted to records satisfying pred
// (pred == nil accepts everything). Upload tail coalescing uses it to find
// the most recent record of the *same sensor stream* — multi-device
// contributors interleave streams with different channel sets.
func (s *Store) LatestBeforeFunc(contributor string, t time.Time, pred func(*wavesegment.Segment) bool) (Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hi := sort.Search(len(s.byStart), func(i int) bool {
		return !s.byStart[i].seg.StartTime().Before(t)
	})
	for i := hi - 1; i >= 0; i-- {
		rec := s.byStart[i]
		if contributor != "" && rec.seg.Contributor != contributor {
			continue
		}
		if pred != nil && !pred(rec.seg) {
			continue
		}
		return Result{ID: rec.id, Segment: rec.seg}, true
	}
	return Result{}, false
}

// TimeBounds returns the earliest start and latest end across live
// segments; ok is false for an empty store.
func (s *Store) TimeBounds() (min, max time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.byStart) == 0 {
		return time.Time{}, time.Time{}, false
	}
	min = s.byStart[0].seg.StartTime()
	for _, rec := range s.byStart {
		if e := rec.seg.EndTime(); e.After(max) {
			max = e
		}
	}
	return min, max, true
}

var _ Engine = (*Store)(nil)

// Contributors returns the distinct contributor names present, sorted.
func (s *Store) Contributors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for _, rec := range s.byID {
		seen[rec.seg.Contributor] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
