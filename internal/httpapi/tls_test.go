package httpapi

import (
	"crypto/tls"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/query"
)

func TestSelfSignedTLSEndToEnd(t *testing.T) {
	cfg, err := SelfSignedTLS([]string{"127.0.0.1", "localhost"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Certificates) != 1 || cfg.MinVersion != tls.VersionTLS12 {
		t.Fatalf("config = %+v", cfg)
	}

	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	srv := httptest.NewUnstartedServer(NewStoreHandler(svc))
	srv.TLS = cfg
	srv.StartTLS()
	defer srv.Close()

	// A client trusting the cert (via insecure skip, as with any
	// self-signed deployment cert) completes the whole key-in-body flow
	// over TLS.
	client := &StoreClient{
		BaseURL: srv.URL,
		HTTP: &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{TLSClientConfig: InsecureClientTLS()},
		},
	}
	alice, err := client.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := client.Register("bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(bob.Key, &query.Query{}); err != nil {
		t.Fatal(err)
	}

	// A default client (which verifies certificates) must reject the
	// self-signed cert — proving TLS is actually on.
	plain := &StoreClient{BaseURL: srv.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	if _, err := plain.Register("eve", "consumer"); err == nil {
		t.Error("verifying client should reject the self-signed certificate")
	}
}

func TestSelfSignedTLSValidation(t *testing.T) {
	if _, err := SelfSignedTLS(nil, time.Hour); err == nil {
		t.Error("no hosts should be rejected")
	}
	cfg, err := SelfSignedTLS([]string{"example.org"}, 0)
	if err != nil {
		t.Fatalf("zero duration should default: %v", err)
	}
	if len(cfg.Certificates) != 1 {
		t.Error("expected one certificate")
	}
}
