package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// testCtx returns a context routing spans to a fresh, isolated collector.
func testCtx(t *testing.T) (context.Context, *Collector) {
	t.Helper()
	c := NewCollector(8, 16, time.Hour)
	return WithCollector(context.Background(), c), c
}

func TestStartRootAndChildLinks(t *testing.T) {
	ctx, col := testCtx(t)
	rctx, root := Start(ctx, "test.root")
	if root == nil {
		t.Fatal("root span is nil with tracing enabled")
	}
	cctx, child := Start(rctx, "test.child")
	_, grandchild := Start(cctx, "test.grandchild")
	grandchild.End()
	child.End()
	root.End()

	if child.Context().Trace != root.Context().Trace {
		t.Fatalf("child trace %s != root trace %s", child.Context().Trace, root.Context().Trace)
	}
	spans := col.Trace(root.TraceIDString())
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	byName := map[string]*SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
	}
	if got := byName["test.root"].ParentID; got != "" {
		t.Errorf("root has parent %q", got)
	}
	if got, want := byName["test.child"].ParentID, byName["test.root"].SpanID; got != want {
		t.Errorf("child parent = %q, want %q", got, want)
	}
	if got, want := byName["test.grandchild"].ParentID, byName["test.child"].SpanID; got != want {
		t.Errorf("grandchild parent = %q, want %q", got, want)
	}
}

func TestSiblingsShareParent(t *testing.T) {
	ctx, _ := testCtx(t)
	rctx, root := Start(ctx, "test.root")
	_, a := Start(rctx, "test.a")
	_, b := Start(rctx, "test.b")
	if a.Context().Span == b.Context().Span {
		t.Error("sibling spans share a span ID")
	}
	a.End()
	b.End()
	root.End()
}

func TestTraceparentRoundTrip(t *testing.T) {
	ctx, _ := testCtx(t)
	rctx, root := Start(ctx, "test.root")
	defer root.End()

	header := Traceparent(rctx)
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("own header %q does not parse", header)
	}
	if sc != root.Context() {
		t.Fatalf("parsed %+v, want %+v", sc, root.Context())
	}

	// A "remote" service joins the trace through the header.
	remoteCtx := WithRemoteParent(context.Background(), header)
	_, server := Start(remoteCtx, "test.server")
	server.End()
	if server.Context().Trace != root.Context().Trace {
		t.Error("remote child did not join the caller's trace")
	}
	if FromContext(remoteCtx) != nil {
		t.Error("remote parent must not surface as a local span")
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header %q rejected", valid)
	}
	bad := []string{
		"",
		"garbage",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // future version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // short
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // bad flags
	}
	for _, h := range bad {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = %+v, want reject", h, sc)
		}
		ctx := WithRemoteParent(context.Background(), h)
		if SpanContextOf(ctx).Valid() {
			t.Errorf("WithRemoteParent(%q) installed a parent", h)
		}
	}
}

func TestNilSpanMethodsAreSafe(t *testing.T) {
	var s *Span
	s.SetAttr(String("k", "v"))
	s.AddEvent("retry")
	s.SetError(errors.New("boom"))
	s.End()
	if s.TraceIDString() != "" {
		t.Error("nil span has a trace ID")
	}
	if s.Context().Valid() {
		t.Error("nil span has a valid context")
	}
}

func TestDisabledTracing(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	ctx, col := testCtx(t)
	sctx, sp := Start(ctx, "test.disabled")
	if sp != nil {
		t.Fatal("Start returned a span while disabled")
	}
	sp.End()
	if got := Traceparent(sctx); got != "" {
		t.Errorf("traceparent while disabled = %q", got)
	}
	if got := len(col.Traces()); got != 0 {
		t.Errorf("collector saw %d traces while disabled", got)
	}
}

func TestSpanStatusAttrsAndEvents(t *testing.T) {
	ctx, col := testCtx(t)
	_, sp := Start(ctx, "test.status", String("component", "store"))
	sp.SetAttr(Int("fanout", 3), Bool("hedged", true), Duration("wait", 1500*time.Microsecond))
	sp.AddEvent("retry", Int("attempt", 1))
	sp.SetError(errors.New("deadline exceeded"))
	sp.End()
	sp.SetAttr(String("late", "ignored")) // after End: dropped
	sp.End()                              // double End: no-op

	spans := col.Trace(sp.TraceIDString())
	if len(spans) != 1 {
		t.Fatalf("collected %d spans, want 1", len(spans))
	}
	sd := spans[0]
	if sd.Status != "error" || !strings.Contains(sd.Error, "deadline") {
		t.Errorf("status=%q error=%q", sd.Status, sd.Error)
	}
	if sd.Attrs["component"] != "store" || sd.Attrs["fanout"] != int64(3) || sd.Attrs["hedged"] != true {
		t.Errorf("attrs = %#v", sd.Attrs)
	}
	if sd.Attrs["wait"] != 1.5 {
		t.Errorf("duration attr = %#v, want 1.5 ms", sd.Attrs["wait"])
	}
	if _, late := sd.Attrs["late"]; late {
		t.Error("attribute set after End was recorded")
	}
	if len(sd.Events) != 1 || sd.Events[0].Name != "retry" || sd.Events[0].Attrs["attempt"] != int64(1) {
		t.Errorf("events = %#v", sd.Events)
	}
}

func TestIDFromContext(t *testing.T) {
	if got := IDFromContext(context.Background()); got != "" {
		t.Errorf("empty context trace ID = %q", got)
	}
	ctx, _ := testCtx(t)
	sctx, sp := Start(ctx, "test.id")
	defer sp.End()
	if got := IDFromContext(sctx); got != sp.TraceIDString() || len(got) != 32 {
		t.Errorf("IDFromContext = %q, want %q", got, sp.TraceIDString())
	}
}
