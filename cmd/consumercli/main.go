// Command consumercli is a data consumer's command-line tool: it registers
// on the broker, searches for data contributors whose privacy rules share
// enough data, connects to their stores (the broker vaults the per-store
// API keys), and downloads data directly from the stores using the query
// mini-language.
//
// Usage:
//
//	consumercli -broker http://localhost:8080 -name bob \
//	    search -sensors ECG,Respiration -label work
//	consumercli -broker http://localhost:8080 -name bob -key <key> \
//	    query -contributor alice -q "channels(ECG) limit(10)"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/federation"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/overload"
	"sensorsafe/internal/query"
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/segstore"
	"sensorsafe/internal/stream"
	"sensorsafe/internal/timeutil"
)

func main() {
	brokerURL := flag.String("broker", "http://localhost:8080", "broker base URL")
	name := flag.String("name", "bob", "consumer name")
	key := flag.String("key", "", "existing broker API key (skips registration)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: consumercli [flags] <directory|search|query|cohort|follow|trace|storestats|rulestats|health> [subflags]")
		os.Exit(2)
	}
	bc := &httpapi.BrokerClient{BaseURL: *brokerURL}

	// Diagnostic commands must not mutate server state, so they skip the
	// consumer auto-registration (health still uses -key when given, to
	// enumerate the per-store fleet through the directory).
	apiKey := auth.APIKey(*key)
	if apiKey == "" && flag.Arg(0) != "trace" && flag.Arg(0) != "storestats" && flag.Arg(0) != "rulestats" && flag.Arg(0) != "health" {
		u, err := bc.RegisterConsumer(*name)
		if err != nil {
			log.Fatalf("consumercli: register: %v", err)
		}
		apiKey = u.Key
		fmt.Printf("registered %s\nAPI key: %s\n", u.Name, apiKey)
	}

	switch flag.Arg(0) {
	case "directory":
		dir, err := bc.Directory(apiKey)
		if err != nil {
			log.Fatalf("consumercli: %v", err)
		}
		for _, e := range dir {
			fmt.Printf("%-20s %-30s %d rules\n", e.Name, e.StoreAddr, e.RuleCount)
		}

	case "search":
		fs := flag.NewFlagSet("search", flag.ExitOnError)
		sensors := fs.String("sensors", "", "comma-separated sensors that must be shared raw")
		label := fs.String("label", "", "contributor-defined location label (e.g. work)")
		days := fs.String("days", "", "comma-separated weekdays (e.g. Mon,Tue)")
		hours := fs.String("hours", "", "window as from,to (e.g. 9:00am,6:00pm)")
		contexts := fs.String("while", "", "comma-separated active contexts (e.g. Drive)")
		_ = fs.Parse(flag.Args()[1:])

		q := &broker.SearchQuery{LocationLabel: *label}
		if *sensors != "" {
			q.Sensors = strings.Split(*sensors, ",")
		}
		if *contexts != "" {
			q.ActiveContexts = strings.Split(*contexts, ",")
		}
		if *days != "" || *hours != "" {
			var dayList, hourList []string
			if *days != "" {
				dayList = strings.Split(*days, ",")
			}
			if *hours != "" {
				hourList = strings.Split(*hours, ",")
			}
			rep, err := timeutil.ParseRepeated(dayList, hourList)
			if err != nil {
				log.Fatalf("consumercli: %v", err)
			}
			q.RepeatTime = rep
		}
		names, err := bc.Search(apiKey, q)
		if err != nil {
			log.Fatalf("consumercli: %v", err)
		}
		if len(names) == 0 {
			fmt.Println("no contributors share enough data for this query")
			return
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "query":
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		contributor := fs.String("contributor", "", "contributor to query")
		qtext := fs.String("q", "", "query in the mini-language (empty = everything)")
		summary := fs.Bool("summary", false, "print aggregate statistics instead of spans")
		_ = fs.Parse(flag.Args()[1:])
		if *contributor == "" {
			log.Fatal("consumercli: -contributor is required")
		}
		cred, err := bc.Connect(apiKey, *contributor)
		if err != nil {
			log.Fatalf("consumercli: connect: %v", err)
		}
		sc := &httpapi.StoreClient{BaseURL: cred.StoreAddr}
		rels, err := sc.QueryText(cred.Key, *qtext)
		if err != nil {
			log.Fatalf("consumercli: query: %v", err)
		}
		if *summary {
			sum := abstraction.Summarize(rels)
			fmt.Printf("%d releases, %d raw samples, %s .. %s\n",
				sum.Releases, sum.RawSamples,
				sum.Earliest.Format("2006-01-02 15:04:05"), sum.Latest.Format("15:04:05"))
			for ch, st := range sum.Channels {
				fmt.Printf("  %-14s %7d samples  min %.3f  max %.3f  mean %.3f\n",
					ch, st.Samples, st.Min, st.Max, st.Mean)
			}
			for _, ctx := range sum.TopContexts() {
				fmt.Printf("  context %-12s %v\n", ctx, sum.Contexts[ctx])
			}
			return
		}
		fmt.Printf("%d releases from %s\n", len(rels), *contributor)
		for i, rel := range rels {
			loc := "location withheld"
			if rel.Location.Point != nil {
				loc = rel.Location.Point.String()
			} else if rel.Location.Text != "" {
				loc = rel.Location.Text
			}
			var span string
			if rel.Start.IsZero() {
				span = "time withheld"
			} else {
				span = fmt.Sprintf("%s .. %s (%s)", rel.Start.Format("15:04:05"), rel.End.Format("15:04:05"), rel.TimeGranularity)
			}
			chans := "no raw channels"
			if rel.Segment != nil {
				chans = fmt.Sprintf("%v, %d samples", rel.Segment.Channels, rel.Segment.NumSamples())
			}
			var ctxs []string
			for _, c := range rel.Contexts {
				ctxs = append(ctxs, c.Context)
			}
			fmt.Printf("[%3d] %s | %s | %s | contexts %v\n", i, span, loc, chans, ctxs)
		}

	case "cohort":
		fs := flag.NewFlagSet("cohort", flag.ExitOnError)
		contributors := fs.String("contributors", "", "comma-separated explicit cohort")
		list := fs.String("list", "", "saved contributor list name")
		study := fs.String("study", "", "study whose enrolled contributor roster is the cohort")
		sensors := fs.String("sensors", "", "search: sensors that must be shared raw")
		label := fs.String("label", "", "search: contributor-defined location label")
		contexts := fs.String("while", "", "search: comma-separated active contexts")
		qtext := fs.String("q", "", "per-store data query in the mini-language (empty = everything)")
		limit := fs.Int("limit", 0, "releases per page (0 = everything)")
		cursor := fs.String("cursor", "", "resume cursor from a previous page")
		par := fs.Int("par", 0, "max concurrent store fetches (0 = default 16)")
		timeout := fs.Duration("timeout", 10*time.Second, "per-store deadline")
		hedge := fs.Duration("hedge", 0, "hedge stragglers after this delay (0 = off)")
		_ = fs.Parse(flag.Args()[1:])

		var cohort federation.Cohort
		switch {
		case *contributors != "":
			cohort.Contributors = strings.Split(*contributors, ",")
		case *list != "":
			cohort.List = *list
		case *study != "":
			cohort.Study = *study
		default:
			sq := &broker.SearchQuery{LocationLabel: *label}
			if *sensors != "" {
				sq.Sensors = strings.Split(*sensors, ",")
			}
			if *contexts != "" {
				sq.ActiveContexts = strings.Split(*contexts, ",")
			}
			cohort.Search = sq
		}
		var dq *query.Query
		if *qtext != "" {
			var err error
			if dq, err = query.Parse(*qtext); err != nil {
				log.Fatalf("consumercli: %v", err)
			}
		}
		eng := httpapi.NewFederation(bc, apiKey, federation.Options{
			Concurrency:     *par,
			PerStoreTimeout: *timeout,
			HedgeAfter:      *hedge,
		})
		// Root span for the whole page: broker resolution, every store's
		// fan-out leg, and the stores' release decisions all join this trace
		// (inspect with `consumercli trace -from <server> <id>`).
		ctx, span := trace.Start(context.Background(), "consumer.cohort")
		res, err := eng.CohortQuery(ctx, &federation.Request{
			Cohort: cohort, Query: dq, Limit: *limit, Cursor: *cursor,
		})
		span.SetError(err)
		span.End()
		if err != nil {
			log.Fatalf("consumercli: cohort: %v", err)
		}
		if tid := span.TraceIDString(); tid != "" {
			fmt.Printf("trace: %s\n", tid)
		}
		for i, rel := range res.Releases {
			fmt.Printf("%-14s ", rel.Contributor)
			printRelease(i, rel)
		}
		fmt.Printf("\n%d releases from %d stores\n", len(res.Releases), len(res.Reports))
		for _, rep := range res.Reports {
			line := fmt.Sprintf("  %-20s %-30s %-11s %3d released  %6.1fms",
				rep.Contributor, rep.StoreAddr, rep.Outcome, rep.Releases,
				float64(rep.Latency.Microseconds())/1000)
			if rep.Remaining > 0 {
				line += fmt.Sprintf("  +%d behind cursor", rep.Remaining)
			}
			if rep.Hedged {
				line += "  hedged"
				if rep.HedgeWon {
					line += " (won)"
				}
			}
			if rep.Error != "" {
				line += "  " + rep.Error
			}
			fmt.Println(line)
		}
		if res.Partial {
			fmt.Println("PARTIAL RESULT: some stores are missing (see outcomes above)")
		}
		if res.Cursor != "" {
			fmt.Printf("next page: -cursor %s\n", res.Cursor)
		}

	case "follow":
		fs := flag.NewFlagSet("follow", flag.ExitOnError)
		contributor := fs.String("contributor", "", "contributor to follow live")
		channels := fs.String("channels", "", "comma-separated channels (empty = everything the rules release)")
		cursor := fs.String("cursor", "", "resume cursor from a previous session")
		wait := fs.Duration("wait", 30*time.Second, "long-poll wait per round trip")
		_ = fs.Parse(flag.Args()[1:])
		if *contributor == "" {
			log.Fatal("consumercli: -contributor is required")
		}
		cred, err := bc.Connect(apiKey, *contributor)
		if err != nil {
			log.Fatalf("consumercli: connect: %v", err)
		}
		sc := &httpapi.StoreClient{BaseURL: cred.StoreAddr}
		var chans []string
		if *channels != "" {
			chans = strings.Split(*channels, ",")
		}
		info, err := sc.Subscribe(cred.Key, *contributor, chans)
		if err != nil {
			log.Fatalf("consumercli: subscribe: %v", err)
		}
		cur := info.Cursor
		if *cursor != "" {
			cur = *cursor
		}
		fmt.Printf("following %s (subscription %s, cursor %s; resumed=%v)\n",
			*contributor, info.ID, cur, info.Resumed)
		for {
			b, err := sc.Next(cred.Key, info.ID, cur, *wait)
			if err != nil {
				log.Fatalf("consumercli: next: %v", err)
			}
			for _, ev := range b.Events {
				switch ev.Kind {
				case stream.KindGap:
					fmt.Printf("[gap] %d segment(s) missed while disconnected or lagging\n", ev.Dropped)
				case stream.KindBye:
					fmt.Printf("store closed the stream; resume later with cursor %s\n", ev.Cursor)
					return
				default:
					for _, rel := range ev.Releases {
						printRelease(int(ev.Seq), rel)
					}
				}
			}
			cur = b.Cursor
		}

	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		from := fs.String("from", "", "server whose /debug/traces to read (default: the broker)")
		_ = fs.Parse(flag.Args()[1:])
		if fs.NArg() < 1 {
			log.Fatal("consumercli: usage: trace [-from http://store:8081] <trace-id>")
		}
		base := *from
		if base == "" {
			base = *brokerURL
		}
		spans, err := fetchTrace(base, fs.Arg(0))
		if err != nil {
			log.Fatalf("consumercli: trace: %v", err)
		}
		printTraceTree(spans)

	case "storestats":
		fs := flag.NewFlagSet("storestats", flag.ExitOnError)
		storeURL := fs.String("store", "", "store base URL whose /debug/segstore to read")
		_ = fs.Parse(flag.Args()[1:])
		if *storeURL == "" {
			log.Fatal("consumercli: usage: storestats -store http://store:8081")
		}
		if err := printStoreStats(*storeURL); err != nil {
			log.Fatalf("consumercli: storestats: %v", err)
		}

	case "rulestats":
		fs := flag.NewFlagSet("rulestats", flag.ExitOnError)
		storeURL := fs.String("store", "", "store base URL whose /debug/ruleindex to read")
		_ = fs.Parse(flag.Args()[1:])
		if *storeURL == "" {
			log.Fatal("consumercli: usage: rulestats -store http://store:8081")
		}
		if err := printRuleStats(*storeURL); err != nil {
			log.Fatalf("consumercli: rulestats: %v", err)
		}

	case "health":
		fs := flag.NewFlagSet("health", flag.ExitOnError)
		_ = fs.Parse(flag.Args()[1:])
		if err := printHealth(bc, apiKey); err != nil {
			log.Fatalf("consumercli: health: %v", err)
		}

	default:
		fmt.Fprintf(os.Stderr, "consumercli: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// printHealth surveys the fleet: the broker's /healthz plus, when a key
// allows reading the directory, every store's — showing each server's
// degradation state and pressure alongside a probe circuit breaker
// (the same BreakerSet federation uses; one failed probe trips it, so an
// unreachable store renders as open).
func printHealth(bc *httpapi.BrokerClient, key auth.APIKey) error {
	breakers := overload.NewBreakerSet(overload.BreakerConfig{FailureThreshold: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	probe := func(kind, name, base string, fetch func() (httpapi.Health, error)) {
		br := breakers.For(base)
		var h httpapi.Health
		err := br.Allow()
		if err == nil {
			h, err = fetch()
			br.Report(err)
		}
		if err != nil {
			fmt.Printf("%-8s %-20s %-30s unreachable (%v); breaker %s\n", kind, name, base, err, br.State())
			return
		}
		deg := h.Degradation
		if deg == "" {
			deg = "unknown"
		}
		fmt.Printf("%-8s %-20s %-30s %s, %s (pressure %.2f), up %s; breaker %s\n",
			kind, name, base, h.Status, deg, h.Pressure,
			(time.Duration(h.UptimeS) * time.Second).Round(time.Second), br.State())
	}

	probe("broker", "-", bc.BaseURL, func() (httpapi.Health, error) { return bc.HealthCtx(ctx) })
	if key == "" {
		fmt.Println("(no -key: stores not enumerated; pass a broker API key to survey the fleet)")
		return nil
	}
	dir, err := bc.Directory(key)
	if err != nil {
		return fmt.Errorf("directory: %w", err)
	}
	seen := make(map[string]bool)
	for _, e := range dir {
		if e.StoreAddr == "" || seen[e.StoreAddr] {
			continue
		}
		seen[e.StoreAddr] = true
		sc := &httpapi.StoreClient{BaseURL: e.StoreAddr}
		probe("store", e.Name, e.StoreAddr, func() (httpapi.Health, error) { return sc.HealthCtx(ctx) })
	}
	return nil
}

// printStoreStats renders a store's segment-engine internals from its
// /debug/segstore endpoint: per-level file counts, live/dead records,
// WAL size, and last compaction.
func printStoreStats(base string) error {
	u := strings.TrimRight(base, "/") + "/debug/segstore"
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%s: store runs the in-memory engine (no segstore stats)", u)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", u, resp.StatusCode)
	}
	var st segstore.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("segstore %s\n", st.Dir)
	fmt.Printf("  live records      %d (%d on disk, %d in memtable, %d tombstoned)\n",
		st.LiveRecords, st.DiskRecords, st.MemtableRecords, st.Tombstones)
	fmt.Printf("  memtable          %d bytes (%d sealed awaiting flush)\n", st.MemtableBytes, st.SealedMemtables)
	fmt.Printf("  wal               %d files, %d bytes (%d records replayed at open)\n",
		st.WALFiles, st.WALBytes, st.WALReplayed)
	for _, l := range st.Levels {
		dead := ""
		if l.RawBytes > 0 {
			dead = fmt.Sprintf(", %.1fx raw", float64(l.RawBytes)/float64(max64(l.Bytes, 1)))
		}
		fmt.Printf("  L%d                %d files, %d records, %d bytes%s\n",
			l.Level, l.Files, l.Records, l.Bytes, dead)
	}
	fmt.Printf("  flushes           %d\n", st.Flushes)
	fmt.Printf("  compactions       %d (%d wave-merged, %d reclaimed)\n",
		st.Compactions, st.MergedRecords, st.ReclaimedTombs)
	if !st.LastCompaction.IsZero() {
		fmt.Printf("  last compaction   %s (%d ms)\n", st.LastCompaction.Format(time.RFC3339), st.LastCompactMS)
	}
	if st.LastError != "" {
		fmt.Printf("  last error        %s\n", st.LastError)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// printRuleStats renders a store's per-contributor compiled rule-index
// state from its /debug/ruleindex endpoint: rule count, compile time,
// decision-cache effectiveness, and index shape.
func printRuleStats(base string) error {
	u := strings.TrimRight(base, "/") + "/debug/ruleindex"
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", u, resp.StatusCode)
	}
	var stats map[string]ruleindex.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	if len(stats) == 0 {
		fmt.Println("no contributors with compiled rule indexes")
		return nil
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		fmt.Printf("%s (rule version %d)\n", name, st.Version)
		fmt.Printf("  rules             %d (compiled in %s)\n",
			st.Rules, (time.Duration(st.CompileMicros) * time.Microsecond).String())
		fmt.Printf("  decision cache    %d/%d entries, %.1f%% hit ratio (%d hits, %d misses, %d evictions)\n",
			st.CacheEntries, st.CacheCapacity, 100*st.HitRatio,
			st.CacheHits, st.CacheMisses, st.CacheEvictions)
		fmt.Printf("  index shape       %d regions over %d grid cells, %d intervals, %d recurring rules\n",
			st.Regions, st.GridCells, st.Intervals, st.RepeatRules)
	}
	return nil
}

// fetchTrace downloads one completed trace from a server's /debug/traces
// endpoint. Traces are per-process: a cohort query's broker spans live on
// the broker, each store's enforcement spans on that store — all under the
// same trace ID.
func fetchTrace(base, id string) ([]*trace.SpanData, error) {
	u := strings.TrimRight(base, "/") + "/debug/traces?id=" + url.QueryEscape(id)
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d (trace evicted or never sampled?)", u, resp.StatusCode)
	}
	var body struct {
		TraceID string            `json:"traceId"`
		Spans   []*trace.SpanData `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Spans, nil
}

// printTraceTree renders the span tree, children indented under parents.
// Spans whose parent never reported to this server (it lives in another
// process) print as roots.
func printTraceTree(spans []*trace.SpanData) {
	byID := make(map[string]*trace.SpanData, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	children := map[string][]*trace.SpanData{}
	var roots []*trace.SpanData
	for _, s := range spans {
		if s.ParentID != "" && byID[s.ParentID] != nil {
			children[s.ParentID] = append(children[s.ParentID], s)
			continue
		}
		roots = append(roots, s)
	}
	order := func(ss []*trace.SpanData) {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].Start.Equal(ss[j].Start) {
				return ss[i].Start.Before(ss[j].Start)
			}
			return ss[i].SpanID < ss[j].SpanID
		})
	}
	var walk func(s *trace.SpanData, depth int)
	walk = func(s *trace.SpanData, depth int) {
		pad := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%-*s %8.2fms", pad, 30-2*depth, s.Name, s.DurationMS)
		if s.Status != "ok" {
			line += "  " + s.Status
			if s.Error != "" {
				line += ": " + s.Error
			}
		}
		if len(s.Attrs) > 0 {
			line += "  " + formatAttrs(s.Attrs)
		}
		fmt.Println(line)
		for _, ev := range s.Events {
			evLine := fmt.Sprintf("%s  · %s", pad, ev.Name)
			if len(ev.Attrs) > 0 {
				evLine += "  " + formatAttrs(ev.Attrs)
			}
			fmt.Println(evLine)
		}
		kids := children[s.SpanID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	order(roots)
	for _, r := range roots {
		walk(r, 0)
	}
}

// formatAttrs renders span attributes deterministically (sorted keys).
func formatAttrs(attrs map[string]any) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, attrs[k])
	}
	return strings.Join(parts, " ")
}

// printRelease renders one released span like the query output.
func printRelease(seq int, rel *abstraction.Release) {
	loc := "location withheld"
	if rel.Location.Point != nil {
		loc = rel.Location.Point.String()
	} else if rel.Location.Text != "" {
		loc = rel.Location.Text
	}
	span := "time withheld"
	if !rel.Start.IsZero() {
		span = fmt.Sprintf("%s .. %s (%s)", rel.Start.Format("15:04:05"), rel.End.Format("15:04:05"), rel.TimeGranularity)
	}
	chans := "no raw channels"
	if rel.Segment != nil {
		chans = fmt.Sprintf("%v, %d samples", rel.Segment.Channels, rel.Segment.NumSamples())
	}
	var ctxs []string
	for _, c := range rel.Contexts {
		ctxs = append(ctxs, c.Context)
	}
	fmt.Printf("[%3d] %s | %s | %s | contexts %v\n", seq, span, loc, chans, ctxs)
}
