// Package clean holds servertimeouts-conforming servers: every
// http.Server literal bounds header reads, and listeners start through a
// configured Server's methods.
package clean

import (
	"net/http"
	"time"
)

func hardened(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

func minimal(h http.Handler) http.Server {
	return http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
}

// methodListen is fine: the receiver carries its own timeouts.
func methodListen(addr string, h http.Handler) error {
	srv := hardened(addr, h)
	return srv.ListenAndServe()
}

// otherServer is a different package's Server type; the analyzer must key
// off net/http specifically.
type otherServer struct {
	Addr string
}

func notHTTP(addr string) otherServer {
	return otherServer{Addr: addr}
}
