package datastore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/stream"
)

// Metadata persistence: sensor data lives in the storage WAL; everything
// else a store must not lose across restarts — accounts and API keys,
// privacy rules, labeled places, and consumer group assignments — is kept
// in a JSON state file rewritten atomically (tmp + rename) on every
// mutation. In-memory stores (Dir == "") skip persistence entirely.

// stateFileName is the metadata file inside the store directory.
const stateFileName = "state.json"

type persistedUser struct {
	Name string      `json:"name"`
	Role string      `json:"role"`
	Key  auth.APIKey `json:"key"`
}

type persistedContributor struct {
	Rules       json.RawMessage     `json:"rules,omitempty"`
	Places      []geo.Region        `json:"places,omitempty"`
	Groups      map[string][]string `json:"groups,omitempty"`
	RuleVersion uint64              `json:"ruleVersion,omitempty"`
}

type persistedState struct {
	Users        []persistedUser                  `json:"users"`
	Contributors map[string]*persistedContributor `json:"contributors"`
	// Subscriptions are the live-sharing registrations and their durable
	// cursors; buffered-but-unacked segments are not persisted and
	// surface as a gap event after a restart.
	Subscriptions []stream.SubscriptionState `json:"subscriptions,omitempty"`
	// PendingSync is the durable replica outbox: contributor → rule-set
	// version still awaiting acknowledgment from the sync target. Persisted
	// so a crash between a rule change and a successful broker push cannot
	// silently drop the replica.
	PendingSync map[string]uint64 `json:"pendingSync,omitempty"`
}

// saveState writes the metadata file. Callers must not hold s.mu.
func (s *Service) saveState() error {
	if s.opts.Dir == "" {
		return nil
	}
	st, err := s.snapshotState()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("datastore: encode state: %w", err)
	}
	if err := resilience.WriteFileAtomic(filepath.Join(s.opts.Dir, stateFileName), data, 0o600); err != nil {
		return fmt.Errorf("datastore: write state: %w", err)
	}
	return nil
}

func (s *Service) snapshotState() (*persistedState, error) {
	st := &persistedState{Contributors: make(map[string]*persistedContributor)}
	st.Subscriptions = s.stream.Snapshot() // before s.mu: hub locks never nest inside it
	for _, u := range s.users.Snapshot() {
		st.Users = append(st.Users, persistedUser{Name: u.Name, Role: u.Role.String(), Key: u.Key})
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pending) > 0 {
		st.PendingSync = make(map[string]uint64, len(s.pending))
		for name, v := range s.pending {
			st.PendingSync[name] = v
		}
	}
	names := make([]string, 0, len(s.contributors))
	for name := range s.contributors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := s.contributors[name]
		pc := &persistedContributor{Places: placesOf(cs), RuleVersion: cs.ruleVersion}
		if len(cs.rules) > 0 {
			data, err := rules.MarshalRuleSet(cs.rules)
			if err != nil {
				return nil, err
			}
			pc.Rules = data
		}
		if len(cs.groups) > 0 {
			pc.Groups = make(map[string][]string, len(cs.groups))
			for consumer, groups := range cs.groups {
				pc.Groups[consumer] = append([]string(nil), groups...)
			}
		}
		st.Contributors[name] = pc
	}
	return st, nil
}

// loadState restores metadata at startup; a missing file is a fresh store.
func (s *Service) loadState() error {
	if s.opts.Dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, stateFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("datastore: read state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("datastore: decode state: %w", err)
	}
	users := make([]auth.User, 0, len(st.Users))
	for _, pu := range st.Users {
		role := auth.RoleConsumer
		if pu.Role == auth.RoleContributor.String() {
			role = auth.RoleContributor
		}
		users = append(users, auth.User{Name: pu.Name, Role: role, Key: pu.Key})
	}
	if err := s.users.Restore(users); err != nil {
		return fmt.Errorf("datastore: restore users: %w", err)
	}
	s.stream.Restore(st.Subscriptions)
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, pc := range st.Contributors {
		cs := &contributorState{
			gazetteer:   geo.NewGazetteer(),
			groups:      make(map[string][]string),
			ruleVersion: pc.RuleVersion,
		}
		for _, rg := range pc.Places {
			if err := cs.gazetteer.Define(rg.Label, rg); err != nil {
				return fmt.Errorf("datastore: restore place %q: %w", rg.Label, err)
			}
		}
		if len(pc.Rules) > 0 {
			rs, err := rules.UnmarshalRuleSet(pc.Rules)
			if err != nil {
				return fmt.Errorf("datastore: restore rules for %s: %w", name, err)
			}
			engine, err := rules.NewEngine(rs, cs.gazetteer)
			if err != nil {
				return fmt.Errorf("datastore: recompile rules for %s: %w", name, err)
			}
			cs.rules = rs
			cs.engine = engine
			cs.recompileIndex()
		}
		for consumer, groups := range pc.Groups {
			cs.groups[consumer] = groups
		}
		s.contributors[name] = cs
	}
	for name, v := range st.PendingSync {
		s.pending[name] = v
	}
	metricSyncPending.Set(float64(len(s.pending)))
	return nil
}
