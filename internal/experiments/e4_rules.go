package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// E4Config parameterizes the rule-evaluation overhead experiment.
type E4Config struct {
	// RuleCounts sweeps the size of the contributor's rule set.
	RuleCounts []int
	// Evaluations per configuration (per measurement).
	Evaluations int
	// WithEnforcement also times full segment enforcement (query path).
	SegmentSeconds int
}

// DefaultE4 sweeps 1..1000 rules.
func DefaultE4() E4Config {
	return E4Config{RuleCounts: []int{1, 10, 100, 1000}, Evaluations: 2000, SegmentSeconds: 60}
}

// e4Rules builds a realistic mixed rule set of the given size: consumer
// allows, location/time-scoped abstractions, and context denies.
func e4Rules(n int) []*rules.Rule {
	gaz := geo.NewGazetteer()
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	_ = gaz.Define("work", geo.Region{Rect: rect})

	rep, _ := timeutil.ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	out := make([]*rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		var r *rules.Rule
		switch i % 4 {
		case 0:
			r = &rules.Rule{ID: fmt.Sprintf("allow-%d", i),
				Consumers: []string{fmt.Sprintf("consumer-%d", i)}, Action: rules.Allow()}
		case 1:
			r = &rules.Rule{ID: fmt.Sprintf("abs-%d", i),
				Consumers:   []string{fmt.Sprintf("consumer-%d", i)},
				RepeatTimes: []timeutil.Repeated{rep},
				Action: rules.Abstract(rules.AbstractionSpec{
					Contexts: map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelBinary},
				})}
		case 2:
			r = &rules.Rule{ID: fmt.Sprintf("deny-%d", i),
				Consumers: []string{fmt.Sprintf("consumer-%d", i)},
				Contexts:  []string{rules.CtxDrive}, Action: rules.Deny()}
		default:
			r = &rules.Rule{ID: fmt.Sprintf("loc-%d", i),
				Consumers:      []string{fmt.Sprintf("consumer-%d", i)},
				LocationLabels: []string{"work"},
				Sensors:        rules.ExpandSensorNames([]string{"Accelerometer"}),
				Action:         rules.Allow()}
		}
		out = append(out, r)
	}
	return out
}

// E4Engine builds the engine for a rule count (exported for benchmarks).
func E4Engine(n int) (*rules.Engine, error) {
	gaz := geo.NewGazetteer()
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := gaz.Define("work", geo.Region{Rect: rect}); err != nil {
		return nil, err
	}
	return rules.NewEngine(e4Rules(n), gaz)
}

// E4Request is the probe request benchmarks reuse.
func E4Request() *rules.Request {
	return &rules.Request{
		Consumer:       "consumer-0",
		At:             time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC),
		Location:       geo.Point{Lat: 34.0689, Lon: -118.4452},
		ActiveContexts: []string{rules.CtxWalk, rules.CtxConversation},
	}
}

// E4Segment builds the enforcement-path segment (exported for benchmarks).
func E4Segment(seconds int) *wavesegment.Segment {
	start := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: start, Interval: 100 * time.Millisecond,
		Location: geo.Point{Lat: 34.0689, Lon: -118.4452},
		Channels: []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelAccelX},
	}
	for i := 0; i < seconds*10; i++ {
		seg.Values = append(seg.Values, []float64{float64(i), float64(i) / 2, 0.01})
	}
	_ = seg.Annotate(rules.CtxWalk, start, start.Add(time.Duration(seconds/2)*time.Second))
	_ = seg.Annotate(rules.CtxConversation, start.Add(time.Duration(seconds/4)*time.Second),
		start.Add(time.Duration(3*seconds/4)*time.Second))
	return seg
}

// RunE4 measures Decide latency and full enforcement latency vs rule count.
func RunE4(cfg E4Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Caption: fmt.Sprintf("rule-evaluation overhead (%d evaluations/point, %ds segment)", cfg.Evaluations, cfg.SegmentSeconds),
		Headers: []string{"rules", "decide", "enforce segment", "releases"},
		Notes: []string{
			"decide = one access-control decision; enforce = full query path over one segment",
			"expected shape: linear in rule count with a small constant — fine-grained control stays cheap",
		},
	}
	gc := geo.GridGeocoder{}
	for _, n := range cfg.RuleCounts {
		engine, err := E4Engine(n)
		if err != nil {
			return nil, err
		}
		req := E4Request()

		begin := time.Now()
		for i := 0; i < cfg.Evaluations; i++ {
			_ = engine.Decide(req)
		}
		decide := time.Since(begin) / time.Duration(cfg.Evaluations)

		seg := E4Segment(cfg.SegmentSeconds)
		rounds := 20
		begin = time.Now()
		var rels []*abstraction.Release
		for i := 0; i < rounds; i++ {
			rels, err = abstraction.Enforce(engine, "consumer-0", nil, seg, gc)
			if err != nil {
				return nil, err
			}
		}
		enforce := time.Since(begin) / time.Duration(rounds)

		t.AddRow(fmt.Sprintf("%d", n), decide.Round(time.Nanosecond).String(),
			enforce.Round(time.Microsecond).String(), fmt.Sprintf("%d", len(rels)))
	}
	return t, nil
}
