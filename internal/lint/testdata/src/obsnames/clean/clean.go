// Package clean shows metric registrations the obsnames analyzer must
// accept: literal snake_case names, each registered exactly once.
package clean

import "sensorsafe/internal/obs"

const histName = "sensorsafe_fixture_lag_seconds" // constants fold, so this is fine

var (
	fixtureOps = obs.NewCounter("sensorsafe_fixture_ops_total", "Well-named fixture counter.")
	fixtureLag = obs.NewHistogramVec(histName, "Labeled fixture histogram.", nil, "stage")
)
