package core_test

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// Example walks the paper's Fig. 4 scenario end to end: Alice shares
// everything at UCLA with Bob, except stress while in conversation.
func Example() {
	net := core.NewNetwork()
	defer net.Close()
	if _, err := net.AddStore("alice-store", ""); err != nil {
		log.Fatal(err)
	}
	alice, err := net.NewContributor("alice-store", "alice")
	if err != nil {
		log.Fatal(err)
	}

	campus, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := alice.DefinePlace("UCLA", geo.Region{Rect: campus}); err != nil {
		log.Fatal(err)
	}
	if err := alice.SetRules(`[
	  {"Consumer": ["Bob"], "LocationLabel": ["UCLA"], "Action": "Allow"},
	  {"Consumer": ["Bob"], "LocationLabel": ["UCLA"], "Context": ["Conversation"],
	   "Action": {"Abstraction": {"Stress": "NotShared"}}}
	]`); err != nil {
		log.Fatal(err)
	}

	// One minute of chest-band data at UCLA with a conversation in the
	// middle third.
	start := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: start, Interval: 100 * time.Millisecond,
		Location: geo.Point{Lat: 34.0689, Lon: -118.4452},
		Channels: []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration},
	}
	for i := 0; i < 600; i++ {
		seg.Values = append(seg.Values, []float64{1, 2})
	}
	_ = seg.Annotate(rules.CtxConversation, start.Add(20*time.Second), start.Add(40*time.Second))
	if _, err := alice.Store.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		log.Fatal(err)
	}

	bob, err := net.NewConsumer("Bob")
	if err != nil {
		log.Fatal(err)
	}
	rels, err := bob.Query("alice", &query.Query{})
	if err != nil {
		log.Fatal(err)
	}
	for _, rel := range rels {
		chans := "no raw channels (stress withheld)"
		if rel.Segment != nil {
			chans = fmt.Sprintf("channels=%v", rel.Segment.Channels)
		}
		fmt.Printf("%s..%s %s\n", rel.Start.Format("15:04:05"), rel.End.Format("15:04:05"), chans)
	}
	// Output:
	// 10:00:00..10:00:20 channels=[ECG Respiration]
	// 10:00:20..10:00:40 no raw channels (stress withheld)
	// 10:00:40..10:01:00 channels=[ECG Respiration]
}
