// Package bad exercises the lockorder analyzer: an AB/BA acquisition
// inversion across two functions, a lock held across a channel send
// (directly and through two callee frames), and a same-receiver
// re-acquisition.
package bad

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

func abOrder() {
	muA.Lock()
	muB.Lock() // want "acquisition order cycle"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want "acquisition order cycle"
	muA.Unlock()
	muB.Unlock()
}

type queue struct {
	mu sync.Mutex
	ch chan int
}

// push blocks on the channel with the mutex held: every other operation
// on the queue stalls until a receiver shows up.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.ch <- v // want "held across channel send"
	q.mu.Unlock()
}

// pushVia blocks the same way two frames down: the interprocedural
// summary must surface the send through forward and send.
func (q *queue) pushVia(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.forward(v) // want "held across channel send"
}

func (q *queue) forward(v int) {
	q.send(v)
}

func (q *queue) send(v int) {
	q.ch <- v
}

// double re-acquires the mutex the same receiver already holds.
func (q *queue) double() {
	q.mu.Lock()
	q.mu.Lock() // want "self-deadlock"
	q.mu.Unlock()
	q.mu.Unlock()
}
