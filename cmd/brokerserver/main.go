// Command brokerserver runs the SensorSafe broker: the directory of data
// contributors and their remote data stores, the replicated privacy-rule
// search index, and the consumer credential vault. Sensor data never flows
// through it.
//
// Usage:
//
//	brokerserver -listen :8080
//
// The broker exposes Prometheus metrics at /metrics and a JSON health report
// at /healthz; pass -pprof to additionally mount net/http/pprof profiling
// handlers under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/overload"
)

// shutdownGrace bounds how long in-flight requests may run after SIGINT/
// SIGTERM before the listener is torn down.
const shutdownGrace = 5 * time.Second

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	dir := flag.String("dir", "", "state directory (empty = in-memory)")
	useTLS := flag.Bool("tls", false, "serve HTTPS with a self-signed certificate")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	svc, err := broker.NewPersistent(*dir)
	if err != nil {
		log.Fatalf("brokerserver: %v", err)
	}
	logger := obs.NewLogger("brokerserver", os.Stderr)
	logger.Info("starting", "version", obs.Version)
	logger.Info("listening", "listen", *listen, "dir", *dir, "tls", *useTLS, "pprof", *withPprof)
	ctrl := overload.NewController(overload.BrokerDefaults())
	handler := mountPprof(httpapi.NewBrokerHandlerOverload(svc, ctrl), *withPprof)
	// Slowloris hardening: bound header/body reads and idle keep-alives.
	// No WriteTimeout — the overload middleware sets per-request write
	// deadlines instead, so nothing long-lived is capped globally.
	server := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if *useTLS {
		tlsCfg, err := httpapi.SelfSignedTLS([]string{"localhost", "127.0.0.1"}, 0)
		if err != nil {
			log.Fatalf("brokerserver: %v", err)
		}
		server.TLSConfig = tlsCfg
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if *useTLS {
			errCh <- server.ListenAndServeTLS("", "")
			return
		}
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("brokerserver: %v", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "err", err)
	}
}

// mountPprof optionally layers the net/http/pprof handlers over the API.
// Profiling stays opt-in so a production broker does not expose heap and
// goroutine dumps by default.
func mountPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	root := http.NewServeMux()
	root.Handle("/", h)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}
