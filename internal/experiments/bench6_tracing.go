package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// Bench6Config parameterizes the tracing-overhead benchmark: the E4-style
// rule-evaluation path (full segment enforcement plus decision-provenance
// span annotation, exactly what datastore.QueryCtx does per segment) is
// timed with tracing enabled vs disabled.
type Bench6Config struct {
	// Rules sizes the contributor's rule set (E4's mixed shape).
	Rules int
	// Evaluations per measured round.
	Evaluations int
	// Rounds measured per mode. Each round keeps its fastest single
	// evaluation; the reported overhead is the median of the
	// per-round-pair on/off ratios, and the reported ns/op figures are
	// each mode's best round.
	Rounds int
	// SegmentSeconds sizes the enforced segment (E4Segment).
	SegmentSeconds int
	// TargetPct is the acceptable overhead of tracing-on vs tracing-off.
	TargetPct float64
}

// DefaultBench6 matches the documented BENCH_6 configuration.
func DefaultBench6() Bench6Config {
	return Bench6Config{Rules: 100, Evaluations: 500, Rounds: 16, SegmentSeconds: 60, TargetPct: 5}
}

// Bench6Result is the BENCH_6.json shape CI archives.
type Bench6Result struct {
	Experiment  string  `json:"experiment"`
	Description string  `json:"description"`
	Rules       int     `json:"rules"`
	Evaluations int     `json:"evaluations"`
	Rounds      int     `json:"rounds"`
	BaselineNS  float64 `json:"baseline_ns_per_op"`
	TracedNS    float64 `json:"traced_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
	TargetPct   float64 `json:"target_pct"`
	Pass        bool    `json:"pass"`
}

// RunBench6 measures the tracing overhead on the rule-evaluation release
// path and reports both the machine-readable result and a DESIGN.md-style
// table.
func RunBench6(cfg Bench6Config) (*Bench6Result, *Table, error) {
	engine, err := E4Engine(cfg.Rules)
	if err != nil {
		return nil, nil, err
	}
	seg := E4Segment(cfg.SegmentSeconds)
	gc := geo.GridGeocoder{}
	//sslint:ignore ctxpropagate experiment harness is the call-tree root
	ctx := context.Background()

	// Take the garbage collector out of the measurement: pacing GC is
	// disabled (with a hard memory-limit backstop), and every timed round
	// starts from a freshly collected heap, so no GC cycle runs inside a
	// round and both modes see the identical allocator state. Without
	// this the comparison measures pacing, not tracing: the collector
	// ring retains ~1 MB of ended spans, which roughly doubles this
	// benchmark process's tiny live heap, halves GC frequency, and
	// degrades allocator cache locality for the enforcement path — an
	// artifact of a benchmark whose whole live set is one rule engine and
	// one segment. A production store holds tens of MB of segment data,
	// where the ring's retention shifts pacing by ~1%.
	prevGC := debug.SetGCPercent(-1)
	prevLimit := debug.SetMemoryLimit(256 << 20)
	defer func() {
		debug.SetMemoryLimit(prevLimit)
		debug.SetGCPercent(prevGC)
	}()

	// round reports the FASTEST single evaluation it saw. Scheduler
	// preemptions, interrupts, and GC assists only ever add time, so the
	// minimum over hundreds of ~100µs ops is a tight estimate of the
	// path's true floor, where a round total would smear every stall
	// across the mode being measured.
	round := func(enabled bool) (time.Duration, error) {
		prev := trace.Enabled()
		trace.SetEnabled(enabled)
		defer trace.SetEnabled(prev)
		runtime.GC()
		var minOp time.Duration
		for i := 0; i < cfg.Evaluations; i++ {
			start := time.Now()
			if err := bench6Eval(ctx, engine, seg, gc); err != nil {
				return 0, err
			}
			if d := time.Since(start); minOp == 0 || d < minOp {
				minOp = d
			}
		}
		return minOp, nil
	}
	// Interleave the two modes pairwise and compare within each pair: the
	// two rounds of a pair run back-to-back under near-identical machine
	// state, so a frequency shift or noisy neighbor mid-run cancels out
	// of the pair's ratio. Pairs alternate ABBA (off/on, then on/off) so
	// any first-vs-second-position effect cancels too. The median pair
	// ratio is the overhead — robust against the occasional round that
	// eats an interrupt storm, which a best-of-N comparison is not.
	var bestOff, bestOn time.Duration
	ratios := make([]float64, 0, cfg.Rounds)
	for r := -1; r < cfg.Rounds; r++ { // round -1 warms both modes up
		var dOff, dOn time.Duration
		var err error
		if r%2 == 0 {
			dOn, err = round(true)
			if err == nil {
				dOff, err = round(false)
			}
		} else {
			dOff, err = round(false)
			if err == nil {
				dOn, err = round(true)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		if r < 0 {
			continue
		}
		if bestOff == 0 || dOff < bestOff {
			bestOff = dOff
		}
		if bestOn == 0 || dOn < bestOn {
			bestOn = dOn
		}
		ratios = append(ratios, (dOn.Seconds()-dOff.Seconds())/dOff.Seconds()*100)
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		overhead = (overhead + ratios[len(ratios)/2-1]) / 2
	}
	baseline := float64(bestOff.Nanoseconds())
	traced := float64(bestOn.Nanoseconds())

	res := &Bench6Result{
		Experiment:  "BENCH_6",
		Description: "distributed-tracing overhead on the rule-evaluation release path (enforcement + decision-provenance spans), tracing on vs off",
		Rules:       cfg.Rules,
		Evaluations: cfg.Evaluations,
		Rounds:      cfg.Rounds,
		BaselineNS:  baseline,
		TracedNS:    traced,
		OverheadPct: overhead,
		TargetPct:   cfg.TargetPct,
		Pass:        overhead < cfg.TargetPct,
	}
	verdict := "PASS"
	if !res.Pass {
		verdict = fmt.Sprintf("FAIL: %.2f%% >= %.0f%% target", overhead, cfg.TargetPct)
	}
	t := &Table{
		ID:      "BENCH6",
		Caption: fmt.Sprintf("tracing overhead on rule evaluation (%d rules, %d evals/round, best of %d)", cfg.Rules, cfg.Evaluations, cfg.Rounds),
		Headers: []string{"mode", "ns/op", "overhead", "verdict"},
		Notes: []string{
			"op = one segment enforcement with decision-provenance span annotation (datastore release path)",
			fmt.Sprintf("target: tracing adds < %.0f%% latency", cfg.TargetPct),
			"pacing GC disabled and the heap quiesced before each round so both modes share one allocator state (see RunBench6)",
			"per round the fastest single op is kept (stalls only add time); overhead = median of per-round-pair ratios (modes interleaved ABBA, so machine drift cancels); ns/op = best round per mode",
		},
	}
	t.AddRow("tracing off", fmt.Sprintf("%.0f", baseline), "—", "")
	t.AddRow("tracing on", fmt.Sprintf("%.0f", traced), fmt.Sprintf("%.2f%%", overhead), verdict)
	return res, t, nil
}

// bench6Eval mirrors the store's per-segment release path: a provenance
// span around full enforcement, with the same attribute and event shape
// datastore.QueryCtx emits.
func bench6Eval(ctx context.Context, engine *rules.Engine, seg *wavesegment.Segment, gc geo.Geocoder) error {
	_, espan, stop := obs.Span(ctx, "bench.rule_eval")
	espan.SetAttr(trace.String("contributor", seg.Contributor),
		trace.Int64("rule_version", 1))
	rels, decisions, err := abstraction.EnforceExplained(engine, "consumer-0", nil, seg, gc)
	if err != nil {
		stop(err)
		return err
	}
	matched := make(map[string]bool)
	for i, rel := range rels {
		for _, id := range decisions[i].Matched {
			matched[id] = true
		}
		espan.AddEvent("release.decision",
			trace.String("outcome", "raw"),
			trace.String("rules", strings.Join(decisions[i].Matched, ",")),
			trace.String("time_granularity", rel.TimeGranularity.String()))
	}
	ids := make([]string, 0, len(matched))
	for id := range matched {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	espan.SetAttr(trace.String("decision", "allow"),
		trace.String("rules_matched", strings.Join(ids, ",")),
		trace.Int("releases", len(rels)))
	stop(nil)
	return nil
}
