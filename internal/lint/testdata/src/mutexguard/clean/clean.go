// Package clean shows every access shape the mutexguard analyzer must
// accept: lock held in the body, the Locked-suffix convention, and the
// documented caller-holds contract.
package clean

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// addLocked follows the Locked-suffix convention for helpers running
// under a caller's lock.
func (c *counter) addLocked(d int) { c.n += d }

// sum reports the raw value; callers hold c.mu.
func (c *counter) sum() int { return c.n }
