package datastore

import (
	"testing"
	"time"

	"sensorsafe/internal/audit"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

func TestQueryIsAudited(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	p := packet("alice", t0, 600)
	_ = p.Annotate(rules.CtxConversation, t0.Add(20*time.Second), t0.Add(40*time.Second))
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{p}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[
	  {"Consumer":["Bob"],"Action":"Allow"},
	  {"Consumer":["Bob"],"Context":["Conversation"],
	   "Action":{"Abstraction":{"Stress":"NotShared"}}}
	]`)); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Query(bob.Key, &query.Query{}); err != nil {
		t.Fatal(err)
	}
	// Eve gets nothing — still audited as withheld.
	eve, _ := s.RegisterConsumer("Eve")
	if _, err := s.Query(eve.Key, &query.Query{}); err != nil {
		t.Fatal(err)
	}

	events, err := s.Audit(alice.Key, audit.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no audit events")
	}
	var raw, abstracted, withheld int
	for _, e := range events {
		if e.Contributor != "alice" {
			t.Errorf("foreign contributor in alice's trail: %+v", e)
		}
		switch e.Outcome {
		case audit.OutcomeRaw:
			raw++
			if e.Consumer != "Bob" {
				t.Errorf("raw release to %s", e.Consumer)
			}
		case audit.OutcomeAbstracted:
			abstracted++
		case audit.OutcomeWithheld:
			withheld++
			if e.Consumer != "Eve" {
				t.Errorf("withheld event for %s, want Eve", e.Consumer)
			}
		}
	}
	// Bob's conversation span is abstracted (ECG/Respiration projected
	// away), the flanks are raw; Eve's whole segment is withheld.
	if raw == 0 || abstracted == 0 || withheld == 0 {
		t.Errorf("outcomes raw=%d abstracted=%d withheld=%d; want all nonzero", raw, abstracted, withheld)
	}

	sums, err := s.AuditSummary(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Consumer != "Bob" || sums[0].Raw != raw {
		t.Errorf("bob summary = %+v", sums[0])
	}
	if sums[1].Consumer != "Eve" || sums[1].Withheld != 1 || sums[1].DataSpan != 0 {
		t.Errorf("eve summary = %+v", sums[1])
	}

	// Consumers cannot read audit trails.
	if _, err := s.Audit(bob.Key, audit.Filter{}); err == nil {
		t.Error("consumers must not read audit trails")
	}
	// Filters pass through.
	got, err := s.Audit(alice.Key, audit.Filter{Consumer: "Eve"})
	if err != nil || len(got) != 1 {
		t.Errorf("filtered audit = %v, %v", got, err)
	}
	// A contributor's filter cannot escape their own trail.
	got, err = s.Audit(alice.Key, audit.Filter{Contributor: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got {
		if e.Contributor != "alice" {
			t.Error("audit filter escaped owner scope")
		}
	}
}

func TestAuditRecordsQueryText(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Channels: []string{"ECG"}, Limit: 5}
	if _, err := s.Query(bob.Key, q); err != nil {
		t.Fatal(err)
	}
	events, _ := s.Audit(alice.Key, audit.Filter{})
	if len(events) == 0 || events[0].Query != q.String() {
		t.Errorf("audited query = %q, want %q", events[0].Query, q.String())
	}
	if len(events[0].Channels) != 1 || events[0].Channels[0] != "ECG" {
		t.Errorf("audited channels = %v", events[0].Channels)
	}
}
