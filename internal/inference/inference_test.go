package inference

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/wavesegment"
)

var (
	t0     = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

// record synthesizes one merged phone segment and one merged chest segment
// for the given phases.
func record(t *testing.T, phases ...sensors.Phase) (phone, chest *wavesegment.Segment) {
	t.Helper()
	rec, err := sensors.Generate("alice", &sensors.Scenario{
		Start: t0, Origin: origin, Seed: 7, Phases: phases,
	})
	if err != nil {
		t.Fatal(err)
	}
	phones, err := wavesegment.OptimizeAll(rec.Phone, 0)
	if err != nil {
		t.Fatal(err)
	}
	chests, err := wavesegment.OptimizeAll(rec.ChestBand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(phones) != 1 || len(chests) != 1 {
		// Moving scenarios change per-packet location; merge stops there.
		// Concatenate manually for feature extraction via the first packet
		// run — tests only use single-activity phases where this holds, or
		// accept several segments.
		t.Logf("phones=%d chests=%d (location splits)", len(phones), len(chests))
	}
	return phones[0], chests[0]
}

// fractionLabeled returns the fraction of [from,to) covered by spans with
// the given context among the annotations.
func fractionLabeled(spans []wavesegment.Annotation, ctx string, from, to time.Time) float64 {
	var covered time.Duration
	for _, a := range spans {
		if a.Context != ctx || !a.Overlaps(from, to) {
			continue
		}
		s, e := a.Start, a.End
		if s.Before(from) {
			s = from
		}
		if e.After(to) {
			e = to
		}
		covered += e.Sub(s)
	}
	return float64(covered) / float64(to.Sub(from))
}

func TestTransportModeDetection(t *testing.T) {
	cases := []struct {
		activity string
	}{
		{rules.CtxStill}, {rules.CtxWalk}, {rules.CtxRun}, {rules.CtxBike}, {rules.CtxDrive},
	}
	for _, tc := range cases {
		t.Run(tc.activity, func(t *testing.T) {
			rec, err := sensors.Generate("alice", &sensors.Scenario{
				Start: t0, Origin: origin, Seed: 7,
				Phases: []sensors.Phase{{Duration: 2 * time.Minute, Activity: tc.activity, Heading: 45}},
			})
			if err != nil {
				t.Fatal(err)
			}
			a := &Annotator{}
			spans := a.Annotate(rec.Phone)
			frac := fractionLabeled(spans, tc.activity, t0, t0.Add(2*time.Minute))
			if frac < 0.85 {
				t.Errorf("%s detected over %.0f%% of the phase, want ≥85%%\nspans: %v", tc.activity, frac*100, spans)
			}
		})
	}
}

func TestStressDetection(t *testing.T) {
	_, chest := record(t,
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill},
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill, Stressed: true},
	)
	a := &Annotator{}
	spans := a.Annotate([]*wavesegment.Segment{chest})

	calmFrom, calmTo := t0, t0.Add(2*time.Minute)
	stressFrom, stressTo := t0.Add(2*time.Minute), t0.Add(4*time.Minute)

	if f := fractionLabeled(spans, rules.CtxStressed, stressFrom, stressTo); f < 0.85 {
		t.Errorf("stressed phase detected %.0f%%, want ≥85%%", f*100)
	}
	if f := fractionLabeled(spans, rules.CtxStressed, calmFrom, calmTo); f > 0.15 {
		t.Errorf("calm phase false-positive %.0f%%", f*100)
	}
	if f := fractionLabeled(spans, rules.CtxNotStressed, calmFrom, calmTo); f < 0.85 {
		t.Errorf("calm phase labeled NotStressed only %.0f%%", f*100)
	}
}

func TestSmokingDetection(t *testing.T) {
	_, chest := record(t,
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill},
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill, Smoking: true},
	)
	a := &Annotator{}
	spans := a.Annotate([]*wavesegment.Segment{chest})
	if f := fractionLabeled(spans, rules.CtxSmoking, t0.Add(2*time.Minute), t0.Add(4*time.Minute)); f < 0.8 {
		t.Errorf("smoking detected %.0f%%, want ≥80%%", f*100)
	}
	if f := fractionLabeled(spans, rules.CtxSmoking, t0, t0.Add(2*time.Minute)); f > 0.15 {
		t.Errorf("smoking false-positive %.0f%% in normal phase", f*100)
	}
}

func TestConversationDetection(t *testing.T) {
	rec, err := sensors.Generate("alice", &sensors.Scenario{
		Start: t0, Origin: origin, Seed: 7,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
			{Duration: 2 * time.Minute, Activity: rules.CtxStill, Conversation: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := &Annotator{}
	spans := a.Annotate(rec.Phone)
	if f := fractionLabeled(spans, rules.CtxConversation, t0.Add(2*time.Minute), t0.Add(4*time.Minute)); f < 0.85 {
		t.Errorf("conversation detected %.0f%%, want ≥85%%", f*100)
	}
	if f := fractionLabeled(spans, rules.CtxConversation, t0, t0.Add(2*time.Minute)); f > 0.15 {
		t.Errorf("conversation false-positive %.0f%% in quiet phase", f*100)
	}
}

func TestDayInTheLifeRecall(t *testing.T) {
	// End-to-end: the full §6 storyline; every scripted context must be
	// recovered over most of its true span.
	sc := sensors.DayInTheLife(t0, origin, 0.25)
	rec, err := sensors.Generate("alice", sc)
	if err != nil {
		t.Fatal(err)
	}
	a := &Annotator{}
	spans := a.Annotate(append(append([]*wavesegment.Segment{}, rec.Phone...), rec.ChestBand...))

	for _, truth := range rec.Truth {
		if truth.Context == rules.CtxNotStressed {
			continue // complement label; checked via CtxStressed absence
		}
		f := fractionLabeled(spans, truth.Context, truth.Start, truth.End)
		if f < 0.6 {
			t.Errorf("context %s recovered %.0f%% of [%v, %v), want ≥60%%",
				truth.Context, f*100, truth.Start, truth.End)
		}
	}
}

func TestExtractFeaturesMissingChannels(t *testing.T) {
	seg := &wavesegment.Segment{
		Contributor: "a", Start: t0, Interval: 100 * time.Millisecond,
		Channels: []string{wavesegment.ChannelSkinTemp},
		Values:   [][]float64{{36.5}, {36.6}, {36.4}},
	}
	f := ExtractFeatures(seg, t0, t0.Add(time.Second))
	if f.HasGPS || f.HasAccel || f.HasECG || f.HasResp || f.HasMic {
		t.Errorf("no inference channels expected: %+v", f)
	}
	if f.TransportMode() != "" {
		t.Error("TransportMode should be empty without motion sensors")
	}
	if _, ok := f.Stressed(); ok {
		t.Error("Stressed should not classify without ECG")
	}
	if _, ok := f.SmokingDetected(); ok {
		t.Error("SmokingDetected should not classify without respiration")
	}
	if _, ok := f.InConversation(); ok {
		t.Error("InConversation should not classify without microphone")
	}
}

func TestExtractFeaturesEmptyWindow(t *testing.T) {
	seg := &wavesegment.Segment{
		Contributor: "a", Start: t0, Interval: 100 * time.Millisecond,
		Channels: []string{wavesegment.ChannelECG},
		Values:   [][]float64{{0}},
	}
	f := ExtractFeatures(seg, t0.Add(time.Hour), t0.Add(2*time.Hour))
	if f.HasECG {
		t.Error("window outside segment should have no features")
	}
}

func TestMergeAnnotations(t *testing.T) {
	mk := func(ctx string, fromSec, toSec int) wavesegment.Annotation {
		return wavesegment.Annotation{
			Context: ctx,
			Start:   t0.Add(time.Duration(fromSec) * time.Second),
			End:     t0.Add(time.Duration(toSec) * time.Second),
		}
	}
	got := MergeAnnotations([]wavesegment.Annotation{
		mk("Walk", 10, 20),
		mk("Walk", 20, 30), // touching: merge
		mk("Walk", 40, 50), // gap: separate
		mk("Drive", 15, 25),
		mk("Drive", 18, 28), // overlapping: merge
	})
	if len(got) != 3 {
		t.Fatalf("merged spans = %v", got)
	}
	if got[0].Context != "Walk" || got[0].End.Sub(got[0].Start) != 20*time.Second {
		t.Errorf("first span = %+v", got[0])
	}
	if got[1].Context != "Drive" || got[1].End.Sub(got[1].Start) != 13*time.Second {
		t.Errorf("drive span = %+v", got[1])
	}
	// Sorted by start.
	for i := 1; i < len(got); i++ {
		if got[i].Start.Before(got[i-1].Start) {
			t.Error("spans not sorted")
		}
	}
	if MergeAnnotations(nil) != nil {
		t.Error("empty input should stay empty")
	}
}

func TestApplyAnnotations(t *testing.T) {
	seg := &wavesegment.Segment{
		Contributor: "a", Start: t0.Add(10 * time.Second), Interval: 100 * time.Millisecond,
		Channels: []string{wavesegment.ChannelECG},
	}
	for i := 0; i < 100; i++ { // 10 s
		seg.Values = append(seg.Values, []float64{0})
	}
	spans := []wavesegment.Annotation{
		{Context: "Walk", Start: t0, End: t0.Add(15 * time.Second)},                        // overlaps start
		{Context: "Drive", Start: t0.Add(30 * time.Second), End: t0.Add(60 * time.Second)}, // no overlap
	}
	ApplyAnnotations([]*wavesegment.Segment{seg}, spans)
	if len(seg.Annotations) != 1 {
		t.Fatalf("annotations = %v", seg.Annotations)
	}
	a := seg.Annotations[0]
	if a.Context != "Walk" || !a.Start.Equal(seg.StartTime()) || !a.End.Equal(t0.Add(15*time.Second)) {
		t.Errorf("clipped annotation = %+v", a)
	}
}

func TestAnnotatorWindowOption(t *testing.T) {
	rec, err := sensors.Generate("alice", &sensors.Scenario{
		Start: t0, Origin: origin, Seed: 7,
		Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
	})
	if err != nil {
		t.Fatal(err)
	}
	short := &Annotator{Window: 2 * time.Second}
	long := &Annotator{Window: 30 * time.Second}
	s1 := short.Annotate(rec.Phone)
	s2 := long.Annotate(rec.Phone)
	if len(s1) == 0 || len(s2) == 0 {
		t.Fatal("both window sizes should produce annotations")
	}
}
