// Package lint is sslint's analysis engine: a stdlib-only static-analysis
// framework (go/parser + go/types + go/importer) plus the domain analyzers
// that enforce SensorSafe's privacy and concurrency invariants — raw wave
// segments only leave through the abstraction release pipeline (proved
// interprocedurally over the module call graph by privacyflow), lock
// acquisition order stays acyclic and locks are not held across blocking
// calls (lockorder), state files are written atomically, request contexts
// propagate below cmd/, annotated struct fields are touched only under
// their mutex, metric names stay literal, snake_case, and unique, and
// release paths evaluate privacy rules through the compiled rule-index
// facade.
//
// Findings are suppressed per line with a directive comment:
//
//	//sslint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory by convention: an ignore without a justification is
// a review smell.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding. Pos.Filename is relative to the module root
// when produced by RunAnalyzers.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one pluggable check. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo filters packages by import path; nil means every package.
	AppliesTo func(modulePath, pkgPath string) bool
	Run       func(pass *Pass)
}

// Pass is the per-package invocation of an analyzer.
type Pass struct {
	Module *Module
	Pkg    *Package
	// Universe is the full set of packages the run analyzes, independent
	// of which packages were selected for reporting. Interprocedural
	// analyzers (privacyflow, lockorder) build their call graph over it;
	// RunAnalyzers sets it to the whole module, fixture tests to the
	// single fixture package.
	Universe []*Package
	// State is shared by all packages of one analyzer run, for module-wide
	// invariants (obsnames uses it to enforce global uniqueness, the
	// interprocedural analyzers cache their engines in it).
	State map[string]any

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicWrite,
		CtxPropagate,
		LockOrder,
		MutexGuard,
		ObsNames,
		PrivacyFlow,
		RuleIndexUse,
		ServerTimeouts,
	}
}

// Select resolves -only / -skip flag values (comma-separated analyzer
// names) against the given suite.
func Select(all []*Analyzer, only, skip string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(flag, list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown analyzer %q in -%s (have %s)", name, flag, analyzerNames(all))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames(all []*Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// RunAnalyzers runs each analyzer over the given packages, applies
// //sslint:ignore directives, and returns findings sorted by position.
// Filenames are rewritten relative to the module root.
func RunAnalyzers(m *Module, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		state := make(map[string]any)
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(m.Path, pkg.Path) {
				continue
			}
			pass := &Pass{Module: m, Pkg: pkg, Universe: m.Pkgs, State: state, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	diags = FilterIgnored(m, pkgs, diags)
	for i := range diags {
		if rel, err := filepath.Rel(m.Root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

var ignoreRe = regexp.MustCompile(`^//\s*sslint:ignore\s+([a-z*,]+)`)

// FilterIgnored drops diagnostics whose line (or the line below a
// standalone directive comment) carries //sslint:ignore for the analyzer.
func FilterIgnored(m *Module, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// ignored[file][line] → set of analyzer names ("*" wildcard allowed).
	ignored := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, names []string) {
		if ignored[file] == nil {
			ignored[file] = make(map[int]map[string]bool)
		}
		if ignored[file][line] == nil {
			ignored[file][line] = make(map[string]bool)
		}
		for _, n := range names {
			ignored[file][line][n] = true
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := ignoreRe.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					names := strings.Split(match[1], ",")
					pos := m.Fset.Position(c.Pos())
					// A directive applies to its own line and, when it
					// stands alone, to the line that follows.
					mark(pos.Filename, pos.Line, names)
					mark(pos.Filename, pos.Line+1, names)
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		names := ignored[d.Pos.Filename][d.Pos.Line]
		if names != nil && (names[d.Analyzer] || names["*"]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteText prints findings in the canonical file:line: [analyzer] message
// form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON prints findings as a JSON array for machine consumption.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// --- shared AST/type helpers -------------------------------------------

// calleeObj resolves the object a call expression invokes, unwrapping
// parens and generic instantiation.
func calleeObj(pkg *Package, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return pkg.Info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return pkg.Info.Uses[id]
		}
	}
	return nil
}

// inspectFuncs walks every file of the pass's package, invoking fn for
// each node with the innermost enclosing function declaration (nil for
// package-level initializers). Function literals report their enclosing
// declaration.
func inspectFuncs(pkg *Package, fn func(n ast.Node, enclosing *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					ast.Inspect(d.Body, func(n ast.Node) bool {
						if n != nil {
							fn(n, d)
						}
						return true
					})
				}
			default:
				ast.Inspect(decl, func(n ast.Node) bool {
					if n != nil {
						fn(n, nil)
					}
					return true
				})
			}
		}
	}
}
