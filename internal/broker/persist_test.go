package broker

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestBrokerStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterContributor("alice", "store-alice"); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncRules("alice", 1, []byte(`[{"Action":"Allow"}]`), workPlaces(t)); err != nil {
		t.Fatal(err)
	}
	bob, err := b.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	b.RegisterStore(&fakeStore{addr: "store-alice"})
	cred, err := b.Connect(context.Background(), bob.Key, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SaveList(bob.Key, "cohort", []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateStudy("Study"); err != nil {
		t.Fatal(err)
	}
	if err := b.JoinStudy(bob.Key, "Study"); err != nil {
		t.Fatal(err)
	}

	// Restart.
	b2, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Bob's broker key still works; the directory, his vaulted store key,
	// list, and study membership all survived.
	dirEntries, err := b2.Directory(bob.Key)
	if err != nil {
		t.Fatalf("Bob's key should survive: %v", err)
	}
	if len(dirEntries) != 1 || dirEntries[0].Name != "alice" ||
		dirEntries[0].StoreAddr != "store-alice" || dirEntries[0].RuleCount != 1 {
		t.Errorf("directory = %+v", dirEntries)
	}
	creds, err := b2.Credentials(bob.Key)
	if err != nil || len(creds) != 1 || creds[0].Key != cred.Key {
		t.Errorf("credentials = %v, %v", creds, err)
	}
	list, err := b2.List(bob.Key, "cohort")
	if err != nil || len(list) != 1 || list[0] != "alice" {
		t.Errorf("list = %v, %v", list, err)
	}
	members, err := b2.StudyMembers("Study")
	if err != nil || len(members) != 1 || members[0] != "bob" {
		t.Errorf("study = %v, %v", members, err)
	}
	// The rule replica recompiled: searches work immediately.
	got, err := b2.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if err != nil || len(got) != 1 || got[0] != "alice" {
		t.Errorf("search after restart = %v, %v", got, err)
	}
	// Study membership feeds searches after restart too.
	// New registrations still work.
	if _, err := b2.RegisterConsumer("Carol"); err != nil {
		t.Fatal(err)
	}
}

func TestBrokerGroupMembershipSurvives(t *testing.T) {
	dir := t.TempDir()
	b, _ := NewPersistent(dir)
	if err := b.SyncRules("alice", 1, []byte(`[{"Group":["Study"],"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	bob, _ := b.RegisterConsumer("bob")
	_ = b.CreateStudy("Study")
	if err := b.JoinStudy(bob.Key, "Study"); err != nil {
		t.Fatal(err)
	}

	b2, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if err != nil || len(got) != 1 {
		t.Errorf("group search after restart = %v, %v", got, err)
	}
}

func TestNewPersistentEmptyDirIsMemory(t *testing.T) {
	b, err := NewPersistent("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterConsumer("bob"); err != nil {
		t.Fatal(err)
	}
}

func TestBrokerCorruptState(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFileName), []byte("{oops"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersistent(dir); err == nil {
		t.Error("corrupt broker state should abort startup")
	}
}

func TestBrokerTornTempFileDoesNotCorruptState(t *testing.T) {
	// A crash mid-save leaves a torn temp file but never a torn state
	// file (write-temp → fsync → rename). Reopen must succeed on the
	// intact state and the next save must replace the debris.
	dir := t.TempDir()
	b, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SyncRules("alice", 1, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, stateFileName+".tmp")
	if err := os.WriteFile(torn, []byte(`{"contributors":[{"na`), 0o600); err != nil {
		t.Fatal(err)
	}

	b2, err := NewPersistent(dir)
	if err != nil {
		t.Fatalf("torn temp file must not block reopen: %v", err)
	}
	reps := b2.Replicas()
	if len(reps) != 1 || reps[0].Version != 1 {
		t.Fatalf("state lost after torn-temp crash: %+v", reps)
	}
	if _, err := b2.RegisterConsumer("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("temp file should be gone after a successful save: %v", err)
	}
}

func TestBrokerStateFilePermissions(t *testing.T) {
	dir := t.TempDir()
	b, _ := NewPersistent(dir)
	u, err := b.RegisterConsumer("bob")
	if err != nil {
		t.Fatal(err)
	}
	if u.Key == "" {
		t.Fatal("no key issued")
	}
	info, err := os.Stat(filepath.Join(dir, stateFileName))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("state file mode = %o, want 600 (contains API keys)", perm)
	}
}
