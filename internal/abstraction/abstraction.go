// Package abstraction applies access-control decisions to wave segments:
// given a rules.Decision it projects away blocked channels, coarsens
// location and timestamps to the granted granularity (Table 1(b)), and
// rewrites context annotations to their granted abstraction level. It also
// implements full segment enforcement, cutting a segment into spans of
// constant decision (at rule time-condition boundaries and context
// annotation edges) and transforming each span independently — this is the
// query/privacy processing module of the paper's Fig. 2.
package abstraction

import (
	"fmt"
	"sort"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Release is what a data consumer actually receives for one span of a wave
// segment after enforcement.
type Release struct {
	// Contributor is the data owner.
	Contributor string `json:"contributor,omitempty"`
	// Start/End delimit the span at the granted time granularity. Both are
	// zero when the time dimension is not shared.
	Start time.Time `json:"start,omitempty"`
	End   time.Time `json:"end,omitempty"`
	// TimeGranularity records how much timestamp precision was granted.
	TimeGranularity timeutil.Granularity `json:"timeGranularity"`
	// Location is the span's location at the granted granularity.
	Location geo.AbstractedLocation `json:"location"`
	// Segment carries the surviving raw channels, nil when none flow. Its
	// timestamps are already coarsened.
	Segment *wavesegment.Segment `json:"segment,omitempty"`
	// Contexts are the abstracted context labels covering the span.
	Contexts []wavesegment.Annotation `json:"contexts,omitempty"`
}

// Empty reports whether the release carries no information at all. A bare
// location (with no sensor data or context it attaches to) does not count:
// the consumer learns nothing actionable from coordinates alone with no
// data, so such releases are suppressed.
func (r *Release) Empty() bool {
	return r.Segment == nil && len(r.Contexts) == 0
}

// Apply transforms one segment under a single constant decision. The
// caller is responsible for the decision actually being constant across the
// segment's span (see Enforce). A nil return means nothing is released.
func Apply(d *rules.Decision, seg *wavesegment.Segment, gc geo.Geocoder) (*Release, error) {
	if d == nil || seg == nil {
		return nil, fmt.Errorf("abstraction: nil decision or segment")
	}
	if !d.SharesAnything() {
		return nil, nil
	}

	rel := &Release{
		Contributor:     seg.Contributor,
		TimeGranularity: d.Time,
	}

	// Raw channels that survive channel grants and the dependency closure.
	var keep []string
	for _, ch := range seg.Channels {
		if d.ChannelShared(ch) {
			keep = append(keep, ch)
		}
	}
	if len(keep) > 0 {
		rel.Segment = seg.Project(keep)
	}

	// Context annotations at their granted level.
	for _, a := range seg.Annotations {
		cat, known := rules.LabelCategory(a.Context)
		if !known {
			continue // unknown labels never flow (privacy-safe default)
		}
		label, ok := rules.AbstractLabel(a.Context, d.ContextLevel(cat))
		if !ok {
			continue
		}
		rel.Contexts = append(rel.Contexts, wavesegment.Annotation{
			Context: label, Start: a.Start, End: a.End,
		})
	}
	if rel.Segment != nil {
		rel.Segment.Annotations = nil // annotations travel on the release
	}

	// Location at the granted granularity.
	loc, err := geo.Abstract(gc, seg.Location, d.Location)
	if err != nil {
		return nil, fmt.Errorf("abstraction: %w", err)
	}
	rel.Location = loc

	// Timestamps at the granted granularity.
	if err := coarsenTime(rel, seg, d.Time); err != nil {
		return nil, err
	}

	if rel.Empty() {
		return nil, nil
	}
	return rel, nil
}

// coarsenTime rewrites the release's absolute times to the granted
// granularity. Below raw precision, the segment keeps relative sample
// spacing but its start snaps to the granule boundary; at NotShared the
// span is re-based to the Unix epoch so durations survive but absolute
// instants do not.
func coarsenTime(rel *Release, seg *wavesegment.Segment, g timeutil.Granularity) error {
	start, end := seg.StartTime(), seg.EndTime()
	switch {
	case g == timeutil.GranNotShared:
		epoch := time.Unix(0, 0).UTC()
		shift := epoch.Sub(start)
		rel.Start, rel.End = time.Time{}, time.Time{}
		if rel.Segment != nil {
			shiftSegment(rel.Segment, shift)
		}
		for i := range rel.Contexts {
			rel.Contexts[i].Start = rel.Contexts[i].Start.Add(shift)
			rel.Contexts[i].End = rel.Contexts[i].End.Add(shift)
		}
	case g > timeutil.GranMillisecond:
		newStart := g.Abstract(start)
		shift := newStart.Sub(start)
		rel.Start = newStart
		rel.End = end.Add(shift)
		if rel.Segment != nil {
			shiftSegment(rel.Segment, shift)
		}
		for i := range rel.Contexts {
			rel.Contexts[i].Start = rel.Contexts[i].Start.Add(shift)
			rel.Contexts[i].End = rel.Contexts[i].End.Add(shift)
		}
	default:
		rel.Start, rel.End = start, end
	}
	return nil
}

func shiftSegment(s *wavesegment.Segment, d time.Duration) {
	s.Start = s.Start.Add(d)
	for i := range s.Timestamps {
		s.Timestamps[i] = s.Timestamps[i].Add(d)
	}
	for i := range s.Annotations {
		s.Annotations[i].Start = s.Annotations[i].Start.Add(d)
		s.Annotations[i].End = s.Annotations[i].End.Add(d)
	}
}

// Enforce runs full access control for one consumer over one stored
// segment: it cuts the segment at every instant where the decision can
// change — rule time-condition boundaries and context annotation edges —
// evaluates the rule engine for each span, and transforms each span under
// its decision. Spans that release nothing are dropped.
func Enforce(e rules.Decider, consumer string, consumerGroups []string, seg *wavesegment.Segment, gc geo.Geocoder) ([]*Release, error) {
	rels, _, err := EnforceExplained(e, consumer, consumerGroups, seg, gc)
	return rels, err
}

// EnforceExplained is Enforce that also returns the engine decision
// behind each release, index-aligned with the releases. The decisions
// are provenance for traces and audit trails (matched rule IDs, granted
// granularities); they stay out of the Release shape on purpose so
// policy structure cannot leak into consumer-facing payloads.
func EnforceExplained(e rules.Decider, consumer string, consumerGroups []string, seg *wavesegment.Segment, gc geo.Geocoder) ([]*Release, []*rules.Decision, error) {
	if seg == nil {
		return nil, nil, fmt.Errorf("abstraction: nil segment")
	}
	if err := seg.Validate(); err != nil {
		return nil, nil, err
	}
	start, end := seg.StartTime(), seg.EndTime()
	cuts := spanCuts(e, seg, start, end)

	var out []*Release
	var decisions []*rules.Decision
	for i := 0; i+1 < len(cuts); i++ {
		from, to := cuts[i], cuts[i+1]
		piece := seg.Slice(from, to)
		if piece == nil {
			continue
		}
		req := &rules.Request{
			Consumer:       consumer,
			ConsumerGroups: consumerGroups,
			At:             from,
			Location:       seg.Location,
			ActiveContexts: seg.ContextsAt(from),
		}
		d := e.Decide(req)
		rel, err := Apply(d, piece, gc)
		if err != nil {
			return nil, nil, err
		}
		if rel != nil {
			out = append(out, rel)
			decisions = append(decisions, d)
		}
	}
	return out, decisions, nil
}

// spanCuts returns the sorted cut instants delimiting spans of constant
// decision: segment start/end, rule time boundaries, and annotation edges.
func spanCuts(e rules.Decider, seg *wavesegment.Segment, start, end time.Time) []time.Time {
	cuts := []time.Time{start, end}
	cuts = append(cuts, e.BoundariesWithin(start, end)...)
	for _, a := range seg.Annotations {
		if a.Start.After(start) && a.Start.Before(end) {
			cuts = append(cuts, a.Start)
		}
		if a.End.After(start) && a.End.Before(end) {
			cuts = append(cuts, a.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].Before(cuts[j]) })
	dedup := cuts[:0]
	for i, t := range cuts {
		if i == 0 || !t.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// EnforceAll enforces a batch of segments, concatenating the releases.
func EnforceAll(e rules.Decider, consumer string, consumerGroups []string, segs []*wavesegment.Segment, gc geo.Geocoder) ([]*Release, error) {
	var out []*Release
	for _, s := range segs {
		rels, err := Enforce(e, consumer, consumerGroups, s, gc)
		if err != nil {
			return nil, err
		}
		out = append(out, rels...)
	}
	return out, nil
}
