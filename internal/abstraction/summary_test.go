package abstraction

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

func TestSummarize(t *testing.T) {
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: time.Second,
		Location: uclaPoint,
		Channels: []string{wavesegment.ChannelECG},
		Values:   [][]float64{{1}, {3}, {5}},
	}
	rels := []*Release{
		{
			Contributor: "alice", Start: t0, End: t0.Add(3 * time.Second),
			Segment: seg,
			Contexts: []wavesegment.Annotation{
				{Context: rules.CtxWalk, Start: t0, End: t0.Add(2 * time.Second)},
			},
		},
		{
			Contributor: "bob", Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute),
			Contexts: []wavesegment.Annotation{
				{Context: rules.CtxWalk, Start: t0.Add(time.Minute), End: t0.Add(90 * time.Second)},
				{Context: rules.CtxStressed, Start: t0.Add(time.Minute), End: t0.Add(61 * time.Second)},
			},
		},
	}
	s := Summarize(rels)
	if s.Releases != 2 || s.RawSamples != 3 {
		t.Errorf("summary = %+v", s)
	}
	st := s.Channels[wavesegment.ChannelECG]
	if st.Samples != 3 || st.Min != 1 || st.Max != 5 || st.Mean != 3 {
		t.Errorf("ECG stats = %+v", st)
	}
	if s.Contexts[rules.CtxWalk] != 32*time.Second {
		t.Errorf("walk duration = %v", s.Contexts[rules.CtxWalk])
	}
	if !s.Earliest.Equal(t0) || !s.Latest.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("extent = %v..%v", s.Earliest, s.Latest)
	}
	if s.Contributors["alice"] != 1 || s.Contributors["bob"] != 1 {
		t.Errorf("contributors = %v", s.Contributors)
	}
	top := s.TopContexts()
	if len(top) != 2 || top[0] != rules.CtxWalk || top[1] != rules.CtxStressed {
		t.Errorf("top contexts = %v", top)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Releases != 0 || s.RawSamples != 0 || len(s.Channels) != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if len(s.TopContexts()) != 0 {
		t.Error("no contexts expected")
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	// Summaries over actual enforcement output.
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	seg := fullSegment(t0)
	_ = seg.Annotate(rules.CtxWalk, t0, t0.Add(30*time.Second))
	rels, err := Enforce(e, "bob", nil, seg, geo.GridGeocoder{})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rels)
	if s.RawSamples != 600 {
		t.Errorf("samples = %d", s.RawSamples)
	}
	if s.Contexts[rules.CtxWalk] != 30*time.Second {
		t.Errorf("walk = %v", s.Contexts[rules.CtxWalk])
	}
}
