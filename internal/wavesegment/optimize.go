package wavesegment

import (
	"fmt"
	"sort"
	"time"
)

// MergeTolerance is the slack allowed between one segment's EndTime and the
// next segment's StartTime for them to count as "timestamp consecutive"
// (paper §5.1). Sensor clocks jitter by a fraction of a sample period; we
// accept up to half an interval of drift.
func mergeTolerance(interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	return interval / 2
}

// CanMerge reports whether b can be appended to a to form a single wave
// segment: same channels in the same order, same sampling interval, same
// location coordinates, same contributor, and timestamp-consecutive
// (a.EndTime ≈ b.StartTime). Per the paper, merging requires identical
// location coordinates and data channels.
func CanMerge(a, b *Segment) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Contributor != b.Contributor {
		return false
	}
	if a.Interval != b.Interval {
		return false
	}
	if a.Location != b.Location {
		return false
	}
	if len(a.Channels) != len(b.Channels) {
		return false
	}
	for i := range a.Channels {
		if a.Channels[i] != b.Channels[i] {
			return false
		}
	}
	if a.Interval > 0 {
		gap := b.StartTime().Sub(a.EndTime())
		if gap < 0 {
			gap = -gap
		}
		return gap <= mergeTolerance(a.Interval)
	}
	// Timestamped segments merge whenever b starts at or after a ends.
	return !b.StartTime().Before(a.Timestamps[len(a.Timestamps)-1])
}

// Merge appends b's samples to a copy of a. Callers must check CanMerge.
func Merge(a, b *Segment) (*Segment, error) {
	if !CanMerge(a, b) {
		return nil, fmt.Errorf("wavesegment: segments %v and %v cannot merge", a, b)
	}
	out := a.Clone()
	for _, row := range b.Values {
		out.Values = append(out.Values, append([]float64(nil), row...))
	}
	if a.Interval <= 0 {
		out.Timestamps = append(out.Timestamps, b.Timestamps...)
	}
	out.Annotations = append(out.Annotations, b.Annotations...)
	sort.Slice(out.Annotations, func(i, j int) bool {
		return out.Annotations[i].Start.Before(out.Annotations[j].Start)
	})
	return out, nil
}

// Optimizer implements the paper's wave-segment optimization: it buffers
// small ingest packets (e.g. the Zephyr chest band's 64-sample packets) and
// merges timestamp-consecutive, format-identical segments into large ones,
// bounding each at MaxSamples so single records stay manageable.
//
// The zero value is not usable; call NewOptimizer.
type Optimizer struct {
	// MaxSamples caps the size of a merged segment. When a pending segment
	// reaches the cap it is flushed. Zero means no cap.
	MaxSamples int

	pending *Segment
}

// DefaultMaxSamples bounds merged segments at a size that keeps individual
// database records in the low hundreds of kilobytes for typical channel
// counts.
const DefaultMaxSamples = 8192

// NewOptimizer returns an optimizer with the given segment size cap
// (DefaultMaxSamples if maxSamples <= 0).
func NewOptimizer(maxSamples int) *Optimizer {
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	return &Optimizer{MaxSamples: maxSamples}
}

// Add offers a segment to the optimizer. It returns zero or more completed
// segments that can no longer grow (because the new segment did not merge,
// or the pending segment hit MaxSamples).
func (o *Optimizer) Add(seg *Segment) ([]*Segment, error) {
	if seg == nil {
		return nil, fmt.Errorf("wavesegment: nil segment")
	}
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	var done []*Segment
	if o.pending == nil {
		o.pending = seg.Clone()
	} else if CanMerge(o.pending, seg) && (o.MaxSamples == 0 || o.pending.NumSamples()+seg.NumSamples() <= o.MaxSamples) {
		merged, err := Merge(o.pending, seg)
		if err != nil {
			return nil, err
		}
		o.pending = merged
	} else {
		done = append(done, o.pending)
		o.pending = seg.Clone()
	}
	if o.MaxSamples > 0 && o.pending.NumSamples() >= o.MaxSamples {
		done = append(done, o.pending)
		o.pending = nil
	}
	return done, nil
}

// Flush returns the pending segment, if any, and resets the optimizer.
func (o *Optimizer) Flush() []*Segment {
	if o.pending == nil {
		return nil
	}
	out := []*Segment{o.pending}
	o.pending = nil
	return out
}

// OptimizeAll merges an in-order batch of segments, returning the compacted
// list. It is a convenience wrapper over Optimizer for bulk loads.
func OptimizeAll(segs []*Segment, maxSamples int) ([]*Segment, error) {
	o := NewOptimizer(maxSamples)
	var out []*Segment
	for _, s := range segs {
		done, err := o.Add(s)
		if err != nil {
			return nil, err
		}
		out = append(out, done...)
	}
	return append(out, o.Flush()...), nil
}

// Split cuts a segment into pieces of at most maxSamples rows. It returns
// the original segment if it already fits.
func Split(s *Segment, maxSamples int) []*Segment {
	if maxSamples <= 0 || s.NumSamples() <= maxSamples {
		return []*Segment{s}
	}
	var out []*Segment
	for lo := 0; lo < s.NumSamples(); lo += maxSamples {
		hi := lo + maxSamples
		if hi > s.NumSamples() {
			hi = s.NumSamples()
		}
		var from, to time.Time
		from = s.SampleTime(lo)
		if hi < s.NumSamples() {
			to = s.SampleTime(hi)
		}
		part := s.Slice(from, to)
		if part != nil {
			out = append(out, part)
		}
	}
	return out
}
