package core

import (
	"fmt"
	"testing"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/wavesegment"
)

var (
	t0   = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC) // Wednesday
	home = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

func network(t *testing.T, storeNames ...string) *Network {
	t.Helper()
	n := NewNetwork()
	t.Cleanup(func() { n.Close() })
	for _, name := range storeNames {
		if _, err := n.AddStore(name, ""); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestNetworkWiring(t *testing.T) {
	n := network(t, "store-1", "store-2")
	if got := n.StoreNames(); len(got) != 2 || got[0] != "store-1" {
		t.Fatalf("StoreNames = %v", got)
	}
	if _, err := n.AddStore("store-1", ""); err == nil {
		t.Error("duplicate store name should fail")
	}
	if _, ok := n.Store("store-3"); ok {
		t.Error("unknown store should miss")
	}
	if _, err := n.NewContributor("store-3", "alice"); err == nil {
		t.Error("contributor on unknown store should fail")
	}
}

func TestContributorAppearsInBrokerDirectory(t *testing.T) {
	n := network(t, "store-1")
	if _, err := n.NewContributor("store-1", "alice"); err != nil {
		t.Fatal(err)
	}
	bob, err := n.NewConsumer("bob")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := bob.Directory()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 1 || dir[0].Name != "alice" || dir[0].StoreAddr != "store-1" {
		t.Fatalf("directory = %+v", dir)
	}
}

// TestSection6Storyline reproduces the paper's §6 application example end
// to end: Alice the contributor, Bob the behavioural-study coordinator,
// and Coach the personal health coach.
func TestSection6Storyline(t *testing.T) {
	n := network(t, "alice-store")
	alice, err := n.NewContributor("alice-store", "alice")
	if err != nil {
		t.Fatal(err)
	}

	// Alice labels home and defines her rules:
	//  1. researchers (the study group) get everything,
	//  2. her health coach gets accelerometer data only,
	//  3. stress is hidden while driving,
	//  4. accelerometer data at home is denied.
	homeRect, _ := geo.NewRect(geo.Point{Lat: 34.0249, Lon: -118.4951}, geo.Point{Lat: 34.0251, Lon: -118.4949})
	if err := alice.DefinePlace("home", geo.Region{Rect: homeRect}); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetRules(`[
	  {"Group": ["StressStudy"], "Action": "Allow"},
	  {"Consumer": ["Coach"], "Sensor": ["Accelerometer"], "Action": "Allow"},
	  {"Context": ["Drive"], "Action": {"Abstraction": {"Stress": "NotShared"}}},
	  {"LocationLabel": ["home"], "Sensor": ["Accelerometer"], "Action": "Deny"}
	]`); err != nil {
		t.Fatal(err)
	}
	if err := alice.AssignConsumerGroups("Bob", []string{"StressStudy"}); err != nil {
		t.Fatal(err)
	}

	// Alice's day: calm at home, stressful drive, stressed at a desk away
	// from home.
	day := &sensors.Scenario{
		Start: t0, Origin: home, Seed: 11,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Stressed: true, Heading: 80},
			{Duration: 2 * time.Minute, Activity: rules.CtxStill, Stressed: true},
		},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		t.Fatal(err)
	}

	// Alice reviews her own data: everything is there, unfiltered.
	own, err := alice.ReviewData(&query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(own) == 0 {
		t.Fatal("alice sees no own data")
	}

	// Bob the researcher (in the study) queries through the broker.
	bob, err := n.NewConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := bob.Query("alice", &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("Bob should receive data")
	}
	for _, rel := range rels {
		driving := false
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxDrive {
				driving = true
			}
		}
		for _, c := range rel.Contexts {
			if driving && (c.Context == rules.CtxStressed || c.Context == rules.CtxNotStressed) {
				t.Error("stress label leaked while driving")
			}
		}
		if driving && rel.Segment != nil &&
			(rel.Segment.HasChannel(wavesegment.ChannelECG) || rel.Segment.HasChannel(wavesegment.ChannelRespiration)) {
			t.Error("stress-bearing raw channels leaked while driving")
		}
		// At home, accel is denied.
		if rel.Location.Point != nil && homeRect.Contains(*rel.Location.Point) &&
			rel.Segment != nil && rel.Segment.HasChannel(wavesegment.ChannelAccelX) {
			t.Error("accelerometer leaked at home")
		}
	}

	// The coach gets accelerometer only — and never at home.
	coach, err := n.NewConsumer("Coach")
	if err != nil {
		t.Fatal(err)
	}
	coachRels, err := coach.Query("alice", &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(coachRels) == 0 {
		t.Fatal("coach should receive the away-from-home accel data")
	}
	for _, rel := range coachRels {
		if rel.Segment == nil {
			continue
		}
		for _, ch := range rel.Segment.Channels {
			switch ch {
			case wavesegment.ChannelAccelX, wavesegment.ChannelAccelY, wavesegment.ChannelAccelZ:
			default:
				t.Errorf("coach received channel %s", ch)
			}
		}
		if rel.Location.Point != nil && homeRect.Contains(*rel.Location.Point) {
			t.Error("coach received data recorded at home")
		}
	}

	// Eve, an unrelated consumer, receives nothing.
	eve, err := n.NewConsumer("Eve")
	if err != nil {
		t.Fatal(err)
	}
	eveRels, err := eve.Query("alice", &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(eveRels) != 0 {
		t.Errorf("Eve received %d releases", len(eveRels))
	}
}

func TestBrokerSearchAcrossStores(t *testing.T) {
	// 20 contributors across 4 institutional stores (the IRB setting);
	// half share stress while driving, half deny it. Bob's search must
	// return exactly the sharing half.
	n := network(t, "inst-1", "inst-2", "inst-3", "inst-4")
	var wantMatch []string
	for i := 0; i < 20; i++ {
		store := fmt.Sprintf("inst-%d", i%4+1)
		name := fmt.Sprintf("p%02d", i)
		c, err := n.NewContributor(store, name)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := c.SetRules(`[{"Action":"Allow"}]`); err != nil {
				t.Fatal(err)
			}
			wantMatch = append(wantMatch, name)
		} else {
			if err := c.SetRules(`[
			  {"Action":"Allow"},
			  {"Context":["Drive"],"Action":{"Abstraction":{"Stress":"NotShared"}}}
			]`); err != nil {
				t.Fatal(err)
			}
		}
	}
	bob, err := n.NewConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bob.Search(&broker.SearchQuery{
		Sensors:        []string{"ECG", "Respiration"},
		ActiveContexts: []string{rules.CtxDrive},
		Reference:      t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantMatch) {
		t.Fatalf("search returned %d, want %d: %v", len(got), len(wantMatch), got)
	}
	for i := range wantMatch {
		if got[i] != wantMatch[i] {
			t.Errorf("search[%d] = %s, want %s", i, got[i], wantMatch[i])
		}
	}
	// Save and recall the list.
	if err := bob.SaveList("drivers", got); err != nil {
		t.Fatal(err)
	}
	back, err := bob.List("drivers")
	if err != nil || len(back) != len(got) {
		t.Fatalf("list = %v, %v", back, err)
	}
	// Query the saved list; every member should yield data once uploaded.
	c0, _ := n.Store("inst-1")
	_ = c0
}

func TestQueryManyAggregates(t *testing.T) {
	n := network(t, "s1", "s2")
	for i, store := range []string{"s1", "s2"} {
		c, err := n.NewContributor(store, fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetRules(`[{"Action":"Allow"}]`); err != nil {
			t.Fatal(err)
		}
		day := &sensors.Scenario{
			Start: t0, Origin: home, Seed: int64(i),
			Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
		}
		if _, err := c.RecordDay(day, false); err != nil {
			t.Fatal(err)
		}
	}
	bob, _ := n.NewConsumer("bob")
	rels, err := bob.QueryMany([]string{"c0", "c1"}, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rel := range rels {
		seen[rel.Contributor] = true
	}
	if !seen["c0"] || !seen["c1"] {
		t.Errorf("contributors seen = %v", seen)
	}
	if _, err := bob.QueryMany([]string{"ghost"}, &query.Query{}); err == nil {
		t.Error("unknown contributor should fail")
	}
}

func TestStudyMembershipFlow(t *testing.T) {
	n := network(t, "s1")
	alice, _ := n.NewContributor("s1", "alice")
	if err := alice.SetRules(`[{"Group":["StressStudy"],"Action":"Allow"}]`); err != nil {
		t.Fatal(err)
	}
	if err := n.Broker.CreateStudy("StressStudy"); err != nil {
		t.Fatal(err)
	}
	bob, _ := n.NewConsumer("bob")
	if err := bob.JoinStudy("StressStudy"); err != nil {
		t.Fatal(err)
	}
	// Broker search sees Bob as a member.
	got, err := bob.Search(&broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("study search = %v", got)
	}
}
