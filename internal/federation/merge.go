package federation

import (
	"container/heap"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"

	"sensorsafe/internal/abstraction"
)

// Cursor state: a cohort page is resumable because the engine records, per
// contributor, how many releases have already been delivered. Each store's
// result is deterministically ordered (start, end, stream position), so
// "skip the first n" is a stable resume point even though the stores
// themselves are stateless between pages. The cursor is an opaque
// base64(JSON) token; consumers round-trip it untouched.
type cursorState struct {
	// Consumed maps contributor → releases already delivered.
	Consumed map[string]int `json:"c"`
}

func encodeCursor(st *cursorState) string {
	if st == nil || len(st.Consumed) == 0 {
		return ""
	}
	data, _ := json.Marshal(st)
	return base64.RawURLEncoding.EncodeToString(data)
}

func decodeCursor(s string) (*cursorState, error) {
	st := &cursorState{Consumed: make(map[string]int)}
	if s == "" {
		return st, nil
	}
	data, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("federation: bad cursor: %w", err)
	}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("federation: bad cursor: %w", err)
	}
	if st.Consumed == nil {
		st.Consumed = make(map[string]int)
	}
	return st, nil
}

// sortReleases orders one store's releases deterministically: by start,
// then end, then original position (stores already emit scan order; the
// sort is stable so equal-timestamp spans keep it).
func sortReleases(rels []*abstraction.Release) {
	sort.SliceStable(rels, func(i, j int) bool {
		if !rels[i].Start.Equal(rels[j].Start) {
			return rels[i].Start.Before(rels[j].Start)
		}
		return rels[i].End.Before(rels[j].End)
	})
}

// mergeStream is one store's cursor-advanced release slice inside the
// k-way merge.
type mergeStream struct {
	contributor string
	rels        []*abstraction.Release
	pos         int
}

type mergeHeap []*mergeStream

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].rels[h[i].pos], h[j].rels[h[j].pos]
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if !a.End.Equal(b.End) {
		return a.End.Before(b.End)
	}
	return h[i].contributor < h[j].contributor
}
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*mergeStream)) }
func (h *mergeHeap) Pop() any          { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }
func (h mergeHeap) peek() *mergeStream { return h[0] }

// mergePage runs the streaming k-way merge: it skips each stream past its
// cursor position, yields up to limit releases in global (start, end,
// contributor) order, and returns the per-contributor delivered counts for
// this page plus whether any stream still has releases waiting.
func mergePage(streams []*mergeStream, cur *cursorState, limit int) (out []*abstraction.Release, delivered map[string]int, more bool) {
	delivered = make(map[string]int)
	h := make(mergeHeap, 0, len(streams))
	for _, s := range streams {
		sortReleases(s.rels)
		s.pos = cur.Consumed[s.contributor]
		if s.pos > len(s.rels) {
			// The store returned fewer releases than a previous page
			// consumed (rules tightened between pages): nothing new.
			s.pos = len(s.rels)
		}
		if s.pos < len(s.rels) {
			h = append(h, s)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		if limit > 0 && len(out) >= limit {
			more = true
			break
		}
		s := h.peek()
		out = append(out, s.rels[s.pos])
		delivered[s.contributor]++
		s.pos++
		if s.pos < len(s.rels) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out, delivered, more
}
