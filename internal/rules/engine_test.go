package rules

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

var (
	uclaPoint = geo.Point{Lat: 34.0689, Lon: -118.4452}
	homePoint = geo.Point{Lat: 34.0250, Lon: -118.4950}
	elsewhere = geo.Point{Lat: 36.0, Lon: -115.0}
)

func testGazetteer(t *testing.T) *geo.Gazetteer {
	t.Helper()
	g := geo.NewGazetteer()
	uclaRect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	homeRect, _ := geo.NewRect(geo.Point{Lat: 34.02, Lon: -118.50}, geo.Point{Lat: 34.03, Lon: -118.49})
	if err := g.Define("UCLA", geo.Region{Rect: uclaRect}); err != nil {
		t.Fatal(err)
	}
	if err := g.Define("Home", geo.Region{Rect: homeRect}); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustEngine(t *testing.T, gaz *geo.Gazetteer, rs ...*Rule) *Engine {
	t.Helper()
	e, err := NewEngine(rs, gaz)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func req(consumer string, at time.Time, loc geo.Point, contexts ...string) *Request {
	return &Request{Consumer: consumer, At: at, Location: loc, ActiveContexts: contexts}
}

var wednesday10am = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)

func TestDefaultDeny(t *testing.T) {
	e := mustEngine(t, nil)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.SharesAnything() {
		t.Error("empty rule set must share nothing")
	}
	if d.Location != geo.LocNotShared || d.Time != timeutil.GranNotShared {
		t.Error("location/time must be hidden by default")
	}
	if d.ChannelShared("ECG") {
		t.Error("no channel should be shared by default")
	}
}

func TestPlainAllow(t *testing.T) {
	e := mustEngine(t, nil, &Rule{ID: "all", Action: Allow()})
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if !d.AllChannelsGranted {
		t.Error("allow-all should grant all channels")
	}
	for _, ch := range []string{"ECG", "Respiration", "AccelX", "Microphone", "SkinTemperature"} {
		if !d.ChannelShared(ch) {
			t.Errorf("channel %s should be shared", ch)
		}
	}
	for _, cat := range Categories() {
		if d.ContextLevel(cat) != LevelRaw {
			t.Errorf("category %s should be raw", cat)
		}
	}
	if d.Location != geo.LocCoordinates || d.Time != timeutil.GranMillisecond {
		t.Error("allow should release full-precision location/time")
	}
}

func TestConsumerCondition(t *testing.T) {
	e := mustEngine(t, nil, &Rule{Consumers: []string{"Bob"}, Action: Allow()})
	if !e.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("Bob should get access")
	}
	if !e.Decide(req("bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("consumer match should be case-insensitive")
	}
	if e.Decide(req("Eve", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("Eve should get nothing")
	}
}

func TestGroupCondition(t *testing.T) {
	e := mustEngine(t, nil, &Rule{Groups: []string{"StressStudy"}, Action: Allow()})
	r := req("Carol", wednesday10am, uclaPoint)
	if e.Decide(r).SharesAnything() {
		t.Error("non-member should get nothing")
	}
	r.ConsumerGroups = []string{"OtherStudy", "stressstudy"}
	if !e.Decide(r).SharesAnything() {
		t.Error("group member should get access (case-insensitive)")
	}
}

func TestLocationLabelCondition(t *testing.T) {
	e := mustEngine(t, testGazetteer(t), &Rule{LocationLabels: []string{"UCLA"}, Action: Allow()})
	if !e.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("inside UCLA should match")
	}
	if e.Decide(req("Bob", wednesday10am, homePoint)).SharesAnything() {
		t.Error("home is not UCLA")
	}
	if e.Decide(req("Bob", wednesday10am, elsewhere)).SharesAnything() {
		t.Error("elsewhere should not match")
	}
	// Unknown label with nil gazetteer: rule cannot match.
	e2 := mustEngine(t, nil, &Rule{LocationLabels: []string{"UCLA"}, Action: Allow()})
	if e2.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("label without gazetteer should never match")
	}
}

func TestRegionCondition(t *testing.T) {
	rect, _ := geo.NewRect(geo.Point{Lat: 34, Lon: -119}, geo.Point{Lat: 35, Lon: -118})
	e := mustEngine(t, nil, &Rule{Regions: []geo.Region{{Rect: rect}}, Action: Allow()})
	if !e.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("inside region should match")
	}
	if e.Decide(req("Bob", wednesday10am, elsewhere)).SharesAnything() {
		t.Error("outside region should not match")
	}
}

func TestPolygonRegionCondition(t *testing.T) {
	// Rules drawn on the map UI can be polygons, not just rects.
	in := `{
	  "Region": {"polygon": [
	    {"lat": 34.0, "lon": -118.5},
	    {"lat": 34.1, "lon": -118.4},
	    {"lat": 34.0, "lon": -118.3}
	  ]},
	  "Action": "Allow"
	}`
	r, err := UnmarshalRule([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, nil, r)
	inside := geo.Point{Lat: 34.03, Lon: -118.4}
	outside := geo.Point{Lat: 34.09, Lon: -118.31}
	if !e.Decide(req("Bob", wednesday10am, inside)).SharesAnything() {
		t.Error("inside the triangle should share")
	}
	if e.Decide(req("Bob", wednesday10am, outside)).SharesAnything() {
		t.Error("outside the triangle should not share")
	}
	// Round trip keeps the polygon.
	data, err := MarshalRule(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRule(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != 1 || len(back.Regions[0].Polygon) != 3 {
		t.Errorf("round trip lost polygon: %+v", back.Regions)
	}
}

func TestTimeConditions(t *testing.T) {
	rng, _ := timeutil.NewRange(
		time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC))
	e := mustEngine(t, nil, &Rule{TimeRanges: []timeutil.Range{rng}, Action: Allow()})
	if !e.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("Feb 2011 should match")
	}
	apr := time.Date(2011, 4, 10, 0, 0, 0, 0, time.UTC)
	if e.Decide(req("Bob", apr, uclaPoint)).SharesAnything() {
		t.Error("April should not match")
	}

	rep, _ := timeutil.ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	e2 := mustEngine(t, nil, &Rule{RepeatTimes: []timeutil.Repeated{rep}, Action: Allow()})
	if !e2.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("Wednesday 10am should match")
	}
	sat := time.Date(2011, 2, 19, 10, 0, 0, 0, time.UTC)
	if e2.Decide(req("Bob", sat, uclaPoint)).SharesAnything() {
		t.Error("Saturday should not match")
	}
}

func TestContextCondition(t *testing.T) {
	e := mustEngine(t, nil, &Rule{Contexts: []string{CtxDrive}, Action: Allow()})
	if !e.Decide(req("Bob", wednesday10am, uclaPoint, CtxDrive)).SharesAnything() {
		t.Error("driving request should match")
	}
	if e.Decide(req("Bob", wednesday10am, uclaPoint, CtxWalk)).SharesAnything() {
		t.Error("walking request should not match")
	}
	if e.Decide(req("Bob", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("context-free request should not match a context-conditioned rule")
	}
}

func TestSensorScopedAllow(t *testing.T) {
	// Alice's health-coach rule (§6): coach sees accelerometer data only.
	e := mustEngine(t, nil, &Rule{
		Consumers: []string{"coach"},
		Sensors:   ExpandSensorNames([]string{"Accelerometer"}),
		Action:    Allow(),
	})
	d := e.Decide(req("coach", wednesday10am, uclaPoint))
	for _, ch := range []string{"AccelX", "AccelY", "AccelZ"} {
		if !d.ChannelShared(ch) {
			t.Errorf("%s should be shared with coach", ch)
		}
	}
	for _, ch := range []string{"ECG", "Respiration", "Microphone"} {
		if d.ChannelShared(ch) {
			t.Errorf("%s should not be shared with coach", ch)
		}
	}
	if d.AllChannelsGranted {
		t.Error("sensor-scoped allow must not grant all channels")
	}
	if d.ContextLevel(CategoryActivity) != LevelRaw {
		t.Error("activity context inferable from granted accel should be raw")
	}
	if d.ContextLevel(CategoryStress) != LevelNotShared {
		t.Error("stress must stay hidden")
	}
}

func TestFig4Semantics(t *testing.T) {
	// The paper's Fig. 4 pair: allow all at UCLA, but abstract stress to
	// NotShared while in conversation on weekday business hours.
	rs, err := UnmarshalRuleSet([]byte(fig4JSON))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, testGazetteer(t), rs...)

	// Weekday 10am at UCLA, in conversation: everything but stress —
	// and the dependency closure must also block ECG/Respiration/HeartRate
	// because stress could be re-inferred from them.
	d := e.Decide(req("Bob", wednesday10am, uclaPoint, CtxConversation))
	if d.ContextLevel(CategoryStress) != LevelNotShared {
		t.Error("stress must be hidden during conversation")
	}
	if d.ChannelShared(wavesegment.ChannelECG) || d.ChannelShared(wavesegment.ChannelRespiration) {
		t.Error("closure must block ECG/Respiration while stress is hidden")
	}
	if !d.ChannelShared(wavesegment.ChannelAccelX) || !d.ChannelShared(wavesegment.ChannelMicrophone) {
		t.Error("unrelated channels should still flow")
	}
	if d.ContextLevel(CategoryConversation) != LevelRaw {
		t.Error("conversation itself was not abstracted")
	}

	// Same instant, not in conversation: full access.
	d = e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ContextLevel(CategoryStress) != LevelRaw || !d.ChannelShared(wavesegment.ChannelECG) {
		t.Error("without conversation the restriction must not fire")
	}

	// Saturday in conversation at UCLA: outside the repeat window.
	sat := time.Date(2011, 2, 19, 10, 0, 0, 0, time.UTC)
	d = e.Decide(req("Bob", sat, uclaPoint, CtxConversation))
	if d.ContextLevel(CategoryStress) != LevelRaw {
		t.Error("restriction must not fire outside the repeat window")
	}

	// Somewhere else: no rule matches at all.
	d = e.Decide(req("Bob", wednesday10am, elsewhere))
	if d.SharesAnything() {
		t.Error("no data should flow outside UCLA")
	}

	// A different consumer gets nothing anywhere.
	d = e.Decide(req("Eve", wednesday10am, uclaPoint))
	if d.SharesAnything() {
		t.Error("rules are Bob-specific")
	}
}

func TestDependencyClosure(t *testing.T) {
	// Paper §5.1: "if the smoking context is not shared, respiration sensor
	// data will not be shared even though stress and conversation are shared
	// in raw data form."
	e := mustEngine(t, nil,
		&Rule{Action: Allow()},
		&Rule{Action: Abstract(AbstractionSpec{Contexts: map[Category]Level{CategorySmoking: LevelNotShared}})},
	)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ContextLevel(CategoryStress) != LevelRaw || d.ContextLevel(CategoryConversation) != LevelRaw {
		t.Error("stress and conversation remain raw")
	}
	if d.ContextLevel(CategorySmoking) != LevelNotShared {
		t.Error("smoking must be hidden")
	}
	if d.ChannelShared(wavesegment.ChannelRespiration) {
		t.Error("respiration raw data must be blocked by the closure")
	}
	// ECG only feeds stress (raw) — still flows.
	if !d.ChannelShared(wavesegment.ChannelECG) {
		t.Error("ECG should still flow (stress is raw)")
	}
	// Microphone only feeds conversation (raw) — still flows.
	if !d.ChannelShared(wavesegment.ChannelMicrophone) {
		t.Error("microphone should still flow")
	}
}

func TestClosureBlocksAccelWhenActivityAbstracted(t *testing.T) {
	e := mustEngine(t, nil,
		&Rule{
			Consumers: []string{"coach"},
			Sensors:   ExpandSensorNames([]string{"Accelerometer"}),
			Action:    Abstract(AbstractionSpec{Contexts: map[Category]Level{CategoryActivity: LevelBinary}}),
		})
	d := e.Decide(req("coach", wednesday10am, uclaPoint))
	if d.ChannelShared("AccelX") || d.ChannelShared("AccelY") || d.ChannelShared("AccelZ") {
		t.Error("raw accel must be blocked when activity is clamped to binary")
	}
	if d.ContextLevel(CategoryActivity) != LevelBinary {
		t.Errorf("activity level = %v, want Binary", d.ContextLevel(CategoryActivity))
	}
}

func TestClosureBlocksGPSWhenLocationAbstracted(t *testing.T) {
	city := geo.LocCity
	e := mustEngine(t, nil,
		&Rule{Action: Allow()},
		&Rule{Action: Abstract(AbstractionSpec{Location: &city})})
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ChannelShared(wavesegment.ChannelLatitude) || d.ChannelShared(wavesegment.ChannelLongitude) {
		t.Error("GPS channels must be blocked below Coordinates granularity")
	}
	if d.Location != geo.LocCity {
		t.Errorf("location granularity = %v", d.Location)
	}
	// Accel flows only if activity is raw — it is here.
	if !d.ChannelShared(wavesegment.ChannelAccelX) {
		t.Error("accel should flow (activity raw)")
	}
}

func TestDenyOverridesAllow(t *testing.T) {
	// Alice's §6 rule: deny accelerometer data at home.
	e := mustEngine(t, testGazetteer(t),
		&Rule{Action: Allow()},
		&Rule{
			LocationLabels: []string{"Home"},
			Sensors:        ExpandSensorNames([]string{"Accelerometer"}),
			Action:         Deny(),
		})
	atHome := e.Decide(req("Bob", wednesday10am, homePoint))
	if atHome.ChannelShared("AccelX") {
		t.Error("accel must be denied at home")
	}
	if !atHome.ChannelShared("ECG") {
		t.Error("other channels still flow at home")
	}
	away := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if !away.ChannelShared("AccelX") {
		t.Error("accel flows away from home")
	}
}

func TestDenyEverythingDuringContext(t *testing.T) {
	// "don't share any data while I am driving."
	e := mustEngine(t, nil,
		&Rule{Action: Allow()},
		&Rule{Contexts: []string{CtxDrive}, Action: Deny()},
	)
	driving := e.Decide(req("Bob", wednesday10am, uclaPoint, CtxDrive))
	if driving.SharesAnything() {
		t.Error("nothing may flow while driving")
	}
	walking := e.Decide(req("Bob", wednesday10am, uclaPoint, CtxWalk))
	if !walking.SharesAnything() {
		t.Error("walking is fine")
	}
}

func TestDenyRevokesCategoryOnlyWhenFullyCovered(t *testing.T) {
	// Denying respiration alone revokes smoking (its only source) but not
	// conversation (microphone remains a source).
	e := mustEngine(t, nil,
		&Rule{Action: Allow()},
		&Rule{Sensors: []string{"Respiration"}, Action: Deny()},
	)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ChannelShared("Respiration") {
		t.Error("respiration must be denied")
	}
	if d.ContextLevel(CategorySmoking) != LevelNotShared {
		t.Error("smoking is only inferable from respiration; deny should revoke it")
	}
	if d.ContextLevel(CategoryConversation) != LevelRaw {
		t.Error("conversation should survive (microphone still granted)")
	}
	// But with smoking hidden nothing changes for microphone.
	if !d.ChannelShared("Microphone") {
		t.Error("microphone should flow")
	}
}

func TestMostRestrictiveClampWins(t *testing.T) {
	e := mustEngine(t, nil,
		&Rule{Action: Abstract(AbstractionSpec{Contexts: map[Category]Level{CategoryStress: LevelBinary}})},
		&Rule{Action: Abstract(AbstractionSpec{Contexts: map[Category]Level{CategoryStress: LevelNotShared}})},
	)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ContextLevel(CategoryStress) != LevelNotShared {
		t.Errorf("stress level = %v, want NotShared (most restrictive)", d.ContextLevel(CategoryStress))
	}
}

func TestLocationTimeClampsCombine(t *testing.T) {
	city := geo.LocCity
	state := geo.LocState
	hour := timeutil.GranHour
	day := timeutil.GranDay
	e := mustEngine(t, nil,
		&Rule{Action: Allow()},
		&Rule{Action: Abstract(AbstractionSpec{Location: &city, Time: &day})},
		&Rule{Action: Abstract(AbstractionSpec{Location: &state, Time: &hour})},
	)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.Location != geo.LocState {
		t.Errorf("location = %v, want State", d.Location)
	}
	if d.Time != timeutil.GranDay {
		t.Errorf("time = %v, want Day", d.Time)
	}
}

func TestAllowDoesNotLoosenClamp(t *testing.T) {
	e := mustEngine(t, nil,
		&Rule{Action: Abstract(AbstractionSpec{Contexts: map[Category]Level{CategoryStress: LevelBinary}})},
		&Rule{Action: Allow()},
	)
	d := e.Decide(req("Bob", wednesday10am, uclaPoint))
	if d.ContextLevel(CategoryStress) != LevelBinary {
		t.Errorf("stress = %v; a plain allow must not loosen an abstraction clamp", d.ContextLevel(CategoryStress))
	}
}

func TestNewEngineRejectsInvalidRule(t *testing.T) {
	if _, err := NewEngine([]*Rule{{Action: Action{Kind: ActionKind(9)}}}, nil); err == nil {
		t.Error("invalid rule should abort engine construction")
	}
}

func TestEngineRulesIsolated(t *testing.T) {
	orig := &Rule{ID: "r", Consumers: []string{"Bob"}, Action: Allow()}
	e := mustEngine(t, nil, orig)
	orig.Consumers[0] = "Eve" // mutate after construction
	if e.Decide(req("Eve", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("engine must have cloned its rules")
	}
	got := e.Rules()
	got[0].Consumers[0] = "Mallory"
	if e.Decide(req("Mallory", wednesday10am, uclaPoint)).SharesAnything() {
		t.Error("Rules() must return clones")
	}
}

func TestBoundariesWithin(t *testing.T) {
	rng, _ := timeutil.NewRange(
		time.Date(2011, 2, 16, 12, 0, 0, 0, time.UTC),
		time.Date(2011, 2, 16, 14, 0, 0, 0, time.UTC))
	rep, _ := timeutil.ParseRepeated([]string{"Wed"}, []string{"9:00am", "6:00pm"})
	e := mustEngine(t, nil,
		&Rule{TimeRanges: []timeutil.Range{rng}, Action: Allow()},
		&Rule{RepeatTimes: []timeutil.Repeated{rep}, Action: Deny()},
	)
	from := time.Date(2011, 2, 16, 0, 0, 0, 0, time.UTC)
	to := time.Date(2011, 2, 17, 0, 0, 0, 0, time.UTC)
	bs := e.BoundariesWithin(from, to)
	want := []time.Time{
		time.Date(2011, 2, 16, 9, 0, 0, 0, time.UTC),
		time.Date(2011, 2, 16, 12, 0, 0, 0, time.UTC),
		time.Date(2011, 2, 16, 14, 0, 0, 0, time.UTC),
		time.Date(2011, 2, 16, 18, 0, 0, 0, time.UTC),
	}
	if len(bs) != len(want) {
		t.Fatalf("boundaries = %v, want %v", bs, want)
	}
	for i := range want {
		if !bs[i].Equal(want[i]) {
			t.Errorf("boundary %d = %v, want %v", i, bs[i], want[i])
		}
	}
	// Sorted and deduped.
	for i := 1; i < len(bs); i++ {
		if !bs[i-1].Before(bs[i]) {
			t.Error("boundaries must be strictly increasing")
		}
	}
	if got := e.BoundariesWithin(wednesday10am, wednesday10am.Add(time.Minute)); len(got) != 0 {
		t.Errorf("narrow window should have no boundaries: %v", got)
	}
}

func TestDecisionHelpers(t *testing.T) {
	d := denyAll()
	if d.SharesAnything() || d.ChannelShared("ECG") || d.ContextLevel(CategoryStress) != LevelNotShared {
		t.Error("denyAll should share nothing")
	}
	d.Contexts[CategoryStress] = LevelBinary
	if !d.SharesAnything() {
		t.Error("binary stress counts as sharing")
	}
}
