package lint

import "testing"

// BenchmarkLintModule measures the full lint pipeline — module load
// (parse + type-check across worker goroutines scheduled over the import
// DAG) plus the complete analyzer suite. BenchmarkLintModuleSerial pins
// the loader to a single worker: the delta between the two is the
// parallel loader's wall-time win, which is the point of the
// LoadModuleWorkers scheduler.
func BenchmarkLintModule(b *testing.B) {
	benchLintModule(b, 0) // 0 = GOMAXPROCS workers
}

func BenchmarkLintModuleSerial(b *testing.B) {
	benchLintModule(b, 1)
}

func benchLintModule(b *testing.B, workers int) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("finding module root: %v", err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := LoadModuleWorkers(root, workers)
		if err != nil {
			b.Fatalf("loading module: %v", err)
		}
		diags := RunAnalyzers(m, m.Pkgs, Analyzers())
		if len(diags) != 0 {
			b.Fatalf("module not clean under benchmark: %v", diags[0])
		}
	}
}
