// Rule-aware collection: the paper's §5.3 optional mechanism, measured.
//
// Alice's rules deny everything while driving and share nothing at home.
// Her phone runs the same scripted day twice — once uploading everything,
// once with privacy-rule-aware collection — and we compare what was
// collected, discarded, and uploaded. Rule-aware collection never uploads
// data that enforcement would have withheld anyway, so consumers see
// exactly the same releases, while the contributor's radio and storage
// costs drop.
//
// Run with: go run ./examples/ruleaware
package main

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

func main() {
	home := geo.Point{Lat: 34.0250, Lon: -118.4950}
	homeRect, _ := geo.NewRect(
		geo.Point{Lat: home.Lat - 0.0002, Lon: home.Lon - 0.0002},
		geo.Point{Lat: home.Lat + 0.0002, Lon: home.Lon + 0.0002})

	day := &sensors.Scenario{
		Start: time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC), Origin: home, Seed: 21,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},                 // home: denied by location
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 80},    // driving: denied by context
			{Duration: 4 * time.Minute, Activity: rules.CtxStill, Stressed: true}, // office: shared
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 260},   // driving: denied by context
		},
	}
	ruleJSON := `[
	  {"Action": "Allow"},
	  {"Context": ["Drive"], "Action": "Deny"},
	  {"LocationLabel": ["home"], "Action": "Deny"}
	]`

	run := func(ruleAware bool) (*phone.Report, int) {
		net := core.NewNetwork()
		defer net.Close()
		if _, err := net.AddStore("s", ""); err != nil {
			log.Fatal(err)
		}
		alice, err := net.NewContributor("s", "alice")
		if err != nil {
			log.Fatal(err)
		}
		if err := alice.DefinePlace("home", geo.Region{Rect: homeRect}); err != nil {
			log.Fatal(err)
		}
		if err := alice.SetRules(ruleJSON); err != nil {
			log.Fatal(err)
		}
		rep, err := alice.RecordDay(day, ruleAware)
		if err != nil {
			log.Fatal(err)
		}
		// What a consumer actually receives is identical either way.
		bob, err := net.NewConsumer("bob")
		if err != nil {
			log.Fatal(err)
		}
		rels, err := bob.Query("alice", &query.Query{})
		if err != nil {
			log.Fatal(err)
		}
		releasedSamples := 0
		for _, rel := range rels {
			if rel.Segment != nil {
				releasedSamples += rel.Segment.NumSamples()
			}
		}
		return rep, releasedSamples
	}

	naive, naiveReleased := run(false)
	aware, awareReleased := run(true)

	fmt.Println("scenario: 10 min day — 2 min home (denied), 4 min driving (denied), 4 min office (shared)")
	fmt.Println()
	fmt.Printf("%-28s %15s %15s\n", "", "collect-all", "rule-aware")
	fmt.Printf("%-28s %15d %15d\n", "packets collected", naive.PacketsTotal, aware.PacketsTotal-aware.PacketsSkipped)
	fmt.Printf("%-28s %15d %15d\n", "packets skipped (radio off)", naive.PacketsSkipped, aware.PacketsSkipped)
	fmt.Printf("%-28s %15d %15d\n", "packets discarded on phone", naive.PacketsDiscarded, aware.PacketsDiscarded)
	fmt.Printf("%-28s %15d %15d\n", "packets uploaded", naive.PacketsUploaded, aware.PacketsUploaded)
	fmt.Printf("%-28s %15d %15d\n", "bytes uploaded", naive.BytesUploaded, aware.BytesUploaded)
	fmt.Printf("%-28s %15d %15d\n", "records stored", naive.RecordsWritten, aware.RecordsWritten)
	fmt.Printf("%-28s %14.0f%% %14.0f%%\n", "upload fraction",
		naive.UploadFraction()*100, aware.UploadFraction()*100)
	model := phone.DefaultEnergyModel()
	en, ea := model.Estimate(naive), model.Estimate(aware)
	fmt.Printf("%-28s %13.0fmJ %13.0fmJ\n", "energy (sense+cpu+radio)", en.TotalMJ, ea.TotalMJ)
	fmt.Println()
	fmt.Printf("consumer-visible samples:   %d (collect-all) vs %d (rule-aware)\n", naiveReleased, awareReleased)
	if naiveReleased == awareReleased {
		fmt.Println("=> identical releases: rule-aware collection saved upload and storage")
		fmt.Println("   without changing anything a consumer could ever see.")
	} else {
		fmt.Println("=> releases differ (boundary windows); see EXPERIMENTS.md E6 for discussion.")
	}
}
