package phone

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/wavesegment"
)

// outageStore fails uploads while down, delegating to the real store
// otherwise.
type outageStore struct {
	Store
	down    bool
	uploads int
}

func (s *outageStore) Upload(key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	if s.down {
		return 0, os.ErrDeadlineExceeded
	}
	s.uploads++
	return s.Store.Upload(key, segs)
}

func TestOutboxSpillsAndDrains(t *testing.T) {
	svc, p := setup(t)
	flaky := &outageStore{Store: svc, down: true}
	p.Store = flaky
	p.Outbox = &Outbox{Dir: filepath.Join(t.TempDir(), "outbox")}
	p.BatchPackets = 2

	sc := scenario(sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill})
	rep, err := p.Run(sc)
	if err != nil {
		t.Fatalf("outage must not abort the session: %v", err)
	}
	if rep.BatchesSpilled == 0 || rep.SamplesSpilled == 0 {
		t.Fatalf("nothing spilled: %+v", rep)
	}
	if svc.SegmentCount() != 0 {
		t.Fatal("store should have received nothing during the outage")
	}
	if got := p.Outbox.Pending(); got != rep.BatchesSpilled {
		t.Fatalf("pending = %d, want %d", got, rep.BatchesSpilled)
	}

	// Connectivity returns: an explicit drain delivers every sample.
	flaky.down = false
	batches, records, err := p.DrainOutbox()
	if err != nil {
		t.Fatal(err)
	}
	if batches != rep.BatchesSpilled || records == 0 {
		t.Fatalf("drained %d batches (%d records), want %d", batches, records, rep.BatchesSpilled)
	}
	if p.Outbox.Pending() != 0 {
		t.Fatalf("outbox should be empty, %d pending", p.Outbox.Pending())
	}
	if svc.SegmentCount() == 0 {
		t.Fatal("drained data never reached the store")
	}
}

func TestOutboxDrainsAtSessionStart(t *testing.T) {
	svc, p := setup(t)
	flaky := &outageStore{Store: svc, down: true}
	p.Store = flaky
	dir := filepath.Join(t.TempDir(), "outbox")
	p.Outbox = &Outbox{Dir: dir}

	sc := scenario(sensors.Phase{Duration: time.Minute, Activity: rules.CtxStill})
	if _, err := p.Run(sc); err != nil {
		t.Fatal(err)
	}
	spilled := p.Outbox.Pending()
	if spilled == 0 {
		t.Fatal("expected spilled batches")
	}

	// "Restart": a fresh Phone with a fresh Outbox over the same directory
	// recovers the earlier spill before uploading the new session.
	flaky.down = false
	p2 := &Phone{Contributor: p.Contributor, Key: p.Key, Store: flaky,
		Outbox: &Outbox{Dir: dir}}
	rep, err := p2.Run(scenario(sensors.Phase{Duration: time.Minute, Activity: rules.CtxWalk}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchesRecovered != spilled {
		t.Fatalf("recovered %d, want %d", rep.BatchesRecovered, spilled)
	}
	if p2.Outbox.Pending() != 0 {
		t.Fatalf("outbox should be empty, %d pending", p2.Outbox.Pending())
	}
	if svc.SegmentCount() == 0 {
		t.Fatal("store never saw the data")
	}
}

func TestOutboxSequenceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	o := &Outbox{Dir: dir}
	seg := &wavesegment.Segment{
		Contributor: "alice",
		Start:       t0,
		Interval:    100 * time.Millisecond,
		Channels:    []string{wavesegment.ChannelECG},
		Values:      [][]float64{{1}, {2}, {3}},
	}
	if err := o.Spill([]*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	if err := o.Spill([]*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	// A fresh Outbox must continue the numbering, not overwrite batch 1.
	o2 := &Outbox{Dir: dir}
	if err := o2.Spill([]*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	if got := o2.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
}
