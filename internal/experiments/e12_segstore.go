package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/segstore"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// E12 measures the persistent columnar segment store (internal/segstore)
// against the legacy engine on the three properties the storage redesign
// promised:
//
//  1. Cold restart reads manifests and footers, not data: reopening a
//     store holding >= 100k segments must take seconds (and beat the
//     legacy engine's full flat-WAL replay).
//  2. Range scans over the columnar files stay within a small factor of
//     the in-memory engine (the price of durability + bounded memory).
//  3. A kill at any stage of background compaction loses nothing and
//     duplicates nothing (chaos via segstore.SetCrashHook failpoints).

// E12Config parameterizes the storage-engine benchmark.
type E12Config struct {
	// Records is the store population (the acceptance floor is 100k).
	Records int
	// Contributors spreads the records over this many streams.
	Contributors int
	// SamplesPerRecord sizes each wave segment.
	SamplesPerRecord int
	// ScanRounds full-range scans per engine; the fastest round counts.
	ScanRounds int
	// RestartTargetSeconds is the cold-open budget.
	RestartTargetSeconds float64
	// ScanRatioTarget caps segstore scan time relative to in-memory.
	ScanRatioTarget float64
	// ChaosRecords sizes each kill-during-compaction round.
	ChaosRecords int
}

// DefaultE12 matches the documented E12 configuration.
func DefaultE12() E12Config {
	return E12Config{
		Records:              100_000,
		Contributors:         20,
		SamplesPerRecord:     4,
		ScanRounds:           3,
		RestartTargetSeconds: 5,
		ScanRatioTarget:      2,
		ChaosRecords:         1_200,
	}
}

// E12Result is the BENCH_7.json shape CI archives.
type E12Result struct {
	Experiment       string  `json:"experiment"`
	Description      string  `json:"description"`
	Records          int     `json:"records"`
	IngestMS         float64 `json:"ingest_ms"`
	RestartSegstMS   float64 `json:"restart_segstore_ms"`
	RestartLegacyMS  float64 `json:"restart_legacy_ms"`
	RestartTargetSec float64 `json:"restart_target_sec"`
	ScanDiskMS       float64 `json:"scan_disk_ms"`
	ScanMemoryMS     float64 `json:"scan_memory_ms"`
	ScanRatio        float64 `json:"scan_ratio"`
	ScanRatioTarget  float64 `json:"scan_ratio_target"`
	ChaosKills       int     `json:"chaos_kills"`
	ChaosSurvived    int     `json:"chaos_survived"`
	Pass             bool    `json:"pass"`
}

// e12Seg builds one benchmark segment. Records within a contributor are
// deliberately non-contiguous (10 s stride, shorter span) so compaction
// keeps the record count at the configured scale instead of wave-merging
// the population away.
func e12Seg(contributor string, idx, samples int) *wavesegment.Segment {
	base := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	s := &wavesegment.Segment{
		Contributor: contributor,
		Start:       base.Add(time.Duration(idx*10) * time.Second),
		Interval:    time.Second,
		Location:    geo.Point{Lat: 34.07, Lon: -118.45},
		Channels:    []string{"ECG", "GSR"},
	}
	for i := 0; i < samples; i++ {
		s.Values = append(s.Values, []float64{float64(idx%97) + float64(i)/10, 0.5})
	}
	return s
}

func e12Fill(eng storage.Engine, cfg E12Config) error {
	perContrib := cfg.Records / cfg.Contributors
	for c := 0; c < cfg.Contributors; c++ {
		name := fmt.Sprintf("contrib-%02d", c)
		for i := 0; i < perContrib; i++ {
			if _, err := eng.Put(e12Seg(name, i, cfg.SamplesPerRecord)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunE12 runs the storage-engine benchmark and chaos check.
func RunE12(cfg E12Config) (*E12Result, *Table, error) {
	segDir, err := os.MkdirTemp("", "e12-segstore-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(segDir)
	legacyDir, err := os.MkdirTemp("", "e12-legacy-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(legacyDir)

	total := (cfg.Records / cfg.Contributors) * cfg.Contributors

	// Populate the segstore, compacting into its steady state, and the
	// legacy engine's flat WAL with identical data.
	seg, err := segstore.Open(segstore.Options{Dir: segDir})
	if err != nil {
		return nil, nil, err
	}
	ingestStart := time.Now()
	if err := e12Fill(seg, cfg); err != nil {
		return nil, nil, err
	}
	ingestMS := float64(time.Since(ingestStart).Microseconds()) / 1000
	if err := seg.Compact(); err != nil {
		return nil, nil, err
	}
	if err := seg.Close(); err != nil {
		return nil, nil, err
	}
	legacy, err := storage.Open(legacyDir)
	if err != nil {
		return nil, nil, err
	}
	if err := e12Fill(legacy, cfg); err != nil {
		return nil, nil, err
	}
	if err := legacy.Close(); err != nil {
		return nil, nil, err
	}

	// Cold restart: the segstore reads manifests + footers + WAL tail;
	// the legacy engine replays every record from its flat WAL.
	restartStart := time.Now()
	seg2, err := segstore.Open(segstore.Options{Dir: segDir})
	if err != nil {
		return nil, nil, err
	}
	restartSegMS := float64(time.Since(restartStart).Microseconds()) / 1000
	defer seg2.Close()
	if got := seg2.Count(); got != total {
		return nil, nil, fmt.Errorf("e12: segstore reopened with %d records, want %d", got, total)
	}
	restartStart = time.Now()
	legacy2, err := storage.Open(legacyDir)
	if err != nil {
		return nil, nil, err
	}
	restartLegacyMS := float64(time.Since(restartStart).Microseconds()) / 1000
	defer legacy2.Close()
	if got := legacy2.Count(); got != total {
		return nil, nil, fmt.Errorf("e12: legacy reopened with %d records, want %d", got, total)
	}

	// Range-scan throughput: full-range Scan (the consumer query path,
	// results cloned) on the file-backed engine vs the in-memory index.
	scanAll := func(eng storage.Engine) (time.Duration, error) {
		var best time.Duration
		for r := 0; r < cfg.ScanRounds; r++ {
			start := time.Now()
			res, err := eng.Scan(storage.Query{})
			if err != nil {
				return 0, err
			}
			if len(res) != total {
				return 0, fmt.Errorf("e12: scan returned %d records, want %d", len(res), total)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	diskDur, err := scanAll(seg2)
	if err != nil {
		return nil, nil, err
	}
	memDur, err := scanAll(legacy2)
	if err != nil {
		return nil, nil, err
	}
	ratio := diskDur.Seconds() / memDur.Seconds()

	// Chaos: kill compaction at every protocol stage; each kill must
	// lose nothing and duplicate nothing.
	stages := []string{"compact.begin", "compact.files", "compact.manifest", "compact.done"}
	survived := 0
	for _, stage := range stages {
		if err := e12ChaosRound(cfg, stage); err != nil {
			return nil, nil, fmt.Errorf("e12: kill at %s: %w", stage, err)
		}
		survived++
	}

	res := &E12Result{
		Experiment:       "E12",
		Description:      "persistent columnar segment store: cold-restart time, range-scan throughput vs in-memory baseline, kill-during-compaction chaos",
		Records:          total,
		IngestMS:         ingestMS,
		RestartSegstMS:   restartSegMS,
		RestartLegacyMS:  restartLegacyMS,
		RestartTargetSec: cfg.RestartTargetSeconds,
		ScanDiskMS:       float64(diskDur.Microseconds()) / 1000,
		ScanMemoryMS:     float64(memDur.Microseconds()) / 1000,
		ScanRatio:        ratio,
		ScanRatioTarget:  cfg.ScanRatioTarget,
		ChaosKills:       len(stages),
		ChaosSurvived:    survived,
	}
	res.Pass = restartSegMS < cfg.RestartTargetSeconds*1000 &&
		ratio <= cfg.ScanRatioTarget &&
		survived == len(stages)

	restartVerdict := "PASS"
	if restartSegMS >= cfg.RestartTargetSeconds*1000 {
		restartVerdict = fmt.Sprintf("FAIL: %.0fms >= %.0fs budget", restartSegMS, cfg.RestartTargetSeconds)
	}
	scanVerdict := "PASS"
	if ratio > cfg.ScanRatioTarget {
		scanVerdict = fmt.Sprintf("FAIL: %.2fx > %.0fx budget", ratio, cfg.ScanRatioTarget)
	}
	chaosVerdict := "PASS"
	if survived != len(stages) {
		chaosVerdict = fmt.Sprintf("FAIL: %d/%d", survived, len(stages))
	}

	t := &Table{
		ID:      "E12",
		Caption: fmt.Sprintf("persistent segment store vs legacy engine (%d records, %d contributors)", total, cfg.Contributors),
		Headers: []string{"measure", "segstore", "legacy/in-memory", "verdict"},
		Notes: []string{
			"restart: segstore reads manifest + file footers + WAL tail; the legacy engine replays its entire flat WAL",
			fmt.Sprintf("scan: full-range Scan with cloned results, best of %d rounds; budget %.0fx the in-memory engine", cfg.ScanRounds, cfg.ScanRatioTarget),
			"chaos: segstore.SetCrashHook aborts compaction at each protocol stage; the reopened store must match the pre-kill scan exactly (zero loss, zero duplicates)",
		},
	}
	t.AddRow("cold restart", fmt.Sprintf("%.0f ms", restartSegMS), fmt.Sprintf("%.0f ms", restartLegacyMS), restartVerdict)
	t.AddRow("full-range scan", fmt.Sprintf("%.0f ms", res.ScanDiskMS), fmt.Sprintf("%.0f ms", res.ScanMemoryMS), scanVerdict)
	t.AddRow("kill during compaction", fmt.Sprintf("%d/%d survived", survived, len(stages)), "n/a", chaosVerdict)
	return res, t, nil
}

// e12ChaosRound builds a small multi-file store with tombstones, kills
// compaction at the named stage, reopens, and verifies the surviving
// record set is exactly the pre-kill one.
func e12ChaosRound(cfg E12Config, stage string) error {
	dir, err := os.MkdirTemp("", "e12-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	s, err := segstore.Open(segstore.Options{Dir: dir})
	if err != nil {
		return err
	}
	var ids []storage.ID
	perFile := cfg.ChaosRecords / 3
	for f := 0; f < 3; f++ {
		for i := 0; i < perFile; i++ {
			id, err := s.Put(e12Seg("chaos", f*perFile+i, cfg.SamplesPerRecord))
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		if err := s.Flush(); err != nil {
			return err
		}
	}
	for i := 0; i < len(ids); i += 7 {
		if err := s.Delete(ids[i]); err != nil {
			return err
		}
	}
	want, err := e12Snapshot(s)
	if err != nil {
		return err
	}

	boom := errors.New("injected kill")
	s.SetCrashHook(func(st string) error {
		if st == stage {
			return boom
		}
		return nil
	})
	if err := s.Compact(); !errors.Is(err, boom) {
		return fmt.Errorf("compaction did not hit the failpoint: %v", err)
	}
	// Abandon the killed instance (its in-memory view is stale by
	// design) and recover from disk alone.
	s.SetCrashHook(nil)
	if err := s.Close(); err != nil {
		return err
	}
	s2, err := segstore.Open(segstore.Options{Dir: dir})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer s2.Close()
	got, err := e12Snapshot(s2)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("recovered %d live records, want %d", len(got), len(want))
	}
	for id, b := range want {
		if got[id] != b {
			return fmt.Errorf("record %d lost or corrupted", id)
		}
	}
	// The store must remain fully operational: a clean compaction on the
	// recovered state converges and changes nothing.
	if err := s2.Compact(); err != nil {
		return fmt.Errorf("compact after recovery: %w", err)
	}
	after, err := e12Snapshot(s2)
	if err != nil {
		return err
	}
	if len(after) != len(want) {
		return fmt.Errorf("post-recovery compaction changed the record count: %d != %d", len(after), len(want))
	}
	return nil
}

// e12Snapshot maps every live record ID to its encoded payload, erroring
// on duplicates (a record visible from two sources at once).
func e12Snapshot(s *segstore.Store) (map[storage.ID]string, error) {
	res, err := s.Scan(storage.Query{})
	if err != nil {
		return nil, err
	}
	out := make(map[storage.ID]string, len(res))
	for _, r := range res {
		if _, dup := out[r.ID]; dup {
			return nil, fmt.Errorf("record %d returned twice", r.ID)
		}
		b, err := wavesegment.MarshalBinary(r.Segment)
		if err != nil {
			return nil, err
		}
		out[r.ID] = string(b)
	}
	return out, nil
}
