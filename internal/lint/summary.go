package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// Per-function dataflow summaries for the privacyflow analyzer. Each
// function in the call graph gets a summary describing how raw-segment
// taint moves through it:
//
//   - result taint: the sources whose values can reach a return value
//     (param→return propagation: the summary also records which of the
//     function's own parameters flow to its results, so callers can
//     substitute argument taint), and
//   - param sinks: which parameters flow into an egress sink inside the
//     function or below it (param→sink propagation).
//
// Summaries are computed bottom-up over the call graph's strongly
// connected components (CallGraph.Fixpoint), iterating each cycle until
// stable. Taint is monotone — flows and param sets only grow — so the
// fixpoint terminates.
//
// The model is deliberately optimistic: a value is tainted only when a
// path from a known raw-segment producer can be demonstrated. Unknown
// calls (stdlib, function values, unresolved interfaces) yield clean
// values. That keeps the module-wide run quiet on sanctioned code while
// still proving real leaks end-to-end with a call chain.

// pfFlow is one demonstrated taint flow: where the raw value was born and
// the call-site hops it took to reach the current function. steps[0] is
// the source position; each later entry is the call site through which the
// taint surfaced one frame up. Appending the sink position yields the
// full source→sink chain.
type pfFlow struct {
	src   token.Pos
	desc  string
	steps []token.Pos
}

// extend returns a copy of the flow routed through one more call site.
func (f *pfFlow) extend(hop token.Pos) *pfFlow {
	steps := make([]token.Pos, len(f.steps)+1)
	copy(steps, f.steps)
	steps[len(f.steps)] = hop
	return &pfFlow{src: f.src, desc: f.desc, steps: steps}
}

// pfTaint is the abstract value of one expression: the set of raw flows
// that can reach it, plus the enclosing function's parameters it depends
// on (substituted with argument taint at each call site).
type pfTaint struct {
	flows  map[token.Pos]*pfFlow // keyed by source position
	params map[int]bool          // receiver = 0 when present
}

func newPFTaint() pfTaint {
	return pfTaint{flows: make(map[token.Pos]*pfFlow), params: make(map[int]bool)}
}

func (t pfTaint) add(f *pfFlow) {
	if _, ok := t.flows[f.src]; !ok {
		t.flows[f.src] = f
	}
}

func (t pfTaint) union(o pfTaint) {
	for _, f := range o.flows {
		t.add(f)
	}
	for p := range o.params {
		t.params[p] = true
	}
}

// pfSinkPath records that a parameter reaches an egress sink: the call
// hops from the function's entry down to the sink position (last entry).
// pkg is the package holding the sink itself, so the finding is reported
// at the sink line (where an //sslint:ignore directive can address it)
// rather than at some upstream call site.
type pfSinkPath struct {
	steps []token.Pos
	desc  string
	pkg   *Package
}

// pfSummary is one function's dataflow summary.
type pfSummary struct {
	result     pfTaint
	paramSinks map[int]*pfSinkPath
}

func newPFSummary() *pfSummary {
	return &pfSummary{result: newPFTaint(), paramSinks: make(map[int]*pfSinkPath)}
}

// pfEnv is the per-function evaluation environment: resolved call sites,
// local assignment origins, and parameter indices.
type pfEnv struct {
	eng     *pfEngine
	node    *CGNode
	origins map[*types.Var][]ast.Expr
	params  map[*types.Var]int
	named   []*types.Var // named result variables, for bare returns
	sites   map[*ast.CallExpr]*CallSite
}

func (eng *pfEngine) envFor(node *CGNode) *pfEnv {
	if env, ok := eng.envs[node]; ok {
		return env
	}
	env := &pfEnv{
		eng:     eng,
		node:    node,
		origins: collectFuncOrigins(node.Pkg, node.Decl),
		params:  make(map[*types.Var]int),
		sites:   make(map[*ast.CallExpr]*CallSite),
	}
	sig := node.Fn.Type().(*types.Signature)
	i := 0
	if recv := sig.Recv(); recv != nil {
		env.params[recv] = 0
		i = 1
	}
	for j := 0; j < sig.Params().Len(); j++ {
		env.params[sig.Params().At(j)] = i
		i++
	}
	for j := 0; j < sig.Results().Len(); j++ {
		if v := sig.Results().At(j); v.Name() != "" {
			env.named = append(env.named, v)
		}
	}
	for k := range node.Sites {
		env.sites[node.Sites[k].Call] = &node.Sites[k]
	}
	eng.envs[node] = env
	return env
}

// collectFuncOrigins maps each variable to every expression assigned to it
// anywhere in the function body (:=, =, var decls, tuple assignments,
// range sources). Function literals are included: closures share the
// enclosing function's variables.
func collectFuncOrigins(pkg *Package, fd *ast.FuncDecl) map[*types.Var][]ast.Expr {
	origins := make(map[*types.Var][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := pkg.Info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = pkg.Info.Uses[id].(*types.Var)
		}
		if obj != nil {
			origins[obj] = append(origins[obj], rhs)
		}
	}
	if fd.Body == nil {
		return origins
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(node.Lhs) == len(node.Rhs):
				for i := range node.Lhs {
					record(node.Lhs[i], node.Rhs[i])
				}
			case len(node.Rhs) == 1:
				// a, b := f(): both sides inherit the call's merged taint.
				for i := range node.Lhs {
					record(node.Lhs[i], node.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(node.Names) == len(node.Values):
				for i := range node.Names {
					record(node.Names[i], node.Values[i])
				}
			case len(node.Values) == 1:
				for i := range node.Names {
					record(node.Names[i], node.Values[0])
				}
			}
		case *ast.RangeStmt:
			if node.Value != nil {
				record(node.Value, node.X)
			}
		}
		return true
	})
	return origins
}

// eval computes the abstract value of expr, then filters it by the
// expression's static type: taint only travels through values whose type
// can actually transport segment data (see pfEngine.carries). Without
// the filter, the storage/segstore source axiom would taint engine
// handles and service objects — every error and *Store returned by the
// substrate — and sweep phantom flows from cmd/ wiring into the sinks.
func (e *pfEnv) eval(expr ast.Expr, visited map[*types.Var]bool) pfTaint {
	out := e.evalExpr(expr, visited)
	if len(out.flows) == 0 && len(out.params) == 0 {
		return out
	}
	if tv, ok := e.node.Pkg.Info.Types[expr]; ok && tv.Type != nil && !e.eng.carries(tv.Type) {
		return newPFTaint()
	}
	return out
}

// evalExpr computes the abstract value of expr. visited breaks cycles
// through self-referential assignment chains (x = append(x, y)).
func (e *pfEnv) evalExpr(expr ast.Expr, visited map[*types.Var]bool) pfTaint {
	out := newPFTaint()
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v := pkgVar(e.node.Pkg, x); v != nil {
			return e.evalVar(v, visited)
		}
	case *ast.SelectorExpr:
		// Field reads carry the base value's taint: res.Segment on a
		// tainted storage.Result stays raw; rel.Segment on a clean
		// abstraction.Release stays clean. Method values and
		// package-qualified names are clean.
		if sel, ok := e.node.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return e.eval(x.X, visited)
		}
	case *ast.CallExpr:
		return e.evalCall(x, visited)
	case *ast.IndexExpr:
		return e.eval(x.X, visited)
	case *ast.SliceExpr:
		return e.eval(x.X, visited)
	case *ast.StarExpr:
		return e.eval(x.X, visited)
	case *ast.UnaryExpr:
		return e.eval(x.X, visited)
	case *ast.TypeAssertExpr:
		return e.eval(x.X, visited)
	case *ast.CompositeLit:
		// Building a wavesegment.Segment struct from parts outside the
		// codec package mints a raw value. Container literals (a
		// []*Segment wrapping already-clean values) are not sources —
		// they just union their elements below.
		if t := e.node.Pkg.Info.Types[x].Type; isSegmentStruct(e.eng.m, t) &&
			!inPackage(e.node.Pkg.Path, e.eng.m.Path+"/internal/wavesegment") {
			out.add(&pfFlow{src: x.Pos(), desc: "wavesegment.Segment literal", steps: []token.Pos{x.Pos()}})
			return out
		}
		for _, elt := range x.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			out.union(e.eval(val, visited))
		}
	}
	return out
}

func (e *pfEnv) evalVar(v *types.Var, visited map[*types.Var]bool) pfTaint {
	out := newPFTaint()
	if !e.eng.carries(v.Type()) {
		return out
	}
	if idx, ok := e.params[v]; ok {
		out.params[idx] = true
		return out
	}
	if visited[v] {
		return out
	}
	visited[v] = true
	defer delete(visited, v)
	for _, src := range e.origins[v] {
		out.union(e.eval(src, visited))
	}
	return out
}

// evalCall classifies a call against the axiom packages and the call
// graph's summaries.
func (e *pfEnv) evalCall(call *ast.CallExpr, visited map[*types.Var]bool) pfTaint {
	out := newPFTaint()
	pkg := e.node.Pkg
	// Conversions pass their operand through.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return e.eval(call.Args[0], visited)
	}
	// Builtins: append merges, everything else is clean.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				for _, arg := range call.Args {
					out.union(e.eval(arg, visited))
				}
			}
			return out
		}
	}
	fn, _ := calleeObj(pkg, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return out // function values, builtins without uses: clean
	}
	m := e.eng.m
	path := fn.Pkg().Path()
	switch {
	case inPackage(path, m.Path+"/internal/storage") || inPackage(path, m.Path+"/internal/segstore"):
		// Raw-segment producers: every result is born tainted.
		out.add(&pfFlow{
			src:   call.Pos(),
			desc:  fn.Pkg().Name() + "." + fn.Name(),
			steps: []token.Pos{call.Pos()},
		})
		return out
	case inPackage(path, m.Path+"/internal/abstraction") || inPackage(path, m.Path+"/internal/rules"):
		// Sanitizers: the release pipeline's outputs are clean by
		// definition — that is the invariant the rest of the analysis
		// enforces.
		return out
	case inPackage(path, m.Path+"/internal/wavesegment"):
		return e.evalWavesegmentCall(fn, call, visited)
	}
	// Module / fixture functions: substitute through the callee summary.
	if site := e.sites[call]; site != nil {
		for _, tgt := range site.Targets {
			out.union(e.applySummary(tgt, call, visited))
		}
	}
	return out
}

// evalWavesegmentCall applies the codec-package axiom: functions that
// consume segments pass their argument taint through (Clone, Marshal*);
// functions that produce segments from bytes are decoders and mint fresh
// raw values (Unmarshal*).
func (e *pfEnv) evalWavesegmentCall(fn *types.Func, call *ast.CallExpr, visited map[*types.Var]bool) pfTaint {
	out := newPFTaint()
	sig := fn.Type().(*types.Signature)
	flowThrough := false
	if recv := sig.Recv(); recv != nil && isSegmentTypeM(e.eng.m, recv.Type()) {
		flowThrough = true
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out.union(e.eval(sel.X, visited))
		}
	}
	for j := 0; j < sig.Params().Len(); j++ {
		if isSegmentTypeM(e.eng.m, sig.Params().At(j).Type()) {
			flowThrough = true
			if j < len(call.Args) {
				out.union(e.eval(call.Args[j], visited))
			}
		}
	}
	if flowThrough {
		return out
	}
	for j := 0; j < sig.Results().Len(); j++ {
		if isSegmentTypeM(e.eng.m, sig.Results().At(j).Type()) {
			out.add(&pfFlow{
				src:   call.Pos(),
				desc:  "wavesegment." + fn.Name(),
				steps: []token.Pos{call.Pos()},
			})
			return out
		}
	}
	return out
}

// applySummary maps a callee's summary back into the caller: result flows
// route through this call site; result params substitute the matching
// argument's taint.
func (e *pfEnv) applySummary(tgt *CGNode, call *ast.CallExpr, visited map[*types.Var]bool) pfTaint {
	out := newPFTaint()
	sum := e.eng.summaries[tgt.Fn]
	if sum == nil {
		return out // same-SCC callee, first iteration: bottom
	}
	for _, f := range sum.result.flows {
		out.add(f.extend(call.Pos()))
	}
	for idx := range sum.result.params {
		for _, arg := range argExprs(call, tgt.Fn, idx) {
			at := e.eval(arg, visited)
			for _, f := range at.flows {
				out.add(f.extend(call.Pos()))
			}
			for p := range at.params {
				out.params[p] = true
			}
		}
	}
	return out
}

// argExprs returns the caller expressions bound to the callee's parameter
// index (receiver = 0 when the callee is a method).
func argExprs(call *ast.CallExpr, callee *types.Func, idx int) []ast.Expr {
	sig := callee.Type().(*types.Signature)
	if sig.Recv() != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return []ast.Expr{sel.X}
			}
			return nil
		}
		idx--
	}
	n := sig.Params().Len()
	if sig.Variadic() && idx == n-1 && idx < len(call.Args) {
		return call.Args[idx:]
	}
	if idx < len(call.Args) {
		return []ast.Expr{call.Args[idx]}
	}
	return nil
}

// collectReturns visits the function's own return statements, skipping
// nested function literals (their returns belong to the literal).
func collectReturns(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(n)
		}
		return true
	})
}

func pkgVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := pkg.Info.Defs[id].(*types.Var)
	return v
}

// inPackage reports whether path is exactly pkg (fixture packages never
// match module-internal axiom paths, which is intentional: fixtures model
// the axiom packages by importing the real ones).
func inPackage(path, pkg string) bool {
	return path == pkg
}

// relPos renders a position as a module-root-relative file:line for call
// chains in diagnostics.
func relPos(m *Module, pos token.Pos) string {
	p := m.Fset.Position(pos)
	name := p.Filename
	if rel, err := filepath.Rel(m.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return name + ":" + strconv.Itoa(p.Line)
}

// fmtChain renders a call chain "a.go:12 → b.go:40 → c.go:77".
func fmtChain(m *Module, steps []token.Pos) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = relPos(m, s)
	}
	return strings.Join(parts, " → ")
}
