// Package wavesegment implements SensorSafe's storage ADT: the wave segment
// (paper §5.1, Fig. 5), an extension of the XStream signal-segment type. A
// wave segment is the smallest unit of storage — a compact run of
// multi-channel samples with shared metadata: start time, a uniform sampling
// interval (or per-sample timestamps for adaptive/compressive/episodic
// sampling), a location, and the tuple format. The package also implements
// the wave-segment optimizer that merges timestamp-consecutive segments so
// the backing database holds few large records instead of many tiny ones.
package wavesegment

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sensorsafe/internal/geo"
)

// Canonical sensor channel names used across the framework. The paper's
// hardware is a Zephyr BioHarness chest band (ECG, respiration, skin
// temperature) plus a smartphone (accelerometer, GPS, microphone).
const (
	ChannelECG         = "ECG"
	ChannelRespiration = "Respiration"
	ChannelSkinTemp    = "SkinTemperature"
	ChannelAccelX      = "AccelX"
	ChannelAccelY      = "AccelY"
	ChannelAccelZ      = "AccelZ"
	ChannelLatitude    = "Latitude"
	ChannelLongitude   = "Longitude"
	ChannelMicrophone  = "Microphone"
	ChannelHeartRate   = "HeartRate"
)

// Annotation marks a time span of a segment with an inferred context label,
// e.g. {Context: "Drive", Start, End}. The phone annotates segments with
// inference output before upload (paper §6); the access-control layer
// evaluates context conditions against these spans.
type Annotation struct {
	Context string    `json:"context"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
}

// Covers reports whether the annotation span contains instant t ([Start, End)).
func (a Annotation) Covers(t time.Time) bool {
	return !t.Before(a.Start) && t.Before(a.End)
}

// Overlaps reports whether the annotation span intersects [from, to).
func (a Annotation) Overlaps(from, to time.Time) bool {
	return a.Start.Before(to) && from.Before(a.End)
}

// Segment is one wave segment. Channels names the columns of Values; every
// row of Values has exactly len(Channels) entries. If Interval > 0 the
// samples are uniform starting at Start; otherwise Timestamps holds one
// instant per row (non-periodic sampling), stored — as the paper describes —
// as an extra channel inside the value blob when serialized.
type Segment struct {
	// Contributor is the data owner's identity.
	Contributor string `json:"contributor,omitempty"`
	// Start is the timestamp of the first sample.
	Start time.Time `json:"start"`
	// Interval is the uniform sampling period; zero means per-sample
	// timestamps are in Timestamps.
	Interval time.Duration `json:"interval"`
	// Location is where the samples were taken. Mobile traces put
	// per-sample coordinates in Latitude/Longitude channels instead and
	// leave Location at the trace origin.
	Location geo.Point `json:"location"`
	// Channels names the columns of Values.
	Channels []string `json:"channels"`
	// Values is the value blob: one row per sample.
	Values [][]float64 `json:"values"`
	// Timestamps holds per-sample instants when Interval == 0.
	Timestamps []time.Time `json:"timestamps,omitempty"`
	// Annotations are inferred context spans covering this segment.
	Annotations []Annotation `json:"annotations,omitempty"`
}

// Validation errors returned by Validate.
var (
	ErrNoChannels    = errors.New("wavesegment: segment has no channels")
	ErrNoSamples     = errors.New("wavesegment: segment has no samples")
	ErrRaggedRow     = errors.New("wavesegment: value row width != channel count")
	ErrBadTimestamps = errors.New("wavesegment: timestamps length != sample count")
	ErrNoTimebase    = errors.New("wavesegment: neither interval nor timestamps set")
	ErrUnsorted      = errors.New("wavesegment: per-sample timestamps not ascending")
	ErrZeroStart     = errors.New("wavesegment: zero start time")
)

// Validate checks the structural invariants of the segment.
func (s *Segment) Validate() error {
	if len(s.Channels) == 0 {
		return ErrNoChannels
	}
	if len(s.Values) == 0 {
		return ErrNoSamples
	}
	seen := make(map[string]struct{}, len(s.Channels))
	for _, c := range s.Channels {
		if c == "" {
			return fmt.Errorf("wavesegment: empty channel name")
		}
		if _, dup := seen[c]; dup {
			return fmt.Errorf("wavesegment: duplicate channel %q", c)
		}
		seen[c] = struct{}{}
	}
	for i, row := range s.Values {
		if len(row) != len(s.Channels) {
			return fmt.Errorf("%w (row %d: %d values, %d channels)", ErrRaggedRow, i, len(row), len(s.Channels))
		}
	}
	if s.Interval <= 0 {
		if len(s.Timestamps) == 0 {
			return ErrNoTimebase
		}
		if len(s.Timestamps) != len(s.Values) {
			return ErrBadTimestamps
		}
		for i := 1; i < len(s.Timestamps); i++ {
			if s.Timestamps[i].Before(s.Timestamps[i-1]) {
				return ErrUnsorted
			}
		}
		if s.Timestamps[0].IsZero() {
			return ErrZeroStart
		}
	} else {
		if len(s.Timestamps) != 0 {
			return fmt.Errorf("wavesegment: both interval and timestamps set")
		}
		if s.Start.IsZero() {
			return ErrZeroStart
		}
	}
	for _, a := range s.Annotations {
		if a.Context == "" || !a.Start.Before(a.End) {
			return fmt.Errorf("wavesegment: invalid annotation %+v", a)
		}
	}
	return nil
}

// NumSamples returns the number of rows in the value blob.
func (s *Segment) NumSamples() int { return len(s.Values) }

// StartTime returns the instant of the first sample.
func (s *Segment) StartTime() time.Time {
	if s.Interval > 0 || len(s.Timestamps) == 0 {
		return s.Start
	}
	return s.Timestamps[0]
}

// EndTime returns the instant just after the last sample: for uniform
// segments Start + n*Interval (so consecutive segments abut exactly), and
// for timestamped segments the last timestamp plus one nanosecond.
func (s *Segment) EndTime() time.Time {
	if s.Interval > 0 {
		return s.Start.Add(time.Duration(len(s.Values)) * s.Interval)
	}
	if len(s.Timestamps) == 0 {
		return s.Start
	}
	return s.Timestamps[len(s.Timestamps)-1].Add(time.Nanosecond)
}

// SampleTime returns the instant of sample i.
func (s *Segment) SampleTime(i int) time.Time {
	if s.Interval > 0 {
		return s.Start.Add(time.Duration(i) * s.Interval)
	}
	return s.Timestamps[i]
}

// Duration returns EndTime - StartTime.
func (s *Segment) Duration() time.Duration { return s.EndTime().Sub(s.StartTime()) }

// ChannelIndex returns the column index of a channel name, or -1.
func (s *Segment) ChannelIndex(name string) int {
	for i, c := range s.Channels {
		if c == name {
			return i
		}
	}
	return -1
}

// HasChannel reports whether the segment carries the named channel.
func (s *Segment) HasChannel(name string) bool { return s.ChannelIndex(name) >= 0 }

// Column copies out all values of one channel; ok is false if absent.
func (s *Segment) Column(name string) (vals []float64, ok bool) {
	idx := s.ChannelIndex(name)
	if idx < 0 {
		return nil, false
	}
	vals = make([]float64, len(s.Values))
	for i, row := range s.Values {
		vals[i] = row[idx]
	}
	return vals, true
}

// Clone deep-copies the segment.
func (s *Segment) Clone() *Segment {
	out := &Segment{
		Contributor: s.Contributor,
		Start:       s.Start,
		Interval:    s.Interval,
		Location:    s.Location,
		Channels:    append([]string(nil), s.Channels...),
		Values:      make([][]float64, len(s.Values)),
	}
	for i, row := range s.Values {
		out.Values[i] = append([]float64(nil), row...)
	}
	if s.Timestamps != nil {
		out.Timestamps = append([]time.Time(nil), s.Timestamps...)
	}
	if s.Annotations != nil {
		out.Annotations = append([]Annotation(nil), s.Annotations...)
	}
	return out
}

// Project returns a copy containing only the requested channels, in the
// requested order. Channels the segment lacks are skipped. Returns nil if
// none of the channels are present.
func (s *Segment) Project(channels []string) *Segment {
	idxs := make([]int, 0, len(channels))
	names := make([]string, 0, len(channels))
	for _, name := range channels {
		if i := s.ChannelIndex(name); i >= 0 {
			idxs = append(idxs, i)
			names = append(names, name)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	out := s.Clone()
	out.Channels = names
	out.Values = make([][]float64, len(s.Values))
	for r, row := range s.Values {
		nr := make([]float64, len(idxs))
		for c, idx := range idxs {
			nr[c] = row[idx]
		}
		out.Values[r] = nr
	}
	return out
}

// DropChannels returns a copy without the named channels, or nil if nothing
// remains.
func (s *Segment) DropChannels(channels []string) *Segment {
	drop := make(map[string]struct{}, len(channels))
	for _, c := range channels {
		drop[c] = struct{}{}
	}
	keep := make([]string, 0, len(s.Channels))
	for _, c := range s.Channels {
		if _, gone := drop[c]; !gone {
			keep = append(keep, c)
		}
	}
	if len(keep) == len(s.Channels) {
		return s.Clone()
	}
	return s.Project(keep)
}

// Slice returns a copy restricted to samples with instants in [from, to).
// Either bound may be zero for "unbounded". Returns nil if no samples fall
// in the window. Annotations are clipped to the window.
func (s *Segment) Slice(from, to time.Time) *Segment {
	lo, hi := s.sampleRange(from, to)
	if lo >= hi {
		return nil
	}
	out := &Segment{
		Contributor: s.Contributor,
		Interval:    s.Interval,
		Location:    s.Location,
		Channels:    append([]string(nil), s.Channels...),
		Values:      make([][]float64, hi-lo),
	}
	for i := lo; i < hi; i++ {
		out.Values[i-lo] = append([]float64(nil), s.Values[i]...)
	}
	if s.Interval > 0 {
		out.Start = s.SampleTime(lo)
	} else {
		out.Timestamps = append([]time.Time(nil), s.Timestamps[lo:hi]...)
		out.Start = out.Timestamps[0]
	}
	ss, se := out.StartTime(), out.EndTime()
	for _, a := range s.Annotations {
		if !a.Overlaps(ss, se) {
			continue
		}
		c := a
		if c.Start.Before(ss) {
			c.Start = ss
		}
		if c.End.After(se) {
			c.End = se
		}
		out.Annotations = append(out.Annotations, c)
	}
	return out
}

// sampleRange finds the half-open index range of samples within [from, to).
func (s *Segment) sampleRange(from, to time.Time) (lo, hi int) {
	n := len(s.Values)
	if s.Interval > 0 {
		lo = 0
		if !from.IsZero() && from.After(s.Start) {
			d := from.Sub(s.Start)
			lo = int((d + s.Interval - 1) / s.Interval) // ceil
		}
		hi = n
		if !to.IsZero() {
			if to.Before(s.Start) || to.Equal(s.Start) {
				return 0, 0
			}
			d := to.Sub(s.Start)
			h := int((d + s.Interval - 1) / s.Interval) // first index at or past to
			if h < hi {
				hi = h
			}
		}
		if lo < 0 {
			lo = 0
		}
		if lo > n {
			lo = n
		}
		return lo, hi
	}
	lo = 0
	if !from.IsZero() {
		lo = sort.Search(n, func(i int) bool { return !s.Timestamps[i].Before(from) })
	}
	hi = n
	if !to.IsZero() {
		hi = sort.Search(n, func(i int) bool { return !s.Timestamps[i].Before(to) })
	}
	return lo, hi
}

// Annotate appends a context span, keeping spans sorted by start.
func (s *Segment) Annotate(ctx string, from, to time.Time) error {
	if ctx == "" || !from.Before(to) {
		return fmt.Errorf("wavesegment: invalid annotation %q [%v, %v)", ctx, from, to)
	}
	s.Annotations = append(s.Annotations, Annotation{Context: ctx, Start: from, End: to})
	sort.Slice(s.Annotations, func(i, j int) bool {
		return s.Annotations[i].Start.Before(s.Annotations[j].Start)
	})
	return nil
}

// ContextsAt returns the context labels active at instant t.
func (s *Segment) ContextsAt(t time.Time) []string {
	var out []string
	for _, a := range s.Annotations {
		if a.Covers(t) {
			out = append(out, a.Context)
		}
	}
	return out
}

// ContextsOverlapping returns the distinct context labels whose spans
// intersect [from, to).
func (s *Segment) ContextsOverlapping(from, to time.Time) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, a := range s.Annotations {
		if !a.Overlaps(from, to) {
			continue
		}
		if _, dup := seen[a.Context]; dup {
			continue
		}
		seen[a.Context] = struct{}{}
		out = append(out, a.Context)
	}
	return out
}

// HasContext reports whether any annotation span carries the label.
func (s *Segment) HasContext(ctx string) bool {
	for _, a := range s.Annotations {
		if a.Context == ctx {
			return true
		}
	}
	return false
}

func (s *Segment) String() string {
	return fmt.Sprintf("Segment{%s %v..%v %v %d samples}",
		s.Contributor, s.StartTime().Format(time.RFC3339), s.EndTime().Format(time.RFC3339),
		s.Channels, len(s.Values))
}
