// Package clean shows metric registrations and span instrumentation the
// obsnames analyzer must accept: literal snake_case metric names and
// dot-separated lowercase span names, each appearing exactly once.
package clean

import (
	"context"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
)

const histName = "sensorsafe_fixture_lag_seconds" // constants fold, so this is fine

var (
	fixtureOps = obs.NewCounter("sensorsafe_fixture_ops_total", "Well-named fixture counter.")
	fixtureLag = obs.NewHistogramVec(histName, "Labeled fixture histogram.", nil, "stage")
)

func tracedWork(ctx context.Context) {
	defer obs.Time(ctx, "fixture.scan")()
	ctx, span, stop := obs.Span(ctx, "fixture.rule_eval")
	_ = ctx
	_ = span
	stop(nil)
	_, root := trace.Start(context.Background(), "fixture.session")
	root.End()
}
