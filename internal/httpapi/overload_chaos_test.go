package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/overload"
	"sensorsafe/internal/query"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/wavesegment"
)

// overloadDeployment is a single store server with a test-controlled
// admission controller: the chaos pressure source is pinned by the test,
// so degradation states are entered deterministically instead of by
// actually exhausting the machine.
type overloadDeployment struct {
	ctrl     *overload.Controller
	pressure *atomic.Int64 // percent; the registered source reads it
	client   *StoreClient
	url      string
}

func deployOverload(t *testing.T) *overloadDeployment {
	t.Helper()
	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	cfg := overload.Config{Component: "store", RecomputeEvery: time.Nanosecond}
	// A tiny stream gate makes capacity shedding reachable with two
	// long-polls; the short queue wait keeps the test fast.
	cfg.Capacity[overload.ClassStream] = 2
	cfg.QueueWait[overload.ClassStream] = 25 * time.Millisecond
	ctrl := overload.NewController(cfg)

	var pressure atomic.Int64
	ctrl.AddSource("chaos", func() float64 { return float64(pressure.Load()) / 100 })

	server := httptest.NewServer(NewStoreHandlerOverload(svc, ctrl))
	t.Cleanup(server.Close)
	return &overloadDeployment{
		ctrl:     ctrl,
		pressure: &pressure,
		// A single attempt keeps the shed arithmetic exact: the default
		// policy would retry 429s after Retry-After and hide the shed.
		client: &StoreClient{BaseURL: server.URL, Retry: &resilience.Policy{MaxAttempts: 1}},
		url:    server.URL,
	}
}

// shedCode reports whether err is the admission controller's 429.
func shedCode(err error) bool {
	var se *resilience.StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

// TestChaosOverloadBrownout drives the store through a full degradation
// cycle and checks the paper's shedding order with exact counts: under
// forced overload every query and stream request is shed with 429 +
// Retry-After while every upload and rule mutation succeeds (zero ingest
// loss, privacy mutations never shed); after recovery the rules written
// during the brownout are enforced on what was ingested during it.
func TestChaosOverloadBrownout(t *testing.T) {
	d := deployOverload(t)

	alice, err := d.client.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.client.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := d.client.Register("Bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.client.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline ingest before the storm: one packet = one record.
	if n, err := d.client.Upload(alice.Key, []*wavesegment.Segment{streamPacket(t0, 8)}); err != nil || n != 1 {
		t.Fatalf("baseline upload = %d, %v", n, err)
	}

	// Force overload and wait for the state machine to see it. With a
	// nanosecond recompute interval the next call observes the source.
	d.pressure.Store(100)
	if st := d.ctrl.State(); st != overload.StateOverloaded {
		t.Fatalf("state after pressure spike = %s, want overloaded", st)
	}

	// A shed response must carry a whole-second Retry-After hint.
	resp, err := http.Post(d.url+"/api/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query under overload = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// Saturating mixed load: 4 workers × (10 queries + 3 stream polls +
	// 5 uploads). Brownout decisions are deterministic at pinned pressure,
	// so the shed arithmetic must balance exactly.
	const (
		workers          = 4
		queriesPerWorker = 10
		streamsPerWorker = 3
		uploadsPerWorker = 5
	)
	var (
		queryShed, queryOther   atomic.Int64
		streamShed, streamOther atomic.Int64
		uploadOK, uploadShed    atomic.Int64
		recordsIn               atomic.Int64
		wg                      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				if _, err := d.client.Query(bob.Key, &query.Query{}); shedCode(err) {
					queryShed.Add(1)
				} else {
					queryOther.Add(1)
				}
			}
			for i := 0; i < streamsPerWorker; i++ {
				if _, err := d.client.Next(bob.Key, sub.ID, sub.Cursor, 0); shedCode(err) {
					streamShed.Add(1)
				} else {
					streamOther.Add(1)
				}
			}
			for i := 0; i < uploadsPerWorker; i++ {
				seg := streamPacket(t0.Add(time.Duration(w*uploadsPerWorker+i+1)*time.Hour), 8)
				switch n, err := d.client.Upload(alice.Key, []*wavesegment.Segment{seg}); {
				case err == nil:
					uploadOK.Add(1)
					recordsIn.Add(int64(n))
				case shedCode(err):
					uploadShed.Add(1)
				default:
					t.Errorf("upload failed with non-shed error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got, want := queryShed.Load(), int64(workers*queriesPerWorker); got != want || queryOther.Load() != 0 {
		t.Errorf("query sheds = %d (non-shed %d), want exactly %d", got, queryOther.Load(), want)
	}
	if got, want := streamShed.Load(), int64(workers*streamsPerWorker); got != want || streamOther.Load() != 0 {
		t.Errorf("stream sheds = %d (non-shed %d), want exactly %d", got, streamOther.Load(), want)
	}
	if uploadShed.Load() != 0 || uploadOK.Load() != int64(workers*uploadsPerWorker) {
		t.Errorf("ingest loss under overload: ok=%d shed=%d, want %d/0",
			uploadOK.Load(), uploadShed.Load(), workers*uploadsPerWorker)
	}

	// Privacy-rule mutations ride the never-shed tier: tightening location
	// sharing mid-brownout must succeed.
	if err := d.client.SetRules(alice.Key, []byte(`[
	  {"Action":"Allow"},
	  {"Action":{"Abstraction":{"Location":"City"}}}
	]`)); err != nil {
		t.Fatalf("rule mutation shed during overload: %v", err)
	}

	// Recovery: drop pressure, the state machine steps straight home.
	d.pressure.Store(0)
	if st := d.ctrl.State(); st != overload.StateHealthy {
		t.Fatalf("state after recovery = %s, want healthy", st)
	}

	// Zero ingest loss: every record accepted during the brownout is
	// queryable afterwards.
	segs, err := d.client.QueryOwn(alice.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += len(s.Values)
	}
	// Every packet carries 8 samples; all of them must be queryable.
	if want := 8 * (1 + int(recordsIn.Load())); total != want {
		t.Errorf("samples after recovery = %d, want %d (zero ingest loss)", total, want)
	}

	// Zero privacy violations: the rule set written during the brownout
	// governs the releases, including data ingested while overloaded.
	rels, err := d.client.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no releases after recovery")
	}
	for _, rel := range rels {
		if rel.Location.Point != nil {
			t.Fatal("exact location leaked despite rule written during brownout")
		}
	}
}

// TestChaosOverloadCapacityShed exercises the healthy-state shedding path:
// when the stream gate is full, an extra long-poll waits out its queue
// deadline and is shed with 429 while the slot holders complete normally.
func TestChaosOverloadCapacityShed(t *testing.T) {
	d := deployOverload(t)

	if _, err := d.client.Register("alice", "contributor"); err != nil {
		t.Fatal(err)
	}
	type subscriber struct {
		key auth.APIKey
		id  string
	}
	var subs []subscriber
	for _, name := range []string{"Bob", "Carol", "Dave"} {
		u, err := d.client.Register(name, "consumer")
		if err != nil {
			t.Fatal(err)
		}
		info, err := d.client.Subscribe(u.Key, "alice", nil)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, subscriber{key: u.Key, id: info.ID})
	}

	// Two long-polls occupy the whole stream gate (capacity 2).
	var wg sync.WaitGroup
	for _, s := range subs[:2] {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.client.Next(s.key, s.id, "0", time.Second); err != nil {
				t.Errorf("slot-holding poll failed: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.ctrl.Snapshot().InFlight[overload.ClassStream.String()] != 2 {
		if time.Now().After(deadline) {
			t.Fatal("stream gate never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The third poll cannot get a slot within the 25ms queue wait.
	if _, err := d.client.Next(subs[2].key, subs[2].id, "0", 0); !shedCode(err) {
		t.Errorf("over-capacity poll = %v, want 429 shed", err)
	}
	if st := d.ctrl.State(); st != overload.StateHealthy {
		t.Errorf("capacity shedding flipped state to %s", st)
	}
	wg.Wait()
}
