// Package bad exercises the servertimeouts analyzer: http.Server
// literals without ReadHeaderTimeout and bare ListenAndServe calls must
// be flagged.
package bad

import (
	"net/http"
	"time"
)

func bareLiteral(addr string, h http.Handler) *http.Server {
	return &http.Server{Addr: addr, Handler: h} // want "without ReadHeaderTimeout"
}

func valueLiteral(h http.Handler) http.Server {
	return http.Server{Handler: h} // want "without ReadHeaderTimeout"
}

// otherTimeoutsOnly sets deadlines but not the one that stops slowloris
// header dribble.
func otherTimeoutsOnly(addr string) *http.Server {
	return &http.Server{ // want "without ReadHeaderTimeout"
		Addr:        addr,
		ReadTimeout: time.Minute,
		IdleTimeout: time.Minute,
	}
}

func bareListen(addr string, h http.Handler) error {
	return http.ListenAndServe(addr, h) // want "http.ListenAndServe builds a Server with no timeouts"
}

func bareListenTLS(addr, cert, key string, h http.Handler) error {
	return http.ListenAndServeTLS(addr, cert, key, h) // want "http.ListenAndServeTLS builds a Server with no timeouts"
}
