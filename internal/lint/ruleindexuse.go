package lint

import (
	"go/ast"
	"go/types"
)

// RuleIndexUse enforces the compiled-rule-index seam on release paths: the
// packages that evaluate privacy rules per request (internal/datastore,
// internal/stream, internal/broker, internal/httpapi,
// internal/federation) must decide through the rules.Decider facade —
// ruleindex.Index, or ruleindex.Fallback when no index exists — never by
// calling (*rules.Engine).Decide directly. A direct engine call silently
// reverts a hot path to the linear scan, loses the memoized decision
// cache, and disappears from the index/fallback decision metrics. Code
// with a sanctioned reason (e.g. a differential check) carries an
// //sslint:ignore ruleindexuse directive.
var RuleIndexUse = &Analyzer{
	Name: "ruleindexuse",
	Doc:  "release-path packages must evaluate rules via the compiled index facade, not rules.Engine.Decide",
	AppliesTo: func(modulePath, pkgPath string) bool {
		switch pkgPath {
		case modulePath + "/internal/datastore",
			modulePath + "/internal/stream",
			modulePath + "/internal/broker",
			modulePath + "/internal/httpapi",
			modulePath + "/internal/federation":
			return true
		}
		return false
	},
	Run: runRuleIndexUse,
}

func runRuleIndexUse(pass *Pass) {
	inspectFuncs(pass.Pkg, func(n ast.Node, _ *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Decide" {
			return
		}
		recv := pass.Pkg.Info.Types[sel.X].Type
		if recv == nil || !isRuleEngineType(pass, recv) {
			return
		}
		pass.Reportf(call.Pos(),
			"rules.Engine.Decide called directly on a release path; evaluate through the rule-index facade (ruleindex.Index / rules.Decider) so decisions are indexed, memoized, and counted")
	})
}

// isRuleEngineType reports whether t is rules.Engine or *rules.Engine.
// The rules.Decider interface deliberately does not match: deciding
// through the seam is the sanctioned path.
func isRuleEngineType(pass *Pass, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pass.Module.Path+"/internal/rules" &&
		obj.Name() == "Engine"
}
