// Package overload is SensorSafe's server-side overload-protection layer:
// an admission controller (per-principal token-bucket rate limits plus
// bounded per-class concurrency gates with queue-wait deadlines), ordered
// priority classes so load shedding degrades the least critical traffic
// first, a degradation state machine (healthy → degraded → overloaded) fed
// by live pressure signals, and a three-state circuit breaker so clients
// stop hammering stores that are down or shedding.
//
// The design inverts the paper's trust obligation: SensorSafe's store must
// keep *accepting sensory uploads and enforcing privacy rules* no matter
// how hard consumers hammer it (§5's always-on ingest pipeline). Overload
// therefore sheds in strict class order — stream delivery first, then
// consumer queries, then broker directory traffic — while phone ingest and
// rule mutations are effectively never shed: they are exempt from state
// brownout and rate limits and only fail when even their own oversized
// gate overflows a generous queue-wait deadline.
//
// Shed requests are answered with HTTP 429 plus a computed Retry-After,
// which the internal/resilience retry engine already honors, so the whole
// fleet backs off instead of amplifying load with retries and hedges.
//
// Like obs and resilience, the package depends only on the standard
// library (plus obs for metrics) so every server can mount it.
package overload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sensorsafe/internal/obs"
)

// Class orders request priorities from most sheddable to least. The
// numeric order IS the shedding order: under degradation the controller
// sheds every class <= the brownout line.
type Class int

const (
	// ClassStream is live-sharing delivery (long-poll, SSE). Shed first:
	// subscribers hold durable cursors and resume with exact-count gap
	// events, so dropped delivery loses nothing.
	ClassStream Class = iota
	// ClassQuery is consumer reads: enforced queries, audit, recommend.
	ClassQuery
	// ClassDirectory is broker control-plane traffic: directory, connect,
	// search, lists, studies. Shed only by gate overflow, never by state.
	ClassDirectory
	// ClassIngest is phone uploads and rule mutations — the paper's trust
	// anchor. Exempt from brownout and rate limits; only its own oversized
	// gate can reject it, after a generous queue wait.
	ClassIngest

	// NumClasses bounds per-class arrays.
	NumClasses int = iota
)

// String names the class for metrics and logs.
func (c Class) String() string {
	switch c {
	case ClassStream:
		return "stream"
	case ClassQuery:
		return "query"
	case ClassDirectory:
		return "directory"
	case ClassIngest:
		return "ingest"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// State is the degradation state machine's position.
type State int

const (
	// StateHealthy sheds nothing by state; only rate limits and gate
	// overflow reject requests.
	StateHealthy State = iota
	// StateDegraded sheds ClassStream.
	StateDegraded
	// StateOverloaded sheds ClassStream and ClassQuery.
	StateOverloaded
)

// String names the state for /healthz, metrics, and span attributes.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateOverloaded:
		return "overloaded"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// shedByState reports whether class is browned out in state.
func shedByState(s State, c Class) bool {
	switch s {
	case StateDegraded:
		return c == ClassStream
	case StateOverloaded:
		return c <= ClassQuery
	}
	return false
}

// Admission metrics (README catalog: Overload protection).
var (
	metricAdmitted = obs.NewCounterVec("sensorsafe_overload_admitted_total",
		"Requests admitted past the overload controller, by component and class.",
		"component", "class")
	metricShed = obs.NewCounterVec("sensorsafe_overload_shed_total",
		"Requests shed by the overload controller, by component, class, and reason.",
		"component", "class", "reason")
	metricQueueWait = obs.NewHistogramVec("sensorsafe_overload_queue_wait_seconds",
		"Time requests waited for a concurrency-gate slot, by component and class.",
		obs.DefBuckets, "component", "class")
	metricState = obs.NewGaugeVec("sensorsafe_overload_state",
		"Degradation state (0 healthy, 1 degraded, 2 overloaded), by component.",
		"component")
	metricStateChanges = obs.NewCounterVec("sensorsafe_overload_state_changes_total",
		"Degradation state transitions, by component and new state.",
		"component", "state")
	metricPressure = obs.NewGaugeVec("sensorsafe_overload_pressure",
		"Live pressure signals in [0,1+], by component and signal.",
		"component", "signal")
	metricInFlight = obs.NewGaugeVec("sensorsafe_overload_in_flight",
		"Requests currently holding a gate slot, by component and class.",
		"component", "class")
	metricRateLimited = obs.NewCounterVec("sensorsafe_overload_ratelimited_total",
		"Requests rejected by the per-principal token bucket, by component.",
		"component")
)

// Config tunes a Controller; zero values take the documented defaults.
type Config struct {
	// Component labels this controller's metrics ("store", "broker").
	Component string
	// Capacity bounds concurrently admitted requests per class.
	// Defaults: stream 256, query 128, directory 128, ingest 512.
	Capacity [NumClasses]int
	// QueueWait is how long an arriving request may wait for a gate slot
	// before being shed. Defaults: stream 100ms, query 250ms, directory
	// 500ms, ingest 5s — the deadline grows with priority, so critical
	// traffic queues where sheddable traffic fails fast.
	QueueWait [NumClasses]time.Duration
	// RatePerPrincipal is the sustained per-principal request rate
	// (tokens/second) for non-ingest classes; 0 disables rate limiting.
	RatePerPrincipal float64
	// RateBurst is the bucket depth (default 2× RatePerPrincipal, min 10).
	RateBurst float64
	// DegradedAt / OverloadedAt are the pressure thresholds for entering
	// each state (defaults 0.75 / 0.92). Leaving a state additionally
	// requires pressure below threshold − RecoverMargin (default 0.10),
	// so the state machine does not flap at the boundary.
	DegradedAt    float64
	OverloadedAt  float64
	RecoverMargin float64
	// RecomputeEvery rate-limits pressure recomputation (default 250ms).
	// Recomputation is lazy — driven by Admit/State/Pressure calls — so
	// an idle controller costs nothing.
	RecomputeEvery time.Duration
	// Now is a test seam for the clock (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	defCap := [NumClasses]int{ClassStream: 256, ClassQuery: 128, ClassDirectory: 128, ClassIngest: 512}
	defWait := [NumClasses]time.Duration{
		ClassStream:    100 * time.Millisecond,
		ClassQuery:     250 * time.Millisecond,
		ClassDirectory: 500 * time.Millisecond,
		ClassIngest:    5 * time.Second,
	}
	for i := 0; i < NumClasses; i++ {
		if c.Capacity[i] <= 0 {
			c.Capacity[i] = defCap[i]
		}
		if c.QueueWait[i] <= 0 {
			c.QueueWait[i] = defWait[i]
		}
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 2 * c.RatePerPrincipal
		if c.RateBurst < 10 {
			c.RateBurst = 10
		}
	}
	if c.DegradedAt <= 0 {
		c.DegradedAt = 0.75
	}
	if c.OverloadedAt <= 0 {
		c.OverloadedAt = 0.92
	}
	if c.RecoverMargin <= 0 {
		c.RecoverMargin = 0.10
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// StoreDefaults is the store server's production configuration.
func StoreDefaults() Config { return Config{Component: "store"}.withDefaults() }

// BrokerDefaults is the broker server's production configuration. The
// broker has no stream tier, and its directory tier carries most traffic.
func BrokerDefaults() Config {
	c := Config{Component: "broker"}
	c.Capacity[ClassDirectory] = 256
	return c.withDefaults()
}

// Rejection explains a shed request. The HTTP layer maps it to
// 429 Too Many Requests with a Retry-After header.
type Rejection struct {
	// Class is the request's priority class.
	Class Class
	// Reason is "brownout" (shed by degradation state), "ratelimit"
	// (per-principal token bucket dry), or "capacity" (gate full past the
	// queue-wait deadline).
	Reason string
	// State is the degradation state at rejection time.
	State State
	// RetryAfter is the server's computed backoff hint.
	RetryAfter time.Duration
}

// Error renders the rejection as a client-facing message.
func (r *Rejection) Error() string {
	return fmt.Sprintf("overload: %s request shed (%s, state %s); retry after %s",
		r.Class, r.Reason, r.State, r.RetryAfter)
}

// bucket is one principal's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxPrincipals bounds the bucket map. Past the bound the whole map is
// dropped — coarse, but it guarantees a principal-cardinality attack
// cannot grow server memory without bound, and refilling from empty only
// briefly over-admits.
const maxPrincipals = 8192

// ewmaAlpha weights the newest queue-wait observation.
const ewmaAlpha = 0.2

// Controller is one server's admission controller. Safe for concurrent
// use. Create with NewController.
type Controller struct {
	cfg   Config
	gates [NumClasses]chan struct{}

	inFlightG  [NumClasses]*obs.Gauge
	queueWaitH [NumClasses]*obs.Histogram

	mu            sync.Mutex
	sources       []namedSource       // external pressure sources; guarded by mu
	buckets       map[string]*bucket  // per-principal token buckets; guarded by mu
	state         State               // degradation state; guarded by mu
	pressure      float64             // last composite pressure; guarded by mu
	lastRecompute time.Time           // guarded by mu
	waitFrac      [NumClasses]float64 // EWMA of queue wait / deadline; guarded by mu
	inFlight      [NumClasses]int     // gate slots held; guarded by mu
}

type namedSource struct {
	name string
	fn   func() float64
}

// NewController builds a controller from cfg (zero fields defaulted).
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, buckets: make(map[string]*bucket)}
	for i := 0; i < NumClasses; i++ {
		c.gates[i] = make(chan struct{}, cfg.Capacity[i])
		c.inFlightG[i] = metricInFlight.With(cfg.Component, Class(i).String())
		c.queueWaitH[i] = metricQueueWait.With(cfg.Component, Class(i).String())
	}
	metricState.With(cfg.Component).Set(float64(StateHealthy))
	return c
}

// AddSource registers a named external pressure source returning a value
// in [0, 1+] (1 = at the resource's budget). The composite pressure is the
// max over all sources plus the controller's two internal signals
// (queue-wait fraction and gate utilization) — bottleneck semantics: the
// most stressed resource sets the state.
func (c *Controller) AddSource(name string, fn func() float64) {
	c.mu.Lock()
	c.sources = append(c.sources, namedSource{name: name, fn: fn})
	c.mu.Unlock()
}

// Admit asks to run one request of the given class on behalf of a
// principal (client identity — typically the remote host). On admission it
// returns a release func the caller MUST invoke when the request
// completes; on rejection it returns a *Rejection (release is nil).
func (c *Controller) Admit(ctx context.Context, class Class, principal string) (release func(), rej *Rejection) {
	if class < 0 || int(class) >= NumClasses {
		class = ClassQuery
	}
	now := c.cfg.Now()
	c.maybeRecompute(now)

	c.mu.Lock()
	st := c.state
	c.mu.Unlock()

	// 1. Brownout: the state machine sheds whole classes. Ingest and
	// directory are never browned out (see shedByState).
	if shedByState(st, class) {
		return nil, c.reject(class, "brownout", st, c.stateRetryAfter(st))
	}

	// 2. Per-principal token bucket. Ingest is exempt: a phone flushing
	// its outbox after a blackout must not be rate-limited into data loss.
	if class != ClassIngest && c.cfg.RatePerPrincipal > 0 {
		if wait := c.takeToken(principal, now); wait > 0 {
			metricRateLimited.With(c.cfg.Component).Inc()
			return nil, c.reject(class, "ratelimit", st, wait)
		}
	}

	// 3. Concurrency gate with a class-scaled queue-wait deadline.
	gate := c.gates[class]
	waited := time.Duration(0)
	select {
	case gate <- struct{}{}:
	default:
		timer := time.NewTimer(c.cfg.QueueWait[class])
		start := c.cfg.Now()
		select {
		case gate <- struct{}{}:
			timer.Stop()
			waited = c.cfg.Now().Sub(start)
		case <-timer.C:
			c.recordWait(class, c.cfg.QueueWait[class])
			return nil, c.reject(class, "capacity", st, c.stateRetryAfter(st))
		case <-ctx.Done():
			timer.Stop()
			// The caller is gone; report it as a shed so the arithmetic
			// attempted = admitted + shed still balances.
			return nil, c.reject(class, "canceled", st, c.stateRetryAfter(st))
		}
	}
	c.recordWait(class, waited)
	metricAdmitted.With(c.cfg.Component, class.String()).Inc()
	c.inFlightG[class].Inc()
	c.mu.Lock()
	c.inFlight[class]++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			<-gate
			c.inFlightG[class].Dec()
			c.mu.Lock()
			c.inFlight[class]--
			c.mu.Unlock()
		})
	}, nil
}

// reject records the shed and builds the Rejection.
func (c *Controller) reject(class Class, reason string, st State, retryAfter time.Duration) *Rejection {
	metricShed.With(c.cfg.Component, class.String(), reason).Inc()
	if retryAfter < time.Second {
		// Retry-After travels as whole delta-seconds on the wire; a
		// sub-second hint would round down to "retry immediately".
		retryAfter = time.Second
	}
	return &Rejection{Class: class, Reason: reason, State: st, RetryAfter: retryAfter}
}

// stateRetryAfter scales the backoff hint with how stressed the server is:
// the deeper the degradation, the longer clients should stay away.
func (c *Controller) stateRetryAfter(st State) time.Duration {
	switch st {
	case StateOverloaded:
		return 5 * time.Second
	case StateDegraded:
		return 2 * time.Second
	}
	return time.Second
}

// recordWait folds one gate wait into the class's EWMA and histogram.
func (c *Controller) recordWait(class Class, waited time.Duration) {
	c.queueWaitH[class].Observe(waited.Seconds())
	frac := float64(waited) / float64(c.cfg.QueueWait[class])
	c.mu.Lock()
	c.waitFrac[class] = (1-ewmaAlpha)*c.waitFrac[class] + ewmaAlpha*frac
	c.mu.Unlock()
}

// takeToken draws one token from the principal's bucket, returning 0 on
// success or the wait until the next token accrues.
func (c *Controller) takeToken(principal string, now time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buckets) >= maxPrincipals {
		c.buckets = make(map[string]*bucket)
	}
	b := c.buckets[principal]
	if b == nil {
		b = &bucket{tokens: c.cfg.RateBurst, last: now}
		c.buckets[principal] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * c.cfg.RatePerPrincipal
		if b.tokens > c.cfg.RateBurst {
			b.tokens = c.cfg.RateBurst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	return time.Duration((1 - b.tokens) / c.cfg.RatePerPrincipal * float64(time.Second))
}

// State returns the current degradation state (recomputing pressure first
// when the recompute interval has elapsed).
func (c *Controller) State() State {
	c.maybeRecompute(c.cfg.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Pressure returns the last composite pressure value.
func (c *Controller) Pressure() float64 {
	c.maybeRecompute(c.cfg.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pressure
}

// Snapshot is the controller's health-report shape.
type Snapshot struct {
	State    string             `json:"state"`
	Pressure float64            `json:"pressure"`
	InFlight map[string]int     `json:"inFlight,omitempty"`
	Signals  map[string]float64 `json:"signals,omitempty"`
}

// Snapshot reports state, pressure, and per-class in-flight counts for
// /healthz.
func (c *Controller) Snapshot() Snapshot {
	c.maybeRecompute(c.cfg.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		State:    c.state.String(),
		Pressure: c.pressure,
		InFlight: make(map[string]int, NumClasses),
	}
	for i := 0; i < NumClasses; i++ {
		if c.inFlight[i] > 0 {
			s.InFlight[Class(i).String()] = c.inFlight[i]
		}
	}
	return s
}

// maybeRecompute refreshes pressure and the state machine at most once per
// RecomputeEvery. External sources run outside the controller lock — they
// may take their own (e.g. the segment store's stats lock).
func (c *Controller) maybeRecompute(now time.Time) {
	c.mu.Lock()
	if now.Sub(c.lastRecompute) < c.cfg.RecomputeEvery && !c.lastRecompute.IsZero() {
		c.mu.Unlock()
		return
	}
	c.lastRecompute = now
	sources := make([]namedSource, len(c.sources))
	copy(sources, c.sources)
	// Internal signal 1: worst queue-wait fraction across classes.
	waitSig := 0.0
	for i := 0; i < NumClasses; i++ {
		if c.waitFrac[i] > waitSig {
			waitSig = c.waitFrac[i]
		}
	}
	// Internal signal 2: overall gate utilization.
	used, capTotal := 0, 0
	for i := 0; i < NumClasses; i++ {
		used += c.inFlight[i]
		capTotal += c.cfg.Capacity[i]
	}
	c.mu.Unlock()

	utilSig := float64(used) / float64(capTotal)
	pressure := waitSig
	if utilSig > pressure {
		pressure = utilSig
	}
	metricPressure.With(c.cfg.Component, "queue_wait").Set(waitSig)
	metricPressure.With(c.cfg.Component, "gate_utilization").Set(utilSig)
	for _, s := range sources {
		v := s.fn()
		metricPressure.With(c.cfg.Component, s.name).Set(v)
		if v > pressure {
			pressure = v
		}
	}

	c.mu.Lock()
	old := c.state
	next := c.nextStateLocked(pressure)
	c.state = next
	c.pressure = pressure
	c.mu.Unlock()
	if next != old {
		metricState.With(c.cfg.Component).Set(float64(next))
		metricStateChanges.With(c.cfg.Component, next.String()).Inc()
	}
}

// nextStateLocked applies thresholds with hysteresis. Callers hold mu.
func (c *Controller) nextStateLocked(p float64) State {
	switch c.state {
	case StateHealthy:
		if p >= c.cfg.OverloadedAt {
			return StateOverloaded
		}
		if p >= c.cfg.DegradedAt {
			return StateDegraded
		}
	case StateDegraded:
		if p >= c.cfg.OverloadedAt {
			return StateOverloaded
		}
		if p < c.cfg.DegradedAt-c.cfg.RecoverMargin {
			return StateHealthy
		}
	case StateOverloaded:
		if p < c.cfg.OverloadedAt-c.cfg.RecoverMargin {
			if p >= c.cfg.DegradedAt {
				return StateDegraded
			}
			if p < c.cfg.DegradedAt-c.cfg.RecoverMargin {
				return StateHealthy
			}
			return StateDegraded
		}
	}
	return c.state
}
