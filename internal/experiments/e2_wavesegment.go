package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// E2Config parameterizes the wave-segment optimization experiment.
type E2Config struct {
	// Hours of continuous data to synthesize.
	Hours float64
	// SampleHz is the per-channel sampling rate.
	SampleHz float64
	// PacketSizes are the device packet sizes to sweep (samples/packet).
	PacketSizes []int
	// MaxSegmentSamples caps merged segments.
	MaxSegmentSamples int
	// QueryWindows is how many range queries to time per configuration.
	QueryWindows int
}

// DefaultE2 mirrors the paper's setting: a chest band streaming 64-sample
// packets continuously for a day, stored raw vs optimized.
func DefaultE2() E2Config {
	return E2Config{
		Hours:             2,
		SampleHz:          10,
		PacketSizes:       []int{16, 64, 256},
		MaxSegmentSamples: wavesegment.DefaultMaxSamples,
		QueryWindows:      50,
	}
}

var e2Start = time.Date(2011, 2, 16, 0, 0, 0, 0, time.UTC)

// e2Packets synthesizes the packet stream for one configuration.
func e2Packets(cfg E2Config, packetSize int) []*wavesegment.Segment {
	interval := time.Duration(float64(time.Second) / cfg.SampleHz)
	total := int(cfg.Hours * 3600 * cfg.SampleHz)
	loc := geo.Point{Lat: 34.0689, Lon: -118.4452}
	channels := []string{
		wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelSkinTemp,
	}
	var packets []*wavesegment.Segment
	at := e2Start
	for produced := 0; produced < total; {
		n := packetSize
		if produced+n > total {
			n = total - produced
		}
		seg := &wavesegment.Segment{
			Contributor: "e2", Start: at, Interval: interval,
			Location: loc, Channels: channels,
		}
		for i := 0; i < n; i++ {
			seg.Values = append(seg.Values, []float64{
				float64(produced+i) * 0.001, float64(produced+i) * 0.002, 36.5,
			})
		}
		packets = append(packets, seg)
		at = seg.EndTime()
		produced += n
	}
	return packets
}

// e2Load stores the packets (optimized or raw) and returns the store.
func e2Load(packets []*wavesegment.Segment, optimize bool, maxSamples int) (*storage.Store, error) {
	st, err := storage.Open("")
	if err != nil {
		return nil, err
	}
	segs := packets
	if optimize {
		if segs, err = wavesegment.OptimizeAll(packets, maxSamples); err != nil {
			st.Close()
			return nil, err
		}
	}
	for _, seg := range segs {
		if _, err := st.Put(seg); err != nil {
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

// e2QueryLatency times q QueryWindows half-hour range scans.
func e2QueryLatency(st *storage.Store, cfg E2Config) (time.Duration, int, error) {
	window := 30 * time.Minute
	span := time.Duration(cfg.Hours * float64(time.Hour))
	stride := span / time.Duration(cfg.QueryWindows)
	begin := time.Now()
	matched := 0
	for i := 0; i < cfg.QueryWindows; i++ {
		from := e2Start.Add(time.Duration(i) * stride)
		res, err := st.ScanRefs(storage.Query{From: from, To: from.Add(window)})
		if err != nil {
			return 0, 0, err
		}
		matched += len(res)
	}
	return time.Since(begin) / time.Duration(cfg.QueryWindows), matched, nil
}

// blobBytes totals the binary blob size of every record.
func blobBytes(st *storage.Store) (int, error) {
	res, err := st.ScanRefs(storage.Query{})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, r := range res {
		blob, err := wavesegment.MarshalBinary(r.Segment)
		if err != nil {
			return 0, err
		}
		total += len(blob)
	}
	return total, nil
}

// RunE2 measures records, storage bytes, and query latency with and
// without wave-segment optimization, per device packet size.
func RunE2(cfg E2Config) (*Table, error) {
	t := &Table{
		ID: "E2",
		Caption: fmt.Sprintf("wave-segment optimization (%.2gh @ %.0f Hz x 3 channels, cap %d samples/segment)",
			cfg.Hours, cfg.SampleHz, cfg.MaxSegmentSamples),
		Headers: []string{"packet", "records raw", "records opt", "ratio",
			"bytes raw", "bytes opt", "query raw", "query opt", "speedup"},
		Notes: []string{
			"paper §5.1: record count drives query cost; merging timestamp-consecutive packets should cut both",
		},
	}
	for _, ps := range cfg.PacketSizes {
		packets := e2Packets(cfg, ps)

		raw, err := e2Load(packets, false, cfg.MaxSegmentSamples)
		if err != nil {
			return nil, err
		}
		opt, err := e2Load(packets, true, cfg.MaxSegmentSamples)
		if err != nil {
			raw.Close()
			return nil, err
		}

		rawBytes, err := blobBytes(raw)
		if err != nil {
			return nil, err
		}
		optBytes, err := blobBytes(opt)
		if err != nil {
			return nil, err
		}
		rawLat, _, err := e2QueryLatency(raw, cfg)
		if err != nil {
			return nil, err
		}
		optLat, _, err := e2QueryLatency(opt, cfg)
		if err != nil {
			return nil, err
		}

		speedup := float64(rawLat) / float64(optLat)
		ratio := float64(raw.Count()) / float64(opt.Count())
		t.AddRow(
			fmt.Sprintf("%d", ps),
			fmt.Sprintf("%d", raw.Count()),
			fmt.Sprintf("%d", opt.Count()),
			fmt.Sprintf("%.0fx", ratio),
			fmt.Sprintf("%d", rawBytes),
			fmt.Sprintf("%d", optBytes),
			rawLat.Round(100*time.Nanosecond).String(),
			optLat.Round(100*time.Nanosecond).String(),
			fmt.Sprintf("%.1fx", speedup),
		)
		raw.Close()
		opt.Close()
	}
	return t, nil
}
