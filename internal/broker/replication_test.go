package broker

import (
	"testing"

	"sensorsafe/internal/resilience"
)

func TestSyncRulesVersionMonotonic(t *testing.T) {
	b := New()
	if err := b.SyncRules("alice", 3, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	// Older push is rejected with the stale sentinel — retries of a
	// superseded replica must not roll the broker backwards.
	err := b.SyncRules("alice", 2, []byte(`[{"Action":"Deny"}]`), nil)
	if !resilience.IsStale(err) {
		t.Fatalf("stale push err = %v, want ErrStaleVersion", err)
	}
	// Re-push of the applied version is an idempotent no-op.
	if err := b.SyncRules("alice", 3, []byte(`[{"Action":"Deny"}]`), nil); err != nil {
		t.Fatalf("duplicate push should no-op: %v", err)
	}
	reps := b.Replicas()
	if len(reps) != 1 || reps[0].Version != 3 || reps[0].Stale {
		t.Fatalf("replicas = %+v", reps)
	}
	// The duplicate must not have replaced the rules: the original Allow
	// still matches a search.
	bob, err2 := b.RegisterConsumer("bob")
	if err2 != nil {
		t.Fatal(err2)
	}
	got, err2 := b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(got) != 1 {
		t.Fatalf("Allow rules should have survived the duplicate push: %v", got)
	}
}

func TestSyncDigestReportsStale(t *testing.T) {
	b := New()
	if err := b.SyncRules("alice", 1, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	// Store claims alice is at version 4 and hosts carol (unknown here).
	stale, err := b.SyncDigest("store-1", map[string]uint64{"alice": 4, "carol": 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 2 || stale[0] != "alice" || stale[1] != "carol" {
		t.Fatalf("stale = %v, want [alice carol]", stale)
	}
	// Digest healed the directory: carol exists with the reporting store's
	// address.
	reps := b.Replicas()
	if len(reps) != 2 {
		t.Fatalf("replicas = %+v", reps)
	}
	for _, r := range reps {
		if !r.Stale {
			t.Errorf("%s should be stale: %+v", r.Name, r)
		}
	}
	if reps[1].Name != "carol" || reps[1].StoreAddr != "store-1" {
		t.Errorf("carol entry = %+v", reps[1])
	}
	// Pushing the missing versions converges the digest to empty.
	if err := b.SyncRules("alice", 4, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncRules("carol", 2, []byte(`[{"Action":"Deny"}]`), nil); err != nil {
		t.Fatal(err)
	}
	stale, err = b.SyncDigest("store-1", map[string]uint64{"alice": 4, "carol": 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("converged digest should be empty, got %v", stale)
	}
	for _, r := range b.Replicas() {
		if r.Stale {
			t.Errorf("%s still stale after convergence: %+v", r.Name, r)
		}
	}
}

func TestReplicaVersionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SyncRules("alice", 2, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	// Digest marks alice stale (store at 5) before the "crash".
	if _, err := b.SyncDigest("store-1", map[string]uint64{"alice": 5}); err != nil {
		t.Fatal(err)
	}
	b2, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	reps := b2.Replicas()
	if len(reps) != 1 || reps[0].Version != 2 || reps[0].StoreVersion != 5 || !reps[0].Stale {
		t.Fatalf("restored replicas = %+v", reps)
	}
	// Version monotonicity survives too: an old push is still rejected.
	if err := b2.SyncRules("alice", 1, []byte(`[{"Action":"Deny"}]`), nil); !resilience.IsStale(err) {
		t.Fatalf("stale push after restart = %v", err)
	}
}
