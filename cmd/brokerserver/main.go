// Command brokerserver runs the SensorSafe broker: the directory of data
// contributors and their remote data stores, the replicated privacy-rule
// search index, and the consumer credential vault. Sensor data never flows
// through it.
//
// Usage:
//
//	brokerserver -listen :8080
//
// The broker exposes Prometheus metrics at /metrics and a JSON health report
// at /healthz; pass -pprof to additionally mount net/http/pprof profiling
// handlers under /debug/pprof/.
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/obs"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	dir := flag.String("dir", "", "state directory (empty = in-memory)")
	useTLS := flag.Bool("tls", false, "serve HTTPS with a self-signed certificate")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	svc, err := broker.NewPersistent(*dir)
	if err != nil {
		log.Fatalf("brokerserver: %v", err)
	}
	logger := obs.NewLogger("brokerserver", os.Stderr)
	logger.Info("listening", "listen", *listen, "dir", *dir, "tls", *useTLS, "pprof", *withPprof)
	handler := mountPprof(httpapi.NewBrokerHandler(svc), *withPprof)
	if *useTLS {
		tlsCfg, err := httpapi.SelfSignedTLS([]string{"localhost", "127.0.0.1"}, 0)
		if err != nil {
			log.Fatalf("brokerserver: %v", err)
		}
		server := &http.Server{Addr: *listen, Handler: handler, TLSConfig: tlsCfg}
		if err := server.ListenAndServeTLS("", ""); err != nil {
			log.Fatalf("brokerserver: %v", err)
		}
		return
	}
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatalf("brokerserver: %v", err)
	}
}

// mountPprof optionally layers the net/http/pprof handlers over the API.
// Profiling stays opt-in so a production broker does not expose heap and
// goroutine dumps by default.
func mountPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	root := http.NewServeMux()
	root.Handle("/", h)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}
