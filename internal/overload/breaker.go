package overload

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/resilience"
)

// Breaker metrics (README catalog: Overload protection).
var (
	metricBreakerState = obs.NewGaugeVec("sensorsafe_breaker_state",
		"Circuit breaker state (0 closed, 1 open, 2 half-open), by target.",
		"target")
	metricBreakerTransitions = obs.NewCounterVec("sensorsafe_breaker_transitions_total",
		"Circuit breaker state transitions, by target and new state.",
		"target", "to")
	metricBreakerShortCircuits = obs.NewCounterVec("sensorsafe_breaker_short_circuits_total",
		"Attempts rejected without touching the network because the breaker was open, by target.",
		"target")
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes all traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all traffic until OpenFor elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String names the state for metrics and the health CLI.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// BreakerConfig tunes a Breaker; zero values take the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is how long a tripped breaker rejects before allowing a
	// half-open probe (default 5s).
	OpenFor time.Duration
	// Now is a test seam for the clock (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a three-state (closed → open → half-open) circuit breaker
// for one target store. It implements resilience.CircuitBreaker, so it
// plugs straight into Policy.Do and federation's per-member fetch. Safe
// for concurrent use.
type Breaker struct {
	cfg    BreakerConfig
	target string

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // consecutive failures while closed; guarded by mu
	openedAt time.Time    // when the breaker last tripped; guarded by mu
	probing  bool         // a half-open probe is in flight; guarded by mu
}

// NewBreaker builds a breaker for one target (an address or store name,
// used as the metric label).
func NewBreaker(target string, cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults(), target: target}
	metricBreakerState.With(target).Set(float64(BreakerClosed))
	return b
}

// State returns the breaker's current state, applying the open→half-open
// timer transition first so callers see the effective state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.setStateLocked(BreakerHalfOpen)
	}
	return b.state
}

// Allow reports whether an attempt may proceed. It returns nil when the
// breaker is closed, or when it is half-open and this caller wins the
// single probe slot; otherwise it returns an error wrapping
// resilience.ErrCircuitOpen, carrying the time left until the next probe
// as a retry hint.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		remain := b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt)
		if remain > 0 {
			metricBreakerShortCircuits.With(b.target).Inc()
			return fmt.Errorf("overload: %s tripped for %s: %w", b.target, remain.Round(time.Millisecond), resilience.ErrCircuitOpen)
		}
		b.setStateLocked(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			metricBreakerShortCircuits.With(b.target).Inc()
			return fmt.Errorf("overload: %s half-open, probe in flight: %w", b.target, resilience.ErrCircuitOpen)
		}
		b.probing = true
		return nil
	}
	return nil
}

// Report feeds one attempt's outcome back. Neutral outcomes — success
// classification aside, a caller-side cancellation or the target's own
// orderly 429 shed — neither trip nor heal the breaker: a shedding store
// is alive, and Retry-After already paces the client.
func (b *Breaker) Report(err error) {
	failure := err != nil && !neutralOutcome(err)
	success := err == nil
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
		} else if failure {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.setStateLocked(BreakerOpen)
			}
		}
	case BreakerHalfOpen:
		if !b.probing {
			// A stale report from before the trip; the probe's verdict is
			// the only one that matters here.
			return
		}
		b.probing = false
		if success {
			b.setStateLocked(BreakerClosed)
		} else if failure {
			b.setStateLocked(BreakerOpen)
		}
		// A neutral probe outcome releases the slot for the next caller.
	case BreakerOpen:
		// Late reports from attempts that started before the trip carry no
		// new information.
	}
}

// setStateLocked transitions the breaker, updating metrics and the trip
// clock. Callers hold mu.
func (b *Breaker) setStateLocked(next BreakerState) {
	if next == b.state {
		return
	}
	b.state = next
	switch next {
	case BreakerOpen:
		b.openedAt = b.cfg.Now()
		b.probing = false
	case BreakerClosed:
		b.failures = 0
		b.probing = false
	}
	metricBreakerState.With(b.target).Set(float64(next))
	metricBreakerTransitions.With(b.target, next.String()).Inc()
}

// neutralOutcome reports whether err says nothing about target health.
func neutralOutcome(err error) bool {
	if errors.Is(err, context.Canceled) {
		return true
	}
	if errors.Is(err, resilience.ErrCircuitOpen) {
		return true
	}
	var se *resilience.StatusError
	if errors.As(err, &se) {
		// 429 is the target *protecting itself*, not failing; 4xx are the
		// caller's bug. Only 5xx indict the target.
		return se.Code < http.StatusInternalServerError
	}
	return false
}

// BreakerSet lazily builds one Breaker per target, so federation and the
// CLI can key breakers by store address without pre-registration.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker // guarded by mu
}

// NewBreakerSet builds a set whose members share cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, breakers: make(map[string]*Breaker)}
}

// For returns the breaker for target, creating it on first use. A nil set
// returns nil, which callers treat as "no breaking".
func (s *BreakerSet) For(target string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[target]
	if b == nil {
		b = NewBreaker(target, s.cfg)
		s.breakers[target] = b
	}
	return b
}

// States snapshots every member's state, keyed by target.
func (s *BreakerSet) States() map[string]BreakerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.breakers))
	for t, b := range s.breakers {
		out[t] = b.State()
	}
	return out
}
