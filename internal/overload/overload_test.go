package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

// testConfig is a small, fast controller with a controllable clock.
func testConfig(now *time.Time, mu *sync.Mutex) Config {
	c := Config{Component: "store"}
	c.Capacity = [NumClasses]int{ClassStream: 2, ClassQuery: 2, ClassDirectory: 2, ClassIngest: 4}
	c.QueueWait = [NumClasses]time.Duration{
		ClassStream:    5 * time.Millisecond,
		ClassQuery:     5 * time.Millisecond,
		ClassDirectory: 5 * time.Millisecond,
		ClassIngest:    50 * time.Millisecond,
	}
	c.RecomputeEvery = time.Nanosecond // recompute on every call
	if now != nil {
		c.Now = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return *now
		}
	}
	return c
}

func TestAdmitReleaseCycle(t *testing.T) {
	c := NewController(testConfig(nil, nil))
	ctx := context.Background()
	rel, rej := c.Admit(ctx, ClassQuery, "alice")
	if rej != nil {
		t.Fatalf("healthy admit rejected: %v", rej)
	}
	if c.Snapshot().InFlight["query"] != 1 {
		t.Fatalf("in-flight not tracked: %+v", c.Snapshot())
	}
	rel()
	rel() // idempotent
	if got := c.Snapshot().InFlight["query"]; got != 0 {
		t.Fatalf("release did not drain in-flight: %d", got)
	}
}

func TestGateOverflowShedsWithQueueWait(t *testing.T) {
	c := NewController(testConfig(nil, nil))
	ctx := context.Background()
	var rels []func()
	for i := 0; i < 2; i++ {
		rel, rej := c.Admit(ctx, ClassStream, "a")
		if rej != nil {
			t.Fatalf("admit %d rejected: %v", i, rej)
		}
		rels = append(rels, rel)
	}
	start := time.Now()
	rel, rej := c.Admit(ctx, ClassStream, "a")
	if rej == nil {
		rel()
		t.Fatal("third stream admit should shed on full gate")
	}
	if rej.Reason != "capacity" {
		t.Fatalf("reason = %q, want capacity", rej.Reason)
	}
	if waited := time.Since(start); waited < 4*time.Millisecond {
		t.Fatalf("shed without honoring queue-wait deadline: waited %s", waited)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %s below the 1s wire floor", rej.RetryAfter)
	}
	for _, r := range rels {
		r()
	}
	if rel, rej := c.Admit(ctx, ClassStream, "a"); rej != nil {
		t.Fatalf("admit after release rejected: %v", rej)
	} else {
		rel()
	}
}

func TestGateWaitSucceedsWhenSlotFrees(t *testing.T) {
	c := NewController(testConfig(nil, nil))
	cfg := c.cfg
	cfg.QueueWait[ClassQuery] = 500 * time.Millisecond
	c = NewController(cfg)
	ctx := context.Background()
	rel1, _ := c.Admit(ctx, ClassQuery, "a")
	rel2, _ := c.Admit(ctx, ClassQuery, "a")
	_ = rel2
	done := make(chan *Rejection, 1)
	go func() {
		rel, rej := c.Admit(ctx, ClassQuery, "b")
		if rel != nil {
			defer rel()
		}
		done <- rej
	}()
	time.Sleep(10 * time.Millisecond)
	rel1()
	select {
	case rej := <-done:
		if rej != nil {
			t.Fatalf("waiter should admit once a slot freed: %v", rej)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never admitted")
	}
	rel2()
}

func TestBrownoutOrdering(t *testing.T) {
	pressure := 0.0
	var pmu sync.Mutex
	c := NewController(testConfig(nil, nil))
	c.AddSource("test", func() float64 {
		pmu.Lock()
		defer pmu.Unlock()
		return pressure
	})
	ctx := context.Background()
	setPressure := func(p float64) {
		pmu.Lock()
		pressure = p
		pmu.Unlock()
	}
	admit := func(class Class) *Rejection {
		rel, rej := c.Admit(ctx, class, "x")
		if rel != nil {
			rel()
		}
		return rej
	}

	setPressure(0.80) // degraded
	if got := c.State(); got != StateDegraded {
		t.Fatalf("state at 0.80 = %s, want degraded", got)
	}
	if rej := admit(ClassStream); rej == nil || rej.Reason != "brownout" {
		t.Fatalf("degraded should shed stream, got %v", rej)
	}
	for _, cl := range []Class{ClassQuery, ClassDirectory, ClassIngest} {
		if rej := admit(cl); rej != nil {
			t.Fatalf("degraded should admit %s, got %v", cl, rej)
		}
	}

	setPressure(0.95) // overloaded
	if got := c.State(); got != StateOverloaded {
		t.Fatalf("state at 0.95 = %s, want overloaded", got)
	}
	for _, cl := range []Class{ClassStream, ClassQuery} {
		rej := admit(cl)
		if rej == nil || rej.Reason != "brownout" {
			t.Fatalf("overloaded should shed %s, got %v", cl, rej)
		}
		if rej.RetryAfter != 5*time.Second {
			t.Fatalf("overloaded RetryAfter = %s, want 5s", rej.RetryAfter)
		}
	}
	for _, cl := range []Class{ClassDirectory, ClassIngest} {
		if rej := admit(cl); rej != nil {
			t.Fatalf("overloaded must still admit %s, got %v", cl, rej)
		}
	}

	setPressure(0.0) // recover
	if got := c.State(); got != StateHealthy {
		t.Fatalf("state after recovery = %s, want healthy", got)
	}
	if rej := admit(ClassStream); rej != nil {
		t.Fatalf("healthy should admit stream, got %v", rej)
	}
}

func TestStateHysteresis(t *testing.T) {
	pressure := 0.0
	var pmu sync.Mutex
	c := NewController(testConfig(nil, nil))
	c.AddSource("test", func() float64 {
		pmu.Lock()
		defer pmu.Unlock()
		return pressure
	})
	set := func(p float64) State {
		pmu.Lock()
		pressure = p
		pmu.Unlock()
		return c.State()
	}
	if got := set(0.80); got != StateDegraded {
		t.Fatalf("0.80 → %s, want degraded", got)
	}
	// Dropping just below the entry threshold is inside the hysteresis
	// band: the state must hold.
	if got := set(0.70); got != StateDegraded {
		t.Fatalf("0.70 from degraded → %s, want degraded (hysteresis)", got)
	}
	if got := set(0.60); got != StateHealthy {
		t.Fatalf("0.60 → %s, want healthy", got)
	}
	if got := set(0.95); got != StateOverloaded {
		t.Fatalf("0.95 → %s, want overloaded", got)
	}
	if got := set(0.88); got != StateOverloaded {
		t.Fatalf("0.88 from overloaded → %s, want overloaded (hysteresis)", got)
	}
	if got := set(0.78); got != StateDegraded {
		t.Fatalf("0.78 → %s, want degraded", got)
	}
}

func TestRateLimitPerPrincipal(t *testing.T) {
	cfg := testConfig(nil, nil)
	cfg.RatePerPrincipal = 1 // 1 rps
	cfg.RateBurst = 2
	now := time.Unix(1000, 0)
	var nmu sync.Mutex
	cfg.Now = func() time.Time {
		nmu.Lock()
		defer nmu.Unlock()
		return now
	}
	c := NewController(cfg)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		rel, rej := c.Admit(ctx, ClassQuery, "alice")
		if rej != nil {
			t.Fatalf("burst admit %d rejected: %v", i, rej)
		}
		rel()
	}
	_, rej := c.Admit(ctx, ClassQuery, "alice")
	if rej == nil || rej.Reason != "ratelimit" {
		t.Fatalf("third query in the same instant should rate-limit, got %v", rej)
	}
	// A different principal is unaffected.
	if rel, rej := c.Admit(ctx, ClassQuery, "bob"); rej != nil {
		t.Fatalf("bob rejected by alice's bucket: %v", rej)
	} else {
		rel()
	}
	// Ingest is exempt even for the limited principal.
	if rel, rej := c.Admit(ctx, ClassIngest, "alice"); rej != nil {
		t.Fatalf("ingest must bypass rate limits: %v", rej)
	} else {
		rel()
	}
	// Tokens refill with the clock.
	nmu.Lock()
	now = now.Add(2 * time.Second)
	nmu.Unlock()
	if rel, rej := c.Admit(ctx, ClassQuery, "alice"); rej != nil {
		t.Fatalf("refilled bucket still rejecting: %v", rej)
	} else {
		rel()
	}
}

func TestIngestExemptFromBrownout(t *testing.T) {
	c := NewController(testConfig(nil, nil))
	c.AddSource("pegged", func() float64 { return 1.0 })
	ctx := context.Background()
	if got := c.State(); got != StateOverloaded {
		t.Fatalf("pegged source should overload, got %s", got)
	}
	// Every ingest slot admits even at max pressure.
	var rels []func()
	for i := 0; i < 4; i++ {
		rel, rej := c.Admit(ctx, ClassIngest, "phone")
		if rej != nil {
			t.Fatalf("overloaded state shed ingest %d: %v", i, rej)
		}
		rels = append(rels, rel)
	}
	for _, r := range rels {
		r()
	}
}

func TestAdmitCanceledContext(t *testing.T) {
	c := NewController(testConfig(nil, nil))
	ctx := context.Background()
	rel1, _ := c.Admit(ctx, ClassQuery, "a")
	rel2, _ := c.Admit(ctx, ClassQuery, "a")
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	_, rej := c.Admit(cctx, ClassQuery, "a")
	if rej == nil {
		t.Fatal("canceled waiter should report a rejection")
	}
	rel1()
	rel2()
}

func TestControllerConcurrency(t *testing.T) {
	cfg := testConfig(nil, nil)
	cfg.RatePerPrincipal = 1e6
	c := NewController(cfg)
	c.AddSource("wobble", func() float64 { return 0.5 })
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				class := Class(i % NumClasses)
				rel, rej := c.Admit(ctx, class, "p")
				if rej == nil {
					c.Snapshot()
					rel()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	for cl, n := range snap.InFlight {
		if n != 0 {
			t.Fatalf("leaked %d in-flight slots in class %s", n, cl)
		}
	}
}

func TestDefaultsAreSane(t *testing.T) {
	s := StoreDefaults()
	if s.Capacity[ClassIngest] <= s.Capacity[ClassQuery] {
		t.Fatal("ingest capacity must exceed query capacity")
	}
	if s.QueueWait[ClassIngest] <= s.QueueWait[ClassStream] {
		t.Fatal("ingest queue-wait must exceed stream queue-wait")
	}
	b := BrokerDefaults()
	if b.Component != "broker" {
		t.Fatalf("broker component = %q", b.Component)
	}
	if b.DegradedAt >= b.OverloadedAt {
		t.Fatal("thresholds out of order")
	}
}
