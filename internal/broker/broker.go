// Package broker implements the SensorSafe broker (paper §5.2): the
// dedicated server that makes a fleet of distributed remote data stores
// manageable. It keeps the directory of contributors and their store
// addresses, replicates every contributor's privacy rules (pushed by the
// stores on change) so consumers can search for contributors whose rules
// share enough data for a study, automates consumer registration on stores
// and vaults the resulting API keys, and manages consumer studies/groups.
// Sensor data never flows through the broker — consumers download directly
// from the stores (§4: "The broker is not a performance bottleneck").
package broker

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/rules"
)

// StoreConn is the broker's handle to one remote data store, used to
// automate consumer registration (§5.4). In-process deployments adapt
// *datastore.Service; networked ones use the HTTP client.
type StoreConn interface {
	// Addr returns the store's address (shown in the directory).
	Addr() string
	// ProvisionConsumer registers a consumer on the store and returns the
	// store-local API key. The context carries the request ID of the
	// consumer's connect call so broker→store hops stay correlated.
	ProvisionConsumer(ctx context.Context, name string) (auth.APIKey, error)
}

// Broker metrics.
var (
	metricDirectorySize = obs.NewGauge("sensorsafe_broker_directory_size",
		"Contributors currently in the broker directory.")
	metricProvisions = obs.NewCounterVec("sensorsafe_broker_provisions_total",
		"Consumer credentials provisioned on stores, by result.", "result")
	metricReplicaStale = obs.NewGauge("sensorsafe_broker_replica_stale",
		"Contributors whose store reports a newer rule version than the broker replica holds.")
	metricSyncRejects = obs.NewCounterVec("sensorsafe_broker_sync_rejects_total",
		"Rule replica pushes rejected, by reason.", "reason")
)

// Errors returned by the broker.
var (
	ErrUnknownContributor = errors.New("broker: unknown contributor")
	ErrUnknownStore       = errors.New("broker: unknown store")
	ErrUnknownList        = errors.New("broker: unknown list")
	ErrUnknownStudy       = errors.New("broker: unknown study")
)

// ContributorInfo is one directory entry.
type ContributorInfo struct {
	Name      string `json:"name"`
	StoreAddr string `json:"storeAddr"`
	RuleCount int    `json:"ruleCount"`
}

// Credential pairs a store address with the consumer's API key for it.
type Credential struct {
	StoreAddr string      `json:"storeAddr"`
	Key       auth.APIKey `json:"key"`
}

type contributorEntry struct {
	name      string
	storeAddr string
	rules     []*rules.Rule
	gazetteer *geo.Gazetteer
	engine    *rules.Engine
	// index is the compiled evaluation plan over the replica, rebuilt on
	// every applied sync; federated search fan-out probes it instead of
	// scanning the linear engine.
	index *ruleindex.Index

	// version is the rule-set version of the replica the broker has
	// applied; storeVersion is the highest version the contributor's store
	// has *claimed* (via a push or a digest). storeVersion > version means
	// the replica is stale and anti-entropy owes us a push.
	version      uint64
	storeVersion uint64
	syncedAt     time.Time
}

// decider returns the evaluation seam for this replica: the compiled index
// when built, else the linear engine counted as a fallback; nil when no
// rules have replicated yet (default deny).
func (e *contributorEntry) decider() rules.Decider {
	if e.index != nil {
		return e.index
	}
	if e.engine != nil {
		return ruleindex.Fallback(e.engine)
	}
	return nil
}

type consumerEntry struct {
	lists  map[string][]string
	keys   map[string]auth.APIKey // store addr → key
	groups []string               // studies joined
}

// Service is a broker instance. Safe for concurrent use.
type Service struct {
	users *auth.Registry
	web   *auth.Passwords
	dir   string // persistence directory ("" = in-memory)

	mu           sync.RWMutex
	contributors map[string]*contributorEntry // guarded by mu
	consumers    map[string]*consumerEntry    // guarded by mu
	stores       map[string]StoreConn         // guarded by mu
	studies      map[string]map[string]bool   // study → consumer set; guarded by mu
	rosters      map[string]map[string]string // study → norm contributor → display name; guarded by mu
	dial         func(addr string) StoreConn  // guarded by mu
}

// New returns an empty broker.
func New() *Service {
	return &Service{
		users:        auth.NewRegistry(),
		web:          auth.NewPasswords(0),
		contributors: make(map[string]*contributorEntry),
		consumers:    make(map[string]*consumerEntry),
		stores:       make(map[string]StoreConn),
		studies:      make(map[string]map[string]bool),
		rosters:      make(map[string]map[string]string),
	}
}

// Users exposes the broker's account registry for server wiring.
func (s *Service) Users() *auth.Registry { return s.users }

// Web exposes the password/session store for the web UI layer.
func (s *Service) Web() *auth.Passwords { return s.web }

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// RegisterStore attaches a remote data store connection.
func (s *Service) RegisterStore(conn StoreConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores[conn.Addr()] = conn
}

// SetStoreDialer installs a fallback that connects to stores by address
// when no connection was registered explicitly. The HTTP layer uses this
// to dial stores by their URL, so a broker restart (or a store it has
// never spoken to) does not break consumer provisioning.
func (s *Service) SetStoreDialer(dial func(addr string) StoreConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dial = dial
}

// RegisterContributor records a contributor and the store holding their
// data. Stores call this when a contributor first registers (paper §4:
// "they are automatically registered on the broker, too").
func (s *Service) RegisterContributor(name, storeAddr string) error {
	if norm(name) == "" {
		return fmt.Errorf("broker: empty contributor name")
	}
	s.mu.Lock()
	if e, ok := s.contributors[norm(name)]; ok {
		e.storeAddr = storeAddr
	} else {
		s.contributors[norm(name)] = &contributorEntry{
			name:      name,
			storeAddr: storeAddr,
			gazetteer: geo.NewGazetteer(),
		}
	}
	metricDirectorySize.Set(float64(len(s.contributors)))
	s.mu.Unlock()
	return s.saveState()
}

// SyncRules receives a contributor's rule replica stamped with the
// store's rule-set version; it implements datastore.SyncTarget. Unknown
// contributors are registered implicitly (with an empty store address
// until RegisterContributor supplies one). Versions are monotonic per
// contributor: a push older than the applied replica is rejected with
// resilience.ErrStaleVersion (the sender should drop it — the broker has
// already converged past it), and a push equal to the applied version is
// an idempotent no-op, so retried or duplicated syncs cannot roll the
// replica backwards.
func (s *Service) SyncRules(contributor string, version uint64, ruleSetJSON []byte, places []geo.Region) error {
	rs, err := rules.UnmarshalRuleSet(ruleSetJSON)
	if err != nil {
		metricSyncRejects.With("malformed").Inc()
		return fmt.Errorf("broker: bad rule replica for %s: %w", contributor, err)
	}
	gaz := geo.NewGazetteer()
	for _, rg := range places {
		if err := gaz.Define(rg.Label, rg); err != nil {
			metricSyncRejects.With("malformed").Inc()
			return fmt.Errorf("broker: bad place replica for %s: %w", contributor, err)
		}
	}
	engine, err := rules.NewEngine(rs, gaz)
	if err != nil {
		metricSyncRejects.With("malformed").Inc()
		return fmt.Errorf("broker: rule replica for %s does not compile: %w", contributor, err)
	}
	s.mu.Lock()
	e, ok := s.contributors[norm(contributor)]
	if !ok {
		e = &contributorEntry{name: contributor}
		s.contributors[norm(contributor)] = e
	}
	if version < e.version {
		s.mu.Unlock()
		metricSyncRejects.With("stale").Inc()
		return fmt.Errorf("broker: replica for %s at version %d, push carries %d: %w",
			contributor, e.version, version, resilience.ErrStaleVersion)
	}
	if version == e.version && version > 0 {
		// Duplicate of the already-applied version (a retry whose first
		// attempt landed): converged, nothing to do.
		s.mu.Unlock()
		return nil
	}
	e.rules = rs
	e.gazetteer = gaz
	e.engine = engine
	e.version = version
	e.index = ruleindex.FromEngine(engine, ruleindex.Options{Version: version})
	if version > e.storeVersion {
		e.storeVersion = version
	}
	e.syncedAt = now()
	metricDirectorySize.Set(float64(len(s.contributors)))
	s.recomputeStaleLocked()
	s.mu.Unlock()
	return s.saveState()
}

// SyncDigest is the anti-entropy exchange: the store reports every
// contributor it hosts with its current rule-set version, and the broker
// answers with the names whose replicas are behind and need a full push.
// The digest also heals directory drift — contributors the broker has
// never heard of (lost registration) are created with the reporting
// store's address, and missing store addresses are backfilled.
func (s *Service) SyncDigest(storeAddr string, versions map[string]uint64) ([]string, error) {
	var stale []string
	s.mu.Lock()
	changed := false
	for name, v := range versions {
		e, ok := s.contributors[norm(name)]
		if !ok {
			e = &contributorEntry{name: name, storeAddr: storeAddr, gazetteer: geo.NewGazetteer()}
			s.contributors[norm(name)] = e
			changed = true
		} else if e.storeAddr == "" && storeAddr != "" {
			e.storeAddr = storeAddr
			changed = true
		}
		if v > e.storeVersion {
			e.storeVersion = v
			changed = true
		}
		if e.storeVersion > e.version {
			stale = append(stale, e.name)
		}
	}
	metricDirectorySize.Set(float64(len(s.contributors)))
	s.recomputeStaleLocked()
	s.mu.Unlock()
	sort.Strings(stale)
	if changed {
		if err := s.saveState(); err != nil {
			return stale, err
		}
	}
	return stale, nil
}

// recomputeStaleLocked refreshes the staleness gauge; caller holds s.mu.
func (s *Service) recomputeStaleLocked() {
	n := 0
	for _, e := range s.contributors {
		if e.storeVersion > e.version {
			n++
		}
	}
	metricReplicaStale.Set(float64(n))
}

// ReplicaStatus describes one contributor's replica freshness.
type ReplicaStatus struct {
	Name         string    `json:"name"`
	StoreAddr    string    `json:"storeAddr,omitempty"`
	Version      uint64    `json:"version"`
	StoreVersion uint64    `json:"storeVersion"`
	Stale        bool      `json:"stale"`
	SyncedAt     time.Time `json:"syncedAt,omitempty"`
}

// Replicas reports per-contributor replica staleness, sorted by name —
// the ops view behind the broker_replica_stale gauge.
func (s *Service) Replicas() []ReplicaStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ReplicaStatus, 0, len(s.contributors))
	for _, e := range s.contributors {
		out = append(out, ReplicaStatus{
			Name:         e.name,
			StoreAddr:    e.storeAddr,
			Version:      e.version,
			StoreVersion: e.storeVersion,
			Stale:        e.storeVersion > e.version,
			SyncedAt:     e.syncedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterConsumer creates a consumer account on the broker.
func (s *Service) RegisterConsumer(name string) (auth.User, error) {
	u, err := s.users.Register(name, auth.RoleConsumer)
	if err != nil {
		return auth.User{}, err
	}
	s.mu.Lock()
	s.consumers[norm(name)] = &consumerEntry{
		lists: make(map[string][]string),
		keys:  make(map[string]auth.APIKey),
	}
	s.mu.Unlock()
	return u, s.saveState()
}

func (s *Service) authConsumer(key auth.APIKey) (auth.User, *consumerEntry, error) {
	u, err := s.users.Authenticate(key)
	if err != nil {
		return auth.User{}, nil, err
	}
	s.mu.RLock()
	e := s.consumers[norm(u.Name)]
	s.mu.RUnlock()
	if e == nil {
		return auth.User{}, nil, fmt.Errorf("broker: consumer state missing for %s", u.Name)
	}
	return u, e, nil
}

// Directory lists registered contributors.
func (s *Service) Directory(key auth.APIKey) ([]ContributorInfo, error) {
	if _, _, err := s.authConsumer(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ContributorInfo, 0, len(s.contributors))
	for _, e := range s.contributors {
		out = append(out, ContributorInfo{Name: e.name, StoreAddr: e.storeAddr, RuleCount: len(e.rules)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Connect provisions (or returns the vaulted) API key for the consumer on
// the contributor's store, automating the per-store registration the paper
// describes in §5.4. The context's request ID and trace travel with the
// provisioning call to the store, so broker→store provisioning shows up
// as one subtree of the consumer's trace.
func (s *Service) Connect(ctx context.Context, key auth.APIKey, contributor string) (cred Credential, err error) {
	ctx, cspan, stopConnect := obs.Span(ctx, "broker.connect")
	cspan.SetAttr(trace.String("contributor", contributor))
	defer func() {
		cspan.SetAttr(trace.String("store", cred.StoreAddr))
		stopConnect(err)
	}()
	u, e, err := s.authConsumer(key)
	if err != nil {
		return Credential{}, err
	}
	s.mu.RLock()
	ce, ok := s.contributors[norm(contributor)]
	var conn StoreConn
	var addr string
	if ok {
		addr = ce.storeAddr
		conn = s.stores[addr]
	}
	if ok {
		if k, vaulted := e.keys[addr]; vaulted {
			s.mu.RUnlock()
			cspan.SetAttr(trace.Bool("vaulted", true))
			return Credential{StoreAddr: addr, Key: k}, nil
		}
	}
	s.mu.RUnlock()
	if !ok {
		return Credential{}, fmt.Errorf("%w: %s", ErrUnknownContributor, contributor)
	}
	if conn == nil && addr != "" {
		// Snapshot the dial hook and re-check the cache under the lock, but
		// run the dial itself unlocked: a slow or hung connect must not
		// stall every other broker operation behind mu.
		s.mu.RLock()
		dial := s.dial
		conn = s.stores[addr]
		s.mu.RUnlock()
		if conn == nil && dial != nil {
			if c := dial(addr); c != nil {
				s.mu.Lock()
				if cached := s.stores[addr]; cached != nil {
					conn = cached // lost the race; keep the first connection
				} else {
					s.stores[addr] = c
					conn = c
				}
				s.mu.Unlock()
			}
		}
	}
	if conn == nil {
		return Credential{}, fmt.Errorf("%w: %s", ErrUnknownStore, addr)
	}
	storeKey, err := conn.ProvisionConsumer(ctx, u.Name)
	if err != nil {
		metricProvisions.With("error").Inc()
		return Credential{}, fmt.Errorf("broker: provisioning %s on %s: %w", u.Name, addr, err)
	}
	metricProvisions.With("ok").Inc()
	cspan.SetAttr(trace.Bool("vaulted", false))
	s.mu.Lock()
	e.keys[addr] = storeKey
	s.mu.Unlock()
	if err := s.saveState(); err != nil {
		return Credential{}, err
	}
	return Credential{StoreAddr: addr, Key: storeKey}, nil
}

// Credentials returns every vaulted store credential for the consumer,
// sorted by address (the list consumer applications fetch at §5.4).
func (s *Service) Credentials(key auth.APIKey) ([]Credential, error) {
	_, e, err := s.authConsumer(key)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Credential, 0, len(e.keys))
	for addr, k := range e.keys {
		out = append(out, Credential{StoreAddr: addr, Key: k})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StoreAddr < out[j].StoreAddr })
	return out, nil
}

// SaveList stores a named contributor list in the consumer's account.
func (s *Service) SaveList(key auth.APIKey, listName string, members []string) error {
	_, e, err := s.authConsumer(key)
	if err != nil {
		return err
	}
	if norm(listName) == "" {
		return fmt.Errorf("broker: empty list name")
	}
	s.mu.Lock()
	e.lists[norm(listName)] = append([]string(nil), members...)
	s.mu.Unlock()
	return s.saveState()
}

// List retrieves a saved contributor list.
func (s *Service) List(key auth.APIKey, listName string) ([]string, error) {
	_, e, err := s.authConsumer(key)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := e.lists[norm(listName)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownList, listName)
	}
	return append([]string(nil), l...), nil
}

// CreateStudy declares a study/group name.
func (s *Service) CreateStudy(name string) error {
	if norm(name) == "" {
		return fmt.Errorf("broker: empty study name")
	}
	s.mu.Lock()
	if _, dup := s.studies[norm(name)]; !dup {
		s.studies[norm(name)] = make(map[string]bool)
	}
	s.mu.Unlock()
	return s.saveState()
}

// JoinStudy adds the consumer to a study; study membership feeds
// group-scoped rule evaluation during contributor search.
func (s *Service) JoinStudy(key auth.APIKey, study string) error {
	u, e, err := s.authConsumer(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	set, ok := s.studies[norm(study)]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownStudy, study)
	}
	if !set[norm(u.Name)] {
		set[norm(u.Name)] = true
		e.groups = append(e.groups, study)
	}
	s.mu.Unlock()
	return s.saveState()
}

// EnrollContributor adds a contributor to a study's cohort roster — the
// fixed participant list a federated cohort query can target with the
// study selector. The contributor need not be in the directory yet;
// resolution happens at query time.
func (s *Service) EnrollContributor(study, contributor string) error {
	if norm(contributor) == "" {
		return fmt.Errorf("broker: empty contributor name")
	}
	s.mu.Lock()
	if _, ok := s.studies[norm(study)]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownStudy, study)
	}
	roster, ok := s.rosters[norm(study)]
	if !ok {
		roster = make(map[string]string)
		s.rosters[norm(study)] = roster
	}
	roster[norm(contributor)] = contributor
	s.mu.Unlock()
	return s.saveState()
}

// StudyContributors lists a study's enrolled contributor cohort, sorted.
func (s *Service) StudyContributors(study string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.studies[norm(study)]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownStudy, study)
	}
	out := make([]string, 0, len(s.rosters[norm(study)]))
	for _, name := range s.rosters[norm(study)] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// StudyMembers lists a study's consumers, sorted.
func (s *Service) StudyMembers(study string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, ok := s.studies[norm(study)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownStudy, study)
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// ContributorCount reports directory size.
func (s *Service) ContributorCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.contributors)
}

// now is a test seam for search probe timing.
var now = time.Now
