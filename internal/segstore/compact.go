package segstore

import (
	"container/heap"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// Compaction: the background process that keeps the file set tiered and
// small. One round picks the accumulated L0 files (plus any L1 files
// overlapping their time range, so a record's neighbors end up adjacent)
// or, absent L0 pressure, files holding tombstoned records; k-way-merges
// their contributor runs in (start, id) order; runs the paper's
// wave-segment merge (§5.1, E2) continuously on adjacent same-stream
// records; physically drops tombstoned records; and rolls the merged
// stream into L1 files capped at TargetFileBytes. The new manifest
// generation is the commit point — a crash at any earlier moment leaves
// the previous generation intact, and the orphaned half-written outputs
// are removed at the next open.

// compactOnce runs one compaction round. force bypasses the L0/tombstone
// thresholds (the manual Compact entry point).
func (s *Store) compactOnce(force bool) error {
	s.maintenanceMu.Lock()
	defer s.maintenanceMu.Unlock()
	//sslint:ignore ctxpropagate background maintenance is a call-tree root with no request context
	_, span, stop := obs.Span(context.Background(), "segstore.compact")
	//sslint:ignore lockorder maintenanceMu is a single-op latch, not a data guard: it serializes whole maintenance rounds by design, and the receive is from the iterator's own prefetch goroutine
	merged, reclaimed, err := s.compactRound(force)
	span.SetAttr(trace.Int("merged", merged), trace.Int("reclaimed", reclaimed))
	stop(err)
	return err
}

// compactRound does the work; callers hold maintenanceMu.
func (s *Store) compactRound(force bool) (mergedAway, reclaimed int, err error) {
	started := time.Now()

	// Pick inputs under the lock and retain their readers.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, 0, storage.ErrClosed
	}
	var l0, inputs, others []fileMeta
	for _, fm := range s.man.Files {
		if fm.Level == 0 {
			l0 = append(l0, fm)
		}
	}
	tombSet := make(map[storage.ID]bool, len(s.tombstones))
	for id := range s.tombstones {
		tombSet[id] = true
	}
	coversTombstone := func(fm fileMeta) bool {
		for id := range tombSet {
			if uint64(id) >= fm.MinID && uint64(id) <= fm.MaxID {
				return true
			}
		}
		return false
	}
	pick := make(map[string]bool)
	if len(l0) >= s.opts.L0CompactThreshold || (force && len(l0) > 0) {
		lo, hi := l0[0].MinTime, l0[0].MaxTime
		for _, fm := range l0 {
			pick[fm.Name] = true
			if fm.MinTime < lo {
				lo = fm.MinTime
			}
			if fm.MaxTime > hi {
				hi = fm.MaxTime
			}
		}
		for _, fm := range s.man.Files {
			if fm.Level != 0 && fm.MinTime < hi && fm.MaxTime > lo {
				pick[fm.Name] = true
			}
		}
	}
	// Tombstone-only rounds reclaim deletes even without L0 pressure.
	for _, fm := range s.man.Files {
		if !pick[fm.Name] && coversTombstone(fm) {
			pick[fm.Name] = true
		}
	}
	for _, fm := range s.man.Files {
		if pick[fm.Name] {
			inputs = append(inputs, fm)
		} else {
			others = append(others, fm)
		}
	}
	// A single L1 file with nothing to reclaim would be rewritten
	// verbatim; skip.
	if len(inputs) == 0 || (len(inputs) == 1 && inputs[0].Level == 1 && !coversTombstone(inputs[0])) {
		s.mu.RUnlock()
		return 0, 0, nil
	}
	var readers []*segReader
	for _, fm := range inputs {
		if r, ok := s.readers[fm.Name]; ok {
			r.retain()
			readers = append(readers, r)
		}
	}
	fileSeq := s.man.NextFile
	s.mu.RUnlock()
	defer releaseAll(readers)

	if err := s.hook("compact.begin"); err != nil {
		return 0, 0, err
	}

	// Merge every contributor run across the inputs in (start, id)
	// order; adjacent same-stream records flow through the wave-segment
	// optimizer; tombstoned records are dropped.
	h := make(mergeHeap, 0, len(readers)*2)
	for _, r := range readers {
		for c := range r.byContrib {
			it := newDiskIter(r, c, time.Time{}, time.Time{})
			rc, ok, err := it.next()
			if err != nil {
				return 0, 0, err
			}
			if ok {
				h = append(h, mergeHead{it: it, r: rc})
			}
		}
	}
	heap.Init(&h)

	var (
		outputs []fileMeta
		writer  *segWriter
		pending = make(map[string]rec) // per-contributor wave-merge buffer
		dropped []storage.ID
	)
	abortAll := func() {
		if writer != nil {
			writer.abort()
		}
		for _, m := range outputs {
			_ = os.Remove(filepath.Join(s.dir, m.Name))
		}
	}
	emit := func(rc rec) error {
		if writer == nil {
			fileSeq++
			var werr error
			writer, werr = newSegWriter(s.dir, fmt.Sprintf("seg-%08d.seg", fileSeq), 1)
			if werr != nil {
				return werr
			}
		}
		if err := writer.add(rc); err != nil {
			return err
		}
		if int64(writer.off) >= s.opts.TargetFileBytes {
			meta, err := writer.finish()
			writer = nil
			if err != nil {
				return err
			}
			outputs = append(outputs, meta)
		}
		return nil
	}
	for h.Len() > 0 {
		head := h[0]
		rc := head.r
		nr, ok, err := head.it.next()
		if err != nil {
			abortAll()
			return 0, 0, err
		}
		if ok {
			h[0] = mergeHead{it: head.it, r: nr}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if tombSet[rc.id] {
			dropped = append(dropped, rc.id)
			continue
		}
		c := rc.seg.Contributor
		cur, ok2 := pending[c]
		if !ok2 {
			pending[c] = rc
			continue
		}
		if wavesegment.CanMerge(cur.seg, rc.seg) &&
			cur.seg.NumSamples()+rc.seg.NumSamples() <= s.opts.MaxSegmentSamples {
			if joined, err := wavesegment.Merge(cur.seg, rc.seg); err == nil {
				// The merged record keeps the earlier record's ID.
				pending[c] = rec{id: cur.id, seg: joined}
				mergedAway++
				continue
			}
		}
		if err := emit(cur); err != nil {
			abortAll()
			return 0, 0, err
		}
		pending[c] = rc
	}
	// Flush the per-contributor tails. mergeSorted keeps the output
	// deterministic (and per-contributor order correct if several tails
	// share a contributor — they cannot, but cheap insurance).
	var tails []rec
	for _, rc := range pending {
		tails = append(tails, rc)
	}
	for _, rc := range mergeSorted([][]rec{tails}) {
		if err := emit(rc); err != nil {
			abortAll()
			return 0, 0, err
		}
	}
	if writer != nil {
		meta, err := writer.finish()
		writer = nil
		if err != nil {
			abortAll()
			return 0, 0, err
		}
		outputs = append(outputs, meta)
	}
	if err := s.hook("compact.files"); err != nil {
		abortAll()
		return 0, 0, err
	}

	// Commit: the next manifest generation swaps inputs for outputs and
	// forgets reclaimed tombstones.
	droppedSet := make(map[storage.ID]bool, len(dropped))
	for _, id := range dropped {
		droppedSet[id] = true
	}
	s.mu.Lock()
	next := *s.man
	next.Files = append(append([]fileMeta(nil), others...), outputs...)
	next.NextFile = fileSeq
	next.NextID = uint64(s.nextID)
	next.Tombstones = nil
	for id := range s.tombstones {
		if !droppedSet[id] {
			next.Tombstones = append(next.Tombstones, uint64(id))
		}
	}
	s.mu.Unlock()
	if err := saveManifest(s.dir, &next); err != nil {
		abortAll()
		return 0, 0, err
	}
	if err := s.hook("compact.manifest"); err != nil {
		return 0, 0, err
	}

	// Swap in the committed state, then unlink the inputs. Readers
	// retained by in-flight scans keep their descriptors; the data
	// stays readable until the last release.
	outReaders := make([]*segReader, 0, len(outputs))
	for _, m := range outputs {
		r, err := openSegReader(s.dir, m)
		if err != nil {
			return 0, 0, fmt.Errorf("segstore: reopen compacted file: %w", err)
		}
		outReaders = append(outReaders, r)
	}
	var obsolete []*segReader
	s.mu.Lock()
	s.man = &next
	for _, fm := range inputs {
		if r, ok := s.readers[fm.Name]; ok {
			delete(s.readers, fm.Name)
			obsolete = append(obsolete, r)
		}
	}
	for _, r := range outReaders {
		s.readers[r.meta.Name] = r
	}
	for id := range droppedSet {
		delete(s.tombstones, id)
	}
	s.liveCount -= mergedAway
	s.publishGauges()
	s.mu.Unlock()
	for _, r := range obsolete {
		r.markObsolete()
		_ = os.Remove(filepath.Join(s.dir, r.meta.Name))
	}
	syncDir(s.dir)
	if err := s.hook("compact.done"); err != nil {
		return 0, 0, err
	}

	reclaimed = len(dropped)
	metricCompactions.Inc()
	metricMerged.Add(float64(mergedAway))
	metricReclaimed.Add(float64(reclaimed))
	s.statsMu.Lock()
	s.compactions++
	s.mergedRecords += uint64(mergedAway)
	s.reclaimed += uint64(reclaimed)
	s.lastCompaction = time.Now()
	s.lastCompactDur = time.Since(started)
	s.statsMu.Unlock()
	return mergedAway, reclaimed, nil
}
