package wavesegment

import (
	"errors"
	"math"
	"testing"
	"time"

	"sensorsafe/internal/geo"
)

var (
	t0   = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	ucla = geo.Point{Lat: 34.0689, Lon: -118.4452}
)

// uniformSegment builds an n-sample uniform segment at 10 Hz whose values
// encode their own (row, col) position for easy checking.
func uniformSegment(start time.Time, n int, channels ...string) *Segment {
	if len(channels) == 0 {
		channels = []string{ChannelECG, ChannelRespiration}
	}
	s := &Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    ucla,
		Channels:    channels,
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(channels))
		for j := range row {
			row[j] = float64(i*10 + j)
		}
		s.Values = append(s.Values, row)
	}
	return s
}

func timestampedSegment(start time.Time, gaps ...time.Duration) *Segment {
	s := &Segment{
		Contributor: "alice",
		Location:    ucla,
		Channels:    []string{ChannelMicrophone},
	}
	at := start
	for i, g := range gaps {
		at = at.Add(g)
		s.Timestamps = append(s.Timestamps, at)
		s.Values = append(s.Values, []float64{float64(i)})
	}
	s.Start = s.Timestamps[0]
	return s
}

func TestValidate(t *testing.T) {
	good := uniformSegment(t0, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Segment)
		want   error
	}{
		{"no channels", func(s *Segment) { s.Channels = nil }, ErrNoChannels},
		{"no samples", func(s *Segment) { s.Values = nil }, ErrNoSamples},
		{"ragged row", func(s *Segment) { s.Values[2] = []float64{1} }, ErrRaggedRow},
		{"zero start", func(s *Segment) { s.Start = time.Time{} }, ErrZeroStart},
		{"no timebase", func(s *Segment) { s.Interval = 0 }, ErrNoTimebase},
	}
	for _, tc := range cases {
		s := uniformSegment(t0, 5)
		tc.mutate(s)
		err := s.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
	}

	dup := uniformSegment(t0, 3, ChannelECG, ChannelECG)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate channel names should be rejected")
	}
	empty := uniformSegment(t0, 3, "")
	if err := empty.Validate(); err == nil {
		t.Error("empty channel name should be rejected")
	}

	ts := timestampedSegment(t0, 0, time.Second, time.Second)
	if err := ts.Validate(); err != nil {
		t.Fatalf("timestamped segment rejected: %v", err)
	}
	ts.Timestamps[2] = ts.Timestamps[0].Add(-time.Hour)
	if err := ts.Validate(); !errors.Is(err, ErrUnsorted) {
		t.Errorf("unsorted timestamps: got %v", err)
	}

	both := uniformSegment(t0, 3)
	both.Timestamps = []time.Time{t0, t0, t0}
	if err := both.Validate(); err == nil {
		t.Error("segment with both interval and timestamps should be rejected")
	}

	badAnn := uniformSegment(t0, 3)
	badAnn.Annotations = []Annotation{{Context: "Drive", Start: t0, End: t0}}
	if err := badAnn.Validate(); err == nil {
		t.Error("empty annotation span should be rejected")
	}
}

func TestTimesAndSamples(t *testing.T) {
	s := uniformSegment(t0, 10)
	if s.NumSamples() != 10 {
		t.Fatalf("NumSamples = %d", s.NumSamples())
	}
	if !s.StartTime().Equal(t0) {
		t.Errorf("StartTime = %v", s.StartTime())
	}
	if want := t0.Add(time.Second); !s.EndTime().Equal(want) {
		t.Errorf("EndTime = %v, want %v", s.EndTime(), want)
	}
	if want := t0.Add(300 * time.Millisecond); !s.SampleTime(3).Equal(want) {
		t.Errorf("SampleTime(3) = %v", s.SampleTime(3))
	}
	if s.Duration() != time.Second {
		t.Errorf("Duration = %v", s.Duration())
	}

	ts := timestampedSegment(t0, 0, 2*time.Second, 3*time.Second)
	if !ts.StartTime().Equal(t0) {
		t.Errorf("timestamped StartTime = %v", ts.StartTime())
	}
	if want := t0.Add(5*time.Second + time.Nanosecond); !ts.EndTime().Equal(want) {
		t.Errorf("timestamped EndTime = %v, want %v", ts.EndTime(), want)
	}
}

func TestChannelAccess(t *testing.T) {
	s := uniformSegment(t0, 4)
	if s.ChannelIndex(ChannelRespiration) != 1 || s.ChannelIndex("nope") != -1 {
		t.Error("ChannelIndex wrong")
	}
	if !s.HasChannel(ChannelECG) || s.HasChannel("nope") {
		t.Error("HasChannel wrong")
	}
	col, ok := s.Column(ChannelRespiration)
	if !ok || len(col) != 4 || col[2] != 21 {
		t.Errorf("Column = %v, %v", col, ok)
	}
	if _, ok := s.Column("nope"); ok {
		t.Error("Column of missing channel should miss")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := uniformSegment(t0, 3)
	s.Annotations = []Annotation{{Context: "Walk", Start: t0, End: t0.Add(time.Second)}}
	c := s.Clone()
	c.Values[0][0] = 999
	c.Channels[0] = "Mutated"
	c.Annotations[0].Context = "Run"
	if s.Values[0][0] == 999 || s.Channels[0] == "Mutated" || s.Annotations[0].Context == "Run" {
		t.Error("Clone shares memory with original")
	}
}

func TestProjectAndDrop(t *testing.T) {
	s := uniformSegment(t0, 3, ChannelECG, ChannelRespiration, ChannelSkinTemp)
	p := s.Project([]string{ChannelSkinTemp, ChannelECG})
	if p == nil || len(p.Channels) != 2 || p.Channels[0] != ChannelSkinTemp || p.Channels[1] != ChannelECG {
		t.Fatalf("Project = %v", p)
	}
	if p.Values[1][0] != 12 || p.Values[1][1] != 10 {
		t.Errorf("projected values wrong: %v", p.Values)
	}
	if got := s.Project([]string{"nope"}); got != nil {
		t.Error("projecting absent channels should return nil")
	}
	// Requesting a mix keeps only present ones.
	p = s.Project([]string{"nope", ChannelECG})
	if p == nil || len(p.Channels) != 1 {
		t.Fatalf("mixed Project = %v", p)
	}

	d := s.DropChannels([]string{ChannelRespiration})
	if d == nil || len(d.Channels) != 2 || d.HasChannel(ChannelRespiration) {
		t.Fatalf("DropChannels = %v", d)
	}
	if all := s.DropChannels(s.Channels); all != nil {
		t.Error("dropping every channel should return nil")
	}
	same := s.DropChannels([]string{"nope"})
	if same == nil || len(same.Channels) != 3 {
		t.Error("dropping absent channel should be a clone")
	}
}

func TestSliceUniform(t *testing.T) {
	s := uniformSegment(t0, 10) // samples at t0 + 0..900ms
	got := s.Slice(t0.Add(250*time.Millisecond), t0.Add(650*time.Millisecond))
	if got == nil {
		t.Fatal("slice empty")
	}
	// Samples at 300, 400, 500, 600 ms.
	if got.NumSamples() != 4 {
		t.Fatalf("slice has %d samples, want 4", got.NumSamples())
	}
	if !got.StartTime().Equal(t0.Add(300 * time.Millisecond)) {
		t.Errorf("slice StartTime = %v", got.StartTime())
	}
	if got.Values[0][0] != 30 {
		t.Errorf("first sliced value = %v", got.Values[0][0])
	}

	if s.Slice(t0.Add(time.Hour), time.Time{}) != nil {
		t.Error("slice past end should be nil")
	}
	if s.Slice(time.Time{}, t0) != nil {
		t.Error("slice before start should be nil")
	}
	full := s.Slice(time.Time{}, time.Time{})
	if full.NumSamples() != 10 {
		t.Errorf("unbounded slice = %d samples", full.NumSamples())
	}
	// Exact sample boundary: from inclusive, to exclusive.
	b := s.Slice(t0.Add(200*time.Millisecond), t0.Add(400*time.Millisecond))
	if b.NumSamples() != 2 || b.Values[0][0] != 20 {
		t.Errorf("boundary slice = %v", b.Values)
	}
}

func TestSliceTimestamped(t *testing.T) {
	s := timestampedSegment(t0, 0, time.Second, time.Second, 5*time.Second) // t0, +1s, +2s, +7s
	got := s.Slice(t0.Add(time.Second), t0.Add(3*time.Second))
	if got == nil || got.NumSamples() != 2 {
		t.Fatalf("slice = %v", got)
	}
	if !got.Timestamps[0].Equal(t0.Add(time.Second)) {
		t.Errorf("slice timestamps = %v", got.Timestamps)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("sliced timestamped segment invalid: %v", err)
	}
}

func TestSliceClipsAnnotations(t *testing.T) {
	s := uniformSegment(t0, 10)
	if err := s.Annotate("Drive", t0, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Annotate("Stress", t0.Add(800*time.Millisecond), t0.Add(900*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	got := s.Slice(t0.Add(200*time.Millisecond), t0.Add(500*time.Millisecond))
	if len(got.Annotations) != 1 {
		t.Fatalf("annotations = %v", got.Annotations)
	}
	a := got.Annotations[0]
	if a.Context != "Drive" || !a.Start.Equal(got.StartTime()) || !a.End.Equal(got.EndTime()) {
		t.Errorf("clipped annotation = %+v (segment %v..%v)", a, got.StartTime(), got.EndTime())
	}
}

func TestAnnotations(t *testing.T) {
	s := uniformSegment(t0, 10)
	if err := s.Annotate("", t0, t0.Add(time.Second)); err == nil {
		t.Error("empty context should be rejected")
	}
	if err := s.Annotate("Walk", t0.Add(time.Second), t0); err == nil {
		t.Error("inverted span should be rejected")
	}
	must := func(ctx string, from, to time.Time) {
		t.Helper()
		if err := s.Annotate(ctx, from, to); err != nil {
			t.Fatal(err)
		}
	}
	must("Stress", t0.Add(500*time.Millisecond), t0.Add(900*time.Millisecond))
	must("Drive", t0, t0.Add(time.Second))

	if s.Annotations[0].Context != "Drive" {
		t.Error("annotations should be sorted by start")
	}
	at := s.ContextsAt(t0.Add(600 * time.Millisecond))
	if len(at) != 2 {
		t.Errorf("ContextsAt = %v", at)
	}
	at = s.ContextsAt(t0.Add(100 * time.Millisecond))
	if len(at) != 1 || at[0] != "Drive" {
		t.Errorf("ContextsAt = %v", at)
	}
	over := s.ContextsOverlapping(t0.Add(450*time.Millisecond), t0.Add(550*time.Millisecond))
	if len(over) != 2 {
		t.Errorf("ContextsOverlapping = %v", over)
	}
	if !s.HasContext("Stress") || s.HasContext("Smoke") {
		t.Error("HasContext wrong")
	}
}

func TestCanMergeAndMerge(t *testing.T) {
	a := uniformSegment(t0, 10)
	b := uniformSegment(t0.Add(time.Second), 10)
	if !CanMerge(a, b) {
		t.Fatal("consecutive segments should merge")
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSamples() != 20 {
		t.Errorf("merged samples = %d", m.NumSamples())
	}
	if !m.EndTime().Equal(t0.Add(2 * time.Second)) {
		t.Errorf("merged EndTime = %v", m.EndTime())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged segment invalid: %v", err)
	}

	// Small clock jitter within half an interval is tolerated.
	c := uniformSegment(t0.Add(time.Second+30*time.Millisecond), 5)
	if !CanMerge(a, c) {
		t.Error("jitter within tolerance should merge")
	}
	// A real gap does not merge.
	d := uniformSegment(t0.Add(2*time.Second), 5)
	if CanMerge(a, d) {
		t.Error("gap of a full second should not merge")
	}

	cases := []struct {
		name   string
		mutate func(*Segment)
	}{
		{"different channels", func(s *Segment) { s.Channels = []string{ChannelECG, ChannelSkinTemp} }},
		{"different location", func(s *Segment) { s.Location.Lat += 1 }},
		{"different interval", func(s *Segment) { s.Interval *= 2 }},
		{"different contributor", func(s *Segment) { s.Contributor = "bob" }},
	}
	for _, tc := range cases {
		b2 := uniformSegment(t0.Add(time.Second), 10)
		tc.mutate(b2)
		if CanMerge(a, b2) {
			t.Errorf("%s: should not merge", tc.name)
		}
		if _, err := Merge(a, b2); err == nil {
			t.Errorf("%s: Merge should fail", tc.name)
		}
	}
	if CanMerge(nil, a) || CanMerge(a, nil) {
		t.Error("nil segments should not merge")
	}
}

func TestMergeTimestamped(t *testing.T) {
	a := timestampedSegment(t0, 0, time.Second)
	b := timestampedSegment(t0.Add(5*time.Second), 0, time.Second)
	if !CanMerge(a, b) {
		t.Fatal("later timestamped segment should merge")
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSamples() != 4 || len(m.Timestamps) != 4 {
		t.Fatalf("merged = %v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged timestamped segment invalid: %v", err)
	}
	// Out-of-order timestamped segments must not merge.
	if CanMerge(b, a) {
		t.Error("earlier segment should not merge after later one")
	}
}

func TestMergeKeepsAnnotationsSorted(t *testing.T) {
	a := uniformSegment(t0, 10)
	_ = a.Annotate("Walk", t0.Add(500*time.Millisecond), t0.Add(time.Second))
	b := uniformSegment(t0.Add(time.Second), 10)
	_ = b.Annotate("Run", t0.Add(time.Second), t0.Add(2*time.Second))
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Annotations) != 2 || m.Annotations[0].Context != "Walk" {
		t.Errorf("merged annotations = %v", m.Annotations)
	}
}

func TestOptimizer(t *testing.T) {
	o := NewOptimizer(64)
	var done []*Segment
	// 16-sample packets, 10 Hz: each spans 1.6 s.
	for i := 0; i < 8; i++ {
		segs, err := o.Add(uniformSegment(t0.Add(time.Duration(i)*1600*time.Millisecond), 16))
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, segs...)
	}
	done = append(done, o.Flush()...)
	if len(done) != 2 {
		t.Fatalf("optimizer produced %d segments, want 2", len(done))
	}
	for _, s := range done {
		if s.NumSamples() != 64 {
			t.Errorf("segment has %d samples, want 64", s.NumSamples())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("optimized segment invalid: %v", err)
		}
	}
	if o.Flush() != nil {
		t.Error("second Flush should be empty")
	}
}

func TestOptimizerBreaksOnGap(t *testing.T) {
	o := NewOptimizer(0)
	if _, err := o.Add(uniformSegment(t0, 16)); err != nil {
		t.Fatal(err)
	}
	done, err := o.Add(uniformSegment(t0.Add(time.Hour), 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0].NumSamples() != 16 {
		t.Fatalf("gap should flush pending: %v", done)
	}
	rest := o.Flush()
	if len(rest) != 1 || !rest[0].StartTime().Equal(t0.Add(time.Hour)) {
		t.Fatalf("Flush = %v", rest)
	}
}

func TestOptimizerRejectsInvalid(t *testing.T) {
	o := NewOptimizer(0)
	if _, err := o.Add(&Segment{}); err == nil {
		t.Error("invalid segment should be rejected")
	}
	if _, err := o.Add(nil); err == nil {
		t.Error("nil segment should be rejected")
	}
}

func TestOptimizeAll(t *testing.T) {
	var segs []*Segment
	for i := 0; i < 100; i++ {
		segs = append(segs, uniformSegment(t0.Add(time.Duration(i*64)*100*time.Millisecond), 64))
	}
	out, err := OptimizeAll(segs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 100 packets * 64 = 6400 samples; cap 1000 but merging only up to cap:
	// 15 packets * 64 = 960 fits, 16th would exceed -> segments of 960.
	total := 0
	for _, s := range out {
		total += s.NumSamples()
		if s.NumSamples() > 1000 {
			t.Errorf("segment exceeds cap: %d", s.NumSamples())
		}
	}
	if total != 6400 {
		t.Errorf("samples lost: %d/6400", total)
	}
	if len(out) >= 100 {
		t.Errorf("no compaction happened: %d records", len(out))
	}
}

func TestSplit(t *testing.T) {
	s := uniformSegment(t0, 100)
	parts := Split(s, 30)
	if len(parts) != 4 {
		t.Fatalf("Split produced %d parts", len(parts))
	}
	total := 0
	for i, p := range parts {
		total += p.NumSamples()
		if err := p.Validate(); err != nil {
			t.Errorf("part %d invalid: %v", i, err)
		}
	}
	if total != 100 {
		t.Errorf("samples lost in split: %d", total)
	}
	if parts[3].NumSamples() != 10 {
		t.Errorf("last part = %d samples", parts[3].NumSamples())
	}
	if !parts[1].StartTime().Equal(t0.Add(3 * time.Second)) {
		t.Errorf("part 1 start = %v", parts[1].StartTime())
	}
	whole := Split(s, 1000)
	if len(whole) != 1 || whole[0] != s {
		t.Error("Split under cap should return original")
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	s := uniformSegment(t0, 256)
	parts := Split(s, 64)
	merged, err := OptimizeAll(parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("round trip produced %d segments", len(merged))
	}
	m := merged[0]
	if m.NumSamples() != 256 || !m.StartTime().Equal(s.StartTime()) || !m.EndTime().Equal(s.EndTime()) {
		t.Errorf("round trip mismatch: %v vs %v", m, s)
	}
	for i := range s.Values {
		for j := range s.Values[i] {
			if math.Abs(s.Values[i][j]-m.Values[i][j]) > 0 {
				t.Fatalf("value (%d,%d) mismatch", i, j)
			}
		}
	}
}
