// Command benchharness regenerates every experiment table in DESIGN.md §4
// and EXPERIMENTS.md: the Table 1 feature matrix (E1), wave-segment
// optimization (E2), the broker data-path comparison (E3), rule-evaluation
// overhead (E4), contributor-search scaling (E5), and privacy-rule-aware
// collection savings (E6), live-sharing fan-out (E9), upload resilience
// under injected network faults (E10), and federated cohort-query
// scatter-gather vs the sequential consumer loop (E11). E7 (Fig. 4 JSON
// round trip) and E8 (dependency closure) are correctness properties
// covered by the test suite; the harness re-runs their core assertions and
// reports PASS/FAIL. E12 benchmarks the persistent columnar segment store
// (cold-restart time, scan throughput vs the in-memory engine, and
// kill-during-compaction chaos) and writes BENCH_7.json. E13 benchmarks
// overload protection (goodput and p99 at 1x/2x/5x capacity with admission
// control on vs off, plus the circuit breaker's retry-storm bound) and
// writes BENCH_8.json. E14 benchmarks the compiled rule index (decision
// latency at 1..10k rules, indexed vs linear, cold vs warm cache, plus the
// enforcement and federated fan-out kernels) and writes BENCH_9.json.
//
// Usage:
//
//	benchharness            # all experiments, default sizes
//	benchharness -quick     # smaller sweeps (CI-sized)
//	benchharness -only E2,E4
//	benchharness -metrics   # dump the Prometheus metric state after each run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sensorsafe/internal/experiments"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/rules"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller sweeps")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E4)")
	metrics := flag.Bool("metrics", false, "print the accumulated obs metrics after each experiment")
	bench6Out := flag.String("bench6-out", "BENCH_6.json", "where BENCH6 writes its machine-readable tracing-overhead result")
	e12Out := flag.String("e12-out", "BENCH_7.json", "where E12 writes its machine-readable storage-engine result")
	e13Out := flag.String("e13-out", "BENCH_8.json", "where E13 writes its machine-readable overload-protection result")
	e14Out := flag.String("e14-out", "BENCH_9.json", "where E14 writes its machine-readable rule-index result")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	type experiment struct {
		id  string
		run func() (*experiments.Table, error)
	}
	exps := []experiment{
		{"E1", experiments.RunE1},
		{"E2", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE2()
			if *quick {
				cfg.Hours = 0.25
				cfg.QueryWindows = 10
			}
			return experiments.RunE2(cfg)
		}},
		{"E3", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE3()
			if *quick {
				cfg.Stores = 5
				cfg.MinutesPerStore = 2
				cfg.Rounds = 1
			}
			return experiments.RunE3(cfg)
		}},
		{"E4", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE4()
			if *quick {
				cfg.RuleCounts = []int{1, 10, 100}
				cfg.Evaluations = 200
			}
			return experiments.RunE4(cfg)
		}},
		{"E5", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE5()
			if *quick {
				cfg.ContributorCounts = []int{10, 100}
				cfg.Searches = 5
			}
			return experiments.RunE5(cfg)
		}},
		{"E6", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE6()
			if *quick {
				cfg.PhaseMinutes = 0.5
			}
			return experiments.RunE6(cfg)
		}},
		{"E7", runE7},
		{"E8", runE8},
		{"E9", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE9()
			if *quick {
				cfg.SubscriberCounts = []int{1, 10}
				cfg.Segments = 20
			}
			return experiments.RunE9(cfg)
		}},
		{"E10", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE10()
			if *quick {
				cfg.FailRates = []float64{0, 0.3}
				cfg.Minutes = 2
			}
			return experiments.RunE10(cfg)
		}},
		{"E11", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE11()
			if *quick {
				cfg.StoreCounts = []int{1, 10}
				cfg.Rounds = 1
			}
			return experiments.RunE11(cfg)
		}},
		{"E12", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE12()
			if *quick {
				cfg.Records = 20_000
				cfg.ChaosRecords = 600
			}
			res, table, err := experiments.RunE12(cfg)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := resilience.WriteFileAtomic(*e12Out, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s (restart %.0fms, scan ratio %.2fx, chaos %d/%d)\n\n",
				*e12Out, res.RestartSegstMS, res.ScanRatio, res.ChaosSurvived, res.ChaosKills)
			return table, nil
		}},
		{"E13", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE13()
			if *quick {
				cfg.Workers = 4
				cfg.Service = 2 * time.Millisecond
				cfg.Window = 400 * time.Millisecond
				cfg.Drain = time.Second
			}
			res, table, err := experiments.RunE13(cfg)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := resilience.WriteFileAtomic(*e13Out, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s (goodput@%gx %.0f%% of peak, breaker %d vs %d attempts)\n\n",
				*e13Out, cfg.Multipliers[len(cfg.Multipliers)-1], 100*res.GoodputTopFrac,
				res.BreakerAttempts, res.BaselineAtts)
			return table, nil
		}},
		{"E14", func() (*experiments.Table, error) {
			cfg := experiments.DefaultE14()
			if *quick {
				cfg.RuleCounts = []int{1, 100, 1000}
				cfg.Evaluations = 400
				cfg.Contributors = 10
				cfg.Searches = 5
			}
			res, table, err := experiments.RunE14(cfg)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := resilience.WriteFileAtomic(*e14Out, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s (warm speedup %.1fx at %d rules, enforce %.1fx, fan-out %.1fx)\n\n",
				*e14Out, res.SpeedupAtMax, cfg.RuleCounts[len(cfg.RuleCounts)-1],
				res.EnforceSpeedup, res.FanoutSpeedup)
			return table, nil
		}},
		{"BENCH6", func() (*experiments.Table, error) {
			// No -quick shrink: the full configuration runs in about a
			// second, and shorter rounds are too jittery on shared CI
			// runners to resolve a <5% overhead target.
			cfg := experiments.DefaultBench6()
			res, table, err := experiments.RunBench6(cfg)
			if err != nil {
				return nil, err
			}
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := resilience.WriteFileAtomic(*bench6Out, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s (overhead %.2f%%, target < %.0f%%)\n\n", *bench6Out, res.OverheadPct, res.TargetPct)
			return table, nil
		}},
	}

	failed := false
	for _, e := range exps {
		if !want(e.id) {
			continue
		}
		table, err := e.run()
		if err != nil {
			log.Printf("%s failed: %v", e.id, err)
			failed = true
			continue
		}
		fmt.Println(table)
		for _, row := range table.Rows {
			for _, cell := range row {
				if strings.HasPrefix(cell, "FAIL") {
					failed = true
				}
			}
		}
		if *metrics {
			// The registry is cumulative across experiments; the dump after
			// the last table is the whole run's metric state.
			fmt.Printf("```text (obs metrics after %s)\n", e.id)
			if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
				log.Printf("metrics dump failed: %v", err)
			}
			fmt.Println("```")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runE7 re-checks the Fig. 4 JSON round trip (full coverage in the rules
// package tests).
func runE7() (*experiments.Table, error) {
	const fig4 = `[
	  { "Consumer": ["Bob"], "LocationLabel": ["UCLA"], "Action": "Allow" },
	  { "Consumer": ["Bob"], "LocationLabel": ["UCLA"],
	    "RepeatTime": { "Day": ["Mon","Tue","Wed","Thu","Fri"], "HourMin": ["9:00am","6:00pm"]},
	    "Context": ["Conversation"],
	    "Action": { "Abstraction": { "Stress": "NotShared" } } }
	]`
	t := &experiments.Table{
		ID: "E7", Caption: "Fig. 4 privacy-rule JSON round trip",
		Headers: []string{"check", "verdict"},
	}
	verdict := "PASS"
	rs, err := rules.UnmarshalRuleSet([]byte(fig4))
	if err != nil {
		verdict = "FAIL: " + err.Error()
	} else {
		data, err := rules.MarshalRuleSet(rs)
		if err == nil {
			back, err2 := rules.UnmarshalRuleSet(data)
			err = err2
			if err == nil && (len(back) != 2 ||
				back[1].Action.Abstraction.Contexts[rules.CategoryStress] != rules.LevelNotShared) {
				verdict = "FAIL: round trip lost the stress abstraction"
			}
		}
		if err != nil {
			verdict = "FAIL: " + err.Error()
		}
	}
	t.AddRow("parse -> marshal -> parse preserves Fig. 4 semantics", verdict)
	return t, nil
}

// runE8 re-checks the paper's dependency-closure example (full coverage in
// the rules package tests).
func runE8() (*experiments.Table, error) {
	t := &experiments.Table{
		ID: "E8", Caption: "sensor/context dependency closure (paper §5.1 example)",
		Headers: []string{"check", "verdict"},
		Notes:   []string{"\"if the smoking context is not shared, respiration sensor data will not be shared even though stress and conversation are shared in raw data form\""},
	}
	rs, err := rules.UnmarshalRuleSet([]byte(`[
	  {"Action":"Allow"},
	  {"Action":{"Abstraction":{"Smoking":"NotShared"}}}
	]`))
	if err != nil {
		return nil, err
	}
	e, err := rules.NewEngine(rs, nil)
	if err != nil {
		return nil, err
	}
	d := e.Decide(experiments.E4Request())
	verdict := "PASS"
	switch {
	case d.ChannelShared("Respiration"):
		verdict = "FAIL: respiration raw leaked"
	case !d.ChannelShared("ECG") || !d.ChannelShared("Microphone"):
		verdict = "FAIL: unrelated channels over-blocked"
	case d.ContextLevel(rules.CategoryStress) != rules.LevelRaw:
		verdict = "FAIL: stress should stay raw"
	case d.ContextLevel(rules.CategorySmoking) != rules.LevelNotShared:
		verdict = "FAIL: smoking not hidden"
	}
	t.AddRow("smoking NotShared blocks raw respiration only", verdict)
	return t, nil
}
