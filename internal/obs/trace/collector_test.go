package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// endSpan records one synthetic completed span under a chosen trace ID
// (installed as a remote parent so Start joins it).
func endSpan(c *Collector, traceID, name string, fail bool, d time.Duration) {
	ctx := WithCollector(context.Background(), c)
	ctx = WithRemoteParent(ctx, "00-"+traceID+"-00000000000000ab-01")
	_, sp := Start(ctx, name)
	if fail {
		sp.SetError(errors.New("induced"))
	}
	// Backdate the start so the recorded duration is deterministic-ish:
	// only the >= slow comparison matters, and d is either 0 or huge.
	sp.start = sp.start.Add(-d)
	sp.End()
}

func id32(i int) string { return fmt.Sprintf("%032x", i+1) }

// TestEvictionPolicyTable is the sampling/eviction unit table: boring
// traces are evicted oldest-first, while slow or errored traces are
// always sampled until only interesting traces remain.
func TestEvictionPolicyTable(t *testing.T) {
	const slow = 100 * time.Millisecond
	cases := []struct {
		name string
		max  int
		// add is applied in order: (fail, duration) per trace.
		add []struct {
			fail bool
			d    time.Duration
		}
		wantKept    []int // indices into add expected to survive
		wantEvicted uint64
	}{
		{
			name: "under capacity keeps everything",
			max:  4,
			add: []struct {
				fail bool
				d    time.Duration
			}{{false, 0}, {false, 0}, {true, 0}},
			wantKept:    []int{0, 1, 2},
			wantEvicted: 0,
		},
		{
			name: "boring overflow evicts oldest first",
			max:  3,
			add: []struct {
				fail bool
				d    time.Duration
			}{{false, 0}, {false, 0}, {false, 0}, {false, 0}, {false, 0}},
			wantKept:    []int{2, 3, 4},
			wantEvicted: 2,
		},
		{
			name: "errored trace outlives younger boring traces",
			max:  3,
			add: []struct {
				fail bool
				d    time.Duration
			}{{true, 0}, {false, 0}, {false, 0}, {false, 0}, {false, 0}},
			wantKept:    []int{0, 3, 4},
			wantEvicted: 2,
		},
		{
			name: "slow trace outlives younger boring traces",
			max:  3,
			add: []struct {
				fail bool
				d    time.Duration
			}{{false, time.Second}, {false, 0}, {false, 0}, {false, 0}, {false, 0}},
			wantKept:    []int{0, 3, 4},
			wantEvicted: 2,
		},
		{
			name: "all interesting falls back to oldest-first",
			max:  2,
			add: []struct {
				fail bool
				d    time.Duration
			}{{true, 0}, {true, 0}, {true, 0}},
			wantKept:    []int{1, 2},
			wantEvicted: 1,
		},
		{
			name: "boring evicted before older interesting, then interesting ages out",
			max:  2,
			add: []struct {
				fail bool
				d    time.Duration
			}{{true, 0}, {false, 0}, {true, 0}, {true, 0}},
			wantKept:    []int{2, 3},
			wantEvicted: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCollector(tc.max, 16, slow)
			for i, a := range tc.add {
				endSpan(c, id32(i), "test.evict", a.fail, a.d)
			}
			kept := make(map[string]bool)
			for _, s := range c.Traces() {
				kept[s.TraceID] = true
			}
			if len(kept) != len(tc.wantKept) {
				t.Fatalf("kept %d traces, want %d", len(kept), len(tc.wantKept))
			}
			for _, i := range tc.wantKept {
				if !kept[id32(i)] {
					t.Errorf("trace %d (%s) was evicted, want kept", i, id32(i))
				}
			}
			if got := c.Evicted(); got != tc.wantEvicted {
				t.Errorf("evicted = %d, want %d", got, tc.wantEvicted)
			}
		})
	}
}

func TestPerTraceSpanCapTruncates(t *testing.T) {
	c := NewCollector(4, 3, time.Hour)
	for i := 0; i < 5; i++ {
		endSpan(c, id32(0), "test.cap", false, 0)
	}
	sums := c.Traces()
	if len(sums) != 1 {
		t.Fatalf("traces = %d, want 1", len(sums))
	}
	if sums[0].Spans != 3 || sums[0].Truncated != 2 {
		t.Errorf("spans=%d truncated=%d, want 3/2", sums[0].Spans, sums[0].Truncated)
	}
	if got := len(c.Trace(id32(0))); got != 3 {
		t.Errorf("retained %d spans, want 3", got)
	}
}

func TestSummaryRootAndErrors(t *testing.T) {
	c := NewCollector(4, 16, time.Hour)
	ctx := WithCollector(context.Background(), c)
	rctx, root := Start(ctx, "test.summary_root")
	_, child := Start(rctx, "test.summary_child")
	child.SetError(errors.New("boom"))
	child.End()
	root.End()
	sums := c.Traces()
	if len(sums) != 1 {
		t.Fatalf("traces = %d, want 1", len(sums))
	}
	s := sums[0]
	if s.Root != "test.summary_root" {
		t.Errorf("root = %q", s.Root)
	}
	if s.Errors != 1 || !s.Interesting || s.Spans != 2 {
		t.Errorf("summary = %+v", s)
	}
}

func TestHandlerServesListAndTrace(t *testing.T) {
	c := NewCollector(4, 16, time.Hour)
	ctx := WithCollector(context.Background(), c)
	rctx, root := Start(ctx, "test.handler_root")
	_, child := Start(rctx, "test.handler_child")
	child.End()
	root.End()

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var list struct {
		Traces []Summary `json:"traces"`
	}
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != root.TraceIDString() {
		t.Fatalf("list = %+v", list)
	}

	res2, err := srv.Client().Get(srv.URL + "/debug/traces?id=" + root.TraceIDString())
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var full struct {
		TraceID string      `json:"traceId"`
		Spans   []*SpanData `json:"spans"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if len(full.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(full.Spans))
	}
	if full.Spans[1].ParentID != full.Spans[0].SpanID {
		t.Errorf("child parent %q != root span %q", full.Spans[1].ParentID, full.Spans[0].SpanID)
	}

	res3, err := srv.Client().Get(srv.URL + "/debug/traces?id=" + "deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	res3.Body.Close()
	if res3.StatusCode != 404 {
		t.Errorf("unknown trace status = %d, want 404", res3.StatusCode)
	}
}

// TestCollectorConcurrency hammers one collector from many goroutines —
// recorders, readers, and evictions racing — and relies on `go test
// -race` to flag unsynchronized access.
func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector(8, 4, time.Hour)
	ctx := WithCollector(context.Background(), c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rctx, root := Start(ctx, "test.race_root")
				_, child := Start(rctx, "test.race_child")
				child.SetAttr(Int("i", i))
				if i%3 == 0 {
					child.SetError(errors.New("induced"))
				}
				child.End()
				root.End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, s := range c.Traces() {
					c.Trace(s.TraceID)
				}
				c.Evicted()
			}
		}()
	}
	wg.Wait()
	if got := len(c.Traces()); got > 8 {
		t.Errorf("retained %d traces, cap is 8", got)
	}
}
