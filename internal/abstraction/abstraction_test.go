package abstraction

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

var (
	t0        = time.Date(2011, 2, 16, 10, 13, 45, 0, time.UTC) // a Wednesday
	uclaPoint = geo.Point{Lat: 34.0689, Lon: -118.4452}
	gc        = geo.GridGeocoder{}
)

// fullSegment is 60 s of 10 Hz data with all the paper's channels.
func fullSegment(start time.Time) *wavesegment.Segment {
	chans := []string{
		wavesegment.ChannelECG, wavesegment.ChannelRespiration,
		wavesegment.ChannelAccelX, wavesegment.ChannelMicrophone,
		wavesegment.ChannelSkinTemp,
	}
	s := &wavesegment.Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    uclaPoint,
		Channels:    chans,
	}
	for i := 0; i < 600; i++ {
		row := make([]float64, len(chans))
		for j := range row {
			row[j] = float64(i + j)
		}
		s.Values = append(s.Values, row)
	}
	return s
}

func engine(t *testing.T, gaz *geo.Gazetteer, rs ...*rules.Rule) *rules.Engine {
	t.Helper()
	e, err := rules.NewEngine(rs, gaz)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func decide(t *testing.T, e *rules.Engine, consumer string, at time.Time, ctx ...string) *rules.Decision {
	t.Helper()
	return e.Decide(&rules.Request{Consumer: consumer, At: at, Location: uclaPoint, ActiveContexts: ctx})
}

func TestApplyAllowAll(t *testing.T) {
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	seg := fullSegment(t0)
	_ = seg.Annotate(rules.CtxWalk, t0, t0.Add(30*time.Second))

	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel == nil || rel.Segment == nil {
		t.Fatal("allow-all should release the segment")
	}
	if len(rel.Segment.Channels) != 5 {
		t.Errorf("channels = %v", rel.Segment.Channels)
	}
	if rel.Location.Granularity != geo.LocCoordinates || *rel.Location.Point != uclaPoint {
		t.Errorf("location = %+v", rel.Location)
	}
	if !rel.Start.Equal(t0) {
		t.Errorf("start = %v", rel.Start)
	}
	if len(rel.Contexts) != 1 || rel.Contexts[0].Context != rules.CtxWalk {
		t.Errorf("contexts = %v", rel.Contexts)
	}
	if rel.Segment.Annotations != nil {
		t.Error("annotations should travel on the release, not the segment")
	}
}

func TestApplyNothingShared(t *testing.T) {
	e := engine(t, nil) // no rules: default deny
	rel, err := Apply(decide(t, e, "bob", t0), fullSegment(t0), gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel != nil {
		t.Fatalf("default deny must release nothing, got %+v", rel)
	}
}

func TestApplyChannelProjection(t *testing.T) {
	e := engine(t, nil, &rules.Rule{
		Sensors: rules.ExpandSensorNames([]string{"Accelerometer"}),
		Action:  rules.Allow(),
	})
	rel, err := Apply(decide(t, e, "bob", t0), fullSegment(t0), gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Segment == nil || len(rel.Segment.Channels) != 1 || rel.Segment.Channels[0] != wavesegment.ChannelAccelX {
		t.Fatalf("segment channels = %v", rel.Segment)
	}
}

func TestApplyClosureDropsRespiration(t *testing.T) {
	// Smoking hidden -> respiration raw blocked, context labels abstracted.
	e := engine(t, nil,
		&rules.Rule{Action: rules.Allow()},
		&rules.Rule{Action: rules.Abstract(rules.AbstractionSpec{
			Contexts: map[rules.Category]rules.Level{rules.CategorySmoking: rules.LevelNotShared},
		})},
	)
	seg := fullSegment(t0)
	_ = seg.Annotate(rules.CtxSmoking, t0, t0.Add(10*time.Second))
	_ = seg.Annotate(rules.CtxStressed, t0, t0.Add(10*time.Second))

	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Segment.HasChannel(wavesegment.ChannelRespiration) {
		t.Error("respiration must be projected away")
	}
	if !rel.Segment.HasChannel(wavesegment.ChannelECG) {
		t.Error("ECG should survive")
	}
	for _, c := range rel.Contexts {
		if c.Context == rules.CtxSmoking {
			t.Error("smoking annotation must not be released")
		}
	}
	found := false
	for _, c := range rel.Contexts {
		if c.Context == rules.CtxStressed {
			found = true
		}
	}
	if !found {
		t.Error("stress annotation should be released")
	}
}

func TestApplyActivityBinaryAbstraction(t *testing.T) {
	e := engine(t, nil, &rules.Rule{
		Sensors: rules.ExpandSensorNames([]string{"Accelerometer"}),
		Action: rules.Abstract(rules.AbstractionSpec{
			Contexts: map[rules.Category]rules.Level{rules.CategoryActivity: rules.LevelBinary},
		}),
	})
	seg := fullSegment(t0)
	_ = seg.Annotate(rules.CtxDrive, t0, t0.Add(20*time.Second))
	_ = seg.Annotate(rules.CtxStill, t0.Add(20*time.Second), t0.Add(40*time.Second))

	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Segment != nil {
		t.Errorf("raw accel must be blocked at binary level, got %v", rel.Segment)
	}
	if len(rel.Contexts) != 2 {
		t.Fatalf("contexts = %v", rel.Contexts)
	}
	if rel.Contexts[0].Context != rules.CtxMoving || rel.Contexts[1].Context != rules.CtxNotMoving {
		t.Errorf("abstracted labels = %v, %v", rel.Contexts[0].Context, rel.Contexts[1].Context)
	}
}

func TestApplyLocationAbstraction(t *testing.T) {
	city := geo.LocCity
	e := engine(t, nil,
		&rules.Rule{Action: rules.Allow()},
		&rules.Rule{Action: rules.Abstract(rules.AbstractionSpec{Location: &city})})
	rel, err := Apply(decide(t, e, "bob", t0), fullSegment(t0), gc)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Location.Granularity != geo.LocCity || rel.Location.Point != nil {
		t.Errorf("location = %+v", rel.Location)
	}
	addr, _ := gc.ReverseGeocode(uclaPoint)
	if rel.Location.Text != addr.City {
		t.Errorf("city = %q, want %q", rel.Location.Text, addr.City)
	}
}

func TestApplyTimeAbstractionHour(t *testing.T) {
	hour := timeutil.GranHour
	e := engine(t, nil,
		&rules.Rule{Action: rules.Allow()},
		&rules.Rule{Action: rules.Abstract(rules.AbstractionSpec{Time: &hour})})
	seg := fullSegment(t0) // starts 10:13:45
	_ = seg.Annotate(rules.CtxWalk, t0, t0.Add(10*time.Second))
	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	wantStart := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	if !rel.Start.Equal(wantStart) {
		t.Errorf("release start = %v, want %v", rel.Start, wantStart)
	}
	if !rel.Segment.StartTime().Equal(wantStart) {
		t.Errorf("segment start = %v", rel.Segment.StartTime())
	}
	// Duration preserved.
	if rel.End.Sub(rel.Start) != 60*time.Second {
		t.Errorf("duration = %v", rel.End.Sub(rel.Start))
	}
	// Annotation shifted by the same delta.
	if !rel.Contexts[0].Start.Equal(wantStart) {
		t.Errorf("annotation start = %v", rel.Contexts[0].Start)
	}
	if rel.TimeGranularity != timeutil.GranHour {
		t.Errorf("granularity = %v", rel.TimeGranularity)
	}
}

func TestApplyTimeNotShared(t *testing.T) {
	ns := timeutil.GranNotShared
	e := engine(t, nil,
		&rules.Rule{Action: rules.Allow()},
		&rules.Rule{Action: rules.Abstract(rules.AbstractionSpec{Time: &ns})})
	seg := fullSegment(t0)
	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Start.IsZero() || !rel.End.IsZero() {
		t.Errorf("times must be withheld: %v..%v", rel.Start, rel.End)
	}
	if !rel.Segment.StartTime().Equal(time.Unix(0, 0).UTC()) {
		t.Errorf("segment should be re-based to epoch, got %v", rel.Segment.StartTime())
	}
	if rel.Segment.Duration() != 60*time.Second {
		t.Errorf("duration must survive: %v", rel.Segment.Duration())
	}
}

func TestApplyUnknownContextLabelNeverFlows(t *testing.T) {
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	seg := fullSegment(t0)
	seg.Annotations = []wavesegment.Annotation{{Context: "SecretCustomLabel", Start: t0, End: t0.Add(time.Second)}}
	rel, err := Apply(decide(t, e, "bob", t0), seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Contexts) != 0 {
		t.Errorf("unknown labels must not flow: %v", rel.Contexts)
	}
}

func TestApplyNilArgs(t *testing.T) {
	if _, err := Apply(nil, fullSegment(t0), gc); err == nil {
		t.Error("nil decision should error")
	}
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	if _, err := Apply(decide(t, e, "bob", t0), nil, gc); err == nil {
		t.Error("nil segment should error")
	}
}

func TestEnforceContextSpans(t *testing.T) {
	// Fig. 4 scenario end-to-end on one segment: conversation in the middle
	// third hides stress (and blocks ECG/Respiration raw) only there.
	rsJSON := `[
	  {"Consumer": ["Bob"], "Action": "Allow"},
	  {"Consumer": ["Bob"], "Context": ["Conversation"],
	   "Action": {"Abstraction": {"Stress": "NotShared"}}}
	]`
	rs, err := rules.UnmarshalRuleSet([]byte(rsJSON))
	if err != nil {
		t.Fatal(err)
	}
	e := engine(t, nil, rs...)
	seg := fullSegment(t0) // 60 s
	_ = seg.Annotate(rules.CtxConversation, t0.Add(20*time.Second), t0.Add(40*time.Second))

	rels, err := Enforce(e, "Bob", nil, seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 {
		t.Fatalf("expected 3 spans, got %d", len(rels))
	}
	// Span 1: 0-20 s, full access.
	if !rels[0].Segment.HasChannel(wavesegment.ChannelECG) {
		t.Error("span 1 should include ECG")
	}
	if rels[0].Segment.NumSamples() != 200 {
		t.Errorf("span 1 samples = %d", rels[0].Segment.NumSamples())
	}
	// Span 2: 20-40 s, conversation active: ECG/Respiration blocked.
	if rels[1].Segment.HasChannel(wavesegment.ChannelECG) || rels[1].Segment.HasChannel(wavesegment.ChannelRespiration) {
		t.Error("span 2 must block stress-bearing channels")
	}
	if !rels[1].Segment.HasChannel(wavesegment.ChannelAccelX) {
		t.Error("span 2 should keep accel")
	}
	// Conversation annotation itself still flows (it was not abstracted).
	if len(rels[1].Contexts) != 1 || rels[1].Contexts[0].Context != rules.CtxConversation {
		t.Errorf("span 2 contexts = %v", rels[1].Contexts)
	}
	// Span 3: 40-60 s, full again.
	if !rels[2].Segment.HasChannel(wavesegment.ChannelECG) {
		t.Error("span 3 should include ECG")
	}
	// No samples lost or duplicated across spans.
	total := 0
	for _, r := range rels {
		total += r.Segment.NumSamples()
	}
	if total != 600 {
		t.Errorf("total samples across spans = %d, want 600", total)
	}
}

func TestEnforceTimeBoundaries(t *testing.T) {
	// A repeat-time rule boundary falls inside the segment: the decision
	// changes at 10:14 even though no annotation edge is there.
	rep, _ := timeutil.ParseRepeated(nil, []string{"10:14am", "11:00am"})
	e := engine(t, nil, &rules.Rule{RepeatTimes: []timeutil.Repeated{rep}, Action: rules.Allow()})
	seg := fullSegment(t0) // 10:13:45 .. 10:14:45
	rels, err := Enforce(e, "Bob", nil, seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("expected 1 released span, got %d", len(rels))
	}
	wantStart := time.Date(2011, 2, 16, 10, 14, 0, 0, time.UTC)
	if !rels[0].Start.Equal(wantStart) {
		t.Errorf("released span starts %v, want %v", rels[0].Start, wantStart)
	}
	if rels[0].Segment.NumSamples() != 450 {
		t.Errorf("released samples = %d, want 450", rels[0].Segment.NumSamples())
	}
}

func TestEnforceDenyWhileDriving(t *testing.T) {
	e := engine(t, nil,
		&rules.Rule{Action: rules.Allow()},
		&rules.Rule{Contexts: []string{rules.CtxDrive}, Action: rules.Deny()},
	)
	seg := fullSegment(t0)
	_ = seg.Annotate(rules.CtxDrive, t0.Add(30*time.Second), t0.Add(60*time.Second))
	rels, err := Enforce(e, "Bob", nil, seg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("expected only the non-driving span, got %d releases", len(rels))
	}
	if rels[0].Segment.NumSamples() != 300 {
		t.Errorf("released samples = %d, want 300", rels[0].Segment.NumSamples())
	}
	if !rels[0].End.Equal(t0.Add(30 * time.Second)) {
		t.Errorf("release ends %v", rels[0].End)
	}
}

func TestEnforceInvalidSegment(t *testing.T) {
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	if _, err := Enforce(e, "Bob", nil, &wavesegment.Segment{}, gc); err == nil {
		t.Error("invalid segment should error")
	}
	if _, err := Enforce(e, "Bob", nil, nil, gc); err == nil {
		t.Error("nil segment should error")
	}
}

func TestEnforceAll(t *testing.T) {
	e := engine(t, nil, &rules.Rule{Action: rules.Allow()})
	segs := []*wavesegment.Segment{fullSegment(t0), fullSegment(t0.Add(time.Hour))}
	rels, err := EnforceAll(e, "Bob", nil, segs, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("releases = %d", len(rels))
	}
	bad := []*wavesegment.Segment{{}}
	if _, err := EnforceAll(e, "Bob", nil, bad, gc); err == nil {
		t.Error("invalid batch should error")
	}
}

func TestReleaseEmpty(t *testing.T) {
	r := &Release{}
	if !r.Empty() {
		t.Error("zero release should be empty")
	}
	r.Contexts = []wavesegment.Annotation{{Context: "Walk"}}
	if r.Empty() {
		t.Error("release with contexts is not empty")
	}
}
