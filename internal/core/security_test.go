package core

import (
	"testing"
	"time"

	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

// Attack-scenario suite: the paper's future work asks for an analysis of
// the architecture "for various attack scenarios"; each test here encodes
// one scenario and the property that defeats it.

// scenarioNetwork builds one store with Alice's data shared only with Bob.
func scenarioNetwork(t *testing.T) (*Network, *Contributor, *Consumer) {
	t.Helper()
	n := network(t, "s")
	alice, err := n.NewContributor("s", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.SetRules(`[{"Consumer":["Bob"],"Action":"Allow"}]`); err != nil {
		t.Fatal(err)
	}
	day := &sensors.Scenario{
		Start: t0, Origin: home, Seed: 3,
		Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		t.Fatal(err)
	}
	bob, err := n.NewConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	return n, alice, bob
}

func TestAttackStolenKeyRotation(t *testing.T) {
	// Scenario: Alice's API key leaks. Rotation must invalidate the stolen
	// key immediately while her account (rules, data) stays intact.
	_, alice, _ := scenarioNetwork(t)
	stolen := alice.Key
	fresh, err := alice.Store.RotateKey(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == stolen {
		t.Fatal("rotation must change the key")
	}
	// Thief's copy is dead.
	if _, err := alice.Store.QueryOwn(stolen, &query.Query{}); err == nil {
		t.Error("stolen key must stop working")
	}
	// Alice continues with the new key; her rules survived.
	alice.Key = fresh
	if _, err := alice.Store.QueryOwn(fresh, &query.Query{}); err != nil {
		t.Errorf("fresh key: %v", err)
	}
	data, err := alice.Store.Rules(fresh)
	if err != nil || len(data) == 0 {
		t.Errorf("rules after rotation: %v", err)
	}
}

func TestAttackRoleConfusion(t *testing.T) {
	// Scenario: a consumer key is used against every contributor-only
	// surface, and vice versa. Each call must fail on role, not fall
	// through to data.
	_, alice, bob := scenarioNetwork(t)
	svc := alice.Store

	if _, err := svc.Upload(bob.Key, nil); err == nil {
		t.Error("consumer upload must fail")
	}
	if err := svc.SetRules(bob.Key, []byte(`[{"Action":"Allow"}]`)); err == nil {
		t.Error("consumer rule change must fail")
	}
	if err := svc.DefinePlace(bob.Key, "home", geo.Region{}); err == nil {
		t.Error("consumer place change must fail")
	}
	if _, err := svc.QueryOwn(bob.Key, &query.Query{}); err == nil {
		t.Error("consumer QueryOwn must fail")
	}
	if _, err := svc.Audit(bob.Key, audit.Filter{}); err == nil {
		t.Error("consumer audit read must fail")
	}
	if _, err := svc.Query(alice.Key, &query.Query{}); err == nil {
		t.Error("contributor consumer-query must fail")
	}
}

func TestAttackUploadForgery(t *testing.T) {
	// Scenario: Mallory (a contributor on the same institutional store)
	// uploads segments claiming to be Alice's, hoping they surface in
	// Alice's data under Alice's permissive rules.
	n, _, bob := scenarioNetwork(t)
	mallory, err := n.NewContributor("s", "mallory")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sensors.Generate("alice", &sensors.Scenario{ // forged owner
		Start: t0.Add(time.Hour), Origin: home, Seed: 9,
		Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Store.Upload(mallory.Key, rec.Phone); err == nil {
		t.Fatal("forged upload must be rejected")
	}
	// Bob's view of Alice's data is unchanged (nothing after t0+1h).
	rels, err := bob.Query("alice", &query.Query{From: t0.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Error("forged data visible under Alice's identity")
	}
}

func TestAttackGroupSelfAssertion(t *testing.T) {
	// Scenario: Eve registers as a consumer and tries to benefit from
	// Alice's group-scoped rule without the contributor (or broker study)
	// granting membership. Group membership is store-side state only the
	// contributor writes; nothing Eve controls carries groups.
	n := network(t, "s")
	alice, _ := n.NewContributor("s", "alice")
	if err := alice.SetRules(`[{"Group":["StressStudy"],"Action":"Allow"}]`); err != nil {
		t.Fatal(err)
	}
	day := &sensors.Scenario{
		Start: t0, Origin: home, Seed: 3,
		Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		t.Fatal(err)
	}
	eve, _ := n.NewConsumer("Eve")
	rels, err := eve.Query("alice", &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Error("Eve accessed group-scoped data without membership")
	}
}

func TestAttackCompromisedBrokerCannotLeakData(t *testing.T) {
	// Scenario: the broker is compromised and its replica of Alice's rules
	// is replaced with an allow-everything forgery. The broker's search
	// now lies — but enforcement lives at the store, so the attacker still
	// downloads nothing.
	n := network(t, "s")
	alice, _ := n.NewContributor("s", "alice")
	if err := alice.SetRules(`[{"Consumer":["Bob"],"Action":"Allow"}]`); err != nil {
		t.Fatal(err)
	}
	day := &sensors.Scenario{
		Start: t0, Origin: home, Seed: 3,
		Phases: []sensors.Phase{{Duration: time.Minute, Activity: rules.CtxStill}},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		t.Fatal(err)
	}
	// Forged replica: broker believes Alice shares with everyone. The
	// forged version outruns the store's real one so the broker applies it
	// (a stale forgery would be rejected outright).
	if err := n.Broker.SyncRules("alice", 99, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	eve, _ := n.NewConsumer("Eve")
	match, err := eve.Search(&broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0})
	if err != nil {
		t.Fatal(err)
	}
	if len(match) != 1 {
		t.Fatalf("forged replica should fool the search: %v", match)
	}
	// But the store is authoritative: Eve gets nothing.
	rels, err := eve.Query("alice", &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Error("broker compromise leaked store data")
	}
}

func TestAttackContextFilterProbing(t *testing.T) {
	// Scenario: Eve cannot read Alice's stress data but tries to *infer*
	// stress occurrences by issuing context-filtered queries and observing
	// which time windows return results. Filters run on released contexts
	// only, so withheld contexts are unobservable.
	n := network(t, "s")
	alice, _ := n.NewContributor("s", "alice")
	if err := alice.SetRules(`[
	  {"Consumer":["Eve"],"Sensor":["SkinTemperature"],"Action":"Allow"},
	  {"Action":{"Abstraction":{"Stress":"NotShared"}}}
	]`); err != nil {
		t.Fatal(err)
	}
	day := &sensors.Scenario{
		Start: t0, Origin: home, Seed: 3,
		Phases: []sensors.Phase{
			{Duration: time.Minute, Activity: rules.CtxStill, Stressed: true},
			{Duration: time.Minute, Activity: rules.CtxStill},
		},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		t.Fatal(err)
	}
	eve, _ := n.NewConsumer("Eve")
	probe, err := eve.Query("alice", &query.Query{Contexts: []string{"Stressed"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe) != 0 {
		t.Error("context-filter probing revealed hidden stress spans")
	}
	probeNeg, err := eve.Query("alice", &query.Query{Contexts: []string{"NotStressed"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(probeNeg) != 0 {
		t.Error("negated-context probing revealed hidden stress spans")
	}
}

func TestAttackKeyGuessing(t *testing.T) {
	// Scenario: near-miss keys (one hex digit off) must never authenticate.
	_, alice, _ := scenarioNetwork(t)
	key := []byte(alice.Key)
	for i := 0; i < len(key); i += 7 {
		guess := append([]byte(nil), key...)
		if guess[i] == 'a' {
			guess[i] = 'b'
		} else {
			guess[i] = 'a'
		}
		if _, err := alice.Store.QueryOwn(auth.APIKey(guess), &query.Query{}); err == nil {
			t.Fatalf("near-miss key authenticated at position %d", i)
		}
	}
}
