package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sensorsafe/internal/overload"
	"sensorsafe/internal/resilience"
)

// E13 measures the overload-protection machinery (internal/overload) on
// the property the subsystem promises: goodput under saturation. A
// simulated worker pool with a fixed per-request service time is offered
// open-loop load at 1x, 2x, and 5x its capacity, with the admission
// controller in front (shedding on) and with a plain unbounded queue
// (shedding off). Goodput counts only responses that complete within the
// SLO — a response that arrives after the client gave up is wasted work.
// The acceptance bar: with shedding on, goodput at 5x offered load stays
// at >= 80% of the peak observed goodput. A second leg checks the circuit
// breaker bounds the retry storm against a downed store.

// E13Config parameterizes the overload benchmark.
type E13Config struct {
	// Workers is the simulated server's concurrency (gate capacity).
	Workers int
	// Service is the per-request service time.
	Service time.Duration
	// Window is how long each load level is offered.
	Window time.Duration
	// SLO is the client's patience; later completions are not goodput.
	SLO time.Duration
	// QueueWait is the admission gate's queue deadline (shedding on).
	QueueWait time.Duration
	// Drain bounds how long shedding-off stragglers may keep running
	// after the window before being abandoned.
	Drain time.Duration
	// Multipliers are the offered-load levels relative to capacity.
	Multipliers []float64
	// BreakerOps is the number of operations aimed at the downed store
	// in the retry-storm leg.
	BreakerOps int
	// BreakerThreshold trips the breaker after this many consecutive
	// failures.
	BreakerThreshold int
	// TargetFrac is the acceptance bar for goodput at the highest load,
	// as a fraction of peak goodput.
	TargetFrac float64
}

// DefaultE13 matches the documented E13 configuration.
func DefaultE13() E13Config {
	// 2ms service keeps the simulated pool's effective service time close
	// to nominal even with tens of thousands of in-flight goroutines at
	// 5x load; sub-millisecond sleeps are dominated by timer granularity.
	return E13Config{
		Workers:          8,
		Service:          2 * time.Millisecond,
		Window:           time.Second,
		SLO:              100 * time.Millisecond,
		QueueWait:        10 * time.Millisecond,
		Drain:            2 * time.Second,
		Multipliers:      []float64{1, 2, 5},
		BreakerOps:       100,
		BreakerThreshold: 5,
		TargetFrac:       0.8,
	}
}

// E13Load is one offered-load level's measurements.
type E13Load struct {
	Multiplier    float64 `json:"multiplier"`
	Offered       int     `json:"offered"`
	GoodputOnRPS  float64 `json:"goodput_on_rps"`
	P99OnMS       float64 `json:"p99_on_ms"`
	ShedOn        int     `json:"shed_on"`
	State         string  `json:"state"`
	GoodputOffRPS float64 `json:"goodput_off_rps"`
	P99OffMS      float64 `json:"p99_off_ms"`
	AbandonedOff  int     `json:"abandoned_off"`
}

// E13Result is the BENCH_8.json shape CI archives.
type E13Result struct {
	Experiment      string    `json:"experiment"`
	Description     string    `json:"description"`
	Workers         int       `json:"workers"`
	ServiceMS       float64   `json:"service_ms"`
	WindowMS        float64   `json:"window_ms"`
	SLOMS           float64   `json:"slo_ms"`
	CapacityRPS     float64   `json:"capacity_rps"`
	Loads           []E13Load `json:"loads"`
	PeakGoodputRPS  float64   `json:"peak_goodput_rps"`
	GoodputTopFrac  float64   `json:"goodput_top_frac"`
	TargetFrac      float64   `json:"target_frac"`
	BreakerAttempts int       `json:"breaker_attempts"`
	BaselineAtts    int       `json:"baseline_attempts"`
	Pass            bool      `json:"pass"`
}

// e13Stats is one run's raw outcome.
type e13Stats struct {
	good      int
	shed      int
	abandoned int
	p99       time.Duration
}

// e13Run offers n requests spread uniformly over the window. With ctrl
// set, each request passes through Admit (ingest class — the never-shed
// tier, so only the capacity gate and queue deadline act); with ctrl nil,
// requests wait on a plain unbounded semaphore until the drain deadline.
func e13Run(cfg E13Config, n int, ctrl *overload.Controller) e13Stats {
	latencies := make([]time.Duration, n)
	completed := make([]bool, n)
	shed := make([]bool, n)
	workers := make(chan struct{}, cfg.Workers)
	//sslint:ignore ctxpropagate experiment harness is the call-tree root
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Window+cfg.Drain)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	const tick = time.Millisecond
	ticks := int(cfg.Window / tick)
	if ticks < 1 {
		ticks = 1
	}
	idx := 0
	for tk := 0; tk < ticks && idx < n; tk++ {
		if d := time.Until(start.Add(time.Duration(tk) * tick)); d > 0 {
			time.Sleep(d)
		}
		batchEnd := (tk + 1) * n / ticks
		for ; idx < batchEnd; idx++ {
			i := idx
			wg.Add(1)
			go func() {
				defer wg.Done()
				issued := time.Now()
				if ctrl != nil {
					release, rej := ctrl.Admit(ctx, overload.ClassIngest, "e13")
					if rej != nil {
						shed[i] = true
						return
					}
					time.Sleep(cfg.Service)
					release()
				} else {
					select {
					case workers <- struct{}{}:
					case <-ctx.Done():
						return // client abandoned in the queue
					}
					time.Sleep(cfg.Service)
					<-workers
				}
				latencies[i] = time.Since(issued)
				completed[i] = true
			}()
		}
	}
	wg.Wait()

	var st e13Stats
	var done []time.Duration
	for i := 0; i < n; i++ {
		switch {
		case completed[i]:
			done = append(done, latencies[i])
			if latencies[i] <= cfg.SLO {
				st.good++
			}
		case shed[i]:
			st.shed++
		default:
			st.abandoned++
		}
	}
	st.p99 = e13Percentile(done, 0.99)
	return st
}

func e13Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[int(p*float64(len(ds)-1))].Round(time.Microsecond)
}

// e13Controller builds a fresh admission controller sized to the
// simulated pool: the ingest gate IS the worker pool, the other classes
// are minimized so gate utilization reflects the tier under test.
func e13Controller(cfg E13Config) *overload.Controller {
	oc := overload.Config{Component: "e13"}
	for i := 0; i < overload.NumClasses; i++ {
		oc.Capacity[i] = 1
	}
	oc.Capacity[overload.ClassIngest] = cfg.Workers
	oc.QueueWait[overload.ClassIngest] = cfg.QueueWait
	return overload.NewController(oc)
}

// e13Breaker counts real attempts against a permanently failing store,
// with and without the circuit breaker in the retry policy.
func e13Breaker(cfg E13Config) (withBreaker, baseline int) {
	run := func(br *overload.Breaker) int {
		attempts := 0
		pol := &resilience.Policy{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Microsecond,
			MaxDelay:    100 * time.Microsecond,
		}
		if br != nil {
			pol.Breaker = br
		}
		for op := 0; op < cfg.BreakerOps; op++ {
			//sslint:ignore ctxpropagate experiment harness is the call-tree root
			_ = pol.Do(context.Background(), "e13_downed_store", func(context.Context) error {
				attempts++
				return resilience.Status(503, 0, "store down")
			})
		}
		return attempts
	}
	br := overload.NewBreaker("e13-downed-store", overload.BreakerConfig{
		FailureThreshold: cfg.BreakerThreshold,
		OpenFor:          time.Hour, // never half-opens within the run
	})
	return run(br), run(nil)
}

// RunE13 runs the overload benchmark and the retry-storm leg.
func RunE13(cfg E13Config) (*E13Result, *Table, error) {
	capacity := float64(cfg.Workers) / cfg.Service.Seconds()
	res := &E13Result{
		Experiment:  "E13",
		Description: "overload protection: goodput and p99 at 1x/2x/5x capacity with admission control on vs off; circuit breaker bounding the retry storm against a downed store",
		Workers:     cfg.Workers,
		ServiceMS:   float64(cfg.Service.Microseconds()) / 1000,
		WindowMS:    float64(cfg.Window.Milliseconds()),
		SLOMS:       float64(cfg.SLO.Milliseconds()),
		CapacityRPS: capacity,
		TargetFrac:  cfg.TargetFrac,
	}

	t := &Table{
		ID: "E13",
		Caption: fmt.Sprintf("goodput under overload (%d workers x %s service, %s window, SLO %s)",
			cfg.Workers, cfg.Service, cfg.Window, cfg.SLO),
		Headers: []string{"offered load", "goodput on (rps)", "p99 on", "state", "goodput off (rps)", "p99 off", "verdict"},
		Notes: []string{
			"on: requests pass the admission controller's ingest gate (capacity = workers, bounded queue wait); off: plain unbounded FIFO on the same pool",
			"goodput counts completions within the SLO; shed requests fail fast and are not goodput, queued stragglers are abandoned at the drain deadline",
			fmt.Sprintf("bar: goodput at %gx offered load >= %.0f%% of peak goodput", cfg.Multipliers[len(cfg.Multipliers)-1], 100*cfg.TargetFrac),
		},
	}

	window := cfg.Window.Seconds()
	for _, mult := range cfg.Multipliers {
		offered := int(mult * capacity * window)
		ctrl := e13Controller(cfg)
		on := e13Run(cfg, offered, ctrl)
		state := ctrl.State().String()
		off := e13Run(cfg, offered, nil)
		res.Loads = append(res.Loads, E13Load{
			Multiplier:    mult,
			Offered:       offered,
			GoodputOnRPS:  float64(on.good) / window,
			P99OnMS:       float64(on.p99.Microseconds()) / 1000,
			ShedOn:        on.shed,
			State:         state,
			GoodputOffRPS: float64(off.good) / window,
			P99OffMS:      float64(off.p99.Microseconds()) / 1000,
			AbandonedOff:  off.abandoned,
		})
	}

	for _, l := range res.Loads {
		if l.GoodputOnRPS > res.PeakGoodputRPS {
			res.PeakGoodputRPS = l.GoodputOnRPS
		}
	}
	top := res.Loads[len(res.Loads)-1]
	if res.PeakGoodputRPS > 0 {
		res.GoodputTopFrac = top.GoodputOnRPS / res.PeakGoodputRPS
	}
	res.BreakerAttempts, res.BaselineAtts = e13Breaker(cfg)

	goodputPass := res.GoodputTopFrac >= cfg.TargetFrac
	// The breaker must cut the storm to roughly the trip threshold: the
	// consecutive failures that trip it, plus one short-circuited op's
	// worth of slack for scheduling.
	breakerPass := res.BreakerAttempts <= cfg.BreakerThreshold+1 &&
		res.BreakerAttempts < res.BaselineAtts/10
	res.Pass = goodputPass && breakerPass

	for i, l := range res.Loads {
		verdict := "-"
		if i == len(res.Loads)-1 {
			verdict = "PASS"
			if !goodputPass {
				verdict = fmt.Sprintf("FAIL: %.0f%% of peak < %.0f%%", 100*res.GoodputTopFrac, 100*cfg.TargetFrac)
			}
		}
		t.AddRow(
			fmt.Sprintf("%gx (%d reqs)", l.Multiplier, l.Offered),
			fmt.Sprintf("%.0f", l.GoodputOnRPS),
			fmt.Sprintf("%.1f ms", l.P99OnMS),
			l.State,
			fmt.Sprintf("%.0f", l.GoodputOffRPS),
			fmt.Sprintf("%.1f ms", l.P99OffMS),
			verdict,
		)
	}
	breakerVerdict := "PASS"
	if !breakerPass {
		breakerVerdict = fmt.Sprintf("FAIL: %d attempts", res.BreakerAttempts)
	}
	t.AddRow(
		fmt.Sprintf("downed store, %d ops x 4 retries", cfg.BreakerOps),
		fmt.Sprintf("%d attempts (breaker)", res.BreakerAttempts),
		"-", "-",
		fmt.Sprintf("%d attempts (no breaker)", res.BaselineAtts),
		"-",
		breakerVerdict,
	)
	return res, t, nil
}
