package resilience

import (
	"container/list"
	"sync"
)

// CachedResponse is the replayable outcome of one idempotent mutation:
// enough to answer a retried request byte-for-byte without re-executing it.
type CachedResponse struct {
	// Status is the HTTP status the first execution produced.
	Status int
	// Body is the response body.
	Body []byte
	// ContentType is the response Content-Type header.
	ContentType string
}

// IdemCache is a bounded LRU of idempotency-key → response. Servers
// consult it before executing a mutation carrying an X-Idempotency-Key, so
// a client retry whose first attempt actually reached the server (lost
// response, torn body) replays the original outcome instead of applying
// the mutation twice. Bounding by entry count keeps memory finite: a key
// evicted before its retry arrives degrades to at-least-once for that one
// request, which the version-checked sync path and the upload merge logic
// tolerate.
type IdemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[string]*list.Element
}

type idemEntry struct {
	key  string
	resp CachedResponse
}

// DefaultIdemEntries is the default cache bound (per server).
const DefaultIdemEntries = 4096

// NewIdemCache returns a cache bounded to capacity entries
// (DefaultIdemEntries when capacity <= 0).
func NewIdemCache(capacity int) *IdemCache {
	if capacity <= 0 {
		capacity = DefaultIdemEntries
	}
	return &IdemCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached response for key, refreshing its recency.
func (c *IdemCache) Get(key string) (CachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return CachedResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*idemEntry).resp, true
}

// Put records the outcome of a completed mutation, evicting the least
// recently used entry when full. Re-putting an existing key replaces it.
func (c *IdemCache) Put(key string, resp CachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*idemEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&idemEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*idemEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *IdemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
