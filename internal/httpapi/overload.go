package httpapi

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/overload"
)

// retryAfterHeader carries the server's backoff hint on 429 responses;
// the resilience clients already parse it (delta-seconds or HTTP-date).
const retryAfterHeader = "Retry-After"

// requestWriteTimeout bounds how long one non-streaming response may take
// to write. It replaces http.Server.WriteTimeout, which would also kill
// long-lived SSE streams; instead each request gets its own deadline here
// and serveSSE rolls its own forward every frame.
const requestWriteTimeout = 2 * time.Minute

// sseWriteTimeout is the rolling per-frame deadline for SSE streams: each
// poll iteration pushes it past the next keep-alive, so a healthy stream
// lives forever but a client that stops reading is disconnected.
const sseWriteTimeout = ssePollWait + 45*time.Second

// classifier maps a mux route pattern to its priority class; gated=false
// bypasses admission entirely (health, metrics, debug).
type classifier func(route string) (class overload.Class, gated bool)

// storeRouteClass assigns store routes: ingest (uploads, rule and account
// mutations — the paper's never-shed tier), stream (live delivery, shed
// first), query (consumer reads). Unmatched paths 404 cheaply; admitting
// them would let scanners occupy gate slots.
func storeRouteClass(route string) (overload.Class, bool) {
	switch {
	case route == "/api/upload",
		route == "/api/register",
		route == "/api/rotate",
		route == "/api/password",
		route == "/api/login",
		route == "/api/groups/assign",
		strings.HasPrefix(route, "/api/rules/"),
		strings.HasPrefix(route, "/api/places/"):
		return overload.ClassIngest, true
	case strings.HasPrefix(route, "/api/stream/"):
		return overload.ClassStream, true
	case route == "/api/query",
		route == "/api/queryown",
		route == "/api/recommend",
		strings.HasPrefix(route, "/api/audit/"):
		return overload.ClassQuery, true
	}
	return 0, false
}

// brokerRouteClass assigns broker routes: store-originated sync plus
// registrations are ingest; every other API call is directory traffic
// (shed only by gate overflow, never by brownout).
func brokerRouteClass(route string) (overload.Class, bool) {
	switch {
	case route == "/api/sync",
		route == "/api/sync/digest",
		route == "/api/contributors/register",
		route == "/api/consumers/register":
		return overload.ClassIngest, true
	case strings.HasPrefix(route, "/api/"):
		return overload.ClassDirectory, true
	}
	return 0, false
}

// principalOf identifies the client for per-principal rate limiting: the
// remote IP without the ephemeral port, so one client's connections share
// one token bucket.
func principalOf(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// withOverload mounts the admission controller between withObs and the
// idempotency layer: shed requests answer 429 + Retry-After without
// touching handlers (or the idempotency cache, which never stores 429s),
// and admitted ones release their gate slot when the handler returns.
func withOverload(ctrl *overload.Controller, classify classifier, mux *http.ServeMux, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		class, gated := classify(route)
		if !gated {
			next.ServeHTTP(w, r)
			return
		}
		span := trace.FromContext(r.Context())
		release, rej := ctrl.Admit(r.Context(), class, principalOf(r))
		if rej != nil {
			span.AddEvent("overload.shed",
				trace.String("class", rej.Class.String()),
				trace.String("reason", rej.Reason),
				trace.String("state", rej.State.String()))
			writeShed(w, rej)
			return
		}
		defer release()
		span.SetAttr(
			trace.String("overload.class", class.String()),
			trace.String("overload.state", ctrl.State().String()))

		// Per-request write deadline instead of a server-wide WriteTimeout
		// (which would kill SSE); serveSSE re-arms its own rolling deadline.
		rc := http.NewResponseController(w)
		if route != "/api/stream/live" {
			// Errors are expected for recorders in tests; a real *http.Server
			// connection always supports deadlines.
			_ = rc.SetWriteDeadline(time.Now().Add(requestWriteTimeout))
		}
		next.ServeHTTP(w, r)
	})
}

// writeShed answers a rejected request: 429, Retry-After in whole seconds
// (rounded up — a truncated 0 would mean "retry immediately"), and the
// uniform error envelope so typed clients surface the message.
func writeShed(w http.ResponseWriter, rej *overload.Rejection) {
	secs := int64((rej.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set(retryAfterHeader, strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(errorBody{Error: rej.Error()})
}
