// Package bad exercises the mutexguard analyzer: reading an annotated
// field without the lock, the Locked suffix, or a caller-holds doc comment
// is flagged.
package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) peek() int {
	return c.n // want "counter.n is guarded"
}
