package timeutil

import (
	"testing"
	"testing/quick"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	tt, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tt
}

func TestRangeContains(t *testing.T) {
	start := mustTime(t, "2011-02-01T00:00:00Z")
	end := mustTime(t, "2011-03-01T00:00:00Z")
	r := Range{Start: start, End: end}
	cases := []struct {
		name string
		at   time.Time
		want bool
	}{
		{"before", start.Add(-time.Second), false},
		{"at start", start, true},
		{"middle", start.Add(24 * time.Hour), true},
		{"at end (half open)", end, false},
		{"after", end.Add(time.Second), false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.at); got != tc.want {
			t.Errorf("%s: Contains(%v) = %v, want %v", tc.name, tc.at, got, tc.want)
		}
	}
}

func TestRangeUnbounded(t *testing.T) {
	var r Range
	if !r.Contains(time.Now()) {
		t.Error("zero range should contain every instant")
	}
	r = Range{Start: mustTime(t, "2011-02-01T00:00:00Z")}
	if r.Contains(mustTime(t, "2011-01-31T00:00:00Z")) {
		t.Error("open-above range should not contain instants before start")
	}
	if !r.Contains(mustTime(t, "2030-01-01T00:00:00Z")) {
		t.Error("open-above range should contain far-future instants")
	}
}

func TestNewRangeRejectsInverted(t *testing.T) {
	a := mustTime(t, "2011-03-01T00:00:00Z")
	b := mustTime(t, "2011-02-01T00:00:00Z")
	if _, err := NewRange(a, b); err == nil {
		t.Fatal("expected error for end before start")
	}
}

func TestRangeOverlapsAndIntersect(t *testing.T) {
	t1 := mustTime(t, "2011-01-01T00:00:00Z")
	t2 := mustTime(t, "2011-02-01T00:00:00Z")
	t3 := mustTime(t, "2011-03-01T00:00:00Z")
	t4 := mustTime(t, "2011-04-01T00:00:00Z")

	a := Range{Start: t1, End: t3}
	b := Range{Start: t2, End: t4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("expected overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || !got.Start.Equal(t2) || !got.End.Equal(t3) {
		t.Fatalf("Intersect = %v, %v", got, ok)
	}

	c := Range{Start: t3, End: t4}
	if a.Overlaps(c) {
		t.Error("touching half-open ranges should not overlap")
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("touching ranges should have empty intersection")
	}

	var unbounded Range
	got, ok = unbounded.Intersect(a)
	if !ok || !got.Start.Equal(t1) || !got.End.Equal(t3) {
		t.Fatalf("intersect with unbounded = %v, %v", got, ok)
	}
}

func TestParseClockTime(t *testing.T) {
	cases := []struct {
		in      string
		want    ClockTime
		wantErr bool
	}{
		{"9:00am", 9 * 60, false},
		{"6:00pm", 18 * 60, false},
		{"12:00am", 0, false},
		{"12:00pm", 12 * 60, false},
		{"12:30pm", 12*60 + 30, false},
		{"18:00", 18 * 60, false},
		{"9am", 9 * 60, false},
		{"11:59pm", 23*60 + 59, false},
		{"0:00", 0, false},
		{"24:00", MinutesPerDay, false},
		{"13:00pm", 0, true},
		{"9:75am", 0, true},
		{"abc", 0, true},
		{"25:00", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseClockTime(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseClockTime(%q): expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseClockTime(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseClockTime(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockTimeStringRoundTrip(t *testing.T) {
	for m := ClockTime(0); m < MinutesPerDay; m += 7 {
		back, err := ParseClockTime(m.String())
		if err != nil {
			t.Fatalf("round trip %d (%s): %v", m, m, err)
		}
		if back != m {
			t.Fatalf("round trip %d -> %s -> %d", m, m, back)
		}
	}
}

func TestRepeatedContainsWeekdayWindow(t *testing.T) {
	// Paper Fig. 4: Mon-Fri 9:00am-6:00pm.
	rep, err := ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	if err != nil {
		t.Fatal(err)
	}
	// 2011-02-16 was a Wednesday.
	wedMorning := time.Date(2011, 2, 16, 10, 30, 0, 0, time.UTC)
	wedEvening := time.Date(2011, 2, 16, 19, 0, 0, 0, time.UTC)
	satNoon := time.Date(2011, 2, 19, 12, 0, 0, 0, time.UTC)
	atStart := time.Date(2011, 2, 16, 9, 0, 0, 0, time.UTC)
	atEnd := time.Date(2011, 2, 16, 18, 0, 0, 0, time.UTC)

	if !rep.Contains(wedMorning) {
		t.Error("Wednesday 10:30 should match")
	}
	if rep.Contains(wedEvening) {
		t.Error("Wednesday 19:00 should not match")
	}
	if rep.Contains(satNoon) {
		t.Error("Saturday should not match")
	}
	if !rep.Contains(atStart) {
		t.Error("window start should be inclusive")
	}
	if rep.Contains(atEnd) {
		t.Error("window end should be exclusive")
	}
}

func TestRepeatedWholeDay(t *testing.T) {
	rep, err := ParseRepeated([]string{"Sat", "Sun"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sat := time.Date(2011, 2, 19, 3, 0, 0, 0, time.UTC)
	mon := time.Date(2011, 2, 21, 3, 0, 0, 0, time.UTC)
	if !rep.Contains(sat) {
		t.Error("whole-day Saturday window should match 3am Saturday")
	}
	if rep.Contains(mon) {
		t.Error("Saturday/Sunday window should not match Monday")
	}
}

func TestRepeatedEveryDayDefault(t *testing.T) {
	rep, err := ParseRepeated(nil, []string{"10:00pm", "11:00pm"})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 7; d++ {
		at := time.Date(2011, 2, 13+d, 22, 30, 0, 0, time.UTC)
		if !rep.Contains(at) {
			t.Errorf("day offset %d: expected match at 22:30", d)
		}
	}
}

func TestRepeatedWrapsMidnight(t *testing.T) {
	// Friday 10pm - 2am (spills into Saturday morning).
	rep, err := ParseRepeated([]string{"Fri"}, []string{"10:00pm", "2:00am"})
	if err != nil {
		t.Fatal(err)
	}
	friNight := time.Date(2011, 2, 18, 23, 0, 0, 0, time.UTC)  // Friday
	satEarly := time.Date(2011, 2, 19, 1, 0, 0, 0, time.UTC)   // Saturday 1am
	satLater := time.Date(2011, 2, 19, 3, 0, 0, 0, time.UTC)   // Saturday 3am
	thuNight := time.Date(2011, 2, 17, 23, 0, 0, 0, time.UTC)  // Thursday
	friMorning := time.Date(2011, 2, 18, 1, 0, 0, 0, time.UTC) // Friday 1am (belongs to Thursday's window)

	if !rep.Contains(friNight) {
		t.Error("Friday 23:00 should match")
	}
	if !rep.Contains(satEarly) {
		t.Error("Saturday 01:00 should match (wraps from Friday)")
	}
	if rep.Contains(satLater) {
		t.Error("Saturday 03:00 should not match")
	}
	if rep.Contains(thuNight) {
		t.Error("Thursday 23:00 should not match")
	}
	if rep.Contains(friMorning) {
		t.Error("Friday 01:00 should not match (Thursday not active)")
	}
}

func TestRepeatedZeroMatchesNothing(t *testing.T) {
	var rep Repeated
	if !rep.IsZero() {
		t.Fatal("zero value should report IsZero")
	}
	if rep.Contains(time.Now()) {
		t.Error("zero Repeated should match nothing")
	}
}

func TestParseRepeatedErrors(t *testing.T) {
	if _, err := ParseRepeated([]string{"Funday"}, nil); err == nil {
		t.Error("expected error for bad weekday")
	}
	if _, err := ParseRepeated(nil, []string{"9:00am"}); err == nil {
		t.Error("expected error for single HourMin entry")
	}
	if _, err := ParseRepeated(nil, []string{"9:00am", "nope"}); err == nil {
		t.Error("expected error for bad clock time")
	}
}

func TestParseWeekdayAliases(t *testing.T) {
	for in, want := range map[string]time.Weekday{
		"Mon": time.Monday, "monday": time.Monday, " TUE ": time.Tuesday,
		"thurs": time.Thursday, "Sun": time.Sunday,
	} {
		got, err := ParseWeekday(in)
		if err != nil || got != want {
			t.Errorf("ParseWeekday(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestGranularityAbstract(t *testing.T) {
	at := time.Date(2011, 2, 16, 10, 31, 45, 123456789, time.UTC)
	cases := []struct {
		g    Granularity
		want time.Time
	}{
		{GranMillisecond, time.Date(2011, 2, 16, 10, 31, 45, 123000000, time.UTC)},
		{GranSecond, time.Date(2011, 2, 16, 10, 31, 45, 0, time.UTC)},
		{GranMinute, time.Date(2011, 2, 16, 10, 31, 0, 0, time.UTC)},
		{GranHour, time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)},
		{GranDay, time.Date(2011, 2, 16, 0, 0, 0, 0, time.UTC)},
		{GranMonth, time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC)},
		{GranYear, time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)},
		{GranNotShared, time.Time{}},
	}
	for _, tc := range cases {
		if got := tc.g.Abstract(at); !got.Equal(tc.want) {
			t.Errorf("%v.Abstract = %v, want %v", tc.g, got, tc.want)
		}
	}
}

func TestGranularityParseAndOrder(t *testing.T) {
	for _, name := range []string{"Milliseconds", "Hour", "Day", "Month", "Year", "NotShared", "not share"} {
		if _, err := ParseGranularity(name); err != nil {
			t.Errorf("ParseGranularity(%q): %v", name, err)
		}
	}
	if _, err := ParseGranularity("fortnight"); err == nil {
		t.Error("expected error for unknown granularity")
	}
	if !GranYear.CoarserThan(GranDay) {
		t.Error("Year should be coarser than Day")
	}
	if GranHour.CoarserThan(GranHour) {
		t.Error("granularity is not coarser than itself")
	}
	if Coarsest(GranDay, GranNotShared) != GranNotShared {
		t.Error("Coarsest should pick NotShared")
	}
}

func TestGranularityAbstractIdempotent(t *testing.T) {
	f := func(sec int64) bool {
		at := time.Unix(sec%4102444800, 0).UTC() // clamp to sane year range
		if at.Year() < 1 {
			at = time.Unix(0, 0).UTC()
		}
		for g := GranMillisecond; g <= GranNotShared; g++ {
			once := g.Abstract(at)
			twice := g.Abstract(once)
			if !once.Equal(twice) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGranularityMonotone(t *testing.T) {
	// Abstracting at a coarser level then a finer one equals the coarser
	// level alone (information only decreases along the ladder).
	f := func(sec int64) bool {
		at := time.Unix(sec%4102444800, 0).UTC()
		if at.Year() < 1 {
			at = time.Unix(0, 0).UTC()
		}
		for g := GranMillisecond; g < GranNotShared; g++ {
			coarse := (g + 1).Abstract(at)
			if !g.Abstract(coarse).Equal(coarse) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeRanges(t *testing.T) {
	t1 := mustTime(t, "2011-01-01T00:00:00Z")
	t2 := mustTime(t, "2011-02-01T00:00:00Z")
	t3 := mustTime(t, "2011-03-01T00:00:00Z")
	t4 := mustTime(t, "2011-04-01T00:00:00Z")
	t5 := mustTime(t, "2011-05-01T00:00:00Z")

	got := MergeRanges([]Range{
		{Start: t3, End: t4},
		{Start: t1, End: t2},
		{Start: t2, End: t3}, // adjacent to both
	})
	if len(got) != 1 || !got[0].Start.Equal(t1) || !got[0].End.Equal(t4) {
		t.Fatalf("MergeRanges adjacent = %v", got)
	}

	got = MergeRanges([]Range{{Start: t1, End: t2}, {Start: t4, End: t5}})
	if len(got) != 2 {
		t.Fatalf("disjoint ranges should stay separate: %v", got)
	}

	// sorted: [t1,t3), [t2,∞) -> t2 before t3 so they merge into [t1,∞)
	got = MergeRanges([]Range{{Start: t2}, {Start: t1, End: t3}})
	if len(got) != 1 || !got[0].Start.Equal(t1) || !got[0].End.IsZero() {
		t.Fatalf("unexpected merge result: %v", got)
	}
	if MergeRanges(nil) != nil {
		t.Error("MergeRanges(nil) should be nil")
	}
}

func TestMergeRangesUnboundedAbsorbs(t *testing.T) {
	t1 := mustTime(t, "2011-01-01T00:00:00Z")
	t2 := mustTime(t, "2011-02-01T00:00:00Z")
	got := MergeRanges([]Range{{Start: t1, End: t2}, {Start: t1}})
	if len(got) != 1 || !got[0].End.IsZero() {
		t.Fatalf("unbounded range should absorb bounded: %v", got)
	}
}

func TestRepeatedStringAndDays(t *testing.T) {
	rep, err := ParseRepeated([]string{"Wed", "Mon"}, []string{"9:00am", "6:00pm"})
	if err != nil {
		t.Fatal(err)
	}
	days := rep.Days()
	if len(days) != 2 || days[0] != time.Monday || days[1] != time.Wednesday {
		t.Fatalf("Days() = %v", days)
	}
	if s := rep.String(); s != "Mon,Wed 9:00am-6:00pm" {
		t.Errorf("String() = %q", s)
	}
	from, to := rep.Window()
	if from != 9*60 || to != 18*60 {
		t.Errorf("Window() = %d, %d", from, to)
	}
}

func TestRangeString(t *testing.T) {
	var r Range
	if r.String() != "[-, -)" {
		t.Errorf("zero range String() = %q", r.String())
	}
	r.Start = mustTime(t, "2011-01-01T00:00:00Z")
	if r.String() != "[2011-01-01T00:00:00Z, -)" {
		t.Errorf("String() = %q", r.String())
	}
}

func TestRangeDuration(t *testing.T) {
	t1 := mustTime(t, "2011-01-01T00:00:00Z")
	r := Range{Start: t1, End: t1.Add(time.Hour)}
	if r.Duration() != time.Hour {
		t.Errorf("Duration = %v", r.Duration())
	}
	if (Range{Start: t1}).Duration() != 0 {
		t.Error("unbounded range duration should be 0")
	}
}
