package ruleindex

import "math/bits"

// bitset is a fixed-width bit vector over rule positions (rule-set order).
// All bitsets in one index share the same width, so the binary operations
// never bounds-check against each other.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// and intersects o into b.
func (b bitset) and(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// or unions o into b.
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// copyFrom overwrites b with o (same width).
func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach visits the set bit positions in ascending order — rule-set
// order, which is what keeps the combiner's Matched list identical to the
// linear engine's.
func (b bitset) forEach(fn func(i int32)) {
	for wi, w := range b {
		base := int32(wi) << 6
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
