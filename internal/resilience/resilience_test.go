package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marked retryable", MarkRetryable(errors.New("boom")), true},
		{"marked terminal", MarkTerminal(io.ErrUnexpectedEOF), false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, true},
		{"wrapped deadline", fmt.Errorf("op: %w", context.DeadlineExceeded), true},
		{"torn body", io.ErrUnexpectedEOF, true},
		{"eof", io.EOF, true},
		{"status 500", Status(500, 0, "internal"), true},
		{"status 503", Status(503, 0, "unavailable"), true},
		{"status 429", Status(429, 0, "throttled"), true},
		{"status 400", Status(400, 0, "bad request"), false},
		{"status 403", Status(403, 0, "forbidden"), false},
		{"status 409 stale", Status(409, 0, "stale"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestStatusErrorStaleSentinel(t *testing.T) {
	err := Status(http.StatusConflict, 0, "replica version 3 behind 5")
	if !IsStale(err) {
		t.Fatal("409 should unwrap to ErrStaleVersion")
	}
	if IsStale(Status(500, 0, "boom")) {
		t.Fatal("500 must not read as stale")
	}
	wrapped := fmt.Errorf("sync: %w", err)
	if !IsStale(wrapped) {
		t.Fatal("stale sentinel must survive wrapping")
	}
}

func TestRetryAfterOf(t *testing.T) {
	if got := RetryAfterOf(Status(503, 2*time.Second, "busy")); got != 2*time.Second {
		t.Fatalf("RetryAfterOf = %v, want 2s", got)
	}
	if got := RetryAfterOf(errors.New("plain")); got != 0 {
		t.Fatalf("RetryAfterOf(plain) = %v, want 0", got)
	}
}

func TestPolicyDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	p := &Policy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Jitter:      0.0001, // effectively none, keeps the schedule inspectable
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	err := p.Do(context.Background(), "test", func(ctx context.Context) error {
		calls++
		if calls < 4 {
			return Status(503, 0, "unavailable")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if len(slept) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(slept))
	}
	// Roughly 10ms, 20ms, 40ms — doubling, within jitter slack.
	for i, want := range []time.Duration{10, 20, 40} {
		lo, hi := want*time.Millisecond*9/10, want*time.Millisecond*11/10
		if slept[i] < lo || slept[i] > hi {
			t.Errorf("sleep[%d] = %v, want ~%vms", i, slept[i], want)
		}
	}
}

func TestPolicyDoStopsOnTerminal(t *testing.T) {
	p := &Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), "test", func(ctx context.Context) error {
		calls++
		return Status(403, 0, "forbidden")
	})
	if calls != 1 {
		t.Fatalf("terminal error retried: calls = %d", calls)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 403 {
		t.Fatalf("err = %v, want the 403 back", err)
	}
}

func TestPolicyDoExhaustsAttempts(t *testing.T) {
	p := &Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), "test", func(ctx context.Context) error {
		calls++
		return Status(500, 0, "still down")
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || !Retryable(err) {
		t.Fatalf("exhaustion should surface the retryable cause, got %v", err)
	}
}

func TestPolicyDoRespectsRetryAfter(t *testing.T) {
	var slept []time.Duration
	p := &Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	p.Do(context.Background(), "test", func(ctx context.Context) error {
		return Status(429, 300*time.Millisecond, "throttled")
	})
	if len(slept) != 1 || slept[0] < 300*time.Millisecond {
		t.Fatalf("Retry-After ignored: slept %v", slept)
	}
}

func TestPolicyDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Policy{MaxAttempts: 10, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(ctx, "test", func(context.Context) error {
		calls++
		cancel()
		return Status(500, 0, "boom")
	})
	if calls != 1 {
		t.Fatalf("calls after cancel = %d, want 1", calls)
	}
	if err == nil {
		t.Fatal("want error after cancellation")
	}
}

func TestPolicyDoBudgetExhaustion(t *testing.T) {
	b := NewBudget(0.1, 2) // two retries in the bank, nothing coming in
	p := &Policy{MaxAttempts: 10, Budget: b,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), "test", func(context.Context) error {
		calls++
		return Status(500, 0, "down")
	})
	if calls != 3 { // first try + 2 budgeted retries
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil {
		t.Fatal("want budget-exhausted error")
	}
}

func TestBudgetDepositsRefill(t *testing.T) {
	b := NewBudget(0.5, 1)
	if !b.Withdraw() {
		t.Fatal("initial burst should allow one retry")
	}
	if b.Withdraw() {
		t.Fatal("budget should be dry")
	}
	b.Deposit()
	b.Deposit() // two successes = one token at 0.5/success
	if !b.Withdraw() {
		t.Fatal("deposits should refill the budget")
	}
}

func TestPolicyPerAttemptTimeout(t *testing.T) {
	p := &Policy{MaxAttempts: 2, PerAttemptTimeout: 10 * time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	attempts := 0
	err := p.Do(context.Background(), "test", func(ctx context.Context) error {
		attempts++
		<-ctx.Done() // simulate a hang; per-attempt deadline must fire
		return ctx.Err()
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (deadline is retryable)", attempts)
	}
	if err == nil {
		t.Fatal("want error after both attempts time out")
	}
}

func TestIdemCacheLRU(t *testing.T) {
	c := NewIdemCache(2)
	c.Put("a", CachedResponse{Status: 200, Body: []byte("A")})
	c.Put("b", CachedResponse{Status: 200, Body: []byte("B")})
	if _, ok := c.Get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.Put("c", CachedResponse{Status: 200, Body: []byte("C")}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Put("a", CachedResponse{Status: 201, Body: []byte("A2")})
	if got, _ := c.Get("a"); got.Status != 201 {
		t.Fatalf("re-put should replace: status %d", got.Status)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte(`{"v":1}`), 0o600); err != nil {
		t.Fatal(err)
	}
	// A stray torn temp file from a "crash" must not block or corrupt the
	// next write.
	if err := os.WriteFile(path+".tmp", []byte(`{"v":2,"TORN`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte(`{"v":3}`), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"v":3}` {
		t.Fatalf("content = %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file should be consumed by the rename")
	}
}
