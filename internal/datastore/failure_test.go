package datastore

import (
	"errors"
	"testing"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
)

// failingSync simulates a broker that is down or rejecting replicas; flip
// down to false to heal it.
type failingSync struct {
	down  bool
	calls int
}

func (f *failingSync) SyncRules(string, uint64, []byte, []geo.Region) error {
	f.calls++
	if f.down {
		return errors.New("broker unreachable")
	}
	return nil
}

func (f *failingSync) SyncDigest(string, map[string]uint64) ([]string, error) {
	if f.down {
		return nil, errors.New("broker unreachable")
	}
	return nil, nil
}

func TestSyncFailureDoesNotCorruptStore(t *testing.T) {
	sync := &failingSync{down: true}
	s := newService(t, Options{Sync: sync})
	alice, bob := setupAliceBob(t, s)

	// SetRules succeeds locally even though the broker is down: the change
	// is committed and queued in the durable outbox instead of surfacing
	// the push failure to the contributor.
	if err := s.SetRules(alice.Key, []byte(`[{"Consumer":["Bob"],"Action":"Allow"}]`)); err != nil {
		t.Fatalf("broker outage must not fail a local rule change: %v", err)
	}
	if sync.calls == 0 {
		t.Fatal("sync was never attempted")
	}
	if s.SyncBacklog() != 1 {
		t.Fatalf("failed push should stay in the outbox: backlog = %d", s.SyncBacklog())
	}
	// The rules were installed locally and enforcement works: the store is
	// authoritative, the broker replica is best-effort.
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatal(err)
	}
	rels, err := s.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("local enforcement should work despite sync failure: %d releases", len(rels))
	}
	// ResyncAll against a still-failing broker surfaces the error.
	if err := s.ResyncAll(); err == nil {
		t.Error("resync against a failing broker should error")
	}
	if err := s.AntiEntropy(); err == nil {
		t.Error("anti-entropy against a failing broker should error")
	}
	// Recovery: when the broker returns, one anti-entropy round drains the
	// outbox.
	sync.down = false
	if err := s.AntiEntropy(); err != nil {
		t.Fatalf("anti-entropy after recovery: %v", err)
	}
	if s.SyncBacklog() != 0 {
		t.Fatalf("outbox should drain after recovery: backlog = %d", s.SyncBacklog())
	}
}

// failingDirectory simulates a broker rejecting contributor registration.
type failingDirectory struct{}

func (failingDirectory) RegisterContributor(string, string) error {
	return errors.New("broker unreachable")
}

func TestDirectoryFailureStillCreatesAccount(t *testing.T) {
	s := newService(t, Options{Directory: failingDirectory{}})
	u, err := s.RegisterContributor("alice")
	if err == nil {
		t.Fatal("directory failure should surface")
	}
	// The local account exists (with its key) so the contributor is not
	// locked out; re-announcement can happen later.
	if u.Key == "" {
		t.Fatal("local account should still be issued")
	}
	if _, err := s.Upload(u.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatalf("local account should work: %v", err)
	}
}

func TestQueryWindowClipping(t *testing.T) {
	// Regression for the episodic-window bug: releases must never contain
	// samples outside the query window, even when a stored record spans it.
	s := newService(t, Options{MaxSegmentSamples: 1 << 20})
	alice, bob := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	// One 10-minute record.
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 94)); err != nil {
		t.Fatal(err)
	}
	from, to := t0.Add(60*1e9), t0.Add(120*1e9) // [t0+1m, t0+2m)
	rels, err := s.Query(bob.Key, &query.Query{From: from, To: to})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rel := range rels {
		if rel.Segment == nil {
			continue
		}
		total += rel.Segment.NumSamples()
		if rel.Segment.StartTime().Before(from) || rel.Segment.EndTime().After(to) {
			t.Errorf("release %v..%v escapes window %v..%v",
				rel.Segment.StartTime(), rel.Segment.EndTime(), from, to)
		}
	}
	if total != 600 { // one minute at 10 Hz
		t.Errorf("released %d samples, want 600", total)
	}
}
