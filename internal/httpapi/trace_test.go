package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/federation"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/wavesegment"
)

// tracedMember is one contributor in a traced federated deployment.
type tracedMember struct {
	rules string
	// delay slows every /api/query on this member's store (for forcing
	// hedges); zero serves at full speed.
	delay time.Duration
}

type tracedStore struct {
	svc      *datastore.Service
	client   *StoreClient
	url      string
	ownerKey auth.APIKey
}

// deployTraced spins up a broker plus one store per member over real HTTP,
// each holding one ECG segment, and returns handles that keep the
// server-side services reachable (for audit-trail assertions).
func deployTraced(t *testing.T, members map[string]tracedMember) (*BrokerClient, map[string]*tracedStore) {
	t.Helper()
	// A fresh collector per test: earlier tests in this package (chaos
	// suites especially) fill the process default with error/slow traces,
	// which the retention policy keeps at the expense of new boring ones.
	prev := trace.Default()
	trace.SetDefault(trace.NewCollector(0, 0, 0))
	t.Cleanup(func() { trace.SetDefault(prev) })
	bsvc := broker.New()
	brokerServer := httptest.NewServer(NewBrokerHandler(bsvc))
	t.Cleanup(brokerServer.Close)
	bc := &BrokerClient{BaseURL: brokerServer.URL}

	stores := make(map[string]*tracedStore)
	for name, m := range members {
		var storeURL string
		svc, err := datastore.New(datastore.Options{Sync: bc, Directory: &lazyDirectory{bc: bc, addr: &storeURL}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		inner := NewStoreHandler(svc)
		delay := m.delay
		storeServer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if delay > 0 && r.URL.Path == "/api/query" {
				time.Sleep(delay)
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(storeServer.Close)
		storeURL = storeServer.URL
		sc := &StoreClient{BaseURL: storeServer.URL}

		owner, err := sc.Register(name, "contributor")
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.SetRules(owner.Key, []byte(m.rules)); err != nil {
			t.Fatal(err)
		}
		seg := &wavesegment.Segment{
			Contributor: name, Start: t0, Interval: time.Second,
			Location: home, Channels: []string{wavesegment.ChannelECG},
			Values: [][]float64{{1}, {2}},
		}
		if _, err := sc.Upload(owner.Key, []*wavesegment.Segment{seg}); err != nil {
			t.Fatal(err)
		}
		stores[name] = &tracedStore{svc: svc, client: sc, url: storeServer.URL, ownerKey: owner.Key}
	}
	return bc, stores
}

// spansByName indexes one collected trace.
func spansByName(spans []*trace.SpanData) map[string][]*trace.SpanData {
	out := make(map[string][]*trace.SpanData)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// hasAncestor walks the parent chain of s within spans looking for a span
// named want.
func hasAncestor(spans []*trace.SpanData, s *trace.SpanData, want string) bool {
	byID := make(map[string]*trace.SpanData, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	for cur := s; cur != nil; cur = byID[cur.ParentID] {
		if cur.Name == want && cur != s {
			return true
		}
		if cur.ParentID == "" {
			break
		}
	}
	return false
}

// collectTrace polls the default collector until cond holds for the trace
// or the deadline passes (spans from losing hedge attempts and parallel
// goroutines may end after the query returns).
func collectTrace(t *testing.T, id string, cond func([]*trace.SpanData) bool) []*trace.SpanData {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		spans := trace.Default().Trace(id)
		if cond(spans) || time.Now().After(deadline) {
			return spans
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceSpansFederatedQuery is the end-to-end tracing acceptance test:
// one trace ID must cover the consumer's root span, the federation fan-out,
// the broker's provisioning of each store (broker.connect), and every
// store's rule evaluation with decision provenance — all linked into one
// tree by exact parent IDs, across real HTTP hops.
func TestTraceSpansFederatedQuery(t *testing.T) {
	bc, stores := deployTraced(t, map[string]tracedMember{
		"alice": {rules: `[{"ID":"share-ecg","Action":"Allow"}]`},
		"bea":   {rules: `[{"ID":"share-ecg","Action":"Allow"}]`},
		"cara":  {rules: `[{"ID":"lockdown","Action":"Deny"}]`},
	})
	bob, err := bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(bc, bob.Key, federation.Options{PerStoreTimeout: 5 * time.Second})

	ctx, root := trace.Start(context.Background(), "test.cohort")
	res, err := eng.CohortQuery(ctx, &federation.Request{
		Cohort: federation.Cohort{Contributors: []string{"alice", "bea", "cara"}},
	})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Releases) != 2 {
		t.Fatalf("got %d releases (partial=%v), want 2 from alice+bea", len(res.Releases), res.Partial)
	}

	tid := root.TraceIDString()
	spans := collectTrace(t, tid, func(spans []*trace.SpanData) bool {
		n := spansByName(spans)
		return len(n["broker.connect"]) >= 3 && len(n["datastore.rule_eval"]) >= 3
	})
	byName := spansByName(spans)

	// Every span in the collected trace carries the root's trace ID.
	for _, s := range spans {
		if s.TraceID != tid {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.TraceID, tid)
		}
	}

	// Exact tree links: root → cohort_query → {resolve, 3× store_query}.
	cq := byName["federation.cohort_query"]
	if len(cq) != 1 || cq[0].ParentID != rootSpanID(root) {
		t.Fatalf("federation.cohort_query spans = %d, parent links to root = %v", len(cq), cq)
	}
	if rs := byName["federation.resolve"]; len(rs) != 1 || rs[0].ParentID != cq[0].SpanID {
		t.Fatalf("federation.resolve = %+v, want one child of cohort_query", rs)
	}
	sq := byName["federation.store_query"]
	if len(sq) != 3 {
		t.Fatalf("federation.store_query spans = %d, want 3 (one per cohort member)", len(sq))
	}
	fanned := map[string]bool{}
	for _, s := range sq {
		if s.ParentID != cq[0].SpanID {
			t.Errorf("store_query %v not a direct child of cohort_query", s.Attrs)
		}
		if c, _ := s.Attrs["contributor"].(string); c != "" {
			fanned[c] = true
		}
	}
	if len(fanned) != 3 {
		t.Errorf("store_query contributors = %v, want alice/bea/cara", fanned)
	}

	// Broker resolution: each store's provisioning ran under its fan-out
	// leg — broker.connect is server-side on the broker, joined over HTTP.
	bcn := byName["broker.connect"]
	if len(bcn) != 3 {
		t.Fatalf("broker.connect spans = %d, want 3", len(bcn))
	}
	for _, s := range bcn {
		if !hasAncestor(spans, s, "federation.store_query") {
			t.Errorf("broker.connect %v does not descend from a store_query span", s.Attrs)
		}
	}

	// Decision provenance: every store's rule_eval span names the matched
	// rule IDs, the rule version, and the decision class.
	evals := byName["datastore.rule_eval"]
	if len(evals) < 3 {
		t.Fatalf("datastore.rule_eval spans = %d, want one per store", len(evals))
	}
	sawAllow, sawDeny := false, false
	for _, s := range evals {
		if !hasAncestor(spans, s, "federation.store_query") {
			t.Errorf("rule_eval %v does not descend from a store_query span", s.Attrs)
		}
		if _, ok := s.Attrs["rule_version"].(int64); !ok {
			t.Errorf("rule_eval missing rule_version: %v", s.Attrs)
		}
		switch s.Attrs["decision"] {
		case "allow":
			sawAllow = true
			if rules, _ := s.Attrs["rules_matched"].(string); !strings.Contains(rules, "share-ecg") {
				t.Errorf("allow rule_eval rules_matched = %q, want share-ecg", rules)
			}
		case "deny":
			// Withheld spans release nothing, so no per-release rule IDs —
			// the deny class itself is the provenance.
			sawDeny = true
		}
	}
	if !sawAllow || !sawDeny {
		t.Errorf("rule_eval decisions: allow=%v deny=%v, want both", sawAllow, sawDeny)
	}

	// Audit cross-reference: the contributors' trails record the trace ID.
	for name, st := range stores {
		evs, err := st.svc.Audit(st.ownerKey, audit.Filter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			t.Errorf("%s: no audit events", name)
			continue
		}
		for _, ev := range evs {
			if ev.TraceID != tid {
				t.Errorf("%s: audit event trace %q, want %q", name, ev.TraceID, tid)
			}
		}
	}

	// The /debug/traces endpoint serves the same trace as JSON.
	resp, err := http.Get(stores["alice"].url + "/debug/traces?id=" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id= status %d", resp.StatusCode)
	}
	var page struct {
		TraceID string            `json:"traceId"`
		Spans   []*trace.SpanData `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.TraceID != tid || len(page.Spans) != len(spans) {
		t.Errorf("/debug/traces served %d spans for %s, collector has %d", len(page.Spans), page.TraceID, len(spans))
	}
}

// rootSpanID is a live span's own ID in collected-span form.
func rootSpanID(s *trace.Span) string {
	return s.Context().Span.String()
}

// TestTraceHedgeSpanLabeled forces a hedged store fetch and asserts the
// duplicate attempt shows up as its own federation.hedge span under the
// store's fan-out leg.
func TestTraceHedgeSpanLabeled(t *testing.T) {
	bc, _ := deployTraced(t, map[string]tracedMember{
		"dana": {rules: `[{"ID":"share-ecg","Action":"Allow"}]`, delay: 80 * time.Millisecond},
	})
	bob, err := bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(bc, bob.Key, federation.Options{
		PerStoreTimeout: 5 * time.Second,
		HedgeAfter:      10 * time.Millisecond,
	})

	ctx, root := trace.Start(context.Background(), "test.hedge")
	res, err := eng.CohortQuery(ctx, &federation.Request{
		Cohort: federation.Cohort{Contributors: []string{"dana"}},
	})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || !res.Reports[0].Hedged {
		t.Fatalf("reports = %+v, want dana hedged", res.Reports)
	}

	tid := root.TraceIDString()
	spans := collectTrace(t, tid, func(spans []*trace.SpanData) bool {
		return len(spansByName(spans)["federation.hedge"]) >= 1
	})
	byName := spansByName(spans)
	hedges := byName["federation.hedge"]
	if len(hedges) == 0 {
		t.Fatalf("no federation.hedge span in trace; have %v", names(byName))
	}
	for _, h := range hedges {
		if !hasAncestor(spans, h, "federation.store_query") {
			t.Errorf("hedge span not under store_query")
		}
	}
	sqs := byName["federation.store_query"]
	if len(sqs) != 1 {
		t.Fatalf("store_query spans = %d, want 1", len(sqs))
	}
	if hedged, _ := sqs[0].Attrs["hedged"].(bool); !hedged {
		t.Errorf("store_query attrs = %v, want hedged=true", sqs[0].Attrs)
	}
}

func names(byName map[string][]*trace.SpanData) []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	return out
}
