// Package bad exercises the releasepath analyzer: importing the raw
// storage layer, calling raw accessors, and letting unreleased segments
// reach a consumer response shape are all flagged.
package bad

import (
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/storage" // want "imports sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

type queryResp struct {
	Segments []*wavesegment.Segment
}

func leak(svc *datastore.Service) queryResp {
	segs := rawScan(svc)
	return queryResp{Segments: segs} // want "raw"
}

func rawScan(svc *datastore.Service) []*wavesegment.Segment {
	st := svc.Storage()                      // want "datastore.Storage"
	results, err := st.Scan(storage.Query{}) // want "call to storage.Scan"
	if err != nil {
		return nil
	}
	segs := make([]*wavesegment.Segment, 0, len(results))
	for _, res := range results {
		segs = append(segs, res.Segment)
	}
	return segs
}
