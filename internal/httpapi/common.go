// Package httpapi exposes the remote data store and the broker over
// HTTP(S) JSON APIs and provides the matching typed clients. Following the
// paper (§5.4), API keys travel in the body of POST requests — never in
// URLs — so that TLS protects them and they stay out of server logs; the
// servers also expose a minimal HTML status page standing in for the
// paper's web user interface (Fig. 3), whose output is the same rule JSON
// the API accepts.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/stream"
)

// maxBodyBytes bounds request bodies (64 MiB covers large upload batches).
const maxBodyBytes = 64 << 20

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// errMethodNotAllowed marks non-POST calls on POST-only API endpoints.
var errMethodNotAllowed = errors.New("httpapi: method not allowed")

// writeJSON encodes a 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will show the
		// truncated body.
		return
	}
}

// writeError maps service errors to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, auth.ErrBadKey),
		errors.Is(err, auth.ErrBadLogin),
		errors.Is(err, auth.ErrSessionExpired):
		status = http.StatusUnauthorized
	case errors.Is(err, datastore.ErrNotContributor),
		errors.Is(err, datastore.ErrNotConsumer),
		errors.Is(err, stream.ErrNotOwner):
		status = http.StatusForbidden
	case errors.Is(err, auth.ErrUnknownUser),
		errors.Is(err, datastore.ErrUnknownUser),
		errors.Is(err, stream.ErrUnknownSubscription),
		errors.Is(err, broker.ErrUnknownContributor),
		errors.Is(err, broker.ErrUnknownStore),
		errors.Is(err, broker.ErrUnknownList),
		errors.Is(err, broker.ErrUnknownStudy):
		status = http.StatusNotFound
	case errors.Is(err, auth.ErrDuplicateUser),
		errors.Is(err, resilience.ErrStaleVersion):
		// 409 round-trips the stale-version sentinel: the client-side
		// StatusError unwraps a 409 back to resilience.ErrStaleVersion.
		status = http.StatusConflict
	case errors.Is(err, errMethodNotAllowed):
		status = http.StatusMethodNotAllowed
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// post wraps a JSON-in/JSON-out handler: decodes the request body into req
// and writes whatever handle returns. The request context (carrying the
// middleware's request ID) is passed through so handlers can correlate
// spans and outbound service-to-service calls.
func post[Req any, Resp any](handle func(context.Context, *Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, fmt.Errorf("%w: %s", errMethodNotAllowed, r.Method))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, fmt.Errorf("httpapi: reading body: %w", err))
			return
		}
		var req Req
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				writeError(w, fmt.Errorf("httpapi: bad request JSON: %w", err))
				return
			}
		}
		resp, err := handle(r.Context(), &req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, resp)
	}
}

// okResp is the empty success envelope.
type okResp struct {
	OK bool `json:"ok"`
}

// Health is the JSON shape of both servers' /healthz endpoints; the
// store fills Name/Segments/Users, the broker Contributors/Consumers.
type Health struct {
	Status       string  `json:"status"`
	UptimeS      float64 `json:"uptime_s"`
	Name         string  `json:"name,omitempty"`
	Segments     int     `json:"segments,omitempty"`
	Users        int     `json:"users,omitempty"`
	Contributors int     `json:"contributors,omitempty"`
	Consumers    int     `json:"consumers,omitempty"`
	// Degradation is the overload controller's state ("healthy",
	// "degraded", "overloaded") and Pressure its composite signal in
	// [0,1+]; load balancers and `consumercli health` read these.
	Degradation string  `json:"degradation,omitempty"`
	Pressure    float64 `json:"pressure,omitempty"`
}
