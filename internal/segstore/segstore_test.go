package segstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// t0 is an arbitrary fixed epoch for deterministic segments.
var t0 = time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)

// mkSeg builds a valid periodic segment: n samples at 1s for the
// contributor, starting at t0+off.
func mkSeg(contributor string, off time.Duration, n int, channels ...string) *wavesegment.Segment {
	if len(channels) == 0 {
		channels = []string{"hr"}
	}
	s := &wavesegment.Segment{
		Contributor: contributor,
		Start:       t0.Add(off),
		Interval:    time.Second,
		Location:    geo.Point{Lat: 34.07, Lon: -118.45},
		Channels:    channels,
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(channels))
		for j := range row {
			row[j] = float64(i) + float64(j)/10
		}
		s.Values = append(s.Values, row)
	}
	return s
}

func openTestStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// blob canonicalizes a segment for comparison.
func blob(t *testing.T, s *wavesegment.Segment) string {
	t.Helper()
	b, err := wavesegment.MarshalBinary(s)
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return string(b)
}

// resultsEqual compares two result sets by (ID, encoded segment).
func resultsEqual(t *testing.T, want, got []storage.Result) bool {
	t.Helper()
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i].ID != got[i].ID || blob(t, want[i].Segment) != blob(t, got[i].Segment) {
			return false
		}
	}
	return true
}

// TestDifferentialAgainstLegacyEngine drives the segstore and the
// legacy in-memory engine through an identical randomized workload —
// puts across contributors with shuffled starts, deletes, explicit
// flushes — and demands identical observable behavior from every read
// API.
func TestDifferentialAgainstLegacyEngine(t *testing.T) {
	seg := openTestStore(t, t.TempDir(), Options{MemtableBytes: 8 << 10})
	defer seg.Close()
	legacy, err := storage.Open("")
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	defer legacy.Close()

	rng := rand.New(rand.NewSource(42))
	contributors := []string{"alice", "bob", "carol"}
	channelSets := [][]string{{"hr"}, {"hr", "gsr"}, {"gps"}}
	var ids []storage.ID
	for i := 0; i < 400; i++ {
		c := contributors[rng.Intn(len(contributors))]
		s := mkSeg(c, time.Duration(rng.Intn(100000))*time.Second, 1+rng.Intn(20),
			channelSets[rng.Intn(len(channelSets))]...)
		id1, err1 := seg.Put(s)
		id2, err2 := legacy.Put(s)
		if err1 != nil || err2 != nil {
			t.Fatalf("put: %v / %v", err1, err2)
		}
		if id1 != id2 {
			t.Fatalf("id divergence: segstore %d legacy %d", id1, id2)
		}
		ids = append(ids, id1)
		if rng.Intn(10) == 0 && len(ids) > 0 {
			victim := ids[rng.Intn(len(ids))]
			e1 := seg.Delete(victim)
			e2 := legacy.Delete(victim)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("delete(%d) divergence: %v / %v", victim, e1, e2)
			}
		}
		if rng.Intn(50) == 0 {
			if err := seg.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
		}
	}

	if seg.Count() != legacy.Count() {
		t.Fatalf("count: segstore %d legacy %d", seg.Count(), legacy.Count())
	}
	if !reflect.DeepEqual(seg.Contributors(), legacy.Contributors()) {
		t.Fatalf("contributors: %v vs %v", seg.Contributors(), legacy.Contributors())
	}

	queries := []storage.Query{
		{},
		{Contributor: "alice"},
		{From: t0.Add(10000 * time.Second), To: t0.Add(60000 * time.Second)},
		{Contributor: "bob", Channels: []string{"gsr"}},
		{Channels: []string{"gps"}, Limit: 7},
		{Region: geo.Rect{MinLat: 34, MinLon: -119, MaxLat: 35, MaxLon: -118}},
		{Contributor: "carol", From: t0, To: t0.Add(30000 * time.Second), Limit: 11},
	}
	for qi, q := range queries {
		want, err := legacy.Scan(q)
		if err != nil {
			t.Fatalf("legacy scan %d: %v", qi, err)
		}
		got, err := seg.Scan(q)
		if err != nil {
			t.Fatalf("segstore scan %d: %v", qi, err)
		}
		if !resultsEqual(t, want, got) {
			t.Fatalf("scan %d diverges: legacy %d results, segstore %d", qi, len(want), len(got))
		}
	}

	// Point reads agree, including not-found after delete.
	for _, id := range ids[:50] {
		s1, e1 := seg.Get(id)
		s2, e2 := legacy.Get(id)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("get(%d): %v / %v", id, e1, e2)
		}
		if e1 == nil && blob(t, s1) != blob(t, s2) {
			t.Fatalf("get(%d) payload diverges", id)
		}
	}

	// Tail probes agree (the upload coalescing path).
	for _, c := range contributors {
		for _, probe := range []time.Duration{0, 5000 * time.Second, 200000 * time.Second} {
			r1, ok1 := seg.LatestBefore(c, t0.Add(probe))
			r2, ok2 := legacy.LatestBefore(c, t0.Add(probe))
			if ok1 != ok2 {
				t.Fatalf("latestBefore(%s,+%v): ok %v vs %v", c, probe, ok1, ok2)
			}
			if ok1 && (r1.ID != r2.ID || blob(t, r1.Segment) != blob(t, r2.Segment)) {
				t.Fatalf("latestBefore(%s,+%v): id %d vs %d", c, probe, r1.ID, r2.ID)
			}
		}
		pred := func(s *wavesegment.Segment) bool { return len(s.Channels) == 2 }
		r1, ok1 := seg.LatestBeforeFunc(c, t0.Add(300000*time.Second), pred)
		r2, ok2 := legacy.LatestBeforeFunc(c, t0.Add(300000*time.Second), pred)
		if ok1 != ok2 || (ok1 && r1.ID != r2.ID) {
			t.Fatalf("latestBeforeFunc(%s): %v/%v vs %v/%v", c, r1.ID, ok1, r2.ID, ok2)
		}
	}
}

// TestPersistenceRoundTrip closes a populated store and reopens it:
// every record must come back, whether it was flushed to segment files
// or still sat in the WAL tail.
func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{MemtableBytes: 4 << 10})
	var want []storage.Result
	for i := 0; i < 120; i++ {
		seg := mkSeg(fmt.Sprintf("c%d", i%3), time.Duration(i)*time.Minute, 5+i%7)
		id, err := s.Put(seg)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		want = append(want, storage.Result{ID: id, Segment: seg.Clone()})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if s2.Count() != len(want) {
		t.Fatalf("count after reopen: %d want %d", s2.Count(), len(want))
	}
	got, err := s2.Scan(storage.Query{})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	byID := make(map[storage.ID]string)
	for _, r := range got {
		byID[r.ID] = blob(t, r.Segment)
	}
	for _, w := range want {
		if byID[w.ID] != blob(t, w.Segment) {
			t.Fatalf("record %d lost or corrupted after reopen", w.ID)
		}
	}
	// IDs must not be reused after reopen.
	id, err := s2.Put(mkSeg("c0", 0, 3))
	if err != nil {
		t.Fatalf("put after reopen: %v", err)
	}
	if id <= want[len(want)-1].ID {
		t.Fatalf("id %d reused after reopen (last was %d)", id, want[len(want)-1].ID)
	}
}

// TestDeleteSemantics covers all three residencies: active memtable,
// sealed/flushed file, and unknown IDs.
func TestDeleteSemantics(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{})
	defer s.Close()
	idMem, _ := s.Put(mkSeg("a", 0, 4))
	idDisk, _ := s.Put(mkSeg("a", time.Hour, 4))
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	idMem2, _ := s.Put(mkSeg("a", 2*time.Hour, 4))

	if err := s.Delete(idMem); err != nil {
		t.Fatalf("delete flushed record: %v", err)
	}
	if err := s.Delete(idDisk); err != nil {
		t.Fatalf("delete disk record: %v", err)
	}
	if err := s.Delete(idMem2); err != nil {
		t.Fatalf("delete memtable record: %v", err)
	}
	for _, id := range []storage.ID{idMem, idDisk, idMem2, 9999} {
		if err := s.Delete(id); err == nil {
			t.Fatalf("second delete of %d should fail", id)
		}
		if _, err := s.Get(id); err == nil {
			t.Fatalf("get of deleted %d should fail", id)
		}
	}
	if s.Count() != 0 {
		t.Fatalf("count after deletes: %d", s.Count())
	}
	res, err := s.Scan(storage.Query{})
	if err != nil || len(res) != 0 {
		t.Fatalf("scan after deletes: %d results, err %v", len(res), err)
	}
}

// TestScanDuringCompactionFileRemoval exercises the reader-refcount
// path: a scan snapshots its sources, compaction replaces and unlinks
// the files mid-scan, and the scan must still return every record.
func TestScanDuringCompactionFileRemoval(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{L0CompactThreshold: 2})
	defer s.Close()
	total := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 30; j++ {
			if _, err := s.Put(mkSeg("a", time.Duration(i*1000+j*10)*time.Second, 8)); err != nil {
				t.Fatalf("put: %v", err)
			}
			total++
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	// Snapshot the scan sources, then compact before draining.
	sn, err := s.snapshot(&storage.Query{})
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer sn.release()
	if err := s.compactOnce(true); err != nil {
		t.Fatalf("compact: %v", err)
	}
	count := 0
	for _, it := range sn.iterators(&storage.Query{}) {
		for {
			_, ok, err := it.next()
			if err != nil {
				t.Fatalf("iterate removed file: %v", err)
			}
			if !ok {
				break
			}
			count++
		}
	}
	if count != total {
		t.Fatalf("scan over removed files saw %d of %d records", count, total)
	}
	// And a fresh scan (post-compaction sources) holds the same data.
	samples := 0
	res, err := s.Scan(storage.Query{})
	if err != nil {
		t.Fatalf("fresh scan: %v", err)
	}
	for _, r := range res {
		samples += r.Segment.NumSamples()
	}
	if samples != total*8 {
		t.Fatalf("fresh scan holds %d samples, want %d", samples, total*8)
	}
}
