package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/stream"
)

// Live-sharing client SDK. Subscribe/Next/AckStream/Unsubscribe mirror the
// hub API over the long-poll endpoint; Live consumes the SSE endpoint and
// invokes a callback per event until the stream ends.

// streamClient returns an HTTP client whose timeout comfortably exceeds a
// long-poll wait (the default 30 s client would sever a 60 s poll).
func (c *StoreClient) streamClient(wait time.Duration) *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: wait + 30*time.Second}
}

// Subscribe opens (or resumes) a live subscription to a contributor's
// channels. The returned SubInfo carries the subscription ID and the
// durable cursor to resume from.
func (c *StoreClient) Subscribe(key auth.APIKey, contributor string, channels []string) (stream.SubInfo, error) {
	return c.SubscribeCtx(context.Background(), key, contributor, channels)
}

// SubscribeCtx opens (or resumes) a live subscription.
func (c *StoreClient) SubscribeCtx(ctx context.Context, key auth.APIKey, contributor string, channels []string) (stream.SubInfo, error) {
	var resp stream.SubInfo
	err := c.call(ctx, "/api/stream/subscribe",
		true, &streamSubscribeReq{Key: key, Contributor: contributor, Channels: channels}, &resp)
	return resp, err
}

// Next long-polls for the next batch of stream events, blocking up to wait
// on the server side. Passing the previous batch's cursor acknowledges it.
func (c *StoreClient) Next(key auth.APIKey, id, cursor string, wait time.Duration) (stream.Batch, error) {
	return c.NextCtx(context.Background(), key, id, cursor, wait)
}

// NextCtx long-polls for the next batch of stream events. Retries are
// safe without an idempotency key: the cursor makes redelivery
// all-or-nothing, so a retried poll re-reads from the same position.
// Note a Policy.PerAttemptTimeout shorter than wait would sever every
// poll; the default policy sets none.
func (c *StoreClient) NextCtx(ctx context.Context, key auth.APIKey, id, cursor string, wait time.Duration) (stream.Batch, error) {
	var resp stream.Batch
	err := doJSON(ctx, c.streamClient(wait), c.Retry, c.BaseURL, "/api/stream/next",
		false, &streamNextReq{Key: key, ID: id, Cursor: cursor, WaitMs: int(wait / time.Millisecond)}, &resp)
	return resp, err
}

// AckStream advances the durable cursor without polling.
func (c *StoreClient) AckStream(key auth.APIKey, id, cursor string) error {
	return c.AckStreamCtx(context.Background(), key, id, cursor)
}

// AckStreamCtx advances the durable cursor without polling.
func (c *StoreClient) AckStreamCtx(ctx context.Context, key auth.APIKey, id, cursor string) error {
	return c.call(ctx, "/api/stream/ack",
		false, &streamAckReq{Key: key, ID: id, Cursor: cursor}, &okResp{})
}

// Unsubscribe revokes a live subscription.
func (c *StoreClient) Unsubscribe(key auth.APIKey, id string) error {
	return c.UnsubscribeCtx(context.Background(), key, id)
}

// UnsubscribeCtx revokes a live subscription.
func (c *StoreClient) UnsubscribeCtx(ctx context.Context, key auth.APIKey, id string) error {
	return c.call(ctx, "/api/stream/unsubscribe",
		true, &streamIDReq{Key: key, ID: id}, &okResp{})
}

// Live attaches to the SSE endpoint and calls fn for every event until the
// server closes the stream (bye), the context is canceled, or the
// connection drops. It returns the cursor of the last event received —
// resubscribe (or call Live again) with it to resume without replay.
func (c *StoreClient) Live(ctx context.Context, key auth.APIKey, id, cursor string, fn func(stream.Event) error) (string, error) {
	body, err := json.Marshal(&streamNextReq{Key: key, ID: id, Cursor: cursor})
	if err != nil {
		return cursor, fmt.Errorf("httpapi: encode request: %w", err)
	}
	url := strings.TrimRight(c.BaseURL, "/") + "/api/stream/live"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return cursor, fmt.Errorf("httpapi: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(requestIDHeader, obs.NewRequestID())

	// No client timeout: the stream is open-ended; ctx bounds its life.
	hc := &http.Client{Transport: c.hc().Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return cursor, fmt.Errorf("httpapi: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return cursor, fmt.Errorf("httpapi: /api/stream/live: %s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return cursor, fmt.Errorf("httpapi: /api/stream/live: HTTP %d", resp.StatusCode)
	}

	last := cursor
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxBodyBytes)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // keep-alive ping
			}
			var ev stream.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return last, fmt.Errorf("httpapi: decode SSE event: %w", err)
			}
			data = nil
			if ev.Cursor != "" {
				last = ev.Cursor
			}
			if err := fn(ev); err != nil {
				return last, err
			}
			if ev.Kind == stream.KindBye {
				return last, nil
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		default:
			// id:/event:/comment lines — the JSON payload carries it all.
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return last, fmt.Errorf("httpapi: SSE stream: %w", err)
	}
	return last, nil
}
