// Command sslint runs SensorSafe's repo-local static-analysis suite: it
// type-checks every package in the module using only the standard library
// and applies the domain analyzers in internal/lint (privacyflow,
// lockorder, atomicwrite, ctxpropagate, mutexguard, obsnames,
// ruleindexuse, servertimeouts).
//
// Usage:
//
//	sslint [-json | -sarif] [-baseline file] [-only a,b] [-skip a,b] [./... | dir ...]
//
// Findings print as `file:line: [analyzer] message` (a JSON array with
// -json, a SARIF 2.1.0 log with -sarif) and the exit status is 1 when
// anything is found, 2 on load or usage errors, 0 when clean. Suppress a
// finding in place with `//sslint:ignore <analyzer> <reason>`, or accept
// a set of historical findings wholesale with -baseline pointed at a
// previous `sslint -json` capture.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sensorsafe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this file (a previous `sslint -json` capture)")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sslint [-json | -sarif] [-baseline file] [-only a,b] [-skip a,b] [./... | dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "sslint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers, err := lint.Select(lint.Analyzers(), *only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		baseline, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	module, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := selectPackages(module, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := lint.RunAnalyzers(module, pkgs, analyzers)
	diags = baseline.Filter(diags)
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, diags, analyzers); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		lint.WriteText(stdout, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectPackages maps CLI package arguments onto loaded module packages.
// No arguments or "./..." means the whole module; "dir/..." selects a
// subtree; a plain directory selects that one package.
func selectPackages(m *lint.Module, cwd string, args []string) ([]*lint.Package, error) {
	if len(args) == 0 {
		return m.Pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, arg := range args {
		pattern, recursive := strings.CutSuffix(arg, "...")
		pattern = strings.TrimSuffix(pattern, "/")
		if pattern == "." || pattern == "" {
			pattern = cwd
		}
		dir, err := filepath.Abs(filepath.Join(cwd, pattern))
		if err != nil {
			return nil, err
		}
		if filepath.IsAbs(pattern) {
			dir = filepath.Clean(pattern)
		}
		matched := false
		for _, pkg := range m.Pkgs {
			ok := pkg.Dir == dir
			if recursive {
				ok = pkg.Dir == dir || strings.HasPrefix(pkg.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("sslint: no packages match %q", arg)
		}
	}
	return out, nil
}
