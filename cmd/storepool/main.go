// Command storepool runs a pool of individual remote data stores in one
// process — the paper's §5.1 deployment where "the institution that
// collects data can provide a virtual machine pool of individual data
// stores and make each virtual machine accessible by its owner only".
// Each pool slot is a fully isolated store service (own accounts, rules,
// storage directory, audit trail) on its own port, all registered with the
// same broker.
//
// Usage:
//
//	storepool -count 20 -base-port 9000 -dir ./pool -broker http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/httpapi"
)

func main() {
	count := flag.Int("count", 10, "number of individual stores")
	basePort := flag.Int("base-port", 9000, "first port; store i listens on base-port+i")
	host := flag.String("host", "localhost", "hostname used in the stores' public addresses")
	dir := flag.String("dir", "", "base directory; each store persists under <dir>/store-<i> (empty = in-memory)")
	brokerURL := flag.String("broker", "", "broker base URL")
	flag.Parse()

	if *count <= 0 {
		fmt.Fprintln(os.Stderr, "storepool: -count must be positive")
		os.Exit(2)
	}

	var wg sync.WaitGroup
	for i := 0; i < *count; i++ {
		port := *basePort + i
		name := fmt.Sprintf("http://%s:%d", *host, port)
		opts := datastore.Options{Name: name}
		if *dir != "" {
			opts.Dir = filepath.Join(*dir, fmt.Sprintf("store-%d", i))
		}
		if *brokerURL != "" {
			bc := &httpapi.BrokerClient{BaseURL: *brokerURL}
			opts.Sync = bc
			opts.Directory = bc
		}
		svc, err := datastore.New(opts)
		if err != nil {
			log.Fatalf("storepool: store %d: %v", i, err)
		}
		defer svc.Close()

		addr := fmt.Sprintf(":%d", port)
		// Each pool slot gets its own admission controller: one tenant's
		// storm browns out only that tenant's store.
		server := &http.Server{
			Addr:              addr,
			Handler:           httpapi.NewStoreHandler(svc),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			log.Printf("pool store %d (%s) listening on %s", i, name, addr)
			if err := server.ListenAndServe(); err != nil {
				log.Printf("storepool: store %d: %v", i, err)
			}
		}(i)
	}
	log.Printf("pool of %d individual stores up (ports %d-%d)", *count, *basePort, *basePort+*count-1)
	wg.Wait()
}
