// Package rules implements SensorSafe's context-aware fine-grained access
// control (paper §5.1, Table 1): privacy rules with conditions on data
// consumer, location, time, sensor channel, and inferred context, and
// actions Allow / Deny / Abstraction. It also encodes the sensor↔context
// dependency graph the paper's rule-processing module uses: raw data from a
// sensor may be shared only when every context inferable from that sensor is
// itself shared at raw level, so abstracting one context (e.g. smoking)
// suppresses the raw sensors it could be inferred from (respiration) even if
// another context (stress) would have allowed them.
//
// # Decision semantics
//
// The paper does not pin down how several matching rules combine; this
// implementation uses the privacy-safe reading that also reproduces both of
// the paper's worked examples (Fig. 4 and §6):
//
//   - Default deny: with no matching rule, nothing is shared.
//   - Allow grants raw access to the channels the rule governs (its Sensor
//     condition, or all channels when absent) and to the contexts inferable
//     from them.
//   - Abstraction is primarily a restriction: its location/time entries
//     clamp the granularity other rules release, and each category entry
//     clamps that category while granting it at the named level (so a
//     standalone "share Activity as Move/NotMove" rule releases the binary
//     labels and nothing else). Abstraction never grants raw channels.
//   - Deny revokes the governed channels; a category is revoked too when the
//     rule's scope covers every sensor the category can be inferred from.
//   - Across matching rules, grants union, clamps combine most-restrictively,
//     and denies override.
//   - Finally the dependency closure runs: a channel's raw data flows only
//     if every category inferable from it is at raw level, and GPS channels
//     flow only at Coordinates location granularity.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"sensorsafe/internal/wavesegment"
)

// Category is a class of inferable context with its own abstraction ladder
// (Table 1(b)): Activity, Stress, Smoking, Conversation.
type Category string

// The context categories of Table 1(b).
const (
	CategoryActivity     Category = "Activity"
	CategoryStress       Category = "Stress"
	CategorySmoking      Category = "Smoking"
	CategoryConversation Category = "Conversation"
)

// Categories lists all context categories in stable order.
func Categories() []Category {
	return []Category{CategoryActivity, CategoryStress, CategorySmoking, CategoryConversation}
}

// Context labels produced by the inference layer and usable as rule
// conditions (Table 1(a)).
const (
	CtxStill          = "Still"
	CtxWalk           = "Walk"
	CtxRun            = "Run"
	CtxBike           = "Bike"
	CtxDrive          = "Drive"
	CtxMoving         = "Moving"
	CtxNotMoving      = "NotMoving"
	CtxStressed       = "Stressed"
	CtxNotStressed    = "NotStressed"
	CtxSmoking        = "Smoking"
	CtxNotSmoking     = "NotSmoking"
	CtxConversation   = "Conversation"
	CtxNoConversation = "NoConversation"
)

// labelCategory maps every context label to its category.
var labelCategory = map[string]Category{
	CtxStill: CategoryActivity, CtxWalk: CategoryActivity, CtxRun: CategoryActivity,
	CtxBike: CategoryActivity, CtxDrive: CategoryActivity,
	CtxMoving: CategoryActivity, CtxNotMoving: CategoryActivity,
	CtxStressed: CategoryStress, CtxNotStressed: CategoryStress,
	CtxSmoking: CategorySmoking, CtxNotSmoking: CategorySmoking,
	CtxConversation: CategoryConversation, CtxNoConversation: CategoryConversation,
}

// LabelCategory returns the category of a context label.
func LabelCategory(label string) (Category, bool) {
	c, ok := labelCategory[normalizeContextLabel(label)]
	return c, ok
}

// KnownContextLabels returns every recognized context label, sorted.
func KnownContextLabels() []string {
	out := make([]string, 0, len(labelCategory))
	for l := range labelCategory {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func normalizeContextLabel(s string) string {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "still":
		return CtxStill
	case "walk", "walking":
		return CtxWalk
	case "run", "running":
		return CtxRun
	case "bike", "biking":
		return CtxBike
	case "drive", "driving":
		return CtxDrive
	case "moving", "move":
		return CtxMoving
	case "notmoving", "not moving", "not move":
		return CtxNotMoving
	case "stressed", "stress":
		return CtxStressed
	case "notstressed", "not stressed":
		return CtxNotStressed
	case "smoking", "smoke":
		return CtxSmoking
	case "notsmoking", "not smoking":
		return CtxNotSmoking
	case "conversation", "in conversation":
		return CtxConversation
	case "noconversation", "no conversation", "not conversation":
		return CtxNoConversation
	default:
		return strings.TrimSpace(s)
	}
}

// ParseContextLabel canonicalizes a context label, rejecting unknown ones.
func ParseContextLabel(s string) (string, error) {
	l := normalizeContextLabel(s)
	if _, ok := labelCategory[l]; !ok {
		return "", fmt.Errorf("rules: unknown context label %q", s)
	}
	return l, nil
}

// Level is a position on a category's abstraction ladder, from raw sensor
// data down to not shared. Not every category uses LevelModes: it exists
// only on the Activity ladder (Still/Walk/Run/Bike/Drive).
type Level int

// Context abstraction levels, most precise first.
const (
	// LevelRaw shares the underlying raw sensor data.
	LevelRaw Level = iota
	// LevelModes shares the five-way activity mode (Activity only).
	LevelModes
	// LevelBinary shares a yes/no label (Moving/NotMoving, Stressed/..., etc.).
	LevelBinary
	// LevelNotShared withholds the category entirely.
	LevelNotShared
)

func (l Level) String() string {
	switch l {
	case LevelRaw:
		return "Raw"
	case LevelModes:
		return "Modes"
	case LevelBinary:
		return "Binary"
	case LevelNotShared:
		return "NotShared"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is a defined level.
func (l Level) Valid() bool { return l >= LevelRaw && l <= LevelNotShared }

// CoarserThan reports whether l reveals strictly less than o.
func (l Level) CoarserThan(o Level) bool { return l > o }

// MostRestrictive returns the coarser of two levels.
func MostRestrictive(a, b Level) Level {
	if a.CoarserThan(b) {
		return a
	}
	return b
}

// ParseLevel parses a Table 1(b) option string for the given category. It
// accepts both the canonical names (Raw/Modes/Binary/NotShared) and the
// paper's descriptive spellings ("ECG/Respiration Data",
// "Still/Walk/Run/Bike/Drive", "Move/Not Move", "Stressed/Not Stressed",
// "Not Share", ...).
func ParseLevel(cat Category, s string) (Level, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	key = strings.ReplaceAll(key, " ", "")
	switch key {
	case "raw", "rawdata":
		return LevelRaw, nil
	case "modes":
		if cat != CategoryActivity {
			return 0, fmt.Errorf("rules: level Modes only exists for Activity, not %s", cat)
		}
		return LevelModes, nil
	case "binary":
		return LevelBinary, nil
	case "notshared", "notshare", "none":
		return LevelNotShared, nil
	}
	switch cat {
	case CategoryActivity:
		switch key {
		case "accelerometerdata":
			return LevelRaw, nil
		case "still/walk/run/bike/drive":
			return LevelModes, nil
		case "move/notmove", "moving/notmoving":
			return LevelBinary, nil
		}
	case CategoryStress:
		switch key {
		case "ecg/respirationdata":
			return LevelRaw, nil
		case "stressed/notstressed":
			return LevelBinary, nil
		}
	case CategorySmoking:
		switch key {
		case "respirationdata":
			return LevelRaw, nil
		case "smoking/notsmoking":
			return LevelBinary, nil
		}
	case CategoryConversation:
		switch key {
		case "microphone/respirationdata":
			return LevelRaw, nil
		case "conversation/notconversation":
			return LevelBinary, nil
		}
	}
	return 0, fmt.Errorf("rules: unknown %s level %q", cat, s)
}

// Dependency graph: which sensor channels each category can be inferred
// from (paper §5.1 and Table 1(b)). GPS channels also feed activity
// inference (transportation mode), and are additionally gated by the
// location granularity in the dependency closure.
var categorySensors = map[Category][]string{
	CategoryActivity: {
		wavesegment.ChannelAccelX, wavesegment.ChannelAccelY, wavesegment.ChannelAccelZ,
		wavesegment.ChannelLatitude, wavesegment.ChannelLongitude,
	},
	CategoryStress: {
		wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelHeartRate,
	},
	CategorySmoking: {
		wavesegment.ChannelRespiration,
	},
	CategoryConversation: {
		wavesegment.ChannelMicrophone, wavesegment.ChannelRespiration,
	},
}

// CategorySensors returns the sensor channels category cat can be inferred
// from.
func CategorySensors(cat Category) []string {
	return append([]string(nil), categorySensors[cat]...)
}

// SensorCategories returns the categories inferable from a sensor channel.
// Channels that feed no inference (e.g. skin temperature) return nil.
func SensorCategories(channel string) []Category {
	var out []Category
	for _, cat := range Categories() {
		for _, s := range categorySensors[cat] {
			if s == channel {
				out = append(out, cat)
				break
			}
		}
	}
	return out
}

// MaxLevel returns the coarsest meaningful (non-hidden) level on a
// category's ladder: LevelBinary everywhere, since LevelModes exists only
// for Activity and is finer than Binary.
func MaxLevel(cat Category) Level { return LevelBinary }

// ValidLevel reports whether the level exists on the category's ladder.
func ValidLevel(cat Category, l Level) bool {
	if !l.Valid() {
		return false
	}
	if l == LevelModes && cat != CategoryActivity {
		return false
	}
	return true
}

// AbstractLabel rewrites a context label to the given level on its ladder:
// at LevelBinary the five activity modes collapse to Moving/NotMoving; at
// LevelNotShared the label disappears (empty string, false). Raw and Modes
// keep the label as-is.
func AbstractLabel(label string, l Level) (string, bool) {
	cat, ok := LabelCategory(label)
	if !ok {
		return "", false
	}
	switch l {
	case LevelRaw, LevelModes:
		return label, true
	case LevelBinary:
		if cat != CategoryActivity {
			return label, true
		}
		switch label {
		case CtxStill, CtxNotMoving:
			return CtxNotMoving, true
		default:
			return CtxMoving, true
		}
	default:
		return "", false
	}
}
