package datastore

import (
	"os"
	"path/filepath"
	"testing"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
)

func TestFullStateSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := s.RegisterContributor("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := s.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := s.DefinePlace(alice.Key, "UCLA", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Group":["Study"],"LocationLabel":["UCLA"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignConsumerGroups(alice.Key, "Bob", []string{"Study"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: keys, rules, places, and group assignments all survive.
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// Old API keys still authenticate.
	rels, err := s2.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatalf("Bob's key should survive: %v", err)
	}
	if len(rels) != 1 {
		t.Errorf("releases after reopen = %d, want 1 (rules+places+groups restored)", len(rels))
	}
	// Rules round trip.
	data, err := s2.Rules(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.UnmarshalRuleSet(data)
	if err != nil || len(rs) != 1 || len(rs[0].Groups) != 1 {
		t.Errorf("restored rules = %v, %v", rs, err)
	}
	// Places round trip.
	places, err := s2.Places(alice.Key)
	if err != nil || len(places) != 1 || places[0].Label != "UCLA" {
		t.Errorf("restored places = %v, %v", places, err)
	}
	// New registrations continue to work (no key collisions).
	if _, err := s2.RegisterConsumer("Carol"); err != nil {
		t.Fatal(err)
	}
}

func TestInMemoryStoreSkipsPersistence(t *testing.T) {
	s := newService(t, Options{})
	if _, err := s.RegisterContributor("alice"); err != nil {
		t.Fatal(err)
	}
	// No state file anywhere; nothing to assert beyond "no error".
}

func TestCorruptStateFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFileName), []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: dir}); err == nil {
		t.Error("corrupt state file should abort startup loudly, not be ignored")
	}
}

func TestTornTempFileDoesNotCorruptState(t *testing.T) {
	// Crash simulation: a process died mid-save, leaving a torn temp file
	// next to a complete state file (the atomic-rename protocol's only
	// possible wreckage). Reopen must load the intact state, and the next
	// save must clobber the debris rather than trip over it.
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := s.RegisterContributor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, stateFileName+".tmp")
	if err := os.WriteFile(torn, []byte(`{"users":[{"na`), 0o600); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn temp file must not block reopen: %v", err)
	}
	defer s2.Close()
	data, err := s2.Rules(alice.Key)
	if err != nil || len(data) == 0 {
		t.Fatalf("state lost after torn-temp crash: %v", err)
	}
	// The next save overwrites the debris and leaves no temp behind.
	if _, err := s2.RegisterConsumer("Bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("temp file should be gone after a successful save: %v", err)
	}
}

func TestStateFilePermissions(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RegisterContributor("alice"); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, stateFileName))
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("state file mode = %o, want 600 (contains API keys)", perm)
	}
}

func TestRestoredRulesStillSync(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := s.RegisterContributor("alice")
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	sync := &recordingSync{}
	s2, err := New(Options{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.ResyncAll(); err != nil {
		t.Fatal(err)
	}
	if len(sync.calls) != 1 || sync.calls[0] != "alice" {
		t.Errorf("resync after restore = %v", sync.calls)
	}
}
