// Benchmarks regenerating the performance side of every experiment in
// DESIGN.md §4 / EXPERIMENTS.md. Each benchmark mirrors one harness table:
//
//	BenchmarkRuleEvaluation        E1/E4  one access-control decision vs rule count
//	BenchmarkEnforceSegment        E4     full query-path enforcement of one segment
//	BenchmarkQueryMergedVsUnmerged E2     range scans over optimized vs raw packet stores
//	BenchmarkUploadPipeline        E2     ingest throughput through the optimizer
//	BenchmarkDirectVsProxied       E3     store→consumer download, direct vs broker relay
//	BenchmarkContributorSearch     E5     broker search vs directory size
//	BenchmarkRuleAwareCollection   E6     phone-side collection filtering
//	BenchmarkRuleCodec             E7     Fig. 4 rule JSON round trip
//	BenchmarkBlobCodec             ablation: binary vs Fig. 5 JSON segment codecs
//	BenchmarkDependencyClosure     E8     decision incl. closure on a pathological rule set
//
// Run: go test -bench=. -benchmem .
package sensorsafe_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/core"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/experiments"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/inference"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

var benchStart = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)

// BenchmarkRuleEvaluation times one access-control decision against rule
// sets of increasing size (experiments E1/E4).
func BenchmarkRuleEvaluation(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			engine, err := experiments.E4Engine(n)
			if err != nil {
				b.Fatal(err)
			}
			req := experiments.E4Request()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := engine.Decide(req)
				if d == nil {
					b.Fatal("nil decision")
				}
			}
		})
	}
}

// BenchmarkEnforceSegment times the full query path — boundary cutting,
// decisions, channel projection, abstraction — over one 60 s segment (E4).
func BenchmarkEnforceSegment(b *testing.B) {
	gc := geo.GridGeocoder{}
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			engine, err := experiments.E4Engine(n)
			if err != nil {
				b.Fatal(err)
			}
			seg := experiments.E4Segment(60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := abstraction.Enforce(engine, "consumer-0", nil, seg, gc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPackets builds a continuous 3-channel packet stream.
func benchPackets(packetSize, packets int) []*wavesegment.Segment {
	out := make([]*wavesegment.Segment, 0, packets)
	at := benchStart
	for p := 0; p < packets; p++ {
		seg := &wavesegment.Segment{
			Contributor: "bench", Start: at, Interval: 100 * time.Millisecond,
			Location: geo.Point{Lat: 34.07, Lon: -118.45},
			Channels: []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelSkinTemp},
		}
		for i := 0; i < packetSize; i++ {
			seg.Values = append(seg.Values, []float64{1, 2, 36.5})
		}
		out = append(out, seg)
		at = seg.EndTime()
	}
	return out
}

// BenchmarkQueryMergedVsUnmerged times half-hour range scans against a
// store loaded from 64-sample packets, raw vs optimized (E2).
func BenchmarkQueryMergedVsUnmerged(b *testing.B) {
	packets := benchPackets(64, 1024) // ~1.8 h of data
	for _, optimized := range []bool{false, true} {
		name := "unmerged"
		if optimized {
			name = "merged"
		}
		b.Run(name, func(b *testing.B) {
			st, err := storage.Open("")
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			segs := packets
			if optimized {
				if segs, err = wavesegment.OptimizeAll(packets, wavesegment.DefaultMaxSamples); err != nil {
					b.Fatal(err)
				}
			}
			for _, s := range segs {
				if _, err := st.Put(s); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Count()), "records")
			window := 30 * time.Minute
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from := benchStart.Add(time.Duration(i%60) * time.Minute)
				if _, err := st.ScanRefs(storage.Query{From: from, To: from.Add(window)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUploadPipeline times store ingest of 64-sample packets through
// validation, optimization, tail coalescing, and the WAL-less memory store
// (E2's write side). One op = one 16-packet upload batch.
func BenchmarkUploadPipeline(b *testing.B) {
	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	contributor, err := svc.RegisterContributor("bench")
	if err != nil {
		b.Fatal(err)
	}
	batch := 16
	packets := benchPackets(64, batch*(1+1000000/batch)) // plenty
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(packets) - batch)
		if _, err := svc.Upload(contributor.Key, packets[lo:lo+batch]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*batch), "samples/op")
}

// BenchmarkDirectVsProxied times one full-store download over HTTP,
// directly vs relayed through a broker-side proxy (E3). One op = one
// store's complete download.
func BenchmarkDirectVsProxied(b *testing.B) {
	// Build one store + relay inline for per-op timing.
	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	contributor, err := svc.RegisterContributor("bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.SetRules(contributor.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Upload(contributor.Key, benchPackets(64, 64)); err != nil { // ~7 min of data
		b.Fatal(err)
	}
	consumer, err := svc.RegisterConsumer("bob")
	if err != nil {
		b.Fatal(err)
	}

	storeSrv, relaySrv := newBenchServers(svc, consumer.Key)
	defer storeSrv.Close()
	defer relaySrv.Close()

	client := &http.Client{Timeout: time.Minute}
	body, _ := json.Marshal(map[string]any{"key": consumer.Key, "query": &query.Query{}})

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := benchPost(client, storeSrv.URL+"/api/query", body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("proxied", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := benchPost(client, relaySrv.URL, body); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkContributorSearch times the paper's §5.2 example search against
// replicated rule sets (E5).
func BenchmarkContributorSearch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("contributors=%d", n), func(b *testing.B) {
			svc, key, err := experiments.E5Broker(n, 5)
			if err != nil {
				b.Fatal(err)
			}
			q := experiments.E5Query()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Search(key, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRuleAwareCollection times the phone's per-recording processing
// — inference, annotation, and §5.3 collection decisions — with and
// without rule-aware mode (E6). One op = one 4-minute recording.
func BenchmarkRuleAwareCollection(b *testing.B) {
	day := &sensors.Scenario{
		Start: benchStart, Origin: geo.Point{Lat: 34.025, Lon: -118.495}, Seed: 5,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 90},
		},
	}
	rec, err := sensors.Generate("alice", day)
	if err != nil {
		b.Fatal(err)
	}
	for _, aware := range []bool{false, true} {
		name := "collect-all"
		if aware {
			name = "rule-aware"
		}
		b.Run(name, func(b *testing.B) {
			net := core.NewNetwork()
			defer net.Close()
			if _, err := net.AddStore("s", ""); err != nil {
				b.Fatal(err)
			}
			alice, err := net.NewContributor("s", "alice")
			if err != nil {
				b.Fatal(err)
			}
			if err := alice.SetRules(`[{"Action":"Allow"},{"Context":["Drive"],"Action":"Deny"}]`); err != nil {
				b.Fatal(err)
			}
			p := alice.Phone(aware)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Process(cloneRecording(rec)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRuleCodec times the Fig. 4 JSON round trip (E7).
func BenchmarkRuleCodec(b *testing.B) {
	ruleJSON := []byte(`[
	  { "Consumer": ["Bob"], "LocationLabel": ["UCLA"], "Action": "Allow" },
	  { "Consumer": ["Bob"], "LocationLabel": ["UCLA"],
	    "RepeatTime": { "Day": ["Mon","Tue","Wed","Thu","Fri"], "HourMin": ["9:00am","6:00pm"]},
	    "Context": ["Conversation"],
	    "Action": { "Abstraction": { "Stress": "NotShared" } } }
	]`)
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rules.UnmarshalRuleSet(ruleJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	rs, err := rules.UnmarshalRuleSet(ruleJSON)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rules.MarshalRuleSet(rs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBlobCodec compares the storage engine's binary blob codec with
// the Fig. 5 JSON codec (design-choice ablation from DESIGN.md §5).
func BenchmarkBlobCodec(b *testing.B) {
	seg := benchPackets(4096, 1)[0]
	b.Run("binary/marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wavesegment.MarshalBinary(seg); err != nil {
				b.Fatal(err)
			}
		}
	})
	blob, err := wavesegment.MarshalBinary(seg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary/unmarshal", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := wavesegment.UnmarshalBinary(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json/marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wavesegment.MarshalJSONSegment(seg); err != nil {
				b.Fatal(err)
			}
		}
	})
	js, err := wavesegment.MarshalJSONSegment(seg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("json/unmarshal", func(b *testing.B) {
		b.SetBytes(int64(len(js)))
		for i := 0; i < b.N; i++ {
			if _, err := wavesegment.UnmarshalJSONSegment(js); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDependencyClosure times decisions on a rule set that maximally
// exercises the sensor/context closure (E8).
func BenchmarkDependencyClosure(b *testing.B) {
	rs, err := rules.UnmarshalRuleSet([]byte(`[
	  {"Action":"Allow"},
	  {"Action":{"Abstraction":{"Smoking":"NotShared"}}},
	  {"Action":{"Abstraction":{"Activity":"Move/Not Move"}}},
	  {"Action":{"Abstraction":{"Location":"City"}}}
	]`))
	if err != nil {
		b.Fatal(err)
	}
	engine, err := rules.NewEngine(rs, nil)
	if err != nil {
		b.Fatal(err)
	}
	req := experiments.E4Request()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := engine.Decide(req)
		if d.ChannelShared(wavesegment.ChannelRespiration) {
			b.Fatal("closure failed")
		}
	}
}

// BenchmarkPhoneInference times windowed context inference over one
// 4-minute recording (the substrate behind E6).
func BenchmarkPhoneInference(b *testing.B) {
	day := &sensors.Scenario{
		Start: benchStart, Origin: geo.Point{Lat: 34.025, Lon: -118.495}, Seed: 5,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxWalk, Heading: 45, Conversation: true},
			{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 90, Stressed: true},
		},
	}
	rec, err := sensors.Generate("alice", day)
	if err != nil {
		b.Fatal(err)
	}
	segs := rec.AllSegments()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann := &inference.Annotator{}
		if n := len(ann.Annotate(segs)); n == 0 {
			b.Fatal("no annotations")
		}
	}
}

// --- helpers ---

func benchPost(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d from %s", resp.StatusCode, url)
	}
	return nil
}

// newBenchServers starts a store HTTP server and a relay proxying whole
// downloads through one extra hop (the E3 strawman).
func newBenchServers(svc *datastore.Service, key auth.APIKey) (store, relay *httptest.Server) {
	store = httptest.NewServer(httpapi.NewStoreHandler(svc))
	sc := &httpapi.StoreClient{BaseURL: store.URL}
	relay = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rels, err := sc.Query(key, &query.Query{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rels)
	}))
	return store, relay
}

// cloneRecording deep-copies segments so repeated phone processing does not
// accumulate annotations.
func cloneRecording(rec *sensors.Recording) *sensors.Recording {
	out := &sensors.Recording{Truth: rec.Truth, Path: rec.Path}
	for _, s := range rec.ChestBand {
		out.ChestBand = append(out.ChestBand, s.Clone())
	}
	for _, s := range rec.Phone {
		out.Phone = append(out.Phone, s.Clone())
	}
	return out
}
