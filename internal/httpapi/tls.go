package httpapi

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// The paper (§5.4) secures every API exchange with HTTPS so the API key in
// the POST body never travels in the clear. SelfSignedTLS generates a
// deployment certificate for a store or broker host; production
// deployments substitute CA-issued certificates with the same tls.Config
// plumbing.

// SelfSignedTLS generates an ECDSA P-256 certificate valid for the given
// hosts (DNS names or IP addresses) and duration, returning a tls.Config
// ready for http.Server.
func SelfSignedTLS(hosts []string, validFor time.Duration) (*tls.Config, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("httpapi: self-signed cert needs at least one host")
	}
	if validFor <= 0 {
		validFor = 365 * 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("httpapi: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("httpapi: serial: %w", err)
	}
	template := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{Organization: []string{"SensorSafe"}, CommonName: hosts[0]},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validFor),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			template.IPAddresses = append(template.IPAddresses, ip)
		} else {
			template.DNSNames = append(template.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("httpapi: create certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("httpapi: marshal key: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("httpapi: key pair: %w", err)
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}, nil
}

// InsecureClientTLS returns a client tls.Config that skips verification —
// for talking to self-signed test deployments only.
func InsecureClientTLS() *tls.Config {
	return &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12}
}
