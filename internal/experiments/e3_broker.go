package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/query"
	"sensorsafe/internal/wavesegment"
)

// E3Config parameterizes the broker-bottleneck experiment.
type E3Config struct {
	// Stores is how many remote data stores serve data.
	Stores int
	// MinutesPerStore is how much 10 Hz 3-channel data each store holds.
	MinutesPerStore float64
	// Rounds is how many full sweeps the consumer performs.
	Rounds int
}

// DefaultE3 downloads from 20 stores (the §6 study size).
func DefaultE3() E3Config {
	return E3Config{Stores: 20, MinutesPerStore: 10, Rounds: 3}
}

// e3Deployment is the measured topology: N real HTTP store servers and a
// strawman relay that proxies whole downloads through one broker-side
// process — the centralized alternative the paper's direct store→consumer
// design avoids.
type e3Deployment struct {
	stores []*httptest.Server
	keys   []auth.APIKey
	relay  *httptest.Server
}

func e3Setup(cfg E3Config) (*e3Deployment, error) {
	d := &e3Deployment{}
	start := time.Date(2011, 2, 16, 0, 0, 0, 0, time.UTC)
	for i := 0; i < cfg.Stores; i++ {
		svc, err := datastore.New(datastore.Options{Name: fmt.Sprintf("store-%d", i)})
		if err != nil {
			return nil, err
		}
		contributor, err := svc.RegisterContributor(fmt.Sprintf("c%d", i))
		if err != nil {
			return nil, err
		}
		if err := svc.SetRules(contributor.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
			return nil, err
		}
		seg := &wavesegment.Segment{
			Contributor: contributor.Name, Start: start, Interval: 100 * time.Millisecond,
			Location: geo.Point{Lat: 34.07, Lon: -118.45},
			Channels: []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelSkinTemp},
		}
		n := int(cfg.MinutesPerStore * 60 * 10)
		for s := 0; s < n; s++ {
			seg.Values = append(seg.Values, []float64{float64(s), float64(s) / 2, 36.5})
		}
		if _, err := svc.Upload(contributor.Key, []*wavesegment.Segment{seg}); err != nil {
			return nil, err
		}
		consumer, err := svc.RegisterConsumer("bob")
		if err != nil {
			return nil, err
		}
		d.stores = append(d.stores, httptest.NewServer(httpapi.NewStoreHandler(svc)))
		d.keys = append(d.keys, consumer.Key)
	}

	// The relay forwards {store, key} requests by downloading from the
	// store itself and re-serializing — every byte crosses the broker.
	d.relay = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Store int         `json:"store"`
			Key   auth.APIKey `json:"key"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sc := &httpapi.StoreClient{BaseURL: d.stores[req.Store].URL}
		rels, err := sc.Query(req.Key, &query.Query{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rels)
	}))
	return d, nil
}

func (d *e3Deployment) close() {
	for _, s := range d.stores {
		s.Close()
	}
	if d.relay != nil {
		d.relay.Close()
	}
}

// RunE3 compares direct store→consumer downloads against relaying every
// byte through a broker-side proxy.
func RunE3(cfg E3Config) (*Table, error) {
	d, err := e3Setup(cfg)
	if err != nil {
		return nil, err
	}
	defer d.close()

	// Both paths count actual HTTP payload bytes received by the consumer.
	client := &http.Client{Timeout: time.Minute}
	direct := func() (int, error) {
		bytes := 0
		for i, srv := range d.stores {
			body, _ := json.Marshal(map[string]any{"key": d.keys[i], "query": &query.Query{}})
			resp, err := client.Post(srv.URL+"/api/query", "application/json", jsonReader(body))
			if err != nil {
				return 0, err
			}
			n, err := drain(resp)
			if err != nil {
				return 0, err
			}
			bytes += n
		}
		return bytes, nil
	}
	proxied := func() (int, error) {
		bytes := 0
		for i := range d.stores {
			body, _ := json.Marshal(map[string]any{"store": i, "key": d.keys[i]})
			resp, err := client.Post(d.relay.URL, "application/json", jsonReader(body))
			if err != nil {
				return 0, err
			}
			n, err := drain(resp)
			if err != nil {
				return 0, err
			}
			bytes += n
		}
		return bytes, nil
	}

	measure := func(f func() (int, error)) (time.Duration, int, error) {
		begin := time.Now()
		total := 0
		for r := 0; r < cfg.Rounds; r++ {
			n, err := f()
			if err != nil {
				return 0, 0, err
			}
			total += n
		}
		return time.Since(begin) / time.Duration(cfg.Rounds), total / cfg.Rounds, nil
	}

	directLat, directBytes, err := measure(direct)
	if err != nil {
		return nil, err
	}
	proxiedLat, proxiedBytes, err := measure(proxied)
	if err != nil {
		return nil, err
	}

	mbps := func(bytes int, lat time.Duration) float64 {
		return float64(bytes) / (1 << 20) / lat.Seconds()
	}
	t := &Table{
		ID: "E3",
		Caption: fmt.Sprintf("broker data-path: direct vs proxied (%d stores x %.0f min @10Hz, mean of %d rounds)",
			cfg.Stores, cfg.MinutesPerStore, cfg.Rounds),
		Headers: []string{"path", "sweep latency", "payload/sweep", "throughput"},
		Notes: []string{
			"paper §4: \"The broker is not a performance bottleneck because sensor data are directly transferred\"",
			"the proxied strawman re-serializes every byte at the broker; direct should win and the gap grows with payload",
		},
	}
	t.AddRow("direct store->consumer", directLat.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f MiB", float64(directBytes)/(1<<20)), fmt.Sprintf("%.1f MiB/s", mbps(directBytes, directLat)))
	t.AddRow("proxied via broker", proxiedLat.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f MiB", float64(proxiedBytes)/(1<<20)), fmt.Sprintf("%.1f MiB/s", mbps(proxiedBytes, proxiedLat)))
	return t, nil
}
