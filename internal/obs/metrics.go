// Package obs is SensorSafe's observability layer: a concurrency-safe
// metrics registry exported in Prometheus text exposition format, a
// log/slog-based structured logger with per-request correlation IDs, and
// span-style timing helpers that feed latency histograms. It depends only
// on the standard library so every other package — broker, datastore,
// auth, httpapi, the cmd binaries — can instrument its hot paths without
// pulling in external dependencies.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ExpositionContentType is the Content-Type of /metrics responses
// (Prometheus text exposition format, version 0.0.4).
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are the default latency histogram bounds in seconds. They
// extend Prometheus's defaults downward because rule evaluation and
// segment scans complete in well under a millisecond.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter cannot decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (negative allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if i := sort.SearchFloat64s(h.upper, v); i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// family is one named metric with a fixed label schema.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64

	mu       sync.RWMutex
	children map[string]any      // label-values key → *Counter | *Gauge | *Histogram; guarded by mu
	labels   map[string][]string // guarded by mu
}

// childKeySep joins label values into a map key; it cannot appear in
// UTF-8 text.
const childKeySep = "\xff"

func (f *family) child(values []string) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, childKeySep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case counterKind:
		c = &Counter{}
	case gaugeKind:
		c = &Gauge{}
	case histogramKind:
		h := &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets))}
		c = h
	}
	f.children[key] = c
	f.labels[key] = append([]string(nil), values...)
	return c
}

// Registry holds metric families. Safe for concurrent use; the zero value
// is not usable — call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry that package-level constructors and
// Handler use.
var Default = NewRegistry()

// getFamily returns the family with the given schema, creating it on
// first use. Re-registering a name with a different kind or label set is
// a programming error and panics.
func (r *Registry) getFamily(name, help string, k kind, labelNames []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{
				name:       name,
				help:       help,
				kind:       k,
				labelNames: append([]string(nil), labelNames...),
				buckets:    append([]float64(nil), buckets...),
				children:   make(map[string]any),
				labels:     make(map[string][]string),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
	}
	for i := range labelNames {
		if f.labelNames[i] != labelNames[i] {
			panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
		}
	}
	return f
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.child(values).(*Histogram) }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, counterKind, nil, nil).child(nil).(*Counter)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.getFamily(name, help, counterKind, labelNames, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, gaugeKind, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.getFamily(name, help, gaugeKind, labelNames, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.getFamily(name, help, histogramKind, nil, buckets).child(nil).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.getFamily(name, help, histogramKind, labelNames, buckets)}
}

// Package-level constructors on the Default registry.

// NewCounter registers an unlabeled counter on Default.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewCounterVec registers a labeled counter family on Default.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return Default.CounterVec(name, help, labelNames...)
}

// NewGauge registers an unlabeled gauge on Default.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewGaugeVec registers a labeled gauge family on Default.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labelNames...)
}

// NewHistogram registers an unlabeled histogram on Default.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family on Default.
func NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return Default.HistogramVec(name, help, buckets, labelNames...)
}

// escapeLabel escapes a label value for exposition.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"}; extra appends one more pair (used
// for histogram le labels). Empty when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every family in text exposition format, sorted
// by metric name and label values for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		help := strings.ReplaceAll(f.help, "\n", " ")
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := f.children[k]
			values := f.labels[k]
			var err error
			switch m := child.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, values, "", ""), formatFloat(m.Value()))
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, values, "", ""), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, upper := range m.upper {
					cum += m.counts[i].Load()
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, values, "le", formatFloat(upper)), cum); err != nil {
						break
					}
				}
				// The +Inf bucket and _count must never read below the
				// finite buckets' cumulative sum: Observe bumps the bucket
				// before the total, so a concurrent scrape could otherwise
				// see a non-monotone series.
				total := m.Count()
				if cum > total {
					total = cum
				}
				if err == nil {
					_, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, values, "le", "+Inf"), total)
				}
				if err == nil {
					_, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
						labelString(f.labelNames, values, "", ""), formatFloat(m.Sum()))
				}
				if err == nil {
					_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name,
						labelString(f.labelNames, values, "", ""), total)
				}
			}
			if err != nil {
				f.mu.RUnlock()
				return err
			}
		}
		f.mu.RUnlock()
	}
	return nil
}

// Handler serves the registry in Prometheus text exposition format.
// Build info and process uptime are (re)stamped per scrape so the
// uptime gauge never goes stale.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		stampBuildInfo()
		w.Header().Set("Content-Type", ExpositionContentType)
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
