package abstraction

import (
	"math"
	"sort"
	"time"
)

// Summary aggregates a batch of releases into the per-channel statistics
// and per-context durations a consumer application typically wants first —
// the kind of overview the paper's broker web UI shows before a bulk
// download.
type Summary struct {
	// Releases is the number of release spans summarized.
	Releases int `json:"releases"`
	// RawSamples counts samples across all released segments.
	RawSamples int `json:"rawSamples"`
	// Span is the union extent [Earliest, Latest) of dated releases.
	Earliest time.Time `json:"earliest,omitempty"`
	Latest   time.Time `json:"latest,omitempty"`
	// Channels maps channel name → value statistics.
	Channels map[string]ChannelStats `json:"channels,omitempty"`
	// Contexts maps context label → total released span duration.
	Contexts map[string]time.Duration `json:"contexts,omitempty"`
	// Contributors counts release spans per data owner.
	Contributors map[string]int `json:"contributors,omitempty"`
}

// ChannelStats are running statistics for one released channel.
type ChannelStats struct {
	Samples int     `json:"samples"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
}

// Summarize folds releases into a Summary.
func Summarize(rels []*Release) *Summary {
	s := &Summary{
		Channels:     make(map[string]ChannelStats),
		Contexts:     make(map[string]time.Duration),
		Contributors: make(map[string]int),
	}
	sums := make(map[string]float64)
	for _, rel := range rels {
		s.Releases++
		s.Contributors[rel.Contributor]++
		if !rel.Start.IsZero() {
			if s.Earliest.IsZero() || rel.Start.Before(s.Earliest) {
				s.Earliest = rel.Start
			}
			if rel.End.After(s.Latest) {
				s.Latest = rel.End
			}
		}
		for _, c := range rel.Contexts {
			s.Contexts[c.Context] += c.End.Sub(c.Start)
		}
		if rel.Segment == nil {
			continue
		}
		s.RawSamples += rel.Segment.NumSamples()
		for col, ch := range rel.Segment.Channels {
			st, seen := s.Channels[ch]
			if !seen {
				st = ChannelStats{Min: math.Inf(1), Max: math.Inf(-1)}
			}
			for _, row := range rel.Segment.Values {
				v := row[col]
				st.Samples++
				sums[ch] += v
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
			s.Channels[ch] = st
		}
	}
	for ch, st := range s.Channels {
		if st.Samples > 0 {
			st.Mean = sums[ch] / float64(st.Samples)
			s.Channels[ch] = st
		}
	}
	return s
}

// TopContexts returns the context labels by total duration, longest first.
func (s *Summary) TopContexts() []string {
	out := make([]string, 0, len(s.Contexts))
	for ctx := range s.Contexts {
		out = append(out, ctx)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.Contexts[out[i]] == s.Contexts[out[j]] {
			return out[i] < out[j]
		}
		return s.Contexts[out[i]] > s.Contexts[out[j]]
	})
	return out
}
