package obs

import (
	"context"
	"log/slog"
	"time"

	"sensorsafe/internal/obs/trace"
)

// spanSeconds aggregates every named span into one histogram family so
// "how long does a privacy-rule evaluation take under load?" is a single
// /metrics query away. The status label splits successes from failures,
// so an error path that returns fast no longer drags the apparent
// latency of the happy path down.
var spanSeconds = NewHistogramVec("sensorsafe_span_seconds",
	"Latency of named internal spans (rule evaluation, segment scans, ...), by outcome.",
	DefBuckets, "span", "status")

// Span starts a named child span in the context's trace (a new root when
// none is active) and a latency timer. It returns the context carrying
// the new span — pass it to callees so their spans nest under this one —
// the span itself for attribute/provenance annotation, and the stop
// function. Stop takes the operation's outcome: it ends the trace span,
// feeds sensorsafe_span_seconds{span,status}, and, at debug level, logs
// a line carrying the trace ID as an exemplar so a histogram outlier can
// be chased into /debug/traces.
func Span(ctx context.Context, name string) (context.Context, *trace.Span, func(error)) {
	sctx, sp := trace.Start(ctx, name)
	start := time.Now()
	return sctx, sp, func(err error) {
		d := time.Since(start)
		status := "ok"
		if err != nil {
			status = "error"
			sp.SetError(err)
		}
		sp.End()
		spanSeconds.With(name, status).Observe(d.Seconds())
		if l := Log(sctx, nil); l.Enabled(sctx, slog.LevelDebug) {
			args := []any{"span", name, "status", status,
				"duration_ms", float64(d.Microseconds()) / 1000}
			if tid := sp.TraceIDString(); tid != "" {
				args = append(args, "trace_id", tid)
			}
			l.Debug("span", args...)
		}
	}
}

// Time is Span for call sites that cannot fail:
//
//	defer obs.Time(ctx, "datastore.query")()
//
// The span always ends with status "ok"; use TimeErr (or Span) where an
// error outcome exists.
func Time(ctx context.Context, name string) func() {
	_, _, stop := Span(ctx, name)
	return func() { stop(nil) }
}

// TimeErr is Span when only the outcome matters, not the child context:
//
//	stop := obs.TimeErr(ctx, "datastore.rule_eval")
//	...
//	stop(err)
func TimeErr(ctx context.Context, name string) func(error) {
	_, _, stop := Span(ctx, name)
	return stop
}
