package datastore

import (
	"testing"
	"time"

	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

func TestRecommendFromStoredData(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)

	// Alice's stored day: mostly stressed while driving.
	p := packet("alice", t0, 3600) // 6 minutes at 10 Hz
	_ = p.Annotate(rules.CtxStressed, t0, t0.Add(4*time.Minute))
	_ = p.Annotate(rules.CtxDrive, t0, t0.Add(3*time.Minute))
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{p}); err != nil {
		t.Fatal(err)
	}

	sugs, err := s.Recommend(alice.Key, recommend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("expected suggestions")
	}
	if sugs[0].Sensitive != rules.CategoryStress {
		t.Errorf("top suggestion = %+v", sugs[0])
	}

	// Consumers cannot mine a contributor's data.
	if _, err := s.Recommend(bob.Key, recommend.Options{}); err == nil {
		t.Error("consumers must not get recommendations")
	}

	// The suggested rule, installed, actually protects the data.
	ruleSet := `[{"Action":"Allow"},` + sugs[0].RuleJSON + `]`
	if err := s.SetRules(alice.Key, []byte(ruleSet)); err != nil {
		t.Fatalf("suggested rule does not install: %v\n%s", err, ruleSet)
	}
	rels, err := s.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range rels {
		driving := false
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxDrive {
				driving = true
			}
		}
		if !driving {
			continue
		}
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxStressed {
				t.Error("stress leaked while driving after installing the suggestion")
			}
		}
		if rel.Segment != nil && rel.Segment.HasChannel(wavesegment.ChannelECG) {
			t.Error("ECG leaked while driving after installing the suggestion")
		}
	}
}
