package core

import (
	"fmt"
	"testing"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

// TestScaleSoak runs a study-sized deployment end to end: 40 contributors
// across 8 institutional stores, each recording a scripted session with
// mixed privacy postures, then a coordinator searching, bulk-downloading,
// and summarizing. It guards against cross-contributor leaks and
// accounting errors at scale.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		contributors = 40
		stores       = 8
	)
	storeNames := make([]string, stores)
	for i := range storeNames {
		storeNames[i] = fmt.Sprintf("inst-%d", i)
	}
	n := network(t, storeNames...)
	if err := n.Broker.CreateStudy("Soak"); err != nil {
		t.Fatal(err)
	}

	restrictive := 0
	for i := 0; i < contributors; i++ {
		c, err := n.NewContributor(storeNames[i%stores], fmt.Sprintf("p%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		ruleJSON := `[{"Group":["Soak"],"Action":"Allow"}]`
		switch i % 3 {
		case 1:
			restrictive++
			ruleJSON = `[
			  {"Group":["Soak"],"Action":"Allow"},
			  {"Context":["Drive"],"Action":{"Abstraction":{"Stress":"NotShared"}}}
			]`
		case 2:
			restrictive++
			ruleJSON = `[
			  {"Group":["Soak"],"Action":"Allow"},
			  {"Action":{"Abstraction":{"Location":"City"}}}
			]`
		}
		if err := c.SetRules(ruleJSON); err != nil {
			t.Fatal(err)
		}
		if err := c.AssignConsumerGroups("coordinator", []string{"Soak"}); err != nil {
			t.Fatal(err)
		}
		day := &sensors.Scenario{
			Start:  t0.Add(time.Duration(i) * time.Minute),
			Origin: home, Seed: int64(i),
			Phases: []sensors.Phase{
				{Duration: 45 * time.Second, Activity: rules.CtxStill, Stressed: i%2 == 0},
				{Duration: 45 * time.Second, Activity: rules.CtxDrive, Stressed: true, Heading: float64(i * 13)},
			},
		}
		if _, err := c.RecordDay(day, false); err != nil {
			t.Fatal(err)
		}
	}

	coord, err := n.NewConsumer("coordinator")
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.JoinStudy("Soak"); err != nil {
		t.Fatal(err)
	}
	dir, err := coord.Directory()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != contributors {
		t.Fatalf("directory = %d entries, want %d", len(dir), contributors)
	}

	// Search: who shares raw stress data while driving? Exactly the i%3==0
	// cohort (i%3==1 hides stress while driving; i%3==2 abstracts location,
	// which blocks GPS but not ECG — so they still match).
	match, err := coord.Search(&broker.SearchQuery{
		Sensors:        []string{"ECG", "Respiration"},
		ActiveContexts: []string{rules.CtxDrive},
		Reference:      t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMatch := 0
	for i := 0; i < contributors; i++ {
		if i%3 != 1 {
			wantMatch++
		}
	}
	if len(match) != wantMatch {
		t.Fatalf("search matched %d, want %d", len(match), wantMatch)
	}

	// Bulk download everything and check global invariants.
	all := make([]string, 0, contributors)
	for i := 0; i < contributors; i++ {
		all = append(all, fmt.Sprintf("p%03d", i))
	}
	rels, err := coord.QueryMany(all, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sum := abstraction.Summarize(rels)
	if len(sum.Contributors) != contributors {
		t.Errorf("releases cover %d contributors, want %d", len(sum.Contributors), contributors)
	}
	if sum.RawSamples == 0 {
		t.Error("no raw samples released")
	}
	// Every release belongs to a contributor the coordinator asked for,
	// and driving spans from the stress-hiding cohort carry no stress.
	names := make(map[string]bool, len(all))
	for _, name := range all {
		names[name] = true
	}
	for _, rel := range rels {
		if !names[rel.Contributor] {
			t.Fatalf("release from unexpected contributor %q", rel.Contributor)
		}
	}
	for i := 1; i < contributors; i += 3 { // the stress-hiding cohort
		name := fmt.Sprintf("p%03d", i)
		for _, rel := range rels {
			if rel.Contributor != name {
				continue
			}
			driving := false
			for _, c := range rel.Contexts {
				if c.Context == rules.CtxDrive {
					driving = true
				}
			}
			if !driving {
				continue
			}
			for _, c := range rel.Contexts {
				if c.Context == rules.CtxStressed {
					t.Fatalf("%s leaked stress while driving", name)
				}
			}
			if rel.Segment != nil && rel.Segment.HasChannel("ECG") {
				t.Fatalf("%s leaked ECG while driving", name)
			}
		}
	}
	// The location-abstracting cohort never releases coordinates.
	for i := 2; i < contributors; i += 3 {
		name := fmt.Sprintf("p%03d", i)
		for _, rel := range rels {
			if rel.Contributor == name && rel.Location.Point != nil {
				t.Fatalf("%s leaked exact coordinates", name)
			}
		}
	}
}
