package segstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// Write-ahead log. Ingest appends to the active WAL file before touching
// the memtable; a flush seals the active file (rotating to a new one) and,
// once the sealed records are durable in a segment file and the manifest
// records the flushed sequence number, sealed files are garbage-collected.
//
// Files are named wal-%016x.log by the sequence number of their first
// record, so replay order is lexical order. Each record is framed
//
//	u32 bodyLen | u32 crc32(body) | body
//	body = typ byte | seq u64 | id u64 | payload
//
// where payload is the segment's MarshalBinary blob for puts and empty
// for deletes. Replay stops at the first torn or corrupt frame in the
// newest file (a crash mid-append) but treats corruption in older files
// as an error, since those were fsynced before the manifest advanced.

const (
	walRecPut    = 1
	walRecDelete = 2
)

// walRecord is one replayed WAL entry.
type walRecord struct {
	typ byte
	seq uint64
	id  storage.ID
	seg *wavesegment.Segment // nil for deletes
}

type walFile struct {
	name     string
	firstSeq uint64
	maxSeq   uint64 // highest sequence appended (0 when empty)
	bytes    int64
}

// wal manages the directory's log files. Not safe for concurrent use;
// the Store serializes access under its mutex.
type wal struct {
	dir    string
	f      *os.File // active file
	active walFile
	sealed []walFile
	sync   bool // fsync after every append
}

func walName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

func parseWALName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listWALFiles returns the directory's log files sorted by first
// sequence; replay walks them in this order.
func listWALFiles(dir string) ([]walFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var existing []walFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseWALName(e.Name())
		if !ok {
			continue
		}
		wf := walFile{name: e.Name(), firstSeq: first}
		if fi, err := e.Info(); err == nil {
			wf.bytes = fi.Size()
		}
		existing = append(existing, wf)
	}
	sort.Slice(existing, func(i, j int) bool { return existing[i].firstSeq < existing[j].firstSeq })
	return existing, nil
}

// newWAL opens a fresh active file starting at nextSeq; replayed files
// (already applied) are handed over as sealed so gc can reclaim them
// once a flush covers their sequences.
func newWAL(dir string, nextSeq uint64, syncEvery bool, sealed []walFile) (*wal, error) {
	w := &wal{dir: dir, sync: syncEvery, sealed: sealed}
	if err := w.rotate(nextSeq); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate seals the active file (if any) and starts a new one whose first
// record will carry firstSeq.
func (w *wal) rotate(firstSeq uint64) error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("segstore: seal wal: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("segstore: seal wal: %w", err)
		}
		w.sealed = append(w.sealed, w.active)
	}
	name := walName(firstSeq)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("segstore: open wal %s: %w", name, err)
	}
	w.f = f
	w.active = walFile{name: name, firstSeq: firstSeq}
	syncDir(w.dir)
	return nil
}

// append durably logs one record. The frame is written in one Write call
// so a crash tears at most the final frame.
func (w *wal) append(typ byte, seq uint64, id storage.ID, payload []byte) error {
	body := make([]byte, 0, 1+8+8+len(payload))
	body = append(body, typ)
	body = putUint64(body, seq)
	body = putUint64(body, uint64(id))
	body = append(body, payload...)
	frame := make([]byte, 0, 8+len(body))
	frame = putUint32(frame, uint32(len(body)))
	frame = putUint32(frame, crc32.ChecksumIEEE(body))
	frame = append(frame, body...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("segstore: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("segstore: wal sync: %w", err)
		}
	}
	w.active.maxSeq = seq
	w.active.bytes += int64(len(frame))
	return nil
}

func (w *wal) fsync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// gc removes sealed files whose newest record is already covered by the
// manifest's flushed sequence. Returns how many files were removed.
func (w *wal) gc(flushedSeq uint64) int {
	kept := w.sealed[:0]
	removed := 0
	for _, wf := range w.sealed {
		if wf.maxSeq != 0 && wf.maxSeq <= flushedSeq {
			if err := os.Remove(filepath.Join(w.dir, wf.name)); err == nil || errors.Is(err, os.ErrNotExist) {
				removed++
				continue
			}
		}
		kept = append(kept, wf)
	}
	w.sealed = kept
	if removed > 0 {
		syncDir(w.dir)
	}
	return removed
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWALFile streams one log file's records through fn. last marks
// the newest file: a torn tail there is a clean crash point and replay
// just stops; anywhere else it is corruption and an error.
func replayWALFile(dir string, wf *walFile, last bool, fn func(walRecord) error) error {
	path := filepath.Join(dir, wf.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("segstore: read wal %s: %w", wf.name, err)
	}
	wf.bytes = int64(len(data))
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			if last {
				return nil
			}
			return fmt.Errorf("segstore: wal %s: torn frame header at %d", wf.name, off)
		}
		r := &byteReader{data: data, off: off}
		bodyLen := r.uint32()
		sum := r.uint32()
		if bodyLen < 1+8+8 || r.off+int(bodyLen) > len(data) {
			if last {
				return nil
			}
			return fmt.Errorf("segstore: wal %s: torn frame at %d", wf.name, off)
		}
		body := data[r.off : r.off+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != sum {
			if last {
				return nil
			}
			return fmt.Errorf("segstore: wal %s: CRC mismatch at %d", wf.name, off)
		}
		br := &byteReader{data: body}
		var recd walRecord
		if len(body) > 0 {
			recd.typ = body[0]
			br.off = 1
		}
		recd.seq = br.uint64()
		recd.id = storage.ID(br.uint64())
		switch recd.typ {
		case walRecPut:
			seg, err := wavesegment.UnmarshalBinary(body[br.off:])
			if err != nil {
				return fmt.Errorf("segstore: wal %s: bad segment payload at %d: %w", wf.name, off, err)
			}
			recd.seg = seg
		case walRecDelete:
		default:
			return fmt.Errorf("segstore: wal %s: unknown record type %d at %d", wf.name, recd.typ, off)
		}
		if br.err != nil {
			return fmt.Errorf("segstore: wal %s: %w", wf.name, br.err)
		}
		if recd.seq > wf.maxSeq {
			wf.maxSeq = recd.seq
		}
		if err := fn(recd); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		off = r.off + int(bodyLen)
	}
	return nil
}
