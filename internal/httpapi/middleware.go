package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/resilience"
)

// requestIDHeader carries the correlation ID between SensorSafe services;
// the middleware generates one when absent and always echoes it back.
const requestIDHeader = "X-Request-ID"

// idempotencyKeyHeader marks a mutating request as one logical operation:
// the client keeps the key stable across retries and the server replays
// the recorded outcome instead of re-executing the mutation.
const idempotencyKeyHeader = "X-Idempotency-Key"

// idempotencyReplayHeader is set on responses served from the idempotency
// cache rather than by re-executing the handler.
const idempotencyReplayHeader = "X-Idempotency-Replay"

// HTTP-layer metrics, shared by both servers and split by component.
var (
	metricHTTPRequests = obs.NewCounterVec("sensorsafe_http_requests_total",
		"HTTP requests served, by component, method, route, and status.",
		"component", "method", "route", "status")
	metricHTTPLatency = obs.NewHistogramVec("sensorsafe_http_request_seconds",
		"HTTP request latency in seconds, by component and route.",
		obs.DefBuckets, "component", "route")
	metricHTTPInFlight = obs.NewGaugeVec("sensorsafe_http_in_flight_requests",
		"HTTP requests currently being served, by component.", "component")
	metricIdemReplays = obs.NewCounterVec("sensorsafe_http_idempotent_replays_total",
		"Mutating requests answered from the idempotency cache, by component.",
		"component")
)

// logDest is where request logs are written (test seam; servers log to
// stderr).
var logDest io.Writer = os.Stderr

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (SSE) keep
// working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the connection through the
// middleware stack (per-request write deadlines in withOverload).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// recordingWriter tees a handler's status and body so the outcome can be
// cached for idempotent replay.
type recordingWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (w *recordingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	return w.ResponseWriter.Write(p)
}

// Unwrap: see (*statusWriter).Unwrap.
func (w *recordingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withIdempotency dedupes mutating requests that carry an
// X-Idempotency-Key: the first execution's outcome is recorded in a
// bounded LRU and replayed byte-for-byte for retries of the same logical
// call, giving retried mutations exactly-once application. Transient
// outcomes (5xx, 429) are not cached — a retry after those must
// re-execute, not replay the failure.
func withIdempotency(component string, cache *resilience.IdemCache, next http.Handler) http.Handler {
	replays := metricIdemReplays.With(component)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(idempotencyKeyHeader)
		if key == "" || r.Method != http.MethodPost {
			next.ServeHTTP(w, r)
			return
		}
		if cached, ok := cache.Get(key); ok {
			replays.Inc()
			if cached.ContentType != "" {
				w.Header().Set("Content-Type", cached.ContentType)
			}
			w.Header().Set(idempotencyReplayHeader, "true")
			w.WriteHeader(cached.Status)
			w.Write(cached.Body)
			return
		}
		rw := &recordingWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rw, r)
		if rw.status < 500 && rw.status != http.StatusTooManyRequests {
			cache.Put(key, resilience.CachedResponse{
				Status:      rw.status,
				Body:        append([]byte(nil), rw.buf.Bytes()...),
				ContentType: rw.Header().Get("Content-Type"),
			})
		}
	})
}

// withObs wraps a server handler with the observability middleware:
// method/route/status counters, an in-flight gauge, latency histograms,
// request logging, and X-Request-ID generation + propagation. Routes are
// taken from the mux's registered patterns so metric cardinality stays
// bounded no matter what paths clients probe; inner is the handler
// actually served (the mux, possibly wrapped in withIdempotency).
func withObs(component string, mux *http.ServeMux, inner http.Handler) http.Handler {
	logger := obs.NewLogger(component, logDest)
	inFlight := metricHTTPInFlight.With(component)
	if inner == nil {
		inner = mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set(requestIDHeader, id)

		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}

		// Join the caller's trace when the request carries a traceparent
		// header, then open this hop's server span; handlers see the span
		// through the request context, so their child spans nest under it.
		ctx = trace.WithRemoteParent(ctx, r.Header.Get(trace.Header))
		ctx, span := trace.Start(ctx, "http.server",
			trace.String("component", component),
			trace.String("method", r.Method),
			trace.String("route", route))

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		inFlight.Inc()
		inner.ServeHTTP(sw, r.WithContext(ctx))
		inFlight.Dec()

		span.SetAttr(trace.Int("status", sw.status))
		if sw.status >= http.StatusInternalServerError {
			span.SetError(fmt.Errorf("HTTP %d", sw.status))
		}
		span.End()

		elapsed := time.Since(start)
		metricHTTPRequests.With(component, r.Method, route, strconv.Itoa(sw.status)).Inc()
		metricHTTPLatency.With(component, route).Observe(elapsed.Seconds())
		logArgs := []any{
			"request_id", id,
			"method", r.Method,
			"route", route,
			"status", sw.status,
			"duration_ms", float64(elapsed.Microseconds()) / 1000,
		}
		if tid := span.TraceIDString(); tid != "" {
			logArgs = append(logArgs, "trace_id", tid)
		}
		logger.Info("request", logArgs...)
	})
}
