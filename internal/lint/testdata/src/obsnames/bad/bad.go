// Package bad exercises the obsnames analyzer: non-constant names, bad
// casing, and duplicate registrations are all flagged.
package bad

import "sensorsafe/internal/obs"

var dynamicName = "sensorsafe_fixture_dynamic_total"

var (
	_ = obs.NewCounter(dynamicName, "non-constant name")              // want "compile-time string constant"
	_ = obs.NewCounter("Fixture_CamelCase_Total", "bad case")         // want "not snake_case"
	_ = obs.NewGauge("sensorsafe_fixture_dup", "first registration")  // unique: accepted
	_ = obs.NewGauge("sensorsafe_fixture_dup", "second registration") // want "already registered"
)
