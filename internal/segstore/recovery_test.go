package segstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/storage"
)

// crash simulates a process kill: background loops stop and file
// descriptors close, but nothing is flushed and no manifest is written.
// The on-disk state is exactly what a real crash would leave behind.
func crash(t *testing.T, s *Store) {
	t.Helper()
	close(s.stopCh)
	s.wg.Wait()
	s.mu.Lock()
	s.closed = true
	_ = s.wal.close()
	readers := make([]*segReader, 0, len(s.readers))
	for _, r := range s.readers {
		readers = append(readers, r)
	}
	s.readers = make(map[string]*segReader)
	s.mu.Unlock()
	for _, r := range readers {
		r.markObsolete()
	}
}

// scanIDs returns every live record ID, failing the test on duplicates
// — a duplicate means a record is visible from two sources at once.
func scanIDs(t *testing.T, s *Store) map[storage.ID]string {
	t.Helper()
	res, err := s.Scan(storage.Query{})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	out := make(map[storage.ID]string, len(res))
	for _, r := range res {
		if _, dup := out[r.ID]; dup {
			t.Fatalf("record %d returned twice by scan", r.ID)
		}
		out[r.ID] = blob(t, r.Segment)
	}
	return out
}

// TestRecoveryReplaysOnlyWALTail proves that records already flushed to
// segment files are not replayed from the WAL: after a flush the
// covered WAL files are gone, so reopening replays exactly the
// unflushed tail.
func TestRecoveryReplaysOnlyWALTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	for i := 0; i < 60; i++ {
		if _, err := s.Put(mkSeg("a", time.Duration(i)*time.Minute, 4)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	const tail = 10
	for i := 0; i < tail; i++ {
		if _, err := s.Put(mkSeg("a", time.Duration(1000+i)*time.Minute, 4)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	crash(t, s)

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if got := s2.Stats().WALReplayed; got != tail {
		t.Fatalf("replayed %d WAL records, want exactly the %d-record tail", got, tail)
	}
	if s2.Count() != 60+tail {
		t.Fatalf("count after recovery: %d want %d", s2.Count(), 60+tail)
	}
	if ids := scanIDs(t, s2); len(ids) != 60+tail {
		t.Fatalf("scan after recovery: %d records want %d", len(ids), 60+tail)
	}
}

// TestTornManifestFallsBackToPreviousGeneration corrupts the newest
// manifest generation (as a torn or bit-rotted write would) and
// verifies the store opens from the previous valid generation with no
// data loss: flushed records come from the still-referenced file,
// unflushed ones from the WAL.
func TestTornManifestFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	for i := 0; i < 50; i++ {
		if _, err := s.Put(mkSeg("a", time.Duration(i)*time.Minute, 4)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put(mkSeg("b", time.Duration(i)*time.Minute, 4)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	var gen uint64
	s.mu.RLock()
	gen = s.man.Generation
	s.mu.RUnlock()
	crash(t, s)

	// A torn write of the *next* generation: the file exists but its
	// content is garbage. loadManifest must skip it.
	torn := filepath.Join(dir, manifestName(gen+1))
	if err := os.WriteFile(torn, []byte("{\"generation\": 99, \"crc\": tor"), 0o644); err != nil {
		t.Fatalf("write torn manifest: %v", err)
	}

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if s2.Count() != 70 {
		t.Fatalf("count after torn-manifest recovery: %d want 70", s2.Count())
	}
	if ids := scanIDs(t, s2); len(ids) != 70 {
		t.Fatalf("scan after torn-manifest recovery: %d records want 70", len(ids))
	}
}

// TestAllManifestsCorrupt verifies the failure is explicit — a corrupt
// store must refuse to open rather than silently present partial data.
func TestAllManifestsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	if _, err := s.Put(mkSeg("a", 0, 4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("no manifests found: %v", err)
	}
	for _, m := range manifests {
		if err := os.WriteFile(m, []byte("garbage"), 0o644); err != nil {
			t.Fatalf("corrupt %s: %v", m, err)
		}
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open succeeded with every manifest corrupt; want explicit error")
	}
}

// TestTornSegmentFileRecovery covers a crash mid-flush: the segment
// file may exist (whole or as a .tmp) but the manifest never committed.
// Reopening must discard the orphans and restore every record from the
// WAL — no loss, no duplicates.
func TestTornSegmentFileRecovery(t *testing.T) {
	for _, stage := range []string{"flush.begin", "flush.file"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openTestStore(t, dir, Options{})
			want := make(map[storage.ID]string)
			for i := 0; i < 40; i++ {
				seg := mkSeg("a", time.Duration(i)*time.Minute, 4)
				id, err := s.Put(seg)
				if err != nil {
					t.Fatalf("put: %v", err)
				}
				want[id] = blob(t, seg)
			}
			// A stray torn temp file from an even earlier crash.
			tmp := filepath.Join(dir, "seg-99999999.seg.tmp")
			if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
				t.Fatalf("write tmp: %v", err)
			}
			boom := errors.New("simulated crash")
			s.crashHook = func(st string) error {
				if st == stage {
					return boom
				}
				return nil
			}
			if err := s.Flush(); !errors.Is(err, boom) {
				t.Fatalf("flush: got %v, want injected crash", err)
			}
			crash(t, s)

			s2 := openTestStore(t, dir, Options{})
			defer s2.Close()
			got := scanIDs(t, s2)
			if len(got) != len(want) {
				t.Fatalf("recovered %d records, want %d", len(got), len(want))
			}
			for id, b := range want {
				if got[id] != b {
					t.Fatalf("record %d lost or corrupted", id)
				}
			}
			if _, err := os.Stat(tmp); !os.IsNotExist(err) {
				t.Fatalf("orphan tmp file survived recovery: %v", err)
			}
			// The uncommitted segment file must be gone too: nothing
			// references it and its records replayed from the WAL.
			segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
			s2.mu.RLock()
			referenced := make(map[string]bool)
			for _, fm := range s2.man.Files {
				referenced[fm.Name] = true
			}
			s2.mu.RUnlock()
			for _, f := range segs {
				if !referenced[filepath.Base(f)] {
					t.Fatalf("unreferenced segment file %s survived recovery", filepath.Base(f))
				}
			}
		})
	}
}

// TestCrashAfterFlushManifest covers the other side of the commit
// point: the manifest referencing the new file is durable, but WAL
// garbage collection never ran. Replay must skip the flushed records
// (seq <= FlushedSeq) so none appear twice.
func TestCrashAfterFlushManifest(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	want := make(map[storage.ID]string)
	for i := 0; i < 40; i++ {
		seg := mkSeg("a", time.Duration(i)*time.Minute, 4)
		id, err := s.Put(seg)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		want[id] = blob(t, seg)
	}
	boom := errors.New("simulated crash")
	s.crashHook = func(st string) error {
		if st == "flush.manifest" {
			return boom
		}
		return nil
	}
	if err := s.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush: got %v, want injected crash", err)
	}
	crash(t, s)

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if got := s2.Stats().WALReplayed; got != 0 {
		t.Fatalf("replayed %d WAL records after committed flush, want 0", got)
	}
	got := scanIDs(t, s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for id, b := range want {
		if got[id] != b {
			t.Fatalf("record %d lost or corrupted", id)
		}
	}
}

// TestRecoveryWithDeletesInWAL crashes with puts and deletes in the
// unflushed tail and verifies replay applies both.
func TestRecoveryWithDeletesInWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	var ids []storage.ID
	for i := 0; i < 30; i++ {
		id, err := s.Put(mkSeg("a", time.Duration(i)*time.Minute, 4))
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		ids = append(ids, id)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Tail: delete one disk record, add two, delete one of the two.
	if err := s.Delete(ids[3]); err != nil {
		t.Fatalf("delete disk record: %v", err)
	}
	idA, _ := s.Put(mkSeg("a", 100*time.Hour, 4))
	idB, _ := s.Put(mkSeg("a", 101*time.Hour, 4))
	if err := s.Delete(idB); err != nil {
		t.Fatalf("delete memtable record: %v", err)
	}
	crash(t, s)

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	got := scanIDs(t, s2)
	if len(got) != 30 { // 30 - 1 deleted + 2 added - 1 deleted
		t.Fatalf("recovered %d records, want 30", len(got))
	}
	for _, dead := range []storage.ID{ids[3], idB} {
		if _, ok := got[dead]; ok {
			t.Fatalf("deleted record %d resurrected by replay", dead)
		}
		if _, err := s2.Get(dead); err == nil {
			t.Fatalf("get of deleted %d succeeded after replay", dead)
		}
	}
	if _, ok := got[idA]; !ok {
		t.Fatalf("tail record %d lost", idA)
	}
	if s2.Count() != 30 {
		t.Fatalf("count after replay: %d want 30", s2.Count())
	}
}

// TestTornWALTailTolerated appends a truncated frame to the active WAL
// file; recovery must absorb every complete frame and ignore the torn
// tail without erroring.
func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	for i := 0; i < 12; i++ {
		if _, err := s.Put(mkSeg("a", time.Duration(i)*time.Minute, 4)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	crash(t, s)

	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL files: %v", err)
	}
	newest := wals[len(wals)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	// A frame header promising more bytes than exist.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02}); err != nil {
		t.Fatalf("append torn frame: %v", err)
	}
	f.Close()

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	if s2.Count() != 12 {
		t.Fatalf("count after torn-tail recovery: %d want 12", s2.Count())
	}
	// The store must remain writable past the torn tail.
	if _, err := s2.Put(mkSeg("a", 500*time.Minute, 4)); err != nil {
		t.Fatalf("put after torn-tail recovery: %v", err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatalf("flush after torn-tail recovery: %v", err)
	}
	if s2.Count() != 13 {
		t.Fatalf("count: %d want 13", s2.Count())
	}
}

// TestMaintenanceErrorSurfaced checks that a background flush failure
// is visible in Stats rather than silently swallowed.
func TestMaintenanceErrorSurfaced(t *testing.T) {
	s := openTestStore(t, t.TempDir(), Options{})
	defer s.Close()
	s.crashHook = func(st string) error {
		if st == "flush.begin" {
			return fmt.Errorf("disk on fire")
		}
		return nil
	}
	s.noteMaintenanceErr("flush", s.flushOnce())
	st := s.Stats()
	if !strings.Contains(st.LastError, "disk on fire") {
		t.Fatalf("LastError = %q, want the flush failure", st.LastError)
	}
	s.crashHook = nil
}
