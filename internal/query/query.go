// Package query defines the data-retrieval language remote data stores
// expose to consumers (paper §3 "expressive data query language" and §5.2's
// query options: location, time, and data channels). A query can be built
// programmatically, sent as JSON over the HTTP API, or written in a compact
// text form for CLIs:
//
//	contributor(alice) channels(ECG,Respiration)
//	  time(2011-02-01T00:00:00Z, 2011-03-01T00:00:00Z)
//	  region(34,-119,35,-118) context(Drive) limit(100)
//
// Terms may be separated by whitespace or the word "and"; every term is
// optional and unordered.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/storage"
)

// Query selects stored sensor data.
type Query struct {
	// Contributor restricts to one data contributor.
	Contributor string `json:"contributor,omitempty"`
	// From/To select data overlapping [From, To).
	From time.Time `json:"from,omitempty"`
	To   time.Time `json:"to,omitempty"`
	// Channels restricts to segments carrying at least one listed channel.
	Channels []string `json:"channels,omitempty"`
	// Region restricts to segments recorded inside the rect.
	Region geo.Rect `json:"region,omitempty"`
	// Contexts restricts to spans annotated with at least one listed
	// context label.
	Contexts []string `json:"contexts,omitempty"`
	// Limit caps the number of returned segments (0 = unlimited).
	Limit int `json:"limit,omitempty"`
}

// Validate checks field consistency.
func (q *Query) Validate() error {
	if !q.From.IsZero() && !q.To.IsZero() && q.To.Before(q.From) {
		return fmt.Errorf("query: to %v before from %v", q.To, q.From)
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative limit")
	}
	if !q.Region.IsZero() && !q.Region.Valid() {
		return fmt.Errorf("query: invalid region %+v", q.Region)
	}
	for _, c := range q.Contexts {
		if _, err := rules.ParseContextLabel(c); err != nil {
			return fmt.Errorf("query: %w", err)
		}
	}
	return nil
}

// Storage lowers the query to a storage-layer scan. Context filtering is
// not part of the scan; stores apply it after annotation lookup.
func (q *Query) Storage() storage.Query {
	return storage.Query{
		Contributor: q.Contributor,
		From:        q.From,
		To:          q.To,
		Channels:    rules.ExpandSensorNames(q.Channels),
		Region:      q.Region,
		Limit:       q.Limit,
	}
}

// String renders the query in the text mini-language (parseable by Parse).
func (q *Query) String() string {
	var terms []string
	if q.Contributor != "" {
		terms = append(terms, fmt.Sprintf("contributor(%s)", q.Contributor))
	}
	if len(q.Channels) > 0 {
		terms = append(terms, fmt.Sprintf("channels(%s)", strings.Join(q.Channels, ",")))
	}
	if !q.From.IsZero() || !q.To.IsZero() {
		f, t := "", ""
		if !q.From.IsZero() {
			f = q.From.Format(time.RFC3339)
		}
		if !q.To.IsZero() {
			t = q.To.Format(time.RFC3339)
		}
		terms = append(terms, fmt.Sprintf("time(%s,%s)", f, t))
	}
	if !q.Region.IsZero() {
		terms = append(terms, fmt.Sprintf("region(%g,%g,%g,%g)",
			q.Region.MinLat, q.Region.MinLon, q.Region.MaxLat, q.Region.MaxLon))
	}
	if len(q.Contexts) > 0 {
		terms = append(terms, fmt.Sprintf("context(%s)", strings.Join(q.Contexts, ",")))
	}
	if q.Limit > 0 {
		terms = append(terms, fmt.Sprintf("limit(%d)", q.Limit))
	}
	return strings.Join(terms, " ")
}

// Parse reads the text mini-language. An empty string is the match-all
// query.
func Parse(s string) (*Query, error) {
	q := &Query{}
	rest := strings.TrimSpace(s)
	for rest != "" {
		// Optional "and" connective.
		if strings.HasPrefix(strings.ToLower(rest), "and ") {
			rest = strings.TrimSpace(rest[4:])
			continue
		}
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("query: expected term(args) at %q", rest)
		}
		name := strings.ToLower(strings.TrimSpace(rest[:open]))
		closeIdx := strings.IndexByte(rest[open:], ')')
		if closeIdx < 0 {
			return nil, fmt.Errorf("query: unclosed parenthesis in %q", rest)
		}
		args := rest[open+1 : open+closeIdx]
		rest = strings.TrimSpace(rest[open+closeIdx+1:])
		if err := q.applyTerm(name, args); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func (q *Query) applyTerm(name, args string) error {
	parts := splitArgs(args)
	switch name {
	case "contributor":
		if len(parts) != 1 || parts[0] == "" {
			return fmt.Errorf("query: contributor() takes one name")
		}
		q.Contributor = parts[0]
	case "channels", "channel", "sensor", "sensors":
		if len(parts) == 0 {
			return fmt.Errorf("query: channels() needs at least one name")
		}
		q.Channels = append(q.Channels, parts...)
	case "time":
		if len(parts) != 2 {
			return fmt.Errorf("query: time() takes (from,to); either may be empty")
		}
		var err error
		if parts[0] != "" {
			if q.From, err = time.Parse(time.RFC3339, parts[0]); err != nil {
				return fmt.Errorf("query: bad from time: %w", err)
			}
		}
		if parts[1] != "" {
			if q.To, err = time.Parse(time.RFC3339, parts[1]); err != nil {
				return fmt.Errorf("query: bad to time: %w", err)
			}
		}
	case "region":
		if len(parts) != 4 {
			return fmt.Errorf("query: region() takes (minLat,minLon,maxLat,maxLon)")
		}
		vals := make([]float64, 4)
		for i, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("query: bad region coordinate %q: %w", p, err)
			}
			vals[i] = v
		}
		rect, err := geo.NewRect(geo.Point{Lat: vals[0], Lon: vals[1]}, geo.Point{Lat: vals[2], Lon: vals[3]})
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		q.Region = rect
	case "context", "contexts":
		for _, p := range parts {
			label, err := rules.ParseContextLabel(p)
			if err != nil {
				return fmt.Errorf("query: %w", err)
			}
			q.Contexts = append(q.Contexts, label)
		}
	case "limit":
		if len(parts) != 1 {
			return fmt.Errorf("query: limit() takes one number")
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 0 {
			return fmt.Errorf("query: bad limit %q", parts[0])
		}
		q.Limit = n
	default:
		return fmt.Errorf("query: unknown term %q", name)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	raw := strings.Split(s, ",")
	out := make([]string, len(raw))
	for i, p := range raw {
		out[i] = strings.TrimSpace(p)
	}
	return out
}
