# SensorSafe build/test entry points.

GO ?= go

.PHONY: all build vet lint test test-short race cover bench harness chaos fuzz examples clean

all: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet + gofmt check (fails when any file needs formatting).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the whole module (obs + httpapi are the
# concurrency hot spots).
race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment table (EXPERIMENTS.md).
harness:
	$(GO) run ./cmd/benchharness

harness-quick:
	$(GO) run ./cmd/benchharness -quick

# Chaos suite: every network hop through the seeded fault-injecting
# transport (internal/resilience/faultnet). The seed is fixed in the test
# source, so a red run reproduces bit for bit.
chaos:
	$(GO) test -run TestChaos -count=1 -v ./internal/httpapi/

# Short fuzz campaigns on the three untrusted-input parsers.
fuzz:
	$(GO) test -fuzz=FuzzRuleJSON -fuzztime=30s ./internal/rules/
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/wavesegment/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/behavioralstudy
	$(GO) run ./examples/healthcoach
	$(GO) run ./examples/ruleaware
	$(GO) run ./examples/audittrail

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
