// Package bad exercises the ruleindexuse analyzer: calling
// rules.Engine.Decide directly on a release path bypasses the compiled
// index and its decision cache.
package bad

import (
	"sensorsafe/internal/rules"
)

func decideDirect(e *rules.Engine, req *rules.Request) *rules.Decision {
	return e.Decide(req) // want "rules.Engine.Decide called directly"
}

type holder struct {
	engine *rules.Engine
}

func decideField(h *holder, req *rules.Request) bool {
	d := h.engine.Decide(req) // want "rules.Engine.Decide called directly"
	return d.SharesAnything()
}
