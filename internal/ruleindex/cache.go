package ruleindex

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"sensorsafe/internal/rules"
)

// decisionCache is the bounded, sharded memo of computed decisions. It
// lives inside one immutable Index, so invalidation is by construction:
// every rule or place mutation compiles a fresh index with an empty cache
// and atomically replaces the old one — a stale decision cannot survive a
// rule-version bump because the map it lived in is unreachable.
type decisionCache struct {
	seed   maphash.Seed
	shards []cacheShard
	// perShard bounds each shard's entry count; when full, an arbitrary
	// resident entry is evicted (random replacement — cheap, and good
	// enough for the highly repetitive key distribution of enforcement
	// spans).
	perShard int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*rules.Decision
}

func newDecisionCache(entries, shards int) *decisionCache {
	if entries <= 0 || shards <= 0 {
		return nil
	}
	if shards > entries {
		shards = entries
	}
	c := &decisionCache{
		seed:     maphash.MakeSeed(),
		shards:   make([]cacheShard, shards),
		perShard: (entries + shards - 1) / shards,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*rules.Decision)
	}
	return c
}

func (c *decisionCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// get returns a private clone of the memoized decision, flagged Cached.
func (c *decisionCache) get(key string) (*rules.Decision, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	d, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	out := d.Clone()
	out.Cached = true
	return out, true
}

// put memoizes a decision, reporting whether a resident entry was evicted
// to make room. The caller must hand over a clone it will not mutate.
func (c *decisionCache) put(key string, d *rules.Decision) (evicted bool) {
	if c == nil {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; !exists && len(s.m) >= c.perShard {
		for k := range s.m { // evict an arbitrary resident
			delete(s.m, k)
			break
		}
		c.evictions.Add(1)
		evicted = true
	}
	s.m[key] = d
	s.mu.Unlock()
	return evicted
}

// len counts resident entries across shards.
func (c *decisionCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// capacity is the total entry bound.
func (c *decisionCache) capacity() int {
	if c == nil {
		return 0
	}
	return c.perShard * len(c.shards)
}
