// Package bad exercises the interprocedural privacyflow analyzer: taint
// that crosses two helper frames, an interface dispatch, or a decoder
// call before reaching a consumer response shape is still proven, and
// the per-package releasepath rules (storage import ban, raw accessor
// calls) fire unchanged.
package bad

import (
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/storage" // want "imports sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

type queryResp struct {
	Segments []*wavesegment.Segment
}

// leakDeep ships raw segments that were scanned two helper frames below:
// the summary-based propagation must carry the taint up through level1
// and level2 and report the full call chain.
func leakDeep(svc *datastore.Service) queryResp {
	segs := level1(svc)
	return queryResp{Segments: segs} // want "raw"
}

func level1(svc *datastore.Service) []*wavesegment.Segment {
	return level2(svc)
}

func level2(svc *datastore.Service) []*wavesegment.Segment {
	st := svc.Storage()                      // want "datastore.Storage"
	results, err := st.Scan(storage.Query{}) // want "call to storage.Scan"
	if err != nil {
		return nil
	}
	segs := make([]*wavesegment.Segment, 0, len(results))
	for _, res := range results {
		segs = append(segs, res.Segment)
	}
	return segs
}

// scanner is resolved by method-set matching against the package's
// concrete types: the analyzer must see through the dispatch to
// rawSource.Fetch and its transitive scan.
type scanner interface {
	Fetch() []*wavesegment.Segment
}

type rawSource struct {
	svc *datastore.Service
}

func (r rawSource) Fetch() []*wavesegment.Segment {
	return level2(r.svc)
}

func leakDispatch(s scanner) queryResp {
	return queryResp{Segments: s.Fetch()} // want "raw"
}

// leakDecode mints a raw segment from bytes: the wavesegment decoders
// are sources just like the storage engines.
func leakDecode(data []byte) queryResp {
	seg, err := wavesegment.UnmarshalJSONSegment(data)
	if err != nil {
		return queryResp{}
	}
	return queryResp{Segments: []*wavesegment.Segment{seg}} // want "raw"
}
