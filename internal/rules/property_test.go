package rules

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Property-based tests of the decision engine's security invariants, over
// randomized rule sets and requests.

// randomRule synthesizes one plausible rule.
func randomRule(rng *rand.Rand) *Rule {
	r := &Rule{ID: fmt.Sprintf("r%d", rng.Int())}
	if rng.Intn(2) == 0 {
		r.Consumers = []string{fmt.Sprintf("consumer-%d", rng.Intn(4))}
	}
	if rng.Intn(4) == 0 {
		r.Groups = []string{fmt.Sprintf("group-%d", rng.Intn(3))}
	}
	if rng.Intn(3) == 0 {
		lat := float64(rng.Intn(60))
		lon := float64(rng.Intn(60)) - 120
		rect, _ := geo.NewRect(geo.Point{Lat: lat, Lon: lon}, geo.Point{Lat: lat + 5, Lon: lon + 5})
		r.Regions = []geo.Region{{Rect: rect}}
	}
	if rng.Intn(3) == 0 {
		days := [][]string{{"Mon", "Tue", "Wed"}, {"Sat", "Sun"}, nil}[rng.Intn(3)]
		hours := [][]string{{"9:00am", "6:00pm"}, {"10:00pm", "2:00am"}, nil}[rng.Intn(3)]
		if rep, err := timeutil.ParseRepeated(days, hours); err == nil {
			r.RepeatTimes = []timeutil.Repeated{rep}
		}
	}
	if rng.Intn(3) == 0 {
		sensors := [][]string{{"ECG"}, {"Respiration"}, {"Accelerometer"}, {"Microphone", "ECG"}}[rng.Intn(4)]
		r.Sensors = ExpandSensorNames(sensors)
	}
	if rng.Intn(3) == 0 {
		r.Contexts = []string{KnownContextLabels()[rng.Intn(13)]}
	}
	switch rng.Intn(3) {
	case 0:
		r.Action = Allow()
	case 1:
		r.Action = Deny()
	default:
		spec := AbstractionSpec{}
		switch rng.Intn(3) {
		case 0:
			g := []geo.LocationGranularity{geo.LocZipcode, geo.LocCity, geo.LocNotShared}[rng.Intn(3)]
			spec.Location = &g
		case 1:
			g := []timeutil.Granularity{timeutil.GranHour, timeutil.GranDay, timeutil.GranNotShared}[rng.Intn(3)]
			spec.Time = &g
		default:
			cat := Categories()[rng.Intn(4)]
			levels := []Level{LevelBinary, LevelNotShared}
			if cat == CategoryActivity {
				levels = append(levels, LevelModes)
			}
			spec.Contexts = map[Category]Level{cat: levels[rng.Intn(len(levels))]}
		}
		r.Action = Abstract(spec)
	}
	return r
}

func randomRuleSet(rng *rand.Rand, n int) []*Rule {
	out := make([]*Rule, n)
	for i := range out {
		out[i] = randomRule(rng)
	}
	return out
}

func randomRequest(rng *rand.Rand) *Request {
	req := &Request{
		Consumer: fmt.Sprintf("consumer-%d", rng.Intn(5)),
		At:       time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(rng.Intn(40*24)) * time.Hour),
		Location: geo.Point{Lat: float64(rng.Intn(70)), Lon: float64(rng.Intn(70)) - 120},
	}
	if rng.Intn(2) == 0 {
		req.ConsumerGroups = []string{fmt.Sprintf("group-%d", rng.Intn(3))}
	}
	labels := KnownContextLabels()
	for i := 0; i < rng.Intn(3); i++ {
		req.ActiveContexts = append(req.ActiveContexts, labels[rng.Intn(len(labels))])
	}
	return req
}

// sharingScore counts how much a decision reveals, for monotonicity
// comparisons: each raw channel, each context level step, and the
// location/time precision all contribute.
func sharingScore(d *Decision) int {
	score := 0
	for _, ch := range allTestChannels {
		if d.ChannelShared(ch) {
			score += 10
		}
	}
	for _, cat := range Categories() {
		score += int(LevelNotShared - d.ContextLevel(cat)) // 0..3
	}
	score += int(geo.LocNotShared - d.Location)
	score += int(timeutil.GranNotShared - d.Time)
	return score
}

var allTestChannels = []string{
	wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelAccelX,
	wavesegment.ChannelAccelY, wavesegment.ChannelAccelZ, wavesegment.ChannelMicrophone,
	wavesegment.ChannelLatitude, wavesegment.ChannelLongitude, wavesegment.ChannelSkinTemp,
}

func TestPropertyDenyNeverIncreasesSharing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomRuleSet(rng, rng.Intn(6)+1)
		e1, err := NewEngine(base, nil)
		if err != nil {
			return false
		}
		deny := randomRule(rng)
		deny.Action = Deny()
		e2, err := NewEngine(append(append([]*Rule{}, base...), deny), nil)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req := randomRequest(rng)
			if sharingScore(e2.Decide(req)) > sharingScore(e1.Decide(req)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAbstractionNeverGrantsChannels(t *testing.T) {
	// Adding an abstraction rule must never make a previously-blocked raw
	// channel flow.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomRuleSet(rng, rng.Intn(6)+1)
		e1, err := NewEngine(base, nil)
		if err != nil {
			return false
		}
		abs := randomRule(rng)
		spec := AbstractionSpec{Contexts: map[Category]Level{
			Categories()[rng.Intn(4)]: LevelBinary,
		}}
		abs.Action = Abstract(spec)
		e2, err := NewEngine(append(append([]*Rule{}, base...), abs), nil)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req := randomRequest(rng)
			d1, d2 := e1.Decide(req), e2.Decide(req)
			for _, ch := range allTestChannels {
				if d2.ChannelShared(ch) && !d1.ChannelShared(ch) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyClosureSoundness(t *testing.T) {
	// Whenever a decision shares a channel raw, every category inferable
	// from that channel must be at LevelRaw, and GPS channels require
	// exact coordinates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewEngine(randomRuleSet(rng, rng.Intn(8)+1), nil)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			d := e.Decide(randomRequest(rng))
			for _, ch := range allTestChannels {
				if !d.ChannelShared(ch) {
					continue
				}
				for _, cat := range SensorCategories(ch) {
					if d.ContextLevel(cat) != LevelRaw {
						return false
					}
				}
				if (ch == wavesegment.ChannelLatitude || ch == wavesegment.ChannelLongitude) &&
					d.Location != geo.LocCoordinates {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConsumerIsolation(t *testing.T) {
	// If every rule names specific consumers, an unnamed consumer gets
	// nothing, ever.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng, rng.Intn(6)+1)
		for _, r := range rs {
			r.Consumers = []string{fmt.Sprintf("consumer-%d", rng.Intn(4))}
			r.Groups = nil
		}
		e, err := NewEngine(rs, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req := randomRequest(rng)
			req.Consumer = "outsider"
			req.ConsumerGroups = nil
			if e.Decide(req).SharesAnything() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecideDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewEngine(randomRuleSet(rng, rng.Intn(8)+1), nil)
		if err != nil {
			return false
		}
		req := randomRequest(rng)
		a, b := e.Decide(req), e.Decide(req)
		if a.Location != b.Location || a.Time != b.Time || a.AllChannelsGranted != b.AllChannelsGranted {
			return false
		}
		for _, ch := range allTestChannels {
			if a.ChannelShared(ch) != b.ChannelShared(ch) {
				return false
			}
		}
		for _, cat := range Categories() {
			if a.ContextLevel(cat) != b.ContextLevel(cat) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRuleOrderIrrelevant(t *testing.T) {
	// Decisions must not depend on rule ordering (grants union, clamps
	// combine most-restrictively, denies override — all commutative).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng, rng.Intn(6)+2)
		e1, err := NewEngine(rs, nil)
		if err != nil {
			return false
		}
		shuffled := append([]*Rule{}, rs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		e2, err := NewEngine(shuffled, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req := randomRequest(rng)
			a, b := e1.Decide(req), e2.Decide(req)
			if a.Location != b.Location || a.Time != b.Time {
				return false
			}
			for _, ch := range allTestChannels {
				if a.ChannelShared(ch) != b.ChannelShared(ch) {
					return false
				}
			}
			for _, cat := range Categories() {
				if a.ContextLevel(cat) != b.ContextLevel(cat) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRuleJSONRoundTrip(t *testing.T) {
	// Random rules survive marshal → unmarshal with identical decisions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(rng, rng.Intn(5)+1)
		data, err := MarshalRuleSet(rs)
		if err != nil {
			return false
		}
		back, err := UnmarshalRuleSet(data)
		if err != nil {
			return false
		}
		e1, err := NewEngine(rs, nil)
		if err != nil {
			return false
		}
		e2, err := NewEngine(back, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			req := randomRequest(rng)
			a, b := e1.Decide(req), e2.Decide(req)
			for _, ch := range allTestChannels {
				if a.ChannelShared(ch) != b.ChannelShared(ch) {
					return false
				}
			}
			for _, cat := range Categories() {
				if a.ContextLevel(cat) != b.ContextLevel(cat) {
					return false
				}
			}
			if a.Location != b.Location || a.Time != b.Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
