package segstore

import "time"

// LevelStats summarizes one LSM level of the file set.
type LevelStats struct {
	Level   int   `json:"level"`
	Files   int   `json:"files"`
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// RawBytes is the pre-compression size of the level's blocks.
	RawBytes int64 `json:"rawBytes"`
}

// Stats is a point-in-time snapshot of the engine, served by the
// store's /debug/segstore endpoint and `consumercli storestats`.
type Stats struct {
	Dir             string `json:"dir"`
	MemtableRecords int    `json:"memtableRecords"`
	MemtableBytes   int64  `json:"memtableBytes"`
	// MemtableBudget is Options.MemtableBytes — the flush trigger — so
	// backlog consumers (the overload controller's pressure sources) can
	// normalize MemtableBytes without knowing the engine's configuration.
	MemtableBudget  int64 `json:"memtableBudget"`
	SealedMemtables int   `json:"sealedMemtables"`
	// L0Threshold is Options.L0CompactThreshold, the L0 file count that
	// triggers compaction; L0 files beyond it are compaction debt.
	L0Threshold    int          `json:"l0Threshold"`
	WALFiles       int          `json:"walFiles"`
	WALBytes       int64        `json:"walBytes"`
	WALReplayed    int          `json:"walReplayed"` // records replayed at open
	Levels         []LevelStats `json:"levels"`
	LiveRecords    int          `json:"liveRecords"`
	DiskRecords    int          `json:"diskRecords"`
	Tombstones     int          `json:"tombstones"` // dead records awaiting reclamation
	Flushes        uint64       `json:"flushes"`
	Compactions    uint64       `json:"compactions"`
	MergedRecords  uint64       `json:"mergedRecords"`    // wave-merged away, lifetime
	ReclaimedTombs uint64       `json:"reclaimedRecords"` // tombstones purged, lifetime
	LastCompaction time.Time    `json:"lastCompaction,omitempty"`
	LastCompactMS  int64        `json:"lastCompactionMillis"`
	LastError      string       `json:"lastError,omitempty"`
}

// Stats snapshots the engine.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Dir:             s.dir,
		MemtableRecords: s.active.len(),
		MemtableBytes:   s.active.bytes,
		MemtableBudget:  s.opts.MemtableBytes,
		SealedMemtables: len(s.sealed),
		L0Threshold:     s.opts.L0CompactThreshold,
		LiveRecords:     s.liveCount,
		Tombstones:      len(s.tombstones),
	}
	byLevel := make(map[int]*LevelStats)
	for _, fm := range s.man.Files {
		ls := byLevel[fm.Level]
		if ls == nil {
			ls = &LevelStats{Level: fm.Level}
			byLevel[fm.Level] = ls
		}
		ls.Files++
		ls.Records += fm.Records
		ls.Bytes += fm.Bytes
		ls.RawBytes += fm.RawBytes
		st.DiskRecords += fm.Records
	}
	for lvl := 0; lvl <= 8; lvl++ {
		if ls, ok := byLevel[lvl]; ok {
			st.Levels = append(st.Levels, *ls)
		}
	}
	st.WALFiles = 1 + len(s.wal.sealed)
	st.WALBytes = s.wal.active.bytes
	for _, wf := range s.wal.sealed {
		st.WALBytes += wf.bytes
	}
	s.mu.RUnlock()

	s.statsMu.Lock()
	st.WALReplayed = s.walReplayed
	st.Flushes = s.flushes
	st.Compactions = s.compactions
	st.MergedRecords = s.mergedRecords
	st.ReclaimedTombs = s.reclaimed
	st.LastCompaction = s.lastCompaction
	st.LastCompactMS = s.lastCompactDur.Milliseconds()
	st.LastError = s.lastError
	s.statsMu.Unlock()
	return st
}
