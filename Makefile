# SensorSafe build/test entry points.

GO ?= go

.PHONY: all build vet test test-short cover bench harness fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment table (EXPERIMENTS.md).
harness:
	$(GO) run ./cmd/benchharness

harness-quick:
	$(GO) run ./cmd/benchharness -quick

# Short fuzz campaigns on the three untrusted-input parsers.
fuzz:
	$(GO) test -fuzz=FuzzRuleJSON -fuzztime=30s ./internal/rules/
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/wavesegment/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/behavioralstudy
	$(GO) run ./examples/healthcoach
	$(GO) run ./examples/ruleaware
	$(GO) run ./examples/audittrail

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
