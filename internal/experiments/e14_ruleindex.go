package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/rules"
)

// E14Config parameterizes the compiled rule-index experiment: decision
// latency vs rule-set size through the linear engine, the cold index
// (memoization disabled), and the warm index (decision cache hot), plus
// the two release-path kernels the index feeds — segment enforcement
// (the stream-delivery / query span loop) and broker-style federated
// search fan-out.
type E14Config struct {
	// RuleCounts sweeps the contributor's rule-set size.
	RuleCounts []int
	// Evaluations per measurement point.
	Evaluations int
	// Requests is how many distinct probe requests the sweep cycles
	// through (distinct consumers/instants, so the cold path cannot
	// degenerate into one cache line).
	Requests int
	// SegmentSeconds sizes the enforcement-path segment.
	SegmentSeconds int
	// Contributors is the federated fan-out width (replicas probed per
	// search).
	Contributors int
	// Searches is how many cohort searches the fan-out timing averages.
	Searches int
}

// DefaultE14 sweeps 1..10k rules: the shape target is near-flat indexed
// latency where the linear engine grows linearly.
func DefaultE14() E14Config {
	return E14Config{
		RuleCounts:     []int{1, 100, 1000, 10000},
		Evaluations:    2000,
		Requests:       64,
		SegmentSeconds: 60,
		Contributors:   40,
		Searches:       20,
	}
}

// E14Point is one rule-count measurement.
type E14Point struct {
	Rules         int     `json:"rules"`
	LinearNs      int64   `json:"linear_ns"`
	IndexColdNs   int64   `json:"index_cold_ns"`
	IndexWarmNs   int64   `json:"index_warm_ns"`
	CompileMicros int64   `json:"compile_micros"`
	SpeedupCold   float64 `json:"speedup_cold"`
	SpeedupWarm   float64 `json:"speedup_warm"`
}

// E14Result is the machine-readable output (BENCH_9.json).
type E14Result struct {
	Points []E14Point `json:"points"`
	// SpeedupAtMax is linear/warm at the largest rule count — the
	// acceptance target is >= 10 at 10k rules.
	SpeedupAtMax float64 `json:"speedup_at_max"`
	// Enforce* time one full segment-enforcement pass (the stream
	// delivery and query kernels) at the largest rule count.
	EnforceLinearUs int64   `json:"enforce_linear_us"`
	EnforceIndexUs  int64   `json:"enforce_index_us"`
	EnforceSpeedup  float64 `json:"enforce_speedup"`
	// Fanout* time one federated cohort search across Contributors
	// replicas at the largest rule count.
	FanoutLinearUs int64   `json:"fanout_linear_us"`
	FanoutIndexUs  int64   `json:"fanout_index_us"`
	FanoutSpeedup  float64 `json:"fanout_speedup"`
}

// e14Requests builds the probe mix: distinct consumers and instants so
// consecutive evaluations traverse different index partitions and cache
// keys, inside and outside the e4 rule set's recurring work window.
func e14Requests(n, ruleCount int) []*rules.Request {
	base := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC) // a Wednesday
	out := make([]*rules.Request, n)
	for i := range out {
		consumer := fmt.Sprintf("consumer-%d", i%max(ruleCount, 1))
		out[i] = &rules.Request{
			Consumer:       consumer,
			At:             base.Add(time.Duration(i) * 3 * time.Hour),
			Location:       geo.Point{Lat: 34.0689, Lon: -118.4452},
			ActiveContexts: []string{rules.CtxWalk, rules.CtxConversation},
		}
	}
	return out
}

// timeDecides runs the probe cycle through one decider and returns the
// per-decision latency.
func timeDecides(d rules.Decider, reqs []*rules.Request, evals int) time.Duration {
	begin := time.Now()
	for i := 0; i < evals; i++ {
		_ = d.Decide(reqs[i%len(reqs)])
	}
	return time.Since(begin) / time.Duration(evals)
}

// RunE14 measures indexed vs linear decision latency across rule counts
// and the end-to-end effect on the enforcement and fan-out kernels.
func RunE14(cfg E14Config) (*E14Result, *Table, error) {
	t := &Table{
		ID: "E14",
		Caption: fmt.Sprintf("compiled rule index vs linear engine (%d evals/point, %d distinct probes)",
			cfg.Evaluations, cfg.Requests),
		Headers: []string{"rules", "linear", "index cold", "index warm", "compile", "speedup(warm)"},
		Notes: []string{
			"cold = memoized decision cache disabled; warm = cache populated by a first pass",
			"expected shape: linear engine grows with rule count, indexed latency stays near-flat",
		},
	}
	res := &E14Result{}
	maxRules := 0
	for _, n := range cfg.RuleCounts {
		if n > maxRules {
			maxRules = n
		}
		gaz := geo.NewGazetteer()
		rect, err := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
		if err != nil {
			return nil, nil, err
		}
		if err := gaz.Define("work", geo.Region{Rect: rect}); err != nil {
			return nil, nil, err
		}
		rs := e4Rules(n)
		eng, err := rules.NewEngine(rs, gaz)
		if err != nil {
			return nil, nil, err
		}
		reqs := e14Requests(cfg.Requests, n)

		linear := timeDecides(eng, reqs, cfg.Evaluations)

		cold := ruleindex.FromEngine(eng, ruleindex.Options{CacheEntries: -1})
		coldLat := timeDecides(cold, reqs, cfg.Evaluations)

		warm := ruleindex.FromEngine(eng, ruleindex.Options{})
		timeDecides(warm, reqs, len(reqs)) // populate the cache
		warmLat := timeDecides(warm, reqs, cfg.Evaluations)

		p := E14Point{
			Rules:         n,
			LinearNs:      linear.Nanoseconds(),
			IndexColdNs:   coldLat.Nanoseconds(),
			IndexWarmNs:   warmLat.Nanoseconds(),
			CompileMicros: warm.Stats().CompileMicros,
		}
		if coldLat > 0 {
			p.SpeedupCold = float64(linear) / float64(coldLat)
		}
		if warmLat > 0 {
			p.SpeedupWarm = float64(linear) / float64(warmLat)
		}
		res.Points = append(res.Points, p)
		t.AddRow(fmt.Sprintf("%d", n), linear.String(), coldLat.String(), warmLat.String(),
			(time.Duration(p.CompileMicros) * time.Microsecond).String(),
			fmt.Sprintf("%.1fx", p.SpeedupWarm))
	}
	if len(res.Points) > 0 {
		res.SpeedupAtMax = res.Points[len(res.Points)-1].SpeedupWarm
	}

	// Stream-delivery / query kernel: full segment enforcement (span cuts +
	// one decision per span + transform) at the largest rule count. This is
	// exactly what Hub.enforce and QueryCtx run per delivered segment.
	gaz := geo.NewGazetteer()
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	_ = gaz.Define("work", geo.Region{Rect: rect})
	eng, err := rules.NewEngine(e4Rules(maxRules), gaz)
	if err != nil {
		return nil, nil, err
	}
	ix := ruleindex.FromEngine(eng, ruleindex.Options{})
	seg := E4Segment(cfg.SegmentSeconds)
	gc := geo.GridGeocoder{}
	const enforceRounds = 20
	timeEnforce := func(d rules.Decider) (time.Duration, error) {
		begin := time.Now()
		for i := 0; i < enforceRounds; i++ {
			if _, err := abstraction.Enforce(d, "consumer-0", nil, seg, gc); err != nil {
				return 0, err
			}
		}
		return time.Since(begin) / enforceRounds, nil
	}
	linEnf, err := timeEnforce(eng)
	if err != nil {
		return nil, nil, err
	}
	ixEnf, err := timeEnforce(ix)
	if err != nil {
		return nil, nil, err
	}
	res.EnforceLinearUs = linEnf.Microseconds()
	res.EnforceIndexUs = ixEnf.Microseconds()
	if ixEnf > 0 {
		res.EnforceSpeedup = float64(linEnf) / float64(ixEnf)
	}
	t.AddRow(fmt.Sprintf("enforce %ds seg @%d", cfg.SegmentSeconds, maxRules),
		linEnf.String(), "-", ixEnf.String(), "-", fmt.Sprintf("%.1fx", res.EnforceSpeedup))

	// Federated fan-out kernel: one cohort search probes every replica at
	// several instants (the broker's contributorMatches loop) — repeated
	// searches hit the same probe signatures, so the warm cache carries it.
	probes := e14Requests(6, maxRules)
	timeFanout := func(mk func() rules.Decider) time.Duration {
		deciders := make([]rules.Decider, cfg.Contributors)
		for i := range deciders {
			deciders[i] = mk()
		}
		begin := time.Now()
		for s := 0; s < cfg.Searches; s++ {
			for _, d := range deciders {
				for _, req := range probes {
					_ = d.Decide(req)
				}
			}
		}
		return time.Since(begin) / time.Duration(cfg.Searches)
	}
	linFan := timeFanout(func() rules.Decider { return eng })
	ixFan := timeFanout(func() rules.Decider {
		return ruleindex.FromEngine(eng, ruleindex.Options{})
	})
	res.FanoutLinearUs = linFan.Microseconds()
	res.FanoutIndexUs = ixFan.Microseconds()
	if ixFan > 0 {
		res.FanoutSpeedup = float64(linFan) / float64(ixFan)
	}
	t.AddRow(fmt.Sprintf("fan-out %d stores @%d", cfg.Contributors, maxRules),
		linFan.String(), "-", ixFan.String(), "-", fmt.Sprintf("%.1fx", res.FanoutSpeedup))
	return res, t, nil
}
