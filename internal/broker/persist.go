package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/rules"
)

// Broker persistence: the directory of contributors with their rule
// replicas, consumer accounts with vaulted per-store keys, saved lists,
// and study membership all survive restarts via a JSON state file written
// atomically on every mutation. Store connections (live StoreConn handles)
// are re-registered by the stores at startup and are not persisted.

const stateFileName = "broker_state.json"

type persistedBrokerContributor struct {
	Name      string          `json:"name"`
	StoreAddr string          `json:"storeAddr,omitempty"`
	Rules     json.RawMessage `json:"rules,omitempty"`
	Places    []geo.Region    `json:"places,omitempty"`
	// RuleVersion is the applied replica version; StoreVersion the highest
	// version the store has claimed. Persisting both means a broker restart
	// still knows which replicas were stale.
	RuleVersion  uint64 `json:"ruleVersion,omitempty"`
	StoreVersion uint64 `json:"storeVersion,omitempty"`
}

type persistedBrokerConsumer struct {
	Lists  map[string][]string    `json:"lists,omitempty"`
	Keys   map[string]auth.APIKey `json:"keys,omitempty"`
	Groups []string               `json:"groups,omitempty"`
}

type persistedBrokerState struct {
	Users        []auth.User                            `json:"users"`
	Contributors map[string]*persistedBrokerContributor `json:"contributors"`
	Consumers    map[string]*persistedBrokerConsumer    `json:"consumers"`
	Studies      map[string][]string                    `json:"studies"`
	// StudyRosters holds each study's enrolled contributor cohort (display
	// names; map keys re-derive by normalization on load).
	StudyRosters map[string][]string `json:"studyRosters,omitempty"`
}

// NewPersistent opens a broker whose state survives restarts in dir.
func NewPersistent(dir string) (*Service, error) {
	if dir == "" {
		return New(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("broker: create dir: %w", err)
	}
	s := New()
	s.dir = dir
	if err := s.loadState(); err != nil {
		return nil, err
	}
	return s, nil
}

// saveState writes the state file; callers must not hold s.mu.
func (s *Service) saveState() error {
	if s.dir == "" {
		return nil
	}
	st, err := s.snapshotState()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("broker: encode state: %w", err)
	}
	if err := resilience.WriteFileAtomic(filepath.Join(s.dir, stateFileName), data, 0o600); err != nil {
		return fmt.Errorf("broker: write state: %w", err)
	}
	return nil
}

func (s *Service) snapshotState() (*persistedBrokerState, error) {
	st := &persistedBrokerState{
		Users:        s.users.Snapshot(),
		Contributors: make(map[string]*persistedBrokerContributor),
		Consumers:    make(map[string]*persistedBrokerConsumer),
		Studies:      make(map[string][]string),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for key, ce := range s.contributors {
		pc := &persistedBrokerContributor{
			Name: ce.name, StoreAddr: ce.storeAddr,
			RuleVersion: ce.version, StoreVersion: ce.storeVersion,
		}
		if len(ce.rules) > 0 {
			data, err := rules.MarshalRuleSet(ce.rules)
			if err != nil {
				return nil, err
			}
			pc.Rules = data
		}
		if ce.gazetteer != nil {
			labels := ce.gazetteer.Labels()
			sort.Strings(labels)
			for _, l := range labels {
				if rg, ok := ce.gazetteer.Lookup(l); ok {
					pc.Places = append(pc.Places, rg)
				}
			}
		}
		st.Contributors[key] = pc
	}
	for key, e := range s.consumers {
		pc := &persistedBrokerConsumer{Groups: append([]string(nil), e.groups...)}
		if len(e.lists) > 0 {
			pc.Lists = make(map[string][]string, len(e.lists))
			for n, members := range e.lists {
				pc.Lists[n] = append([]string(nil), members...)
			}
		}
		if len(e.keys) > 0 {
			pc.Keys = make(map[string]auth.APIKey, len(e.keys))
			for addr, k := range e.keys {
				pc.Keys[addr] = k
			}
		}
		st.Consumers[key] = pc
	}
	for study, members := range s.studies {
		var out []string
		for m := range members {
			out = append(out, m)
		}
		sort.Strings(out)
		st.Studies[study] = out
	}
	for study, roster := range s.rosters {
		var out []string
		for _, name := range roster {
			out = append(out, name)
		}
		sort.Strings(out)
		if st.StudyRosters == nil {
			st.StudyRosters = make(map[string][]string)
		}
		st.StudyRosters[study] = out
	}
	return st, nil
}

func (s *Service) loadState() error {
	data, err := os.ReadFile(filepath.Join(s.dir, stateFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("broker: read state: %w", err)
	}
	var st persistedBrokerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("broker: decode state: %w", err)
	}
	if len(st.Users) > 0 {
		if err := s.users.Restore(st.Users); err != nil {
			return fmt.Errorf("broker: restore users: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, pc := range st.Contributors {
		ce := &contributorEntry{
			name: pc.Name, storeAddr: pc.StoreAddr, gazetteer: geo.NewGazetteer(),
			version: pc.RuleVersion, storeVersion: pc.StoreVersion,
		}
		for _, rg := range pc.Places {
			if err := ce.gazetteer.Define(rg.Label, rg); err != nil {
				return fmt.Errorf("broker: restore place %q: %w", rg.Label, err)
			}
		}
		if len(pc.Rules) > 0 {
			rs, err := rules.UnmarshalRuleSet(pc.Rules)
			if err != nil {
				return fmt.Errorf("broker: restore rules for %s: %w", pc.Name, err)
			}
			engine, err := rules.NewEngine(rs, ce.gazetteer)
			if err != nil {
				return fmt.Errorf("broker: recompile rules for %s: %w", pc.Name, err)
			}
			ce.rules = rs
			ce.engine = engine
			ce.index = ruleindex.FromEngine(engine, ruleindex.Options{Version: ce.version})
		}
		s.contributors[key] = ce
	}
	metricDirectorySize.Set(float64(len(s.contributors)))
	s.recomputeStaleLocked()
	for key, pc := range st.Consumers {
		e := &consumerEntry{
			lists:  make(map[string][]string),
			keys:   make(map[string]auth.APIKey),
			groups: append([]string(nil), pc.Groups...),
		}
		for n, members := range pc.Lists {
			e.lists[n] = append([]string(nil), members...)
		}
		for addr, k := range pc.Keys {
			e.keys[addr] = k
		}
		s.consumers[key] = e
	}
	for study, members := range st.Studies {
		set := make(map[string]bool, len(members))
		for _, m := range members {
			set[m] = true
		}
		s.studies[study] = set
	}
	for study, names := range st.StudyRosters {
		roster := make(map[string]string, len(names))
		for _, n := range names {
			roster[norm(n)] = n
		}
		s.rosters[study] = roster
	}
	return nil
}
