package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module-wide call graph. Nodes are the functions and methods declared in
// the analysis universe (normally every package of the module; a single
// fixture package in tests). Edges are resolved call sites: static calls
// bind directly, calls through an interface method resolve to every
// concrete type in the universe whose method set satisfies the interface
// (method-set matching). Interface methods of packages outside the module
// (io.Writer, error, ...) are left unresolved — expanding them would wire
// unrelated subsystems together through stdlib plumbing and drown the
// interprocedural analyzers in phantom edges.
//
// The graph is the substrate both interprocedural analyzers share:
// privacyflow propagates per-function taint summaries over it and
// lockorder propagates lock-acquisition summaries, each running a
// cycle-safe fixpoint over its strongly connected components.

// CGNode is one declared function or method of the universe.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Sites are the node's call sites in source order.
	Sites []CallSite
}

// CallSite is one resolved call expression inside a node's body.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Static is the callee the type-checker resolved: a concrete function,
	// an interface method, or an external function. Nil for calls through
	// function values and built-ins.
	Static *types.Func
	// Targets are the universe-declared functions this call may reach:
	// the static callee itself when it is declared here, or every concrete
	// implementation when Static is a module interface method.
	Targets []*CGNode
}

// CallGraph indexes the universe's declarations and resolved call sites.
type CallGraph struct {
	Module *Module
	Pkgs   []*Package
	// Nodes maps each declared function object to its node.
	Nodes map[*types.Func]*CGNode

	concrete []types.Type              // named non-interface types, for method-set matching
	implMemo map[*types.Func][]*CGNode // interface method → implementations
}

// CallGraphFor builds (or returns the cached) call graph over the given
// universe. The full-module graph (universe == m.Pkgs) is built once and
// shared by every analyzer of a run; ad-hoc universes (fixtures) build a
// fresh small graph.
func (m *Module) CallGraphFor(universe []*Package) *CallGraph {
	if len(universe) == len(m.Pkgs) {
		same := true
		for i := range universe {
			if universe[i] != m.Pkgs[i] {
				same = false
				break
			}
		}
		if same {
			m.cgOnce.Do(func() { m.cg = buildCallGraph(m, m.Pkgs) })
			return m.cg
		}
	}
	return buildCallGraph(m, universe)
}

func buildCallGraph(m *Module, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Module:   m,
		Pkgs:     pkgs,
		Nodes:    make(map[*types.Func]*CGNode),
		implMemo: make(map[*types.Func][]*CGNode),
	}
	// Pass 1: declarations and the concrete-type catalog.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.Nodes[fn] = &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if !types.IsInterface(tn.Type()) {
				g.concrete = append(g.concrete, tn.Type())
			}
		}
	}
	// Pass 2: call sites.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.Nodes[fn]
				if node == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					node.Sites = append(node.Sites, g.resolve(pkg, call))
					return true
				})
			}
		}
	}
	return g
}

// resolve classifies one call expression.
func (g *CallGraph) resolve(pkg *Package, call *ast.CallExpr) CallSite {
	site := CallSite{Call: call, Pos: call.Pos()}
	fn, _ := calleeObj(pkg, call).(*types.Func)
	if fn == nil {
		return site
	}
	site.Static = fn
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		if g.universeInterface(fn) {
			site.Targets = g.implementations(fn)
		}
		return site
	}
	if node := g.Nodes[fn]; node != nil {
		site.Targets = []*CGNode{node}
	}
	return site
}

// universeInterface reports whether an interface method belongs to the
// module (or a fixture package) rather than the standard library.
func (g *CallGraph) universeInterface(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false // error.Error and other universe-scope methods
	}
	path := p.Path()
	mod := g.Module.Path
	return path == mod || strings.HasPrefix(path, mod+"/") || strings.HasPrefix(path, "fixture/")
}

// implementations resolves an interface method to the universe methods
// that satisfy it, by method-set matching over the concrete-type catalog.
func (g *CallGraph) implementations(ifaceMethod *types.Func) []*CGNode {
	if impls, ok := g.implMemo[ifaceMethod]; ok {
		return impls
	}
	iface, _ := ifaceMethod.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var impls []*CGNode
	if iface != nil {
		for _, t := range g.concrete {
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, ifaceMethod.Pkg(), ifaceMethod.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if node := g.Nodes[m]; node != nil {
				impls = append(impls, node)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Fn.FullName() < impls[j].Fn.FullName() })
	g.implMemo[ifaceMethod] = impls
	return impls
}

// callees returns the universe nodes a node may call, deduplicated.
func (g *CallGraph) callees(n *CGNode) []*CGNode {
	seen := make(map[*CGNode]bool)
	var out []*CGNode
	for _, site := range n.Sites {
		for _, t := range site.Targets {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// SCCs returns the graph's strongly connected components in callee-first
// (reverse topological) order, so a bottom-up fixpoint can process each
// component after everything it calls. Tarjan's algorithm emits components
// in exactly this order.
func (g *CallGraph) SCCs() [][]*CGNode {
	// Deterministic node order keeps summaries and diagnostics stable.
	nodes := make([]*CGNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })

	index := make(map[*CGNode]int, len(nodes))
	low := make(map[*CGNode]int, len(nodes))
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	var sccs [][]*CGNode
	next := 0

	var strongconnect func(n *CGNode)
	strongconnect = func(n *CGNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range g.callees(n) {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			var comp []*CGNode
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == n {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// Fixpoint runs update over every node, callee-first, iterating each
// strongly connected component until no summary changes — the cycle-safe
// bottom-up propagation both interprocedural analyzers build on. update
// returns whether the node's summary changed.
func (g *CallGraph) Fixpoint(update func(n *CGNode) bool) {
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if update(n) {
					changed = true
				}
			}
		}
	}
}
