package auth

import (
	"errors"
	"testing"
	"time"
)

func TestNewAPIKeyUniqueAndWellFormed(t *testing.T) {
	seen := make(map[APIKey]bool)
	for i := 0; i < 100; i++ {
		k, err := NewAPIKey()
		if err != nil {
			t.Fatal(err)
		}
		if len(k) != 64 { // hex SHA-256
			t.Fatalf("key length = %d", len(k))
		}
		if seen[k] {
			t.Fatal("duplicate key generated")
		}
		seen[k] = true
	}
}

func TestRegisterAuthenticate(t *testing.T) {
	r := NewRegistry()
	u, err := r.Register("Alice", RoleContributor)
	if err != nil {
		t.Fatal(err)
	}
	if u.Key == "" || u.Role != RoleContributor {
		t.Fatalf("user = %+v", u)
	}
	got, err := r.Authenticate(u.Key)
	if err != nil || got.Name != "Alice" {
		t.Fatalf("Authenticate = %+v, %v", got, err)
	}
	if _, err := r.Authenticate("bogus"); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key: %v", err)
	}
	if _, err := r.Register("alice", RoleConsumer); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate (case-insensitive): %v", err)
	}
	if _, err := r.Register("  ", RoleConsumer); err == nil {
		t.Error("blank name should be rejected")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestLookupBlanksKey(t *testing.T) {
	r := NewRegistry()
	u, _ := r.Register("alice", RoleContributor)
	got, err := r.Lookup("ALICE")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "" {
		t.Error("Lookup must not leak the key")
	}
	if got.Name != "alice" {
		t.Errorf("name = %q", got.Name)
	}
	_ = u
	if _, err := r.Lookup("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user: %v", err)
	}
}

func TestRotateInvalidatesOldKey(t *testing.T) {
	r := NewRegistry()
	u, _ := r.Register("alice", RoleContributor)
	newKey, err := r.Rotate("alice")
	if err != nil {
		t.Fatal(err)
	}
	if newKey == u.Key {
		t.Error("rotation must change the key")
	}
	if _, err := r.Authenticate(u.Key); !errors.Is(err, ErrBadKey) {
		t.Error("old key must be invalid")
	}
	if got, err := r.Authenticate(newKey); err != nil || got.Name != "alice" {
		t.Errorf("new key: %v, %v", got, err)
	}
	if _, err := r.Rotate("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("rotate unknown: %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := NewRegistry()
	u, _ := r.Register("alice", RoleContributor)
	if err := r.Remove("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate(u.Key); !errors.Is(err, ErrBadKey) {
		t.Error("removed user's key must be invalid")
	}
	if err := r.Remove("alice"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("double remove: %v", err)
	}
}

func TestUsersSortedAndBlanked(t *testing.T) {
	r := NewRegistry()
	_, _ = r.Register("bob", RoleConsumer)
	_, _ = r.Register("alice", RoleContributor)
	us := r.Users()
	if len(us) != 2 || us[0].Name != "alice" || us[1].Name != "bob" {
		t.Fatalf("Users = %+v", us)
	}
	for _, u := range us {
		if u.Key != "" {
			t.Error("Users must blank keys")
		}
	}
}

func TestPasswordLoginFlow(t *testing.T) {
	p := NewPasswords(0)
	if err := p.SetPassword("alice", "hunter2"); err != nil {
		t.Fatal(err)
	}
	token, err := p.Login("Alice", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	user, err := p.Validate(token)
	if err != nil || user != "alice" {
		t.Fatalf("Validate = %q, %v", user, err)
	}
	if _, err := p.Login("alice", "wrong"); !errors.Is(err, ErrBadLogin) {
		t.Errorf("wrong password: %v", err)
	}
	if _, err := p.Login("nobody", "x"); !errors.Is(err, ErrBadLogin) {
		t.Errorf("unknown user: %v", err)
	}
	p.Logout(token)
	if _, err := p.Validate(token); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("after logout: %v", err)
	}
	if err := p.SetPassword("", "x"); err == nil {
		t.Error("empty user should be rejected")
	}
	if err := p.SetPassword("x", ""); err == nil {
		t.Error("empty password should be rejected")
	}
}

func TestSessionExpiry(t *testing.T) {
	p := NewPasswords(time.Hour)
	now := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	p.now = func() time.Time { return now }
	if err := p.SetPassword("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	token, err := p.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Validate(token); err != nil {
		t.Fatalf("fresh session: %v", err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := p.Validate(token); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("expired session: %v", err)
	}
	// Expired token is removed; validating again still fails cleanly.
	if _, err := p.Validate(token); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("re-validate: %v", err)
	}
}

func TestPasswordChangeInvalidatesNothingButUsesNewHash(t *testing.T) {
	p := NewPasswords(0)
	_ = p.SetPassword("alice", "old")
	_ = p.SetPassword("alice", "new")
	if _, err := p.Login("alice", "old"); !errors.Is(err, ErrBadLogin) {
		t.Error("old password must stop working")
	}
	if _, err := p.Login("alice", "new"); err != nil {
		t.Errorf("new password: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := NewRegistry()
	alice, _ := r.Register("alice", RoleContributor)
	bob, _ := r.Register("bob", RoleConsumer)

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alice" || snap[0].Key == "" {
		t.Fatalf("snapshot = %+v", snap)
	}

	r2 := NewRegistry()
	if err := r2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := r2.Authenticate(alice.Key)
	if err != nil || got.Name != "alice" || got.Role != RoleContributor {
		t.Errorf("restored alice = %+v, %v", got, err)
	}
	if _, err := r2.Authenticate(bob.Key); err != nil {
		t.Errorf("restored bob: %v", err)
	}
	// Restore replaces prior contents.
	r3 := NewRegistry()
	_, _ = r3.Register("mallory", RoleConsumer)
	if err := r3.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Lookup("mallory"); !errors.Is(err, ErrUnknownUser) {
		t.Error("restore should replace existing users")
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	r := NewRegistry()
	if err := r.Restore([]User{{Name: "x"}}); err == nil {
		t.Error("user without key should be rejected")
	}
	if err := r.Restore([]User{{Name: "", Key: "k"}}); err == nil {
		t.Error("user without name should be rejected")
	}
	if err := r.Restore([]User{{Name: "a", Key: "k"}, {Name: "A", Key: "k2"}}); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate names: %v", err)
	}
	if err := r.Restore([]User{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}); err == nil {
		t.Error("duplicate keys should be rejected")
	}
}

func TestRoleString(t *testing.T) {
	if RoleContributor.String() != "contributor" || RoleConsumer.String() != "consumer" {
		t.Error("Role strings wrong")
	}
}
