// Package phone simulates the data contributor's smartphone: it samples
// the (synthetic) body sensors, runs on-device context inference, annotates
// the packets with inferred context (paper §6), and uploads them to the
// owner's remote data store. With rule-aware collection enabled (§5.3) the
// phone first downloads the owner's privacy rules and, packet by packet,
// decides to skip collection entirely (no rule could share data at this
// location/time), collect temporarily and discard after context inference
// (sharing hinged on a context condition that did not hold), or upload.
package phone

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/inference"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
	"sensorsafe/internal/wavesegment"
)

// Store is the phone's view of its remote data store. *datastore.Service
// satisfies it directly; networked phones use the HTTP client.
type Store interface {
	// Upload ingests annotated wave segments.
	Upload(key auth.APIKey, segs []*wavesegment.Segment) (int, error)
	// RulesFor returns the owner's compiled rule engine (nil when the
	// owner has not defined rules yet).
	RulesFor(key auth.APIKey) (*rules.Engine, error)
}

// CtxStore is an optional Store capability: stores that accept a context
// get the phone session's trace propagated into each upload, so
// phone→store hops join the session's trace tree. *datastore.Service and
// the HTTP client both implement it.
type CtxStore interface {
	UploadCtx(ctx context.Context, key auth.APIKey, segs []*wavesegment.Segment) (int, error)
}

// upload sends one batch, using the context-aware path when the store
// supports it.
func upload(ctx context.Context, st Store, key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	if cs, ok := st.(CtxStore); ok {
		return cs.UploadCtx(ctx, key, segs)
	}
	return st.Upload(key, segs)
}

// Phone is one simulated device.
type Phone struct {
	// Contributor is the device owner.
	Contributor string
	// Key is the owner's API key on the store.
	Key auth.APIKey
	// Store is the owner's remote data store.
	Store Store
	// RuleAware enables privacy-rule-aware collection (§5.3). The paper
	// makes this optional: discarded data is unrecoverable if the owner
	// later relaxes their rules.
	RuleAware bool
	// Window is the inference window (inference.DefaultWindow when zero).
	Window time.Duration
	// BatchPackets is how many packets accumulate before an upload round
	// trip (default 16).
	BatchPackets int
	// Pace, when set, is called with each packet's recorded duration
	// before the packet is processed, letting a live simulation replay
	// the scenario at scripted wall-clock speed (the caller scales and
	// sleeps). Nil replays as one burst.
	Pace func(d time.Duration)
	// Outbox, when set, makes uploads outage-tolerant: a batch the store
	// rejects with a transport error is spilled durably instead of
	// aborting the session, and spilled batches are drained at the start
	// of the next session (and by explicit DrainOutbox calls).
	Outbox *Outbox
}

// Report tallies one collection session.
type Report struct {
	// PacketsTotal is the number of packets the scenario produced.
	PacketsTotal int
	// PacketsSkipped were never collected (sensors disabled).
	PacketsSkipped int
	// PacketsDiscarded were collected temporarily and dropped after
	// context inference.
	PacketsDiscarded int
	// PacketsUploaded reached the store.
	PacketsUploaded int
	// SamplesTotal / SamplesUploaded count individual samples;
	// SamplesSkipped counts samples in packets that were never collected
	// (sensors off).
	SamplesTotal    int
	SamplesUploaded int
	SamplesSkipped  int
	// BytesUploaded is the wire size (binary blob) of uploaded packets.
	BytesUploaded int
	// RecordsWritten is how many records the store created (after its
	// wave-segment optimization).
	RecordsWritten int
	// BatchesSpilled / SamplesSpilled count batches the store could not
	// accept this session that went to the durable outbox instead.
	// Spilled samples still count as uploaded in the Samples* tallies —
	// they left the device and will reach the store on drain.
	BatchesSpilled int
	SamplesSpilled int
	// BatchesRecovered counts outbox batches drained at session start.
	BatchesRecovered int
}

// UploadFraction is the fraction of samples that reached the store.
func (r *Report) UploadFraction() float64 {
	if r.SamplesTotal == 0 {
		return 0
	}
	return float64(r.SamplesUploaded) / float64(r.SamplesTotal)
}

// EnergyModel approximates phone-side energy per session, the resource
// §5.3's rule-aware collection conserves: sensing cost for every sample
// actually collected (skipped packets keep the sensors off), inference
// cost for every collected sample, and radio cost per uploaded byte.
// Defaults are order-of-magnitude figures for a 2011-class smartphone.
type EnergyModel struct {
	// SenseMJPerSample covers ADC + sensor power per multi-channel sample.
	SenseMJPerSample float64
	// CPUMJPerSample covers feature extraction/inference per sample.
	CPUMJPerSample float64
	// RadioMJPerByte covers WiFi transmission.
	RadioMJPerByte float64
}

// DefaultEnergyModel returns the documented default coefficients.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{SenseMJPerSample: 0.05, CPUMJPerSample: 0.01, RadioMJPerByte: 0.005}
}

// Energy is a session's estimated energy split, in millijoules.
type Energy struct {
	SenseMJ float64 `json:"senseMJ"`
	CPUMJ   float64 `json:"cpuMJ"`
	RadioMJ float64 `json:"radioMJ"`
	TotalMJ float64 `json:"totalMJ"`
}

// Estimate computes the session's energy under the model. Samples in
// skipped packets cost nothing (sensors stayed off); discarded packets pay
// sensing and inference but no radio.
func (m EnergyModel) Estimate(r *Report) Energy {
	sensed := float64(r.SamplesTotal - r.SamplesSkipped)
	e := Energy{
		SenseMJ: sensed * m.SenseMJPerSample,
		CPUMJ:   sensed * m.CPUMJPerSample,
		RadioMJ: float64(r.BytesUploaded) * m.RadioMJPerByte,
	}
	e.TotalMJ = e.SenseMJ + e.CPUMJ + e.RadioMJ
	return e
}

// Run executes a scripted scenario end to end and reports what was
// collected and uploaded.
func (p *Phone) Run(sc *sensors.Scenario) (*Report, error) {
	return p.RunCtx(context.Background(), sc)
}

// RunCtx is Run with a caller context; the context's trace follows every
// upload to the store.
func (p *Phone) RunCtx(ctx context.Context, sc *sensors.Scenario) (*Report, error) {
	if p.Store == nil {
		return nil, fmt.Errorf("phone: no store configured")
	}
	rec, err := sensors.Generate(p.Contributor, sc)
	if err != nil {
		return nil, err
	}
	return p.ProcessCtx(ctx, rec)
}

// DrainOutbox re-uploads spilled batches immediately (no-op without an
// outbox). It returns how many batches and store records made it.
func (p *Phone) DrainOutbox() (batches, records int, err error) {
	if p.Outbox == nil {
		return 0, 0, nil
	}
	return p.Outbox.Drain(p.Store, p.Key)
}

// Process runs inference, annotation, rule-aware filtering, and upload over
// an existing recording.
func (p *Phone) Process(rec *sensors.Recording) (*Report, error) {
	return p.ProcessCtx(context.Background(), rec)
}

// ProcessCtx is Process with a caller context (see RunCtx).
func (p *Phone) ProcessCtx(ctx context.Context, rec *sensors.Recording) (*Report, error) {
	ann := &inference.Annotator{Window: p.Window}
	all := rec.AllSegments()
	spans := ann.Annotate(all)
	inference.ApplyAnnotations(all, spans)

	var engine *rules.Engine
	if p.RuleAware {
		e, err := p.Store.RulesFor(p.Key)
		if err != nil {
			return nil, fmt.Errorf("phone: downloading rules: %w", err)
		}
		engine = e // nil engine = no rules yet = nothing shareable
	}

	rep := &Report{}

	// Drain on recovery: anything spilled in an earlier session goes out
	// first so the store sees data in rough arrival order. A still-down
	// store is not an error — the spilled batches just wait.
	if p.Outbox != nil {
		drained, n, _ := p.Outbox.Drain(p.Store, p.Key)
		rep.BatchesRecovered = drained
		rep.RecordsWritten += n
	}

	batchSize := p.BatchPackets
	if batchSize <= 0 {
		batchSize = 16
	}
	var batch []*wavesegment.Segment
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := upload(ctx, p.Store, p.Key, batch)
		if err != nil {
			// Spill on failure: with an outbox the session survives a
			// store outage; the batch is durable and drains later.
			if p.Outbox != nil {
				if serr := p.Outbox.Spill(batch); serr != nil {
					return fmt.Errorf("phone: upload failed (%v) and spill failed: %w", err, serr)
				}
				rep.BatchesSpilled++
				for _, piece := range batch {
					rep.SamplesSpilled += piece.NumSamples()
				}
				batch = nil
				return nil
			}
			return fmt.Errorf("phone: upload: %w", err)
		}
		rep.RecordsWritten += n
		batch = nil
		return nil
	}

	for _, seg := range all {
		if p.Pace != nil {
			p.Pace(seg.EndTime().Sub(seg.StartTime()))
		}
		rep.PacketsTotal++
		rep.SamplesTotal += seg.NumSamples()

		keep := []*wavesegment.Segment{seg}
		if p.RuleAware {
			var skipped, discarded bool
			keep, skipped, discarded = filterPacket(engine, seg)
			switch {
			case len(keep) == 0 && skipped && !discarded:
				rep.PacketsSkipped++
				rep.SamplesSkipped += seg.NumSamples()
				continue
			case len(keep) == 0:
				rep.PacketsDiscarded++
				continue
			}
		}

		rep.PacketsUploaded++
		for _, piece := range keep {
			rep.SamplesUploaded += piece.NumSamples()
			if blob, err := wavesegment.MarshalBinary(piece); err == nil {
				rep.BytesUploaded += len(blob)
			}
			batch = append(batch, piece)
		}
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return rep, err
			}
		}
	}
	if err := flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

// filterPacket applies the §5.3 collection decision to one packet. The
// decision can flip inside a packet — at a rule time-condition boundary or
// at a context-annotation edge — so the packet is cut into spans of
// constant decision and each span kept or dropped independently. This
// makes rule-aware collection exactly release-preserving: what reaches the
// store is precisely what enforcement would have released to somebody.
// skipped/discarded report whether any span was dropped before collection
// (sensors off) vs after context inference.
func filterPacket(e *rules.Engine, seg *wavesegment.Segment) (keep []*wavesegment.Segment, skipped, discarded bool) {
	if e == nil {
		return nil, true, false
	}
	start, end := seg.StartTime(), seg.EndTime()
	cuts := []time.Time{start}
	cuts = append(cuts, e.BoundariesWithin(start, end)...)
	for _, a := range seg.Annotations {
		if a.Start.After(start) && a.Start.Before(end) {
			cuts = append(cuts, a.Start)
		}
		if a.End.After(start) && a.End.Before(end) {
			cuts = append(cuts, a.End)
		}
	}
	cuts = append(cuts, end)
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].Before(cuts[j]) })

	for i := 0; i+1 < len(cuts); i++ {
		from, to := cuts[i], cuts[i+1]
		if !from.Before(to) {
			continue
		}
		switch e.CollectionDecision(from, seg.Location) {
		case rules.CollectSkip:
			skipped = true
			continue
		case rules.CollectNeedsContext, rules.CollectShare:
			if !e.SharedWithAnyone(from, seg.Location, seg.ContextsAt(from)) {
				discarded = true
				continue
			}
		}
		if piece := seg.Slice(from, to); piece != nil {
			keep = append(keep, piece)
		}
	}
	return keep, skipped, discarded
}
