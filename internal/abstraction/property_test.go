package abstraction

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Enforcement conservation properties over randomized segments and rule
// sets: whatever enforcement releases must be a faithful subset of what was
// stored — no invented values, no duplicated spans, no overlap.

func randomSegment(rng *rand.Rand) *wavesegment.Segment {
	channels := [][]string{
		{wavesegment.ChannelECG, wavesegment.ChannelRespiration},
		{wavesegment.ChannelAccelX, wavesegment.ChannelMicrophone},
		{wavesegment.ChannelECG, wavesegment.ChannelRespiration, wavesegment.ChannelAccelX,
			wavesegment.ChannelMicrophone, wavesegment.ChannelSkinTemp},
	}[rng.Intn(3)]
	seg := &wavesegment.Segment{
		Contributor: "alice",
		Start:       t0.Add(time.Duration(rng.Intn(240)) * time.Minute),
		Interval:    100 * time.Millisecond,
		Location:    geo.Point{Lat: 34 + rng.Float64(), Lon: -119 + rng.Float64()},
		Channels:    channels,
	}
	n := rng.Intn(400) + 50
	for i := 0; i < n; i++ {
		row := make([]float64, len(channels))
		for j := range row {
			row[j] = rng.NormFloat64() * 100
		}
		seg.Values = append(seg.Values, row)
	}
	// Random annotations.
	labels := rules.KnownContextLabels()
	for i := 0; i < rng.Intn(4); i++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		_ = seg.Annotate(labels[rng.Intn(len(labels))], seg.SampleTime(lo), seg.SampleTime(hi-1).Add(seg.Interval))
	}
	return seg
}

// randomEngine builds a random-but-valid rule set (reusing the generator
// shapes from the rules package via JSON to avoid an internal test dep).
func randomEngine(rng *rand.Rand) (*rules.Engine, error) {
	pool := []string{
		`{"Action":"Allow"}`,
		`{"Consumer":["bob"],"Action":"Allow"}`,
		`{"Sensor":["ECG"],"Action":"Allow"}`,
		`{"Sensor":["Accelerometer","Microphone"],"Action":"Allow"}`,
		`{"Context":["Drive"],"Action":"Deny"}`,
		`{"Context":["Conversation"],"Action":{"Abstraction":{"Stress":"NotShared"}}}`,
		`{"Action":{"Abstraction":{"Smoking":"NotShared"}}}`,
		`{"Action":{"Abstraction":{"Activity":"Move/Not Move"}}}`,
		`{"Action":{"Abstraction":{"Location":"City"}}}`,
		`{"Action":{"Abstraction":{"Time":"Hour"}}}`,
		`{"RepeatTime":{"Day":["Mon","Tue","Wed","Thu","Fri"],"HourMin":["9:00am","6:00pm"]},"Action":"Deny"}`,
		`{"Sensor":["Respiration"],"Action":"Deny"}`,
	}
	n := rng.Intn(5) + 1
	doc := "["
	for i := 0; i < n; i++ {
		if i > 0 {
			doc += ","
		}
		doc += pool[rng.Intn(len(pool))]
	}
	doc += "]"
	rs, err := rules.UnmarshalRuleSet([]byte(doc))
	if err != nil {
		return nil, err
	}
	return rules.NewEngine(rs, nil)
}

func TestPropertyEnforceConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seg := randomSegment(rng)
		e, err := randomEngine(rng)
		if err != nil {
			return false
		}
		rels, err := Enforce(e, "bob", nil, seg, gc)
		if err != nil {
			return false
		}
		totalReleased := 0
		var prevEnd time.Time
		for _, rel := range rels {
			if rel.Segment == nil {
				continue
			}
			totalReleased += rel.Segment.NumSamples()
			// Spans must be disjoint and ordered (only checkable when time
			// is released at full precision).
			if rel.TimeGranularity == timeutil.GranMillisecond {
				if !prevEnd.IsZero() && rel.Segment.StartTime().Before(prevEnd) {
					return false
				}
				prevEnd = rel.Segment.EndTime()
			}
			// Channels must be a subset of the stored ones.
			for _, ch := range rel.Segment.Channels {
				if !seg.HasChannel(ch) {
					return false
				}
			}
			// At full time precision, every released value must equal the
			// stored value at the same instant and channel.
			if rel.TimeGranularity == timeutil.GranMillisecond {
				for i := 0; i < rel.Segment.NumSamples(); i += 17 {
					at := rel.Segment.SampleTime(i)
					orig := seg.Slice(at, at.Add(time.Nanosecond))
					if orig == nil {
						return false
					}
					for c, ch := range rel.Segment.Channels {
						oc := orig.ChannelIndex(ch)
						if oc < 0 || orig.Values[0][oc] != rel.Segment.Values[i][c] {
							return false
						}
					}
				}
			}
		}
		// Never release more samples than stored.
		return totalReleased <= seg.NumSamples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnforceNeverLeaksHiddenContexts(t *testing.T) {
	// Whatever the rule set, a released context label's category must be
	// granted at a level that permits that label.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seg := randomSegment(rng)
		e, err := randomEngine(rng)
		if err != nil {
			return false
		}
		rels, err := Enforce(e, "bob", nil, seg, gc)
		if err != nil {
			return false
		}
		for _, rel := range rels {
			for _, c := range rel.Contexts {
				cat, ok := rules.LabelCategory(c.Context)
				if !ok {
					return false // unknown labels must never flow
				}
				if rel.TimeGranularity != timeutil.GranMillisecond {
					// Coarsened time cannot be inverted to the original
					// span; the full-precision branch below covers the
					// level consistency property.
					continue
				}
				// Re-derive the decision at the span start and confirm the
				// label is consistent with the granted level.
				d := e.Decide(&rules.Request{
					Consumer: "bob", At: rel.Start,
					Location:       seg.Location,
					ActiveContexts: seg.ContextsAt(rel.Start),
				})
				lvl := d.ContextLevel(cat)
				if lvl == rules.LevelNotShared {
					return false
				}
				if want, ok := rules.AbstractLabel(c.Context, lvl); !ok || want != c.Context {
					// The released label must be a fixed point of its own
					// abstraction level.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
