// Package core is the embeddable façade over the whole SensorSafe
// framework: it wires remote data stores to a broker in-process (the same
// interfaces the HTTP layer implements across hosts) and offers
// contributor/consumer handles that walk through the paper's workflows —
// upload with wave-segment optimization, privacy-rule management,
// broker-mediated discovery and credential provisioning, and enforced
// direct store-to-consumer queries.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/sensors"
)

// Network is an in-process SensorSafe deployment: one broker plus any
// number of remote data stores.
type Network struct {
	// Broker is the deployment's broker service.
	Broker *broker.Service

	mu     sync.RWMutex
	stores map[string]*datastore.Service // guarded by mu
}

// NewNetwork creates an empty deployment.
func NewNetwork() *Network {
	return &Network{
		Broker: broker.New(),
		stores: make(map[string]*datastore.Service),
	}
}

// AddStore creates a remote data store wired to the broker: rule replicas
// sync automatically and contributors registered on the store appear in
// the broker directory. dir may be empty for an in-memory store.
func (n *Network) AddStore(name, dir string) (*datastore.Service, error) {
	n.mu.Lock()
	if _, dup := n.stores[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("core: store %q already exists", name)
	}
	n.mu.Unlock()
	// Open the store outside the lock: engine open replays segment files
	// and may run (and on failure unwind) the legacy-WAL migration, and
	// the deployment mutex must stay responsive meanwhile.
	svc, err := datastore.New(datastore.Options{
		Name:      name,
		Dir:       dir,
		Sync:      n.Broker,
		Directory: n.Broker,
	})
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if _, dup := n.stores[name]; dup {
		n.mu.Unlock()
		svc.Close()
		return nil, fmt.Errorf("core: store %q already exists", name)
	}
	n.stores[name] = svc
	n.mu.Unlock()
	n.Broker.RegisterStore(svc)
	return svc, nil
}

// Store returns a store by name.
func (n *Network) Store(name string) (*datastore.Service, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	svc, ok := n.stores[name]
	return svc, ok
}

// StoreNames lists the deployment's stores, sorted.
func (n *Network) StoreNames() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.stores))
	for name := range n.stores {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close shuts every store down. The store set is snapshotted and cleared
// under the lock, but the shutdowns run outside it: each store Close
// waits for its flusher goroutine, and the deployment mutex must not be
// held across that wait.
func (n *Network) Close() error {
	n.mu.Lock()
	stores := make([]*datastore.Service, 0, len(n.stores))
	for _, svc := range n.stores {
		stores = append(stores, svc)
	}
	n.stores = make(map[string]*datastore.Service)
	n.mu.Unlock()
	var first error
	for _, svc := range stores {
		if err := svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Contributor is a data contributor's handle: their account on a specific
// store plus phone access.
type Contributor struct {
	// Name is the contributor's identity.
	Name string
	// Key is their API key on Store.
	Key auth.APIKey
	// Store is their remote data store.
	Store *datastore.Service
}

// NewContributor registers a contributor on the named store.
func (n *Network) NewContributor(storeName, name string) (*Contributor, error) {
	svc, ok := n.Store(storeName)
	if !ok {
		return nil, fmt.Errorf("core: no store %q", storeName)
	}
	u, err := svc.RegisterContributor(name)
	if err != nil {
		return nil, err
	}
	return &Contributor{Name: u.Name, Key: u.Key, Store: svc}, nil
}

// SetRules installs the contributor's privacy rules (Fig. 4 JSON).
func (c *Contributor) SetRules(ruleSetJSON string) error {
	return c.Store.SetRules(c.Key, []byte(ruleSetJSON))
}

// DefinePlace labels a region ("home", "work", "UCLA").
func (c *Contributor) DefinePlace(label string, region geo.Region) error {
	return c.Store.DefinePlace(c.Key, label, region)
}

// AssignConsumerGroups maps a consumer into this contributor's
// group-scoped rules.
func (c *Contributor) AssignConsumerGroups(consumer string, groups []string) error {
	return c.Store.AssignConsumerGroups(c.Key, consumer, groups)
}

// Phone returns a simulated smartphone bound to this contributor.
func (c *Contributor) Phone(ruleAware bool) *phone.Phone {
	return &phone.Phone{
		Contributor: c.Name,
		Key:         c.Key,
		Store:       c.Store,
		RuleAware:   ruleAware,
	}
}

// RecordDay generates and uploads a scripted scenario through the phone.
func (c *Contributor) RecordDay(sc *sensors.Scenario, ruleAware bool) (*phone.Report, error) {
	return c.Phone(ruleAware).Run(sc)
}

// ReviewData fetches the contributor's own raw data (no enforcement),
// wrapped as releases for uniform display.
func (c *Contributor) ReviewData(q *query.Query) ([]*abstraction.Release, error) {
	segs, err := c.Store.QueryOwn(c.Key, q)
	if err != nil {
		return nil, err
	}
	out := make([]*abstraction.Release, len(segs))
	for i, seg := range segs {
		out[i] = &abstraction.Release{
			Contributor: seg.Contributor,
			Start:       seg.StartTime(),
			End:         seg.EndTime(),
			Segment:     seg,
			Contexts:    seg.Annotations,
		}
	}
	return out, nil
}

// Recommend mines the contributor's stored data for privacy-rule
// suggestions.
func (c *Contributor) Recommend(opts recommend.Options) ([]recommend.Suggestion, error) {
	return c.Store.Recommend(c.Key, opts)
}

// Audit returns the contributor's access trail, newest first.
func (c *Contributor) Audit(f audit.Filter) ([]audit.Event, error) {
	return c.Store.Audit(c.Key, f)
}

// AuditSummary aggregates the trail per consumer — "who read my data, and
// how much did they actually see?".
func (c *Contributor) AuditSummary() ([]audit.ConsumerSummary, error) {
	return c.Store.AuditSummary(c.Key)
}

// Consumer is a data consumer's handle: a broker account plus vaulted
// per-store credentials.
type Consumer struct {
	// Name is the consumer's identity.
	Name string
	// Key is their broker API key.
	Key auth.APIKey

	network *Network
}

// NewConsumer registers a consumer on the broker.
func (n *Network) NewConsumer(name string) (*Consumer, error) {
	u, err := n.Broker.RegisterConsumer(name)
	if err != nil {
		return nil, err
	}
	return &Consumer{Name: u.Name, Key: u.Key, network: n}, nil
}

// Directory lists contributors known to the broker.
func (c *Consumer) Directory() ([]broker.ContributorInfo, error) {
	return c.network.Broker.Directory(c.Key)
}

// Search finds contributors whose privacy rules release what the query
// demands.
func (c *Consumer) Search(q *broker.SearchQuery) ([]string, error) {
	return c.network.Broker.Search(c.Key, q)
}

// Query downloads a contributor's data directly from their store (the
// broker only brokers the credential).
func (c *Consumer) Query(contributor string, q *query.Query) ([]*abstraction.Release, error) {
	return c.QueryCtx(context.Background(), contributor, q)
}

// QueryCtx is Query carrying the caller's context through the credential
// handshake and the store query, so one deadline bounds the whole hop.
func (c *Consumer) QueryCtx(ctx context.Context, contributor string, q *query.Query) ([]*abstraction.Release, error) {
	cred, err := c.network.Broker.Connect(ctx, c.Key, contributor)
	if err != nil {
		return nil, err
	}
	svc, ok := c.network.Store(cred.StoreAddr)
	if !ok {
		return nil, fmt.Errorf("core: credential for unknown store %q", cred.StoreAddr)
	}
	qq := *q
	qq.Contributor = contributor
	return svc.QueryCtx(ctx, cred.Key, &qq)
}

// QueryMany queries a list of contributors and concatenates the releases.
func (c *Consumer) QueryMany(contributors []string, q *query.Query) ([]*abstraction.Release, error) {
	var out []*abstraction.Release
	for _, name := range contributors {
		rels, err := c.Query(name, q)
		if err != nil {
			return nil, fmt.Errorf("core: querying %s: %w", name, err)
		}
		out = append(out, rels...)
	}
	return out, nil
}

// SaveList stores a contributor list under the consumer's broker account.
func (c *Consumer) SaveList(name string, members []string) error {
	return c.network.Broker.SaveList(c.Key, name, members)
}

// List fetches a saved contributor list.
func (c *Consumer) List(name string) ([]string, error) {
	return c.network.Broker.List(c.Key, name)
}

// JoinStudy adds the consumer to a broker-managed study.
func (c *Consumer) JoinStudy(study string) error {
	return c.network.Broker.JoinStudy(c.Key, study)
}
