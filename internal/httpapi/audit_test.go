package httpapi

import (
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/query"
	"sensorsafe/internal/wavesegment"
)

func TestAuditOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Consumer":["Bob"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: 100 * time.Millisecond,
		Location: home, Channels: []string{wavesegment.ChannelECG},
		Values: [][]float64{{1}, {2}, {3}},
	}
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	bob, _ := d.storeClient.Register("Bob", "consumer")
	eve, _ := d.storeClient.Register("Eve", "consumer")
	if _, err := d.storeClient.Query(bob.Key, &query.Query{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.storeClient.Query(eve.Key, &query.Query{}); err != nil {
		t.Fatal(err)
	}

	events, err := d.storeClient.Audit(alice.Key, "", time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Newest first: Eve's withheld access, then Bob's raw one.
	if events[0].Consumer != "Eve" || events[0].Outcome.String() != "withheld" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Consumer != "Bob" || events[1].Outcome.String() != "raw" {
		t.Errorf("event 1 = %+v", events[1])
	}

	// Filter by consumer over the wire.
	events, err = d.storeClient.Audit(alice.Key, "bob", time.Time{}, 0)
	if err != nil || len(events) != 1 {
		t.Fatalf("filtered events = %v, %v", events, err)
	}

	sums, err := d.storeClient.AuditSummary(alice.Key)
	if err != nil || len(sums) != 2 {
		t.Fatalf("summary = %v, %v", sums, err)
	}

	// Consumers are rejected.
	if _, err := d.storeClient.Audit(bob.Key, "", time.Time{}, 0); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("consumer audit access: %v", err)
	}
}

func TestWebLoginOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetPassword(alice.Key, "hunter2"); err != nil {
		t.Fatal(err)
	}
	token, err := d.storeClient.Login("alice", "hunter2")
	if err != nil || token == "" {
		t.Fatalf("login = %q, %v", token, err)
	}
	if _, err := d.storeClient.Login("alice", "wrong"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("wrong password: %v", err)
	}
	if err := d.storeClient.SetPassword("bogus-key", "pw"); err == nil {
		t.Error("bad key should not set a password")
	}
}
