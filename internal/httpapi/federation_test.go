package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/federation"
	"sensorsafe/internal/wavesegment"
)

// fedContributor describes one store in a federated deployment: its
// owner's rules and the start offsets of the ECG segments it holds.
type fedContributor struct {
	rules   string
	offsets []time.Duration
}

type fedDeployment struct {
	bsvc        *broker.Service
	bc          *BrokerClient
	stores      map[string]*StoreClient // contributor → their store
	connectHits atomic.Int32            // broker /api/connect calls observed
}

// deployFederated spins up a broker and one independent store server per
// contributor, each with its own rules and data, all over real HTTP.
func deployFederated(t *testing.T, members map[string]fedContributor) *fedDeployment {
	t.Helper()
	d := &fedDeployment{bsvc: broker.New(), stores: make(map[string]*StoreClient)}
	inner := NewBrokerHandler(d.bsvc)
	brokerServer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/connect" {
			d.connectHits.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(brokerServer.Close)
	d.bc = &BrokerClient{BaseURL: brokerServer.URL}

	for name, m := range members {
		var storeURL string
		svc, err := datastore.New(datastore.Options{Sync: d.bc, Directory: &lazyDirectory{bc: d.bc, addr: &storeURL}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		storeServer := httptest.NewServer(NewStoreHandler(svc))
		t.Cleanup(storeServer.Close)
		storeURL = storeServer.URL
		sc := &StoreClient{BaseURL: storeServer.URL}
		d.stores[name] = sc

		owner, err := sc.Register(name, "contributor")
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.SetRules(owner.Key, []byte(m.rules)); err != nil {
			t.Fatal(err)
		}
		segs := make([]*wavesegment.Segment, len(m.offsets))
		for i, off := range m.offsets {
			segs[i] = &wavesegment.Segment{
				Contributor: name, Start: t0.Add(off), Interval: time.Second,
				Location: home, Channels: []string{wavesegment.ChannelECG},
				Values: [][]float64{{1}, {2}},
			}
		}
		if len(segs) > 0 {
			if _, err := sc.Upload(owner.Key, segs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func fedMembers() map[string]fedContributor {
	return map[string]fedContributor{
		// alice shares everything.
		"alice": {rules: `[{"Action":"Allow"}]`, offsets: []time.Duration{0, 2 * time.Hour, 4 * time.Hour}},
		// bea shares everything too, interleaved in time with alice.
		"bea": {rules: `[{"Action":"Allow"}]`, offsets: []time.Duration{time.Hour, 3 * time.Hour}},
		// cara denies all sharing: her store must answer OK with zero
		// releases, isolated from the others.
		"cara": {rules: `[{"Action":"Deny"}]`, offsets: []time.Duration{30 * time.Minute}},
	}
}

func TestFederatedCohortOverHTTP(t *testing.T) {
	d := deployFederated(t, fedMembers())
	bob, err := d.bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(d.bc, bob.Key, federation.Options{PerStoreTimeout: 5 * time.Second})

	res, err := eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Contributors: []string{"alice", "bea", "cara"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("all stores up, result partial; reports = %+v", res.Reports)
	}
	// Global time order across stores, with cara's deny-all contributing
	// nothing but not poisoning the rest.
	if len(res.Releases) != 5 {
		t.Fatalf("merged %d releases, want alice's 3 + bea's 2", len(res.Releases))
	}
	wantOrder := []string{"alice", "bea", "alice", "bea", "alice"}
	for i, r := range res.Releases {
		if r.Contributor != wantOrder[i] {
			t.Errorf("release %d from %s, want %s", i, r.Contributor, wantOrder[i])
		}
		if i > 0 && r.Start.Before(res.Releases[i-1].Start) {
			t.Errorf("release %d breaks global time order", i)
		}
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %+v", res.Reports)
	}
	for _, rep := range res.Reports {
		if rep.Outcome != federation.OutcomeOK {
			t.Errorf("%s outcome = %s (%s)", rep.Contributor, rep.Outcome, rep.Error)
		}
		if rep.Contributor == "cara" && rep.Releases != 0 {
			t.Errorf("deny-all store released %d", rep.Releases)
		}
	}

	// Credential cache: the first query connected once per contributor; a
	// second query must not connect again.
	base := d.connectHits.Load()
	if base != 3 {
		t.Errorf("first query made %d Connect calls, want 3", base)
	}
	if _, err := eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Contributors: []string{"alice", "bea", "cara"}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.connectHits.Load(); got != base {
		t.Errorf("second query re-connected: %d → %d calls", base, got)
	}
}

func TestFederatedCursorResumeOverHTTP(t *testing.T) {
	d := deployFederated(t, fedMembers())
	bob, err := d.bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(d.bc, bob.Key, federation.Options{})

	cohort := federation.Cohort{Contributors: []string{"alice", "bea", "cara"}}
	oneShot, err := eng.CohortQuery(context.Background(), &federation.Request{Cohort: cohort})
	if err != nil {
		t.Fatal(err)
	}

	var paged []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("pagination does not terminate")
		}
		res, err := eng.CohortQuery(context.Background(), &federation.Request{Cohort: cohort, Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Releases {
			paged = append(paged, r.Contributor+"@"+r.Start.Format(time.RFC3339))
		}
		if res.Cursor == "" {
			break
		}
		cursor = res.Cursor
	}
	if len(paged) != len(oneShot.Releases) {
		t.Fatalf("paged %d releases, one-shot %d", len(paged), len(oneShot.Releases))
	}
	for i, r := range oneShot.Releases {
		if want := r.Contributor + "@" + r.Start.Format(time.RFC3339); paged[i] != want {
			t.Errorf("page item %d = %s, want %s", i, paged[i], want)
		}
	}
}

func TestFederatedSelectorsOverHTTP(t *testing.T) {
	d := deployFederated(t, fedMembers())
	bob, err := d.bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(d.bc, bob.Key, federation.Options{})

	// Search selector: hits carry store addresses from the broker replica
	// match; cara's deny-all keeps her out of the cohort entirely.
	res, err := eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Search: &broker.SearchQuery{Sensors: []string{"ECG"}, Reference: t0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("search cohort reports = %+v, want alice+bea", res.Reports)
	}
	if len(res.Releases) != 5 {
		t.Errorf("search cohort released %d, want 5", len(res.Releases))
	}

	// Saved-list selector.
	if err := d.bc.SaveList(bob.Key, "pilot", []string{"bea"}); err != nil {
		t.Fatal(err)
	}
	res, err = eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{List: "pilot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 2 || res.Releases[0].Contributor != "bea" {
		t.Fatalf("list cohort = %d releases", len(res.Releases))
	}

	// Study roster selector, over the new enroll/contributors endpoints.
	if err := d.bc.CreateStudy("asthma"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alice", "bea"} {
		if err := d.bc.EnrollContributor("asthma", name); err != nil {
			t.Fatal(err)
		}
	}
	roster, err := d.bc.StudyContributors("asthma")
	if err != nil || len(roster) != 2 {
		t.Fatalf("roster = %v, %v", roster, err)
	}
	res, err = eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Study: "asthma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 5 {
		t.Errorf("study cohort released %d, want 5", len(res.Releases))
	}
}

func TestFederatedDownStoreIsReported(t *testing.T) {
	d := deployFederated(t, fedMembers())
	bob, err := d.bc.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	// dora is in the directory but her store address points nowhere.
	if err := d.bc.RegisterContributor("dora", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	eng := NewFederation(d.bc, bob.Key, federation.Options{PerStoreTimeout: 2 * time.Second})
	res, err := eng.CohortQuery(context.Background(), &federation.Request{
		Cohort: federation.Cohort{Contributors: []string{"alice", "dora"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("down store must flag the result partial")
	}
	if len(res.Releases) != 3 {
		t.Errorf("alice's data must still flow: got %d releases", len(res.Releases))
	}
	for _, rep := range res.Reports {
		switch rep.Contributor {
		case "alice":
			if rep.Outcome != federation.OutcomeOK {
				t.Errorf("alice outcome = %s (%s)", rep.Outcome, rep.Error)
			}
		case "dora":
			if rep.Outcome == federation.OutcomeOK || !rep.Missing || rep.Error == "" {
				t.Errorf("dora report = %+v, want explicit failure", rep)
			}
		}
	}
	// The partial page still yields a cursor so the consumer can resume
	// once dora's store is back.
	if res.Cursor == "" {
		t.Error("partial result must carry a resume cursor")
	}
}
