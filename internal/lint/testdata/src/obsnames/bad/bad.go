// Package bad exercises the obsnames analyzer: non-constant names, bad
// casing, and duplicate registrations are all flagged — for metric
// families and for trace span names alike.
package bad

import (
	"context"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
)

var dynamicName = "sensorsafe_fixture_dynamic_total"

var (
	_ = obs.NewCounter(dynamicName, "non-constant name")              // want "compile-time string constant"
	_ = obs.NewCounter("Fixture_CamelCase_Total", "bad case")         // want "not snake_case"
	_ = obs.NewGauge("sensorsafe_fixture_dup", "first registration")  // unique: accepted
	_ = obs.NewGauge("sensorsafe_fixture_dup", "second registration") // want "already registered"
)

var dynamicSpan = "fixture.dynamic"

func badSpans(ctx context.Context) {
	defer obs.Time(ctx, dynamicSpan)()    // want "compile-time string constant"
	defer obs.Time(ctx, "nodot")()        // want "not dot-separated lowercase"
	defer obs.Time(ctx, "Fixture.Eval")() // want "not dot-separated lowercase"

	stop := obs.TimeErr(ctx, "fixture.dup_span") // unique: accepted
	stop(nil)
	_, span := trace.Start(ctx, "fixture.dup_span") // want "already instrumented"
	span.End()
}
