// Package bad exercises the mutexguard analyzer: reading an annotated
// field without the lock, the Locked suffix, or a caller-holds doc comment
// is flagged.
package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) peek() int {
	return c.n // want "counter.n is guarded"
}

// store mirrors the segstore reader-set shape: compaction swaps the
// reader slice under mu, so an unlocked read can see a half-swapped set.
type store struct {
	mu      sync.Mutex
	readers []int // guarded by mu
}

func (s *store) scanAll() int {
	n := 0
	for _, r := range s.readers { // want "store.readers is guarded"
		n += r
	}
	return n
}
