package phone

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/wavesegment"
)

var (
	metricOutboxSpills = obs.NewCounter("sensorsafe_phone_outbox_spills_total",
		"Upload batches spilled to the phone's durable outbox after a failed upload.")
	metricOutboxDrains = obs.NewCounter("sensorsafe_phone_outbox_drains_total",
		"Spilled batches successfully re-uploaded from the phone's outbox.")
	metricOutboxPending = obs.NewGauge("sensorsafe_phone_outbox_pending",
		"Upload batches currently waiting in the phone's outbox.")
)

// Outbox is the phone's durable spill area for upload batches that could
// not reach the store: each failed batch is written atomically to one
// numbered file, and Drain re-uploads them in order once connectivity
// returns. Files survive process restarts, so no sampled data is lost to
// a store outage — the paper's phone buffers locally and uploads
// opportunistically, and the outbox is that buffer's durable tail.
type Outbox struct {
	// Dir is the spill directory (created on first use).
	Dir string

	mu   sync.Mutex
	next uint64 // next sequence number; 0 = not yet scanned
}

const outboxPrefix = "batch-"

// scanLocked initializes the sequence counter from the files already on
// disk so restarts keep appending after the highest existing batch.
func (o *Outbox) scanLocked() error {
	if o.next != 0 {
		return nil
	}
	if err := os.MkdirAll(o.Dir, 0o700); err != nil {
		return fmt.Errorf("phone: outbox dir: %w", err)
	}
	max := uint64(0)
	for _, name := range o.filesLocked() {
		if n, err := strconv.ParseUint(seqOf(name), 10, 64); err == nil && n > max {
			max = n
		}
	}
	o.next = max + 1
	return nil
}

// filesLocked lists spill files sorted by sequence (lexical order works:
// fixed-width numbering).
func (o *Outbox) filesLocked() []string {
	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, outboxPrefix) && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func seqOf(name string) string {
	return strings.TrimSuffix(strings.TrimPrefix(name, outboxPrefix), ".json")
}

// Spill writes one failed batch durably. The write is atomic, so a crash
// mid-spill leaves either the complete batch or nothing — never a torn
// file the drain would choke on.
func (o *Outbox) Spill(batch []*wavesegment.Segment) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.scanLocked(); err != nil {
		return err
	}
	data, err := json.Marshal(batch)
	if err != nil {
		return fmt.Errorf("phone: encode outbox batch: %w", err)
	}
	name := fmt.Sprintf("%s%012d.json", outboxPrefix, o.next)
	if err := resilience.WriteFileAtomic(filepath.Join(o.Dir, name), data, 0o600); err != nil {
		return fmt.Errorf("phone: spill batch: %w", err)
	}
	o.next++
	metricOutboxSpills.Inc()
	metricOutboxPending.Set(float64(len(o.filesLocked())))
	return nil
}

// Pending reports how many spilled batches await re-upload.
func (o *Outbox) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.filesLocked())
}

// Drain re-uploads spilled batches oldest-first, deleting each file only
// after the store accepts it. It stops at the first failure (the store is
// evidently still unreachable) and reports how many batches and store
// records made it. Uploads are idempotent store-side (segment merge), so
// a crash between upload and delete means a harmless re-upload next time.
//
// The mutex is held only around directory state — never across the
// uploads themselves — so a slow or retrying store connection cannot
// block Spill (the recorder's failure path) behind a network wait.
// Batches spilled while a drain is running wait for the next pass, and
// two overlapping drains at worst re-upload a batch the other already
// delivered (idempotent) and find its file already gone.
func (o *Outbox) Drain(store Store, key auth.APIKey) (batches, records int, err error) {
	o.mu.Lock()
	if err := o.scanLocked(); err != nil {
		o.mu.Unlock()
		return 0, 0, err
	}
	names := o.filesLocked()
	o.mu.Unlock()
	for _, name := range names {
		path := filepath.Join(o.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // a concurrent drain already delivered this batch
			}
			return batches, records, fmt.Errorf("phone: read outbox batch: %w", err)
		}
		var batch []*wavesegment.Segment
		if err := json.Unmarshal(data, &batch); err != nil {
			return batches, records, fmt.Errorf("phone: decode outbox batch %s: %w", name, err)
		}
		n, err := store.Upload(key, batch)
		if err != nil {
			o.refreshPending()
			return batches, records, fmt.Errorf("phone: drain outbox: %w", err)
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return batches, records, fmt.Errorf("phone: remove drained batch: %w", err)
		}
		batches++
		records += n
		metricOutboxDrains.Inc()
	}
	o.refreshPending()
	return batches, records, nil
}

// refreshPending re-reads the spill directory and updates the pending
// gauge.
func (o *Outbox) refreshPending() {
	o.mu.Lock()
	metricOutboxPending.Set(float64(len(o.filesLocked())))
	o.mu.Unlock()
}
