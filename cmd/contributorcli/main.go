// Command contributorcli is a data contributor's command-line tool against
// their remote data store: manage privacy rules and labeled places, review
// their own data, inspect the access-audit trail ("who read my data?"),
// mine rule recommendations from their own recordings, and rotate a leaked
// API key.
//
// Usage:
//
//	contributorcli -store http://localhost:8081 -name alice register
//	contributorcli -store ... -key <key> rules -set rules.json
//	contributorcli -store ... -key <key> place -label home -lat 34.02 -lon -118.49 -radius 200
//	contributorcli -store ... -key <key> audit
//	contributorcli -store ... -key <key> recommend
//	contributorcli -store ... -key <key> rotate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/query"
)

func main() {
	storeURL := flag.String("store", "http://localhost:8081", "remote data store base URL")
	name := flag.String("name", "alice", "contributor name (register only)")
	key := flag.String("key", "", "API key")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: contributorcli [flags] <register|rules|place|review|audit|recommend|rotate> [subflags]")
		os.Exit(2)
	}
	sc := &httpapi.StoreClient{BaseURL: *storeURL}
	apiKey := auth.APIKey(*key)

	switch flag.Arg(0) {
	case "register":
		u, err := sc.Register(*name, "contributor")
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		fmt.Printf("registered %s\nAPI key: %s\n(keep this private — it acts as username and password)\n", u.Name, u.Key)

	case "rules":
		fs := flag.NewFlagSet("rules", flag.ExitOnError)
		set := fs.String("set", "", "rules JSON file to install (empty = print current rules)")
		_ = fs.Parse(flag.Args()[1:])
		if *set != "" {
			data, err := os.ReadFile(*set)
			if err != nil {
				log.Fatalf("contributorcli: %v", err)
			}
			if err := sc.SetRules(apiKey, data); err != nil {
				log.Fatalf("contributorcli: %v", err)
			}
			fmt.Println("rules installed and replicated to the broker")
			return
		}
		data, err := sc.Rules(apiKey)
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		fmt.Println(string(data))

	case "place":
		fs := flag.NewFlagSet("place", flag.ExitOnError)
		label := fs.String("label", "", "place label (e.g. home, work)")
		lat := fs.Float64("lat", 0, "center latitude")
		lon := fs.Float64("lon", 0, "center longitude")
		radius := fs.Float64("radius", 150, "approximate radius in meters")
		_ = fs.Parse(flag.Args()[1:])
		if *label == "" {
			log.Fatal("contributorcli: -label is required")
		}
		d := *radius / 111320.0 // meters → degrees (latitude)
		rect, err := geo.NewRect(
			geo.Point{Lat: *lat - d, Lon: *lon - d},
			geo.Point{Lat: *lat + d, Lon: *lon + d})
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		if err := sc.DefinePlace(apiKey, *label, geo.Region{Rect: rect}); err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		fmt.Printf("place %q defined\n", *label)

	case "review":
		fs := flag.NewFlagSet("review", flag.ExitOnError)
		qtext := fs.String("q", "", "query in the mini-language")
		_ = fs.Parse(flag.Args()[1:])
		q := &query.Query{}
		if *qtext != "" {
			parsed, err := query.Parse(*qtext)
			if err != nil {
				log.Fatalf("contributorcli: %v", err)
			}
			q = parsed
		}
		segs, err := sc.QueryOwn(apiKey, q)
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		fmt.Printf("%d stored wave segment(s)\n", len(segs))
		for i, seg := range segs {
			var ctxs []string
			for _, a := range seg.Annotations {
				ctxs = append(ctxs, a.Context)
			}
			fmt.Printf("[%3d] %s .. %s %v %d samples contexts=%v\n",
				i, seg.StartTime().Format(time.RFC3339), seg.EndTime().Format(time.RFC3339),
				seg.Channels, seg.NumSamples(), ctxs)
		}

	case "audit":
		fs := flag.NewFlagSet("audit", flag.ExitOnError)
		consumer := fs.String("consumer", "", "filter to one consumer")
		limit := fs.Int("limit", 20, "max events to show")
		summary := fs.Bool("summary", false, "show per-consumer aggregates instead of events")
		_ = fs.Parse(flag.Args()[1:])
		if *summary {
			sums, err := sc.AuditSummary(apiKey)
			if err != nil {
				log.Fatalf("contributorcli: %v", err)
			}
			fmt.Printf("%-12s %9s %5s %11s %9s %10s\n", "consumer", "accesses", "raw", "abstracted", "withheld", "data span")
			for _, s := range sums {
				fmt.Printf("%-12s %9d %5d %11d %9d %10s\n",
					s.Consumer, s.Accesses, s.Raw, s.Abstracted, s.Withheld, s.DataSpan.Round(time.Second))
			}
			return
		}
		events, err := sc.Audit(apiKey, *consumer, time.Time{}, *limit)
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		for _, e := range events {
			fmt.Printf("%s %-10s %-10s %s..%s channels=%v contexts=%v\n",
				e.At.Format("15:04:05"), e.Consumer, e.Outcome,
				e.SpanStart.Format("15:04:05"), e.SpanEnd.Format("15:04:05"),
				e.Channels, e.Contexts)
		}

	case "recommend":
		sugs, err := sc.Recommend(apiKey, 0, 0)
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		if len(sugs) == 0 {
			fmt.Println("no rule suggestions — nothing sensitive co-occurs strongly in your data")
			return
		}
		for i, s := range sugs {
			fmt.Printf("suggestion %d: %s\n  rule: %s\n", i+1, s.Reason, s.RuleJSON)
		}
		fmt.Println("\nappend any rule above to your rule set and re-run 'rules -set' to install it")

	case "rotate":
		fresh, err := sc.RotateKey(apiKey)
		if err != nil {
			log.Fatalf("contributorcli: %v", err)
		}
		fmt.Printf("key rotated; new API key: %s\n(the old key no longer works anywhere)\n", fresh)

	default:
		fmt.Fprintf(os.Stderr, "contributorcli: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
