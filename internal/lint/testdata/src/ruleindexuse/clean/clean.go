// Package clean shows the sanctioned evaluation paths: the rules.Decider
// seam (which the compiled index implements), ruleindex.Fallback for
// engines without an index, and a justified direct call under an ignore
// directive.
package clean

import (
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/rules"
)

func decideViaSeam(d rules.Decider, req *rules.Request) *rules.Decision {
	return d.Decide(req)
}

func decideViaIndex(ix *ruleindex.Index, req *rules.Request) *rules.Decision {
	return ix.Decide(req)
}

func decideViaFallback(e *rules.Engine, req *rules.Request) *rules.Decision {
	return ruleindex.Fallback(e).Decide(req)
}

func differentialCheck(e *rules.Engine, ix *ruleindex.Index, req *rules.Request) bool {
	//sslint:ignore ruleindexuse differential correctness probe against the linear engine
	want := e.Decide(req)
	return want.SharesAnything() == ix.Decide(req).SharesAnything()
}
