package broker

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// fakeStore implements StoreConn in memory.
type fakeStore struct {
	addr       string
	provisions []string
	fail       bool
}

func (f *fakeStore) Addr() string { return f.addr }

func (f *fakeStore) ProvisionConsumer(_ context.Context, name string) (auth.APIKey, error) {
	if f.fail {
		return "", errors.New("store down")
	}
	f.provisions = append(f.provisions, name)
	return auth.APIKey(fmt.Sprintf("key-%s-%s", f.addr, name)), nil
}

func workPlaces(t *testing.T) []geo.Region {
	t.Helper()
	rect, err := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err != nil {
		t.Fatal(err)
	}
	return []geo.Region{{Label: "work", Rect: rect}}
}

func newBrokerWith(t *testing.T, contributors map[string]string) (*Service, auth.User) {
	t.Helper()
	b := New()
	for name, ruleJSON := range contributors {
		if err := b.RegisterContributor(name, "store-"+name); err != nil {
			t.Fatal(err)
		}
		if err := b.SyncRules(name, 1, []byte(ruleJSON), workPlaces(t)); err != nil {
			t.Fatal(err)
		}
	}
	bob, err := b.RegisterConsumer("Bob")
	if err != nil {
		t.Fatal(err)
	}
	return b, bob
}

func TestRegisterAndDirectory(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Action":"Allow"}]`,
		"carol": `[{"Action":"Deny"}]`,
	})
	dir, err := b.Directory(bob.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 2 || dir[0].Name != "alice" || dir[1].Name != "carol" {
		t.Fatalf("directory = %+v", dir)
	}
	if dir[0].StoreAddr != "store-alice" || dir[0].RuleCount != 1 {
		t.Errorf("entry = %+v", dir[0])
	}
	if _, err := b.Directory("bogus"); err == nil {
		t.Error("bad key should fail")
	}
	if b.ContributorCount() != 2 {
		t.Errorf("count = %d", b.ContributorCount())
	}
	if err := b.RegisterContributor("", "x"); err == nil {
		t.Error("empty contributor name should fail")
	}
}

func TestSyncRulesValidation(t *testing.T) {
	b := New()
	if err := b.SyncRules("alice", 1, []byte(`[{"Action":"Explode"}]`), nil); err == nil {
		t.Error("bad rule replica should be rejected")
	}
	if err := b.SyncRules("alice", 1, []byte(`[{"Action":"Allow"}]`), []geo.Region{{Label: "x"}}); err == nil {
		t.Error("bad place replica should be rejected")
	}
	// Implicit registration through sync.
	if err := b.SyncRules("dave", 1, []byte(`[{"Action":"Allow"}]`), nil); err != nil {
		t.Fatal(err)
	}
	if b.ContributorCount() != 1 {
		t.Error("sync should register unknown contributors")
	}
	// Re-registration fills in the store address without losing rules.
	if err := b.RegisterContributor("dave", "store-dave"); err != nil {
		t.Fatal(err)
	}
	bob, _ := b.RegisterConsumer("bob")
	dir, _ := b.Directory(bob.Key)
	if len(dir) != 1 || dir[0].StoreAddr != "store-dave" || dir[0].RuleCount != 1 {
		t.Errorf("directory after re-register = %+v", dir)
	}
}

func TestConnectProvisionsOnceAndVaults(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{"alice": `[{"Action":"Allow"}]`})
	store := &fakeStore{addr: "store-alice"}
	b.RegisterStore(store)

	cred, err := b.Connect(context.Background(), bob.Key, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if cred.StoreAddr != "store-alice" || cred.Key == "" {
		t.Fatalf("credential = %+v", cred)
	}
	// Second connect reuses the vaulted key without re-provisioning.
	cred2, err := b.Connect(context.Background(), bob.Key, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if cred2.Key != cred.Key {
		t.Error("vaulted key should be reused")
	}
	if len(store.provisions) != 1 {
		t.Errorf("provisions = %v, want 1", store.provisions)
	}

	creds, err := b.Credentials(bob.Key)
	if err != nil || len(creds) != 1 || creds[0].Key != cred.Key {
		t.Errorf("credentials = %v, %v", creds, err)
	}

	if _, err := b.Connect(context.Background(), bob.Key, "nobody"); !errors.Is(err, ErrUnknownContributor) {
		t.Errorf("unknown contributor: %v", err)
	}
}

func TestConnectStoreFailures(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{"alice": `[{"Action":"Allow"}]`})
	// No store connection registered.
	if _, err := b.Connect(context.Background(), bob.Key, "alice"); !errors.Is(err, ErrUnknownStore) {
		t.Errorf("missing store: %v", err)
	}
	b.RegisterStore(&fakeStore{addr: "store-alice", fail: true})
	if _, err := b.Connect(context.Background(), bob.Key, "alice"); err == nil {
		t.Error("store failure should propagate")
	}
}

func TestSaveAndGetList(t *testing.T) {
	b, bob := newBrokerWith(t, nil)
	if err := b.SaveList(bob.Key, "study-A", []string{"alice", "carol"}); err != nil {
		t.Fatal(err)
	}
	got, err := b.List(bob.Key, "Study-A")
	if err != nil || len(got) != 2 {
		t.Fatalf("list = %v, %v", got, err)
	}
	if _, err := b.List(bob.Key, "nope"); !errors.Is(err, ErrUnknownList) {
		t.Errorf("unknown list: %v", err)
	}
	if err := b.SaveList(bob.Key, " ", nil); err == nil {
		t.Error("empty list name should fail")
	}
	// Returned list is a copy.
	got[0] = "mallory"
	again, _ := b.List(bob.Key, "study-A")
	if again[0] != "alice" {
		t.Error("List must return a copy")
	}
}

func TestStudies(t *testing.T) {
	b, bob := newBrokerWith(t, nil)
	if err := b.JoinStudy(bob.Key, "ghost"); !errors.Is(err, ErrUnknownStudy) {
		t.Errorf("unknown study: %v", err)
	}
	if err := b.CreateStudy("StressStudy"); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateStudy("StressStudy"); err != nil {
		t.Errorf("idempotent create: %v", err)
	}
	if err := b.JoinStudy(bob.Key, "StressStudy"); err != nil {
		t.Fatal(err)
	}
	if err := b.JoinStudy(bob.Key, "StressStudy"); err != nil {
		t.Errorf("re-join: %v", err)
	}
	members, err := b.StudyMembers("stressstudy")
	if err != nil || len(members) != 1 || members[0] != "bob" {
		t.Errorf("members = %v, %v", members, err)
	}
	if err := b.CreateStudy(""); err == nil {
		t.Error("empty study name should fail")
	}
}

// Search tests. Reference instant: Wednesday 2011-02-16 10:00 UTC.
var ref = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)

func TestSearchBySensors(t *testing.T) {
	// The paper's example: find contributors who share ECG and respiration
	// at "work" on weekday business hours.
	b, bob := newBrokerWith(t, map[string]string{
		// alice shares everything with anyone.
		"alice": `[{"Action":"Allow"}]`,
		// carol shares only accelerometer.
		"carol": `[{"Sensor":["Accelerometer"],"Action":"Allow"}]`,
		// dave shares all except stress at work — the closure blocks
		// ECG/Respiration there.
		"dave": `[{"Action":"Allow"},
		          {"LocationLabel":["work"],"Action":{"Abstraction":{"Stress":"NotShared"}}}]`,
	})
	rep, _ := timeutil.ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	got, err := b.Search(bob.Key, &SearchQuery{
		Sensors:       []string{"ECG", "Respiration"},
		LocationLabel: "work",
		RepeatTime:    rep,
		Reference:     ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("search = %v, want [alice]", got)
	}
}

func TestSearchByContextLevel(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Action":"Allow"}]`,
		"erin":  `[{"Action":{"Abstraction":{"Stress":"Stressed/Not Stressed"}}}]`,
		"frank": `[{"Action":{"Abstraction":{"Stress":"NotShared"}}}]`,
	})
	// Binary stress suffices: alice (raw) and erin (binary) match.
	got, err := b.Search(bob.Key, &SearchQuery{
		Contexts:  map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelBinary},
		Reference: ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "alice" || got[1] != "erin" {
		t.Fatalf("search = %v, want [alice erin]", got)
	}
	// Raw stress required: only alice.
	got, _ = b.Search(bob.Key, &SearchQuery{
		Contexts:  map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelRaw},
		Reference: ref,
	})
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("raw search = %v, want [alice]", got)
	}
}

func TestSearchWithActiveContexts(t *testing.T) {
	// Bob studies stress *while driving* (§6). Alice denies stress while
	// driving, grace allows everything: only grace matches.
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Action":"Allow"},
		           {"Context":["Drive"],"Action":{"Abstraction":{"Stress":"NotShared"}}}]`,
		"grace": `[{"Action":"Allow"}]`,
	})
	got, err := b.Search(bob.Key, &SearchQuery{
		Sensors:        []string{"ECG"},
		ActiveContexts: []string{rules.CtxDrive},
		Reference:      ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "grace" {
		t.Fatalf("search = %v, want [grace]", got)
	}
	// Without the driving context, both match.
	got, _ = b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if len(got) != 2 {
		t.Fatalf("search = %v, want both", got)
	}
}

func TestSearchConsumerSpecificRules(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Consumer":["Bob"],"Action":"Allow"}]`,
		"carol": `[{"Consumer":["Eve"],"Action":"Allow"}]`,
	})
	got, err := b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("search = %v, want [alice]", got)
	}
}

func TestSearchGroupRulesViaStudy(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{
		"alice": `[{"Group":["StressStudy"],"Action":"Allow"}]`,
	})
	got, _ := b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if len(got) != 0 {
		t.Fatalf("non-member search = %v", got)
	}
	if err := b.CreateStudy("StressStudy"); err != nil {
		t.Fatal(err)
	}
	if err := b.JoinStudy(bob.Key, "StressStudy"); err != nil {
		t.Fatal(err)
	}
	got, _ = b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Reference: ref})
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("member search = %v", got)
	}
}

func TestSearchMissingLabelNoMatch(t *testing.T) {
	b, bob := newBrokerWith(t, map[string]string{"alice": `[{"Action":"Allow"}]`})
	got, err := b.Search(bob.Key, &SearchQuery{LocationLabel: "dungeon", Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("search at unknown label = %v", got)
	}
}

func TestSearchTimeRange(t *testing.T) {
	feb, _ := timeutil.NewRange(
		time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC))
	b, bob := newBrokerWith(t, map[string]string{
		// alice shares only during February 2011.
		"alice": `[{"TimeRange":{"Start":"2011-02-01T00:00:00Z","End":"2011-03-01T00:00:00Z"},"Action":"Allow"}]`,
	})
	got, err := b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, TimeRange: feb, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("February search = %v", got)
	}
	apr, _ := timeutil.NewRange(
		time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC))
	got, _ = b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, TimeRange: apr, Reference: ref})
	if len(got) != 0 {
		t.Fatalf("April search = %v", got)
	}
}

func TestSearchValidate(t *testing.T) {
	b, bob := newBrokerWith(t, nil)
	bad := []*SearchQuery{
		{Sensors: []string{""}},
		{Contexts: map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelModes}},
		{ActiveContexts: []string{"levitating"}},
		{Region: geo.Rect{MinLat: 10, MaxLat: 5, MinLon: 0, MaxLon: 0}},
	}
	for i, q := range bad {
		if _, err := b.Search(bob.Key, q); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := b.Search("bogus", &SearchQuery{}); err == nil {
		t.Error("bad key should fail")
	}
}

func TestSearchRegionProbe(t *testing.T) {
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	b, bob := newBrokerWith(t, map[string]string{
		// Shares only inside the campus rect (by raw region, not label).
		"alice": `[{"Region":{"rect":{"minLat":34.05,"minLon":-118.46,"maxLat":34.08,"maxLon":-118.43}},"Action":"Allow"}]`,
	})
	got, err := b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Region: rect, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("region search = %v", got)
	}
	far, _ := geo.NewRect(geo.Point{Lat: 48, Lon: 2}, geo.Point{Lat: 49, Lon: 3})
	got, _ = b.Search(bob.Key, &SearchQuery{Sensors: []string{"ECG"}, Region: far, Reference: ref})
	if len(got) != 0 {
		t.Fatalf("far region search = %v", got)
	}
}
