package query

import (
	"encoding/json"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
)

func TestParseFullQuery(t *testing.T) {
	q, err := Parse("contributor(alice) and channels(ECG, Respiration) " +
		"time(2011-02-01T00:00:00Z, 2011-03-01T00:00:00Z) " +
		"region(34,-119,35,-118) context(Drive) limit(100)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Contributor != "alice" {
		t.Errorf("contributor = %q", q.Contributor)
	}
	if len(q.Channels) != 2 || q.Channels[0] != "ECG" || q.Channels[1] != "Respiration" {
		t.Errorf("channels = %v", q.Channels)
	}
	if q.From.IsZero() || q.To.IsZero() || !q.To.After(q.From) {
		t.Errorf("time = %v..%v", q.From, q.To)
	}
	if q.Region.MinLat != 34 || q.Region.MaxLon != -118 {
		t.Errorf("region = %+v", q.Region)
	}
	if len(q.Contexts) != 1 || q.Contexts[0] != rules.CtxDrive {
		t.Errorf("contexts = %v", q.Contexts)
	}
	if q.Limit != 100 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseEmptyIsMatchAll(t *testing.T) {
	q, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if q.Contributor != "" || len(q.Channels) != 0 || q.Limit != 0 {
		t.Errorf("empty parse = %+v", q)
	}
}

func TestParseOpenTimeBounds(t *testing.T) {
	q, err := Parse("time(2011-02-01T00:00:00Z,)")
	if err != nil {
		t.Fatal(err)
	}
	if q.From.IsZero() || !q.To.IsZero() {
		t.Errorf("bounds = %v..%v", q.From, q.To)
	}
	q, err = Parse("time(,2011-02-01T00:00:00Z)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.From.IsZero() || q.To.IsZero() {
		t.Errorf("bounds = %v..%v", q.From, q.To)
	}
}

func TestParseContextNormalization(t *testing.T) {
	q, err := Parse("context(driving, in conversation)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Contexts) != 2 || q.Contexts[0] != rules.CtxDrive || q.Contexts[1] != rules.CtxConversation {
		t.Errorf("contexts = %v", q.Contexts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"unknownterm(x)",
		"channels()",
		"contributor()",
		"contributor(a,b)",
		"time(2011-02-01T00:00:00Z)",
		"time(bogus,)",
		"time(,bogus)",
		"time(2011-03-01T00:00:00Z,2011-02-01T00:00:00Z)",
		"region(1,2,3)",
		"region(a,b,c,d)",
		"region(95,0,96,1)",
		"context(levitating)",
		"limit(x)",
		"limit(-1)",
		"limit(1,2)",
		"channels(ECG",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	orig, err := Parse("contributor(alice) channels(ECG) " +
		"time(2011-02-01T00:00:00Z,2011-03-01T00:00:00Z) " +
		"region(34,-119,35,-118) context(Drive) limit(5)")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", orig.String(), err)
	}
	if back.Contributor != orig.Contributor || back.Limit != orig.Limit ||
		!back.From.Equal(orig.From) || !back.To.Equal(orig.To) ||
		back.Region != orig.Region ||
		len(back.Channels) != len(orig.Channels) || len(back.Contexts) != len(orig.Contexts) {
		t.Errorf("round trip: %+v vs %+v", back, orig)
	}
}

func TestValidate(t *testing.T) {
	good := &Query{From: time.Now(), To: time.Now().Add(time.Hour), Limit: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Query{
		{From: time.Now().Add(time.Hour), To: time.Now()},
		{Limit: -1},
		{Region: geo.Rect{MinLat: 10, MaxLat: 5, MinLon: 0, MaxLon: 1}},
		{Contexts: []string{"levitating"}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestStorageLowering(t *testing.T) {
	q := &Query{
		Contributor: "alice",
		Channels:    []string{"Accelerometer"},
		Limit:       7,
	}
	sq := q.Storage()
	if sq.Contributor != "alice" || sq.Limit != 7 {
		t.Errorf("storage query = %+v", sq)
	}
	// Umbrella sensor names expand for the storage scan.
	if len(sq.Channels) != 3 || sq.Channels[0] != "AccelX" {
		t.Errorf("channels = %v", sq.Channels)
	}
}

func TestJSONShape(t *testing.T) {
	q := &Query{Contributor: "alice", Channels: []string{"ECG"}, Limit: 3}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Contributor != "alice" || back.Limit != 3 || len(back.Channels) != 1 {
		t.Errorf("JSON round trip = %+v", back)
	}
}
