package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// doJSON posts a JSON body and decodes the JSON response, mapping error
// envelopes to Go errors, retrying under pol (resilience.Default() when
// nil). Every attempt carries the same X-Request-ID — the context's when
// present (so a server handling an inbound request propagates its ID to
// outbound service-to-service calls), fresh otherwise. Mutating calls
// additionally carry one X-Idempotency-Key for the whole logical call, so
// a retry whose first attempt actually executed (lost response, torn
// body) replays the original outcome server-side instead of applying the
// mutation twice.
func doJSON(ctx context.Context, hc *http.Client, pol *resilience.Policy, baseURL, path string, mutating bool, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("httpapi: encode request: %w", err)
	}
	url := strings.TrimRight(baseURL, "/") + path
	id := obs.RequestID(ctx)
	if id == "" {
		id = obs.NewRequestID()
	}
	var idem string
	if mutating {
		idem = obs.NewRequestID()
	}
	return pol.Do(ctx, path, func(actx context.Context) error {
		return postOnce(actx, hc, url, path, id, idem, body, resp)
	})
}

// postOnce executes one HTTP attempt, classifying failures for the retry
// engine: transport errors and torn bodies are retryable, 5xx/429 carry
// the server's Retry-After hint, and other statuses are terminal. Each
// attempt is its own client span (so hedges and retries are separately
// visible in the trace) and propagates it over the wire via traceparent.
func postOnce(ctx context.Context, hc *http.Client, url, path, id, idem string, body []byte, resp any) error {
	ctx, span, stop := obs.Span(ctx, "http.client")
	span.SetAttr(trace.String("path", path))
	err := postAttempt(ctx, hc, url, path, id, idem, body, resp)
	stop(err)
	return err
}

func postAttempt(ctx context.Context, hc *http.Client, url, path, id, idem string, body []byte, resp any) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return resilience.MarkTerminal(fmt.Errorf("httpapi: build request: %w", err))
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(requestIDHeader, id)
	if idem != "" {
		httpReq.Header.Set(idempotencyKeyHeader, idem)
	}
	if tp := trace.Traceparent(ctx); tp != "" {
		httpReq.Header.Set(trace.Header, tp)
	}
	httpResp, err := hc.Do(httpReq)
	if err != nil {
		return fmt.Errorf("httpapi: POST %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		msg := fmt.Sprintf("httpapi: %s: HTTP %d", path, httpResp.StatusCode)
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = fmt.Sprintf("httpapi: %s: %s (HTTP %d)", path, eb.Error, httpResp.StatusCode)
		}
		return resilience.Status(httpResp.StatusCode, parseRetryAfter(httpResp.Header), "%s", msg)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		// The full body was read above, so this is malformed JSON, not a
		// torn read — retrying would decode the same bytes again.
		return resilience.MarkTerminal(fmt.Errorf("httpapi: decode response: %w", err))
	}
	return nil
}

// parseRetryAfter reads a Retry-After header (delta-seconds or HTTP-date).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func defaultClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}

// getHealth fetches and decodes a server's /healthz report, carrying the
// same request-ID correlation as the JSON endpoints.
func getHealth(ctx context.Context, hc *http.Client, baseURL string) (Health, error) {
	url := strings.TrimRight(baseURL, "/") + "/healthz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Health{}, fmt.Errorf("httpapi: build request: %w", err)
	}
	id := obs.RequestID(ctx)
	if id == "" {
		id = obs.NewRequestID()
	}
	req.Header.Set(requestIDHeader, id)
	if tp := trace.Traceparent(ctx); tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("httpapi: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("httpapi: /healthz: HTTP %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("httpapi: decode health: %w", err)
	}
	return h, nil
}

// StoreClient is a typed client for a remote data store's API. It
// satisfies phone.Store (Upload, RulesFor) and broker.StoreConn (Addr,
// ProvisionConsumer).
type StoreClient struct {
	// BaseURL is the store's address, e.g. "http://store1.example:8080".
	BaseURL string
	// HTTP is the underlying client (30 s timeout default when nil).
	HTTP *http.Client
	// Retry governs transient-failure handling (resilience.Default()
	// when nil). Mutating calls carry an idempotency key so retries are
	// applied exactly once server-side.
	Retry *resilience.Policy
}

func (c *StoreClient) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient()
}

// call runs one logical JSON call under the client's retry policy.
func (c *StoreClient) call(ctx context.Context, path string, mutating bool, req, resp any) error {
	return doJSON(ctx, c.hc(), c.Retry, c.BaseURL, path, mutating, req, resp)
}

// Addr returns the store's base URL.
func (c *StoreClient) Addr() string { return c.BaseURL }

// Register creates an account on the store.
func (c *StoreClient) Register(name, role string) (auth.User, error) {
	return c.RegisterCtx(context.Background(), name, role)
}

// RegisterCtx creates an account on the store.
func (c *StoreClient) RegisterCtx(ctx context.Context, name, role string) (auth.User, error) {
	var resp registerResp
	if err := c.call(ctx, "/api/register", true, &registerReq{Name: name, Role: role}, &resp); err != nil {
		return auth.User{}, err
	}
	r := auth.RoleConsumer
	if resp.Role == auth.RoleContributor.String() {
		r = auth.RoleContributor
	}
	return auth.User{Name: resp.Name, Role: r, Key: resp.Key}, nil
}

// ProvisionConsumer registers a consumer and returns the key (broker
// use). The context's request ID is forwarded so a consumer's connect
// request is correlated across broker and store logs.
func (c *StoreClient) ProvisionConsumer(ctx context.Context, name string) (auth.APIKey, error) {
	u, err := c.RegisterCtx(ctx, name, "consumer")
	if err != nil {
		return "", err
	}
	return u.Key, nil
}

// Health fetches the store's /healthz report.
func (c *StoreClient) Health() (Health, error) {
	return c.HealthCtx(context.Background())
}

// HealthCtx fetches the store's /healthz report.
func (c *StoreClient) HealthCtx(ctx context.Context) (Health, error) {
	return getHealth(ctx, c.hc(), c.BaseURL)
}

// Upload sends wave segments (Fig. 5 JSON on the wire).
func (c *StoreClient) Upload(key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	return c.UploadCtx(context.Background(), key, segs)
}

// UploadCtx sends wave segments (Fig. 5 JSON on the wire).
func (c *StoreClient) UploadCtx(ctx context.Context, key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	var resp uploadResp
	if err := c.call(ctx, "/api/upload", true, &uploadReq{Key: key, Segments: segs}, &resp); err != nil {
		return 0, err
	}
	return resp.Records, nil
}

// Query runs an enforced consumer query.
func (c *StoreClient) Query(key auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	return c.QueryCtx(context.Background(), key, q)
}

// QueryCtx runs an enforced consumer query.
func (c *StoreClient) QueryCtx(ctx context.Context, key auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	var resp queryResp
	if err := c.call(ctx, "/api/query", false, &queryReq{Key: key, Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Releases, nil
}

// QueryText runs an enforced consumer query written in the mini-language.
func (c *StoreClient) QueryText(key auth.APIKey, text string) ([]*abstraction.Release, error) {
	return c.QueryTextCtx(context.Background(), key, text)
}

// QueryTextCtx runs an enforced consumer query written in the mini-language.
func (c *StoreClient) QueryTextCtx(ctx context.Context, key auth.APIKey, text string) ([]*abstraction.Release, error) {
	var resp queryResp
	if err := c.call(ctx, "/api/query", false, &queryReq{Key: key, Text: text}, &resp); err != nil {
		return nil, err
	}
	return resp.Releases, nil
}

// QueryOwn retrieves the owner's raw data.
func (c *StoreClient) QueryOwn(key auth.APIKey, q *query.Query) ([]*wavesegment.Segment, error) {
	return c.QueryOwnCtx(context.Background(), key, q)
}

// QueryOwnCtx retrieves the owner's raw data.
func (c *StoreClient) QueryOwnCtx(ctx context.Context, key auth.APIKey, q *query.Query) ([]*wavesegment.Segment, error) {
	var resp queryOwnResp
	if err := c.call(ctx, "/api/queryown", false, &queryReq{Key: key, Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Segments, nil
}

// SetRules replaces the owner's privacy rules (Fig. 4 JSON).
func (c *StoreClient) SetRules(key auth.APIKey, ruleSetJSON []byte) error {
	return c.SetRulesCtx(context.Background(), key, ruleSetJSON)
}

// SetRulesCtx replaces the owner's privacy rules (Fig. 4 JSON).
func (c *StoreClient) SetRulesCtx(ctx context.Context, key auth.APIKey, ruleSetJSON []byte) error {
	return c.call(ctx, "/api/rules/set", true, &rulesSetReq{Key: key, Rules: ruleSetJSON}, &okResp{})
}

// Rules fetches the owner's privacy rules.
func (c *StoreClient) Rules(key auth.APIKey) ([]byte, error) {
	return c.RulesCtx(context.Background(), key)
}

// RulesCtx fetches the owner's privacy rules.
func (c *StoreClient) RulesCtx(ctx context.Context, key auth.APIKey) ([]byte, error) {
	var resp rulesGetResp
	if err := c.call(ctx, "/api/rules/get", false, &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Rules, nil
}

// DefinePlace registers a labeled region.
func (c *StoreClient) DefinePlace(key auth.APIKey, label string, region geo.Region) error {
	return c.DefinePlaceCtx(context.Background(), key, label, region)
}

// DefinePlaceCtx registers a labeled region.
func (c *StoreClient) DefinePlaceCtx(ctx context.Context, key auth.APIKey, label string, region geo.Region) error {
	return c.call(ctx, "/api/places/define",
		true, &placeDefineReq{Key: key, Label: label, Region: region}, &okResp{})
}

// Places lists the owner's labeled regions.
func (c *StoreClient) Places(key auth.APIKey) ([]geo.Region, error) {
	return c.PlacesCtx(context.Background(), key)
}

// PlacesCtx lists the owner's labeled regions.
func (c *StoreClient) PlacesCtx(ctx context.Context, key auth.APIKey) ([]geo.Region, error) {
	var resp placesListResp
	if err := c.call(ctx, "/api/places/list", false, &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Places, nil
}

// AssignConsumerGroups records a consumer's groups for the owner's
// group-scoped rules.
func (c *StoreClient) AssignConsumerGroups(key auth.APIKey, consumer string, groups []string) error {
	return c.AssignConsumerGroupsCtx(context.Background(), key, consumer, groups)
}

// AssignConsumerGroupsCtx records a consumer's groups for the owner's
// group-scoped rules.
func (c *StoreClient) AssignConsumerGroupsCtx(ctx context.Context, key auth.APIKey, consumer string, groups []string) error {
	return c.call(ctx, "/api/groups/assign",
		true, &groupsAssignReq{Key: key, Consumer: consumer, Groups: groups}, &okResp{})
}

// Audit fetches the owner's access trail, newest first.
func (c *StoreClient) Audit(key auth.APIKey, consumer string, since time.Time, limit int) ([]audit.Event, error) {
	return c.AuditCtx(context.Background(), key, consumer, since, limit)
}

// AuditCtx fetches the owner's access trail, newest first.
func (c *StoreClient) AuditCtx(ctx context.Context, key auth.APIKey, consumer string, since time.Time, limit int) ([]audit.Event, error) {
	req := &auditEventsReq{Key: key, Consumer: consumer, Limit: limit}
	if !since.IsZero() {
		req.Since = since.Format(time.RFC3339)
	}
	var resp auditEventsResp
	if err := c.call(ctx, "/api/audit/events", false, req, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// AuditSummary fetches the owner's per-consumer access aggregates.
func (c *StoreClient) AuditSummary(key auth.APIKey) ([]audit.ConsumerSummary, error) {
	return c.AuditSummaryCtx(context.Background(), key)
}

// AuditSummaryCtx fetches the owner's per-consumer access aggregates.
func (c *StoreClient) AuditSummaryCtx(ctx context.Context, key auth.APIKey) ([]audit.ConsumerSummary, error) {
	var resp auditSummaryResp
	if err := c.call(ctx, "/api/audit/summary", false, &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Consumers, nil
}

// RotateKey invalidates the presented key and returns a fresh one.
func (c *StoreClient) RotateKey(key auth.APIKey) (auth.APIKey, error) {
	return c.RotateKeyCtx(context.Background(), key)
}

// RotateKeyCtx invalidates the presented key and returns a fresh one.
// The idempotency key matters here: a retried rotation must not rotate
// twice and strand the client with a key it never saw.
func (c *StoreClient) RotateKeyCtx(ctx context.Context, key auth.APIKey) (auth.APIKey, error) {
	var resp registerResp
	if err := c.call(ctx, "/api/rotate", true, &rulesGetReq{Key: key}, &resp); err != nil {
		return "", err
	}
	return resp.Key, nil
}

// Recommend fetches privacy-rule suggestions mined from the owner's data.
func (c *StoreClient) Recommend(key auth.APIKey, minOverlap float64, minDuration time.Duration) ([]recommend.Suggestion, error) {
	return c.RecommendCtx(context.Background(), key, minOverlap, minDuration)
}

// RecommendCtx fetches privacy-rule suggestions mined from the owner's data.
func (c *StoreClient) RecommendCtx(ctx context.Context, key auth.APIKey, minOverlap float64, minDuration time.Duration) ([]recommend.Suggestion, error) {
	req := &recommendReq{Key: key, MinOverlap: minOverlap}
	if minDuration > 0 {
		req.MinDuration = minDuration.String()
	}
	var resp recommendResp
	if err := c.call(ctx, "/api/recommend", false, req, &resp); err != nil {
		return nil, err
	}
	return resp.Suggestions, nil
}

// SetPassword sets the web-UI password, authenticating with the API key.
func (c *StoreClient) SetPassword(key auth.APIKey, password string) error {
	return c.SetPasswordCtx(context.Background(), key, password)
}

// SetPasswordCtx sets the web-UI password, authenticating with the API key.
func (c *StoreClient) SetPasswordCtx(ctx context.Context, key auth.APIKey, password string) error {
	return c.call(ctx, "/api/password", true, &passwordReq{Key: key, Password: password}, &okResp{})
}

// Login exchanges a username/password for a web session token.
func (c *StoreClient) Login(name, password string) (string, error) {
	return c.LoginCtx(context.Background(), name, password)
}

// LoginCtx exchanges a username/password for a web session token.
func (c *StoreClient) LoginCtx(ctx context.Context, name, password string) (string, error) {
	var resp loginResp
	if err := c.call(ctx, "/api/login", true, &loginReq{Name: name, Password: password}, &resp); err != nil {
		return "", err
	}
	return resp.Token, nil
}

// RulesFor downloads and compiles the owner's rule set — the phone's
// §5.3 path. Returns nil when the owner has no rules yet.
func (c *StoreClient) RulesFor(key auth.APIKey) (*rules.Engine, error) {
	return c.RulesForCtx(context.Background(), key)
}

// RulesForCtx downloads and compiles the owner's rule set.
func (c *StoreClient) RulesForCtx(ctx context.Context, key auth.APIKey) (*rules.Engine, error) {
	data, err := c.RulesCtx(ctx, key)
	if err != nil {
		return nil, err
	}
	rs, err := rules.UnmarshalRuleSet(data)
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, nil
	}
	places, err := c.PlacesCtx(ctx, key)
	if err != nil {
		return nil, err
	}
	gaz := geo.NewGazetteer()
	for _, rg := range places {
		if err := gaz.Define(rg.Label, rg); err != nil {
			return nil, err
		}
	}
	return rules.NewEngine(rs, gaz)
}

// BrokerClient is a typed client for the broker's API. It satisfies
// datastore.SyncTarget and datastore.Directory so a networked store can
// push replicas and registrations.
type BrokerClient struct {
	BaseURL string
	HTTP    *http.Client
	// Retry governs transient-failure handling (resilience.Default()
	// when nil).
	Retry *resilience.Policy
}

func (c *BrokerClient) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient()
}

// call runs one logical JSON call under the client's retry policy.
func (c *BrokerClient) call(ctx context.Context, path string, mutating bool, req, resp any) error {
	return doJSON(ctx, c.hc(), c.Retry, c.BaseURL, path, mutating, req, resp)
}

// Health fetches the broker's /healthz report.
func (c *BrokerClient) Health() (Health, error) {
	return c.HealthCtx(context.Background())
}

// HealthCtx fetches the broker's /healthz report.
func (c *BrokerClient) HealthCtx(ctx context.Context) (Health, error) {
	return getHealth(ctx, c.hc(), c.BaseURL)
}

// RegisterConsumer creates a consumer account.
func (c *BrokerClient) RegisterConsumer(name string) (auth.User, error) {
	return c.RegisterConsumerCtx(context.Background(), name)
}

// RegisterConsumerCtx creates a consumer account.
func (c *BrokerClient) RegisterConsumerCtx(ctx context.Context, name string) (auth.User, error) {
	var resp registerResp
	if err := c.call(ctx, "/api/consumers/register", true, &registerReq{Name: name}, &resp); err != nil {
		return auth.User{}, err
	}
	return auth.User{Name: resp.Name, Role: auth.RoleConsumer, Key: resp.Key}, nil
}

// RegisterContributor records a contributor → store mapping.
func (c *BrokerClient) RegisterContributor(name, storeAddr string) error {
	return c.RegisterContributorCtx(context.Background(), name, storeAddr)
}

// RegisterContributorCtx records a contributor → store mapping.
func (c *BrokerClient) RegisterContributorCtx(ctx context.Context, name, storeAddr string) error {
	return c.call(ctx, "/api/contributors/register",
		true, &brokerRegisterContribReq{Name: name, StoreAddr: storeAddr}, &okResp{})
}

// SyncRules pushes a contributor's versioned rule replica
// (datastore.SyncTarget). A broker holding a newer version rejects the
// push with resilience.ErrStaleVersion.
func (c *BrokerClient) SyncRules(contributor string, version uint64, ruleSetJSON []byte, places []geo.Region) error {
	return c.SyncRulesCtx(context.Background(), contributor, version, ruleSetJSON, places)
}

// SyncRulesCtx pushes a contributor's versioned rule replica.
func (c *BrokerClient) SyncRulesCtx(ctx context.Context, contributor string, version uint64, ruleSetJSON []byte, places []geo.Region) error {
	return c.call(ctx, "/api/sync",
		true, &brokerSyncReq{Contributor: contributor, Version: version, Rules: ruleSetJSON, Places: places}, &okResp{})
}

// SyncDigest reports the store's replica versions and returns the
// contributors whose broker replica is stale (datastore.SyncTarget).
func (c *BrokerClient) SyncDigest(storeAddr string, versions map[string]uint64) ([]string, error) {
	return c.SyncDigestCtx(context.Background(), storeAddr, versions)
}

// SyncDigestCtx reports the store's replica versions to the broker.
// Re-execution returns fresh staleness, so no idempotency key is needed.
func (c *BrokerClient) SyncDigestCtx(ctx context.Context, storeAddr string, versions map[string]uint64) ([]string, error) {
	var resp syncDigestResp
	if err := c.call(ctx, "/api/sync/digest", false, &syncDigestReq{StoreAddr: storeAddr, Versions: versions}, &resp); err != nil {
		return nil, err
	}
	return resp.Stale, nil
}

// Replicas lists the broker's per-contributor replica status.
func (c *BrokerClient) Replicas() ([]broker.ReplicaStatus, error) {
	return c.ReplicasCtx(context.Background())
}

// ReplicasCtx lists the broker's per-contributor replica status.
func (c *BrokerClient) ReplicasCtx(ctx context.Context) ([]broker.ReplicaStatus, error) {
	var resp replicasResp
	if err := c.call(ctx, "/api/replicas", false, &struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Replicas, nil
}

// Directory lists contributors.
func (c *BrokerClient) Directory(key auth.APIKey) ([]broker.ContributorInfo, error) {
	return c.DirectoryCtx(context.Background(), key)
}

// DirectoryCtx lists contributors.
func (c *BrokerClient) DirectoryCtx(ctx context.Context, key auth.APIKey) ([]broker.ContributorInfo, error) {
	var resp directoryResp
	if err := c.call(ctx, "/api/directory", false, &keyReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Contributors, nil
}

// Connect provisions (or fetches) the consumer's credential for a
// contributor's store.
func (c *BrokerClient) Connect(key auth.APIKey, contributor string) (broker.Credential, error) {
	return c.ConnectCtx(context.Background(), key, contributor)
}

// ConnectCtx provisions (or fetches) the consumer's credential for a
// contributor's store.
func (c *BrokerClient) ConnectCtx(ctx context.Context, key auth.APIKey, contributor string) (broker.Credential, error) {
	var resp broker.Credential
	if err := c.call(ctx, "/api/connect", true, &connectReq{Key: key, Contributor: contributor}, &resp); err != nil {
		return broker.Credential{}, err
	}
	return resp, nil
}

// Credentials fetches every vaulted credential.
func (c *BrokerClient) Credentials(key auth.APIKey) ([]broker.Credential, error) {
	return c.CredentialsCtx(context.Background(), key)
}

// CredentialsCtx fetches every vaulted credential.
func (c *BrokerClient) CredentialsCtx(ctx context.Context, key auth.APIKey) ([]broker.Credential, error) {
	var resp credentialsResp
	if err := c.call(ctx, "/api/credentials", false, &keyReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Credentials, nil
}

// Search runs a contributor search.
func (c *BrokerClient) Search(key auth.APIKey, q *broker.SearchQuery) ([]string, error) {
	return c.SearchCtx(context.Background(), key, q)
}

// SearchCtx runs a contributor search.
func (c *BrokerClient) SearchCtx(ctx context.Context, key auth.APIKey, q *broker.SearchQuery) ([]string, error) {
	hits, err := c.SearchInfoCtx(ctx, key, q)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(hits))
	for i, h := range hits {
		names[i] = h.Contributor
	}
	return names, nil
}

// SearchInfo runs a contributor search returning {contributor, storeAddr}
// pairs, saving the per-hit Directory round-trip.
func (c *BrokerClient) SearchInfo(key auth.APIKey, q *broker.SearchQuery) ([]broker.SearchHit, error) {
	return c.SearchInfoCtx(context.Background(), key, q)
}

// SearchInfoCtx runs a contributor search returning {contributor,
// storeAddr} pairs in one call.
func (c *BrokerClient) SearchInfoCtx(ctx context.Context, key auth.APIKey, q *broker.SearchQuery) ([]broker.SearchHit, error) {
	wire := &searchWire{
		Key:            key,
		Sensors:        q.Sensors,
		LocationLabel:  q.LocationLabel,
		ActiveContexts: q.ActiveContexts,
	}
	if !q.Region.IsZero() {
		r := q.Region
		wire.Region = &r
	}
	if len(q.Contexts) > 0 {
		wire.Contexts = make(map[string]string, len(q.Contexts))
		for cat, lvl := range q.Contexts {
			wire.Contexts[string(cat)] = lvl.String()
		}
	}
	if !q.RepeatTime.IsZero() {
		wire.RepeatDay = q.RepeatTime.DayNames()
		from, to := q.RepeatTime.Window()
		if from != to {
			wire.RepeatHourMin = []string{from.String(), to.String()}
		}
	}
	if !q.TimeRange.Start.IsZero() {
		wire.TimeStart = q.TimeRange.Start.Format(time.RFC3339)
	}
	if !q.TimeRange.End.IsZero() {
		wire.TimeEnd = q.TimeRange.End.Format(time.RFC3339)
	}
	if !q.Reference.IsZero() {
		wire.Reference = q.Reference.Format(time.RFC3339)
	}
	var resp searchResp
	if err := c.call(ctx, "/api/search", false, wire, &resp); err != nil {
		return nil, err
	}
	if resp.Hits != nil {
		return resp.Hits, nil
	}
	// Older broker without hits in the response: names only.
	hits := make([]broker.SearchHit, len(resp.Contributors))
	for i, n := range resp.Contributors {
		hits[i] = broker.SearchHit{Contributor: n}
	}
	return hits, nil
}

// SaveList stores a named contributor list.
func (c *BrokerClient) SaveList(key auth.APIKey, name string, members []string) error {
	return c.SaveListCtx(context.Background(), key, name, members)
}

// SaveListCtx stores a named contributor list.
func (c *BrokerClient) SaveListCtx(ctx context.Context, key auth.APIKey, name string, members []string) error {
	return c.call(ctx, "/api/lists/save", true, &listSaveReq{Key: key, Name: name, Members: members}, &okResp{})
}

// List fetches a saved contributor list.
func (c *BrokerClient) List(key auth.APIKey, name string) ([]string, error) {
	return c.ListCtx(context.Background(), key, name)
}

// ListCtx fetches a saved contributor list.
func (c *BrokerClient) ListCtx(ctx context.Context, key auth.APIKey, name string) ([]string, error) {
	var resp listGetResp
	if err := c.call(ctx, "/api/lists/get", false, &listGetReq{Key: key, Name: name}, &resp); err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// CreateStudy declares a study.
func (c *BrokerClient) CreateStudy(name string) error {
	return c.CreateStudyCtx(context.Background(), name)
}

// CreateStudyCtx declares a study.
func (c *BrokerClient) CreateStudyCtx(ctx context.Context, name string) error {
	return c.call(ctx, "/api/studies/create", true, &studyReq{Study: name}, &okResp{})
}

// JoinStudy adds the consumer to a study.
func (c *BrokerClient) JoinStudy(key auth.APIKey, study string) error {
	return c.JoinStudyCtx(context.Background(), key, study)
}

// JoinStudyCtx adds the consumer to a study.
func (c *BrokerClient) JoinStudyCtx(ctx context.Context, key auth.APIKey, study string) error {
	return c.call(ctx, "/api/studies/join", true, &studyReq{Key: key, Study: study}, &okResp{})
}

// StudyMembers lists a study's members.
func (c *BrokerClient) StudyMembers(study string) ([]string, error) {
	return c.StudyMembersCtx(context.Background(), study)
}

// StudyMembersCtx lists a study's members.
func (c *BrokerClient) StudyMembersCtx(ctx context.Context, study string) ([]string, error) {
	var resp studyMembersResp
	if err := c.call(ctx, "/api/studies/members", false, &studyReq{Study: study}, &resp); err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// EnrollContributor adds a contributor to a study's cohort roster.
func (c *BrokerClient) EnrollContributor(study, contributor string) error {
	return c.EnrollContributorCtx(context.Background(), study, contributor)
}

// EnrollContributorCtx adds a contributor to a study's cohort roster.
func (c *BrokerClient) EnrollContributorCtx(ctx context.Context, study, contributor string) error {
	return c.call(ctx, "/api/studies/enroll",
		true, &studyReq{Study: study, Contributor: contributor}, &okResp{})
}

// StudyContributors lists a study's enrolled contributor cohort.
func (c *BrokerClient) StudyContributors(study string) ([]string, error) {
	return c.StudyContributorsCtx(context.Background(), study)
}

// StudyContributorsCtx lists a study's enrolled contributor cohort.
func (c *BrokerClient) StudyContributorsCtx(ctx context.Context, study string) ([]string, error) {
	var resp studyContributorsResp
	if err := c.call(ctx, "/api/studies/contributors", false, &studyReq{Study: study}, &resp); err != nil {
		return nil, err
	}
	return resp.Contributors, nil
}
