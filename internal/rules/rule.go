package rules

import (
	"fmt"
	"strings"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
)

// ActionKind discriminates a rule's action (Table 1(a)): Allow, Deny, or
// Abstraction.
type ActionKind int

// The three action kinds.
const (
	ActionAllow ActionKind = iota
	ActionDeny
	ActionAbstract
)

func (k ActionKind) String() string {
	switch k {
	case ActionAllow:
		return "Allow"
	case ActionDeny:
		return "Deny"
	case ActionAbstract:
		return "Abstraction"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// AbstractionSpec lists the clamps of an Abstraction action. Nil pointer /
// missing map entry means "not clamped by this rule" (raw remains allowed
// for that dimension, subject to other rules).
type AbstractionSpec struct {
	// Location clamps the location granularity.
	Location *geo.LocationGranularity
	// Time clamps the timestamp granularity.
	Time *timeutil.Granularity
	// Contexts clamps per-category context levels.
	Contexts map[Category]Level
}

// Empty reports whether the spec clamps nothing.
func (a *AbstractionSpec) Empty() bool {
	return a == nil || (a.Location == nil && a.Time == nil && len(a.Contexts) == 0)
}

// Clone deep-copies the spec.
func (a *AbstractionSpec) Clone() *AbstractionSpec {
	if a == nil {
		return nil
	}
	out := &AbstractionSpec{}
	if a.Location != nil {
		l := *a.Location
		out.Location = &l
	}
	if a.Time != nil {
		t := *a.Time
		out.Time = &t
	}
	if len(a.Contexts) > 0 {
		out.Contexts = make(map[Category]Level, len(a.Contexts))
		for k, v := range a.Contexts {
			out.Contexts[k] = v
		}
	}
	return out
}

// Action is what a matching rule does.
type Action struct {
	Kind        ActionKind
	Abstraction *AbstractionSpec // set iff Kind == ActionAbstract
}

// Allow returns the plain allow action.
func Allow() Action { return Action{Kind: ActionAllow} }

// Deny returns the plain deny action.
func Deny() Action { return Action{Kind: ActionDeny} }

// Abstract returns an abstraction action with the given clamps.
func Abstract(spec AbstractionSpec) Action {
	return Action{Kind: ActionAbstract, Abstraction: &spec}
}

// Rule is one privacy rule (Table 1(a)). All condition slices are optional;
// an empty condition matches everything on that dimension. Within a
// condition the listed values are alternatives (OR); across conditions the
// rule requires all of them (AND).
type Rule struct {
	// ID identifies the rule within a contributor's rule set.
	ID string
	// Description is free text shown in UIs.
	Description string

	// Consumers names individual data consumers this rule applies to.
	Consumers []string
	// Groups names consumer groups or studies this rule applies to.
	Groups []string

	// LocationLabels reference the contributor's gazetteer ("home", "UCLA").
	LocationLabels []string
	// Regions are raw map regions.
	Regions []geo.Region

	// TimeRanges are absolute time windows.
	TimeRanges []timeutil.Range
	// RepeatTimes are recurring weekly windows.
	RepeatTimes []timeutil.Repeated

	// Sensors restricts the channels the rule governs.
	Sensors []string
	// Contexts conditions the rule on active inferred contexts.
	Contexts []string

	// Action is what the rule does when it matches.
	Action Action

	// memo caches compile-time canonicalized conditions (see compile).
	// Only rules installed in an Engine carry one; Clone drops it so a
	// cloned-and-mutated rule can never match against stale conditions.
	memo *ruleMemo
}

// ruleMemo is the compile-time canonical form of a rule's conditions:
// fold-canonical sets for the string dimensions (so matching is a map
// lookup instead of an EqualFold scan) and the precomputed derived facts
// Combine needs per matching rule (governed categories, category
// coverage). It is immutable after compile and shared freely by Clone
// inside the engine/index.
type ruleMemo struct {
	consumers map[string]struct{}
	groups    map[string]struct{}
	contexts  map[string]struct{}
	sensors   map[string]struct{}
	governed  []Category
	coversAll map[Category]bool
}

// compile builds the rule's memo. The engine calls it once on its private
// clones; it must not run on rules callers may still mutate.
func (r *Rule) compile() {
	m := &ruleMemo{
		consumers: foldSet(r.Consumers),
		groups:    foldSet(r.Groups),
		contexts:  foldSet(r.Contexts),
		sensors:   foldSet(r.Sensors),
		coversAll: make(map[Category]bool, 4),
	}
	r.memo = nil // compute the derived facts through the slow paths
	m.governed = r.GovernedCategories()
	for _, cat := range Categories() {
		if r.CoversAllSensorsOf(cat) {
			m.coversAll[cat] = true
		}
	}
	r.memo = m
}

// Validate checks structural well-formedness: known context labels, known
// channels in sensor conditions are not required (stores may hold arbitrary
// channels), a consistent action, and usable geometry.
func (r *Rule) Validate() error {
	for _, c := range r.Contexts {
		if _, err := ParseContextLabel(c); err != nil {
			return fmt.Errorf("rule %s: %w", r.ID, err)
		}
	}
	for _, rg := range r.Regions {
		if !rg.HasGeometry() {
			return fmt.Errorf("rule %s: region %q has no geometry", r.ID, rg.Label)
		}
	}
	for _, s := range r.Sensors {
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("rule %s: empty sensor name", r.ID)
		}
	}
	for _, l := range r.LocationLabels {
		if strings.TrimSpace(l) == "" {
			return fmt.Errorf("rule %s: empty location label", r.ID)
		}
	}
	switch r.Action.Kind {
	case ActionAllow, ActionDeny:
		if r.Action.Abstraction != nil {
			return fmt.Errorf("rule %s: %s action must not carry an abstraction spec", r.ID, r.Action.Kind)
		}
	case ActionAbstract:
		if r.Action.Abstraction.Empty() {
			return fmt.Errorf("rule %s: abstraction action with empty spec", r.ID)
		}
		spec := r.Action.Abstraction
		if spec.Location != nil && !spec.Location.Valid() {
			return fmt.Errorf("rule %s: invalid location granularity", r.ID)
		}
		if spec.Time != nil && !spec.Time.Valid() {
			return fmt.Errorf("rule %s: invalid time granularity", r.ID)
		}
		for cat, l := range spec.Contexts {
			if !ValidLevel(cat, l) {
				return fmt.Errorf("rule %s: invalid level %v for category %s", r.ID, l, cat)
			}
		}
	default:
		return fmt.Errorf("rule %s: unknown action kind %d", r.ID, int(r.Action.Kind))
	}
	return nil
}

// Clone deep-copies the rule.
func (r *Rule) Clone() *Rule {
	out := *r
	out.Consumers = append([]string(nil), r.Consumers...)
	out.Groups = append([]string(nil), r.Groups...)
	out.LocationLabels = append([]string(nil), r.LocationLabels...)
	out.Regions = append([]geo.Region(nil), r.Regions...)
	out.TimeRanges = append([]timeutil.Range(nil), r.TimeRanges...)
	out.RepeatTimes = append([]timeutil.Repeated(nil), r.RepeatTimes...)
	out.Sensors = append([]string(nil), r.Sensors...)
	out.Contexts = append([]string(nil), r.Contexts...)
	out.Action.Abstraction = r.Action.Abstraction.Clone()
	out.memo = nil // clones are mutable; stale memos must not survive
	return &out
}

// GovernsAllChannels reports whether the rule has no sensor condition.
func (r *Rule) GovernsAllChannels() bool { return len(r.Sensors) == 0 }

// GovernsChannel reports whether the rule's sensor condition covers the
// channel.
func (r *Rule) GovernsChannel(channel string) bool {
	if len(r.Sensors) == 0 {
		return true
	}
	if m := r.memo; m != nil {
		_, ok := m.sensors[Fold(channel)]
		return ok
	}
	for _, s := range r.Sensors {
		if strings.EqualFold(s, channel) {
			return true
		}
	}
	return false
}

// GovernedCategories returns the context categories inferable from the
// channels the rule governs. With no sensor condition that is every
// category.
func (r *Rule) GovernedCategories() []Category {
	if m := r.memo; m != nil {
		return append([]Category(nil), m.governed...)
	}
	if len(r.Sensors) == 0 {
		return Categories()
	}
	seen := make(map[Category]bool)
	var out []Category
	for _, s := range r.Sensors {
		for _, cat := range SensorCategories(canonicalChannel(s)) {
			if !seen[cat] {
				seen[cat] = true
				out = append(out, cat)
			}
		}
	}
	return out
}

// governedCategories is GovernedCategories without the defensive copy,
// for the combiner's read-only hot path.
func (r *Rule) governedCategories() []Category {
	if m := r.memo; m != nil {
		return m.governed
	}
	return r.GovernedCategories()
}

// CoversAllSensorsOf reports whether the rule's sensor scope includes every
// channel the category can be inferred from — the condition under which a
// Deny rule revokes the category's annotations as well.
func (r *Rule) CoversAllSensorsOf(cat Category) bool {
	if m := r.memo; m != nil {
		return m.coversAll[cat]
	}
	if len(r.Sensors) == 0 {
		return true
	}
	for _, need := range categorySensors[cat] {
		if !r.GovernsChannel(need) {
			return false
		}
	}
	return true
}

// canonicalChannel maps loose sensor spellings to canonical channel names.
func canonicalChannel(s string) string {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ecg":
		return "ECG"
	case "respiration", "resp":
		return "Respiration"
	case "accelerometer", "accel":
		return "AccelX" // representative; SensorChannels expands the triple
	case "accelx":
		return "AccelX"
	case "accely":
		return "AccelY"
	case "accelz":
		return "AccelZ"
	case "microphone", "mic":
		return "Microphone"
	case "gps", "latitude":
		return "Latitude"
	case "longitude":
		return "Longitude"
	case "heartrate", "heart rate":
		return "HeartRate"
	case "skintemperature", "skin temperature", "skintemp":
		return "SkinTemperature"
	default:
		return strings.TrimSpace(s)
	}
}

// ExpandSensorNames canonicalizes a sensor condition, expanding the
// umbrella names "Accelerometer" (→ AccelX/Y/Z) and "GPS" (→ Latitude,
// Longitude) used in rule UIs.
func ExpandSensorNames(sensors []string) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, s := range sensors {
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "accelerometer", "accel":
			add("AccelX")
			add("AccelY")
			add("AccelZ")
		case "gps", "location":
			add("Latitude")
			add("Longitude")
		default:
			add(canonicalChannel(s))
		}
	}
	return out
}

func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rule{%s", r.Action.Kind)
	if len(r.Consumers) > 0 {
		fmt.Fprintf(&b, " consumers=%v", r.Consumers)
	}
	if len(r.Groups) > 0 {
		fmt.Fprintf(&b, " groups=%v", r.Groups)
	}
	if len(r.LocationLabels) > 0 {
		fmt.Fprintf(&b, " at=%v", r.LocationLabels)
	}
	if len(r.Sensors) > 0 {
		fmt.Fprintf(&b, " sensors=%v", r.Sensors)
	}
	if len(r.Contexts) > 0 {
		fmt.Fprintf(&b, " contexts=%v", r.Contexts)
	}
	b.WriteString("}")
	return b.String()
}
