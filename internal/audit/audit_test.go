package audit

import (
	"testing"
	"time"
)

var t0 = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)

func event(consumer string, at time.Time, o Outcome, spanMin int) Event {
	return Event{
		At: at, Contributor: "alice", Consumer: consumer, Outcome: o,
		SpanStart: t0, SpanEnd: t0.Add(time.Duration(spanMin) * time.Minute),
	}
}

func TestRecordAndLen(t *testing.T) {
	tr := NewTrail(0)
	if tr.Len() != 0 {
		t.Fatal("new trail not empty")
	}
	tr.Record(event("bob", t0, OutcomeRaw, 1))
	tr.Record(event("bob", t0.Add(time.Minute), OutcomeWithheld, 0))
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestRecordStampsTime(t *testing.T) {
	tr := NewTrail(0)
	tr.Record(Event{Contributor: "alice", Consumer: "bob"})
	got := tr.Events(Filter{})
	if len(got) != 1 || got[0].At.IsZero() {
		t.Errorf("event not stamped: %+v", got)
	}
}

func TestEviction(t *testing.T) {
	tr := NewTrail(3)
	for i := 0; i < 5; i++ {
		tr.Record(event("bob", t0.Add(time.Duration(i)*time.Minute), OutcomeRaw, 1))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len after eviction = %d", tr.Len())
	}
	got := tr.Events(Filter{})
	// Newest first; oldest retained event is t0+2m.
	if !got[0].At.Equal(t0.Add(4*time.Minute)) || !got[2].At.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("eviction kept wrong events: %v .. %v", got[0].At, got[2].At)
	}
}

func TestEventsFilter(t *testing.T) {
	tr := NewTrail(0)
	tr.Record(event("bob", t0, OutcomeRaw, 1))
	tr.Record(event("eve", t0.Add(time.Minute), OutcomeWithheld, 0))
	tr.Record(event("bob", t0.Add(2*time.Minute), OutcomeAbstracted, 2))

	if got := tr.Events(Filter{Consumer: "BOB"}); len(got) != 2 {
		t.Errorf("consumer filter = %d events", len(got))
	}
	if got := tr.Events(Filter{Contributor: "nobody"}); len(got) != 0 {
		t.Errorf("contributor filter = %d events", len(got))
	}
	if got := tr.Events(Filter{Since: t0.Add(time.Minute)}); len(got) != 2 {
		t.Errorf("since filter = %d events", len(got))
	}
	withheld := OutcomeWithheld
	if got := tr.Events(Filter{Outcome: &withheld}); len(got) != 1 || got[0].Consumer != "eve" {
		t.Errorf("outcome filter = %v", got)
	}
	if got := tr.Events(Filter{Limit: 1}); len(got) != 1 || !got[0].At.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("limit should keep newest: %v", got)
	}
}

func TestEventsNewestFirst(t *testing.T) {
	tr := NewTrail(0)
	for i := 0; i < 4; i++ {
		tr.Record(event("bob", t0.Add(time.Duration(i)*time.Minute), OutcomeRaw, 1))
	}
	got := tr.Events(Filter{})
	for i := 1; i < len(got); i++ {
		if got[i].At.After(got[i-1].At) {
			t.Fatal("events not newest-first")
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTrail(0)
	tr.Record(event("bob", t0, OutcomeRaw, 10))
	tr.Record(event("bob", t0.Add(time.Hour), OutcomeAbstracted, 5))
	tr.Record(event("bob", t0.Add(2*time.Hour), OutcomeWithheld, 0))
	tr.Record(event("eve", t0, OutcomeWithheld, 0))
	// Another contributor's event must not leak into alice's summary.
	other := event("bob", t0, OutcomeRaw, 60)
	other.Contributor = "carol"
	tr.Record(other)

	got := tr.Summarize("ALICE")
	if len(got) != 2 {
		t.Fatalf("summaries = %+v", got)
	}
	bob := got[0]
	if bob.Consumer != "bob" || bob.Accesses != 3 || bob.Raw != 1 || bob.Abstracted != 1 || bob.Withheld != 1 {
		t.Errorf("bob summary = %+v", bob)
	}
	if bob.DataSpan != 15*time.Minute {
		t.Errorf("bob data span = %v, want 15m (withheld spans excluded)", bob.DataSpan)
	}
	if !bob.First.Equal(t0) || !bob.Last.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("bob first/last = %v/%v", bob.First, bob.Last)
	}
	eve := got[1]
	if eve.Consumer != "eve" || eve.Withheld != 1 || eve.DataSpan != 0 {
		t.Errorf("eve summary = %+v", eve)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeRaw.String() != "raw" || OutcomeAbstracted.String() != "abstracted" || OutcomeWithheld.String() != "withheld" {
		t.Error("outcome strings wrong")
	}
}
